// Smartphone fleet: the paper's §4.6 scenario end-to-end. A fleet of four
// phone models (Table 2 traces) collaboratively trains under per-device
// battery budgets. Compares SkipTrain-constrained against the Greedy
// baseline and D-PSGD, and prints each device class's budget, training
// probability (Eq. 5), and realized participation.
#include <cstdio>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  constexpr std::size_t kNodes = 64;
  constexpr std::size_t kRounds = 160;
  constexpr std::size_t kGammaTrain = 4;
  constexpr std::size_t kGammaSync = 4;
  // Budgets bind at the paper's proportion of the run: the paper gives
  // τ ∈ [272, 681] over T = 1000; we scale both down together.
  const double budget_scale =
      static_cast<double>(kRounds) /
      static_cast<double>(energy::workload_spec(energy::Workload::kCifar10)
                              .total_rounds);

  data::CifarSynConfig data_config;
  data_config.nodes = kNodes;
  data_config.samples_per_node = 60;
  data_config.seed = 3;
  const data::FederatedData dataset = data::make_cifar_synthetic(data_config);

  nn::Sequential model =
      nn::make_compact_cifar_model(data_config.feature_dim);
  util::Rng rng(3);
  nn::initialize(model, rng);

  // Show the fleet composition and Eq. 5 probabilities.
  const energy::Fleet fleet =
      energy::Fleet::even(kNodes, energy::Workload::kCifar10)
          .with_budget_scale(budget_scale);
  const double t_train =
      core::expected_training_rounds(kGammaTrain, kGammaSync, kRounds);
  std::printf("fleet of %zu phones, budgets scaled by %.2f, T_train = %.0f\n",
              kNodes, budget_scale, t_train);
  util::TablePrinter fleet_table(
      {"device", "per-round mWh", "tau (scaled)", "p_i (Eq. 5)"});
  for (std::size_t d = 0; d < energy::smartphone_traces().size(); ++d) {
    const auto& entry = energy::smartphone_traces()[d];
    const std::size_t tau = fleet.budget_rounds(d);  // node d has device d
    fleet_table.add_row(
        {entry.profile.name, util::fixed(entry.cifar_mwh, 2),
         std::to_string(tau),
         util::fixed(core::training_probability(tau, t_train), 3)});
  }
  fleet_table.print();

  sim::RunOptions options;
  options.total_rounds = kRounds;
  options.degree = 6;
  options.local_steps = 10;
  options.batch_size = 16;
  options.learning_rate = 0.1f;
  options.eval_every = 32;
  options.seed = 3;
  options.budget_scale = budget_scale;
  options.gamma_train = kGammaTrain;
  options.gamma_sync = kGammaSync;

  util::TablePrinter results(
      {"algorithm", "final acc%", "spent Wh", "budget Wh"});
  for (const auto algorithm :
       {sim::Algorithm::kSkipTrainConstrained, sim::Algorithm::kGreedy,
        sim::Algorithm::kDpsgd}) {
    options.algorithm = algorithm;
    const sim::ExperimentResult result =
        sim::run_experiment(dataset, model, options);
    results.add_row({result.algorithm,
                     util::fixed(100.0 * result.final_mean_accuracy, 2),
                     util::fixed(result.total_training_wh, 3),
                     util::fixed(result.fleet_budget_wh, 3)});
  }
  results.print();

  std::printf("\nexpected: SkipTrain-constrained attains the best accuracy "
              "within budget; Greedy burns its budget early; D-PSGD ignores "
              "budgets entirely (its spend exceeds the fleet budget).\n");
  return 0;
}
