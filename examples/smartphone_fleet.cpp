// Smartphone fleet: the paper's §4.6 scenario end-to-end. A fleet of four
// phone models (Table 2 traces) collaboratively trains under per-device
// battery budgets. Compares SkipTrain-constrained against the Greedy
// baseline and D-PSGD, and prints each device class's budget, training
// probability (Eq. 5), and realized participation.
//
// The three algorithm runs are declared as the "smartphone" sweep preset
// and executed by the trial-parallel sweep runner (the dataset is built
// once and shared across the trials).
#include <cstdio>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  sweep::PresetParams params;
  params.seed = 3;
  params.eval_samples = 1000;
  sweep::SweepGrid grid = sweep::make_preset("smartphone", params);
  grid.data.test_pool = 4000;  // the full synthetic pool, as before

  // Derive the displayed quantities from the expanded grid so the fleet
  // table below always agrees with what the trials actually run.
  // (Budgets bind at the paper's proportion of the run: the paper gives
  // τ ∈ [272, 681] over T = 1000; the preset scales both down together.)
  const sim::RunOptions options = grid.expand().front().options;
  const std::size_t nodes = grid.data.nodes;
  const double budget_scale = options.budget_scale;

  // Show the fleet composition and Eq. 5 probabilities.
  const energy::Fleet fleet =
      energy::Fleet::even(nodes, energy::Workload::kCifar10)
          .with_budget_scale(budget_scale);
  const double t_train = core::expected_training_rounds(
      options.gamma_train, options.gamma_sync, options.total_rounds);
  std::printf("fleet of %zu phones, budgets scaled by %.2f, T_train = %.0f\n",
              nodes, budget_scale, t_train);
  util::TablePrinter fleet_table(
      {"device", "per-round mWh", "tau (scaled)", "p_i (Eq. 5)"});
  for (std::size_t d = 0; d < energy::smartphone_traces().size(); ++d) {
    const auto& entry = energy::smartphone_traces()[d];
    const std::size_t tau = fleet.budget_rounds(d);  // node d has device d
    fleet_table.add_row(
        {entry.profile.name, util::fixed(entry.cifar_mwh, 2),
         std::to_string(tau),
         util::fixed(core::training_probability(tau, t_train), 3)});
  }
  fleet_table.print();

  // threads=1 keeps node-level parallelism inside each of the three
  // trials — the right schedule for a small fixed grid of big trials.
  const sweep::SweepReport report =
      sweep::SweepRunner({.threads = 1}).run(grid);

  util::TablePrinter results(
      {"algorithm", "final acc%", "spent Wh", "budget Wh"});
  for (const sweep::TrialResult& trial : report.trials) {
    if (!trial.ok()) {
      results.add_row({trial.error, "-", "-", "-"});
      continue;
    }
    results.add_row({trial.result.algorithm,
                     util::fixed(100.0 * trial.result.final_mean_accuracy, 2),
                     util::fixed(trial.result.total_training_wh, 3),
                     util::fixed(trial.result.fleet_budget_wh, 3)});
  }
  results.print();

  std::printf("\nexpected: SkipTrain-constrained attains the best accuracy "
              "within budget; Greedy burns its budget early; D-PSGD ignores "
              "budgets entirely (its spend exceeds the fleet budget).\n");
  return report.all_ok() ? 0 : 1;
}
