// Quickstart: the smallest complete SkipTrain experiment.
//
//   1. build a federated workload (synthetic CIFAR-10, 2-shard non-IID);
//   2. build and initialise a model (all nodes start from the same x⁰);
//   3. run D-PSGD and SkipTrain through the high-level API;
//   4. compare accuracy and training energy.
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  // 1. Data: 32 nodes, each holding 2 label shards of a 10-class task.
  data::CifarSynConfig data_config;
  data_config.nodes = 32;
  data_config.samples_per_node = 60;
  data_config.seed = 1;
  const data::FederatedData dataset = data::make_cifar_synthetic(data_config);
  std::printf("dataset: %s, %zu nodes, %zu training samples\n",
              dataset.name.c_str(), dataset.num_nodes(),
              dataset.train.size());

  // 2. Model: a compact MLP classifier; every node clones this x⁰.
  nn::Sequential model =
      nn::make_compact_cifar_model(data_config.feature_dim);
  util::Rng rng(1);
  nn::initialize(model, rng);
  std::printf("model: %zu parameters\n%s\n", model.num_parameters(),
              model.summary().c_str());

  // 3. Experiments: same budget of rounds, same 6-regular topology.
  sim::RunOptions options;
  options.total_rounds = 120;
  options.degree = 6;
  options.local_steps = 10;
  options.batch_size = 16;
  options.learning_rate = 0.1f;
  options.eval_every = 24;
  options.seed = 1;

  options.algorithm = sim::Algorithm::kDpsgd;
  const sim::ExperimentResult dpsgd =
      sim::run_experiment(dataset, model, options);

  options.algorithm = sim::Algorithm::kSkipTrain;
  options.gamma_train = 4;  // 4 training rounds...
  options.gamma_sync = 4;   // ...then 4 energy-free synchronization rounds
  const sim::ExperimentResult skiptrain =
      sim::run_experiment(dataset, model, options);

  // 4. Compare.
  std::printf("%s\n", dpsgd.recorder.render_series().c_str());
  std::printf("%s\n", skiptrain.recorder.render_series().c_str());

  util::TablePrinter table(
      {"algorithm", "final acc%", "train energy Wh", "comm energy Wh"});
  table.add_row({dpsgd.algorithm,
                 util::fixed(100.0 * dpsgd.final_mean_accuracy, 2),
                 util::fixed(dpsgd.total_training_wh, 2),
                 util::fixed(dpsgd.total_comm_wh, 3)});
  table.add_row({skiptrain.algorithm,
                 util::fixed(100.0 * skiptrain.final_mean_accuracy, 2),
                 util::fixed(skiptrain.total_training_wh, 2),
                 util::fixed(skiptrain.total_comm_wh, 3)});
  table.print();

  std::printf(
      "\nSkipTrain used %.0f%% of D-PSGD's training energy.\n",
      100.0 * skiptrain.total_training_wh / dpsgd.total_training_wh);
  return 0;
}
