// Extending SkipTrain: writing your own RoundScheduler.
//
// The paper's §5.3 and §7 sketch future directions (adaptive variants).
// This example implements two custom schedulers against the public
// core::RoundScheduler interface and races them against the built-ins:
//
//   * WarmupScheduler  — trains every round for a warm-up phase (models
//     far from convergence benefit most from gradients), then switches to
//     SkipTrain's alternation to save energy near convergence.
//   * DecayScheduler   — trains with a probability that decays over time,
//     a smooth version of the train/sync trade-off.
#include <cstdio>

#include "core/skiptrain.hpp"

namespace {

using namespace skiptrain;

class WarmupScheduler final : public core::RoundScheduler {
 public:
  WarmupScheduler(std::size_t warmup_rounds, std::size_t gamma_train,
                  std::size_t gamma_sync)
      : warmup_(warmup_rounds), alternation_(gamma_train, gamma_sync) {}

  std::string name() const override {
    return "Warmup(" + std::to_string(warmup_) + ")+SkipTrain";
  }
  core::RoundKind round_kind(std::size_t t) const override {
    if (t <= warmup_) return core::RoundKind::kTraining;
    return alternation_.round_kind(t - warmup_);
  }
  bool should_train(std::size_t t, std::size_t node,
                    std::size_t budget) const override {
    (void)node;
    (void)budget;
    return round_kind(t) == core::RoundKind::kTraining;
  }

 private:
  std::size_t warmup_;
  core::SkipTrainScheduler alternation_;
};

class DecayScheduler final : public core::RoundScheduler {
 public:
  DecayScheduler(std::size_t total_rounds, double final_probability,
                 std::uint64_t seed)
      : total_(total_rounds), floor_(final_probability), seed_(seed) {}

  std::string name() const override { return "DecayingTrainProbability"; }
  core::RoundKind round_kind(std::size_t) const override {
    // Every round is nominally a training round; skipping is per-node.
    return core::RoundKind::kTraining;
  }
  bool should_train(std::size_t t, std::size_t node,
                    std::size_t budget) const override {
    (void)budget;
    const double progress =
        static_cast<double>(t) / static_cast<double>(total_);
    const double p = 1.0 - (1.0 - floor_) * progress;  // 1 -> floor
    return util::stateless_uniform(seed_, node, t) <= p;
  }

 private:
  std::size_t total_;
  double floor_;
  std::uint64_t seed_;
};

}  // namespace

int main() {
  constexpr std::size_t kNodes = 32;
  constexpr std::size_t kRounds = 120;

  data::CifarSynConfig data_config;
  data_config.nodes = kNodes;
  data_config.samples_per_node = 60;
  data_config.seed = 21;
  const data::FederatedData dataset = data::make_cifar_synthetic(data_config);

  nn::Sequential model =
      nn::make_compact_cifar_model(data_config.feature_dim);
  util::Rng rng(21);
  nn::initialize(model, rng);

  util::Rng topo_rng(22);
  const graph::Topology topology =
      graph::make_random_regular(kNodes, 6, topo_rng);
  const graph::MixingMatrix mixing =
      graph::MixingMatrix::metropolis_hastings(topology);

  const auto race = [&](const core::RoundScheduler& scheduler,
                        util::TablePrinter& table) {
    const energy::Fleet fleet =
        energy::Fleet::even(kNodes, energy::Workload::kCifar10);
    std::vector<std::size_t> degrees(kNodes, 6);
    energy::EnergyAccountant accountant(fleet, energy::CommModel{}, 89834,
                                        std::move(degrees));
    sim::EngineConfig config;
    config.local_steps = 10;
    config.batch_size = 16;
    config.learning_rate = 0.1f;
    config.seed = 21;
    sim::RoundEngine engine(model, dataset, mixing, scheduler,
                            std::move(accountant), config);
    engine.run_rounds(kRounds);

    const metrics::Evaluator evaluator(&dataset.test, 600);
    std::vector<nn::Sequential*> models(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) models[i] = &engine.model(i);
    const auto eval = evaluator.evaluate_fleet(models);
    table.add_row({scheduler.name(),
                   util::fixed(100.0 * eval.accuracy.mean, 2),
                   util::fixed(engine.accountant().total_training_wh(), 2)});
  };

  util::TablePrinter table({"scheduler", "final acc%", "train energy Wh"});
  const core::DpsgdScheduler dpsgd;
  const core::SkipTrainScheduler skiptrain(4, 4);
  const WarmupScheduler warmup(kRounds / 4, 4, 4);
  const DecayScheduler decay(kRounds, 0.25, 21);
  race(dpsgd, table);
  race(skiptrain, table);
  race(warmup, table);
  race(decay, table);
  table.print();

  std::printf(
      "\nAny policy expressible as (round kind, per-node decision) plugs "
      "into the engine unchanged — budgets, probabilities, warm-ups, or "
      "anything the future-work section dreams up.\n");
  return 0;
}
