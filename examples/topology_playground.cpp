// Topology playground: how the communication graph shapes decentralized
// learning. Runs SkipTrain over ring / d-regular / fully-connected graphs
// and relates final accuracy to the mixing matrix's spectral gap — the
// quantitative version of the paper's §4.3 observation that denser
// topologies need fewer synchronization rounds.
#include <cstdio>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  constexpr std::size_t kNodes = 32;

  data::CifarSynConfig data_config;
  data_config.nodes = kNodes;
  data_config.samples_per_node = 60;
  data_config.seed = 11;
  const data::FederatedData dataset = data::make_cifar_synthetic(data_config);

  nn::Sequential model =
      nn::make_compact_cifar_model(data_config.feature_dim);
  util::Rng rng(11);
  nn::initialize(model, rng);

  struct Scenario {
    std::string name;
    graph::Topology topology;
  };
  util::Rng topo_rng(13);
  std::vector<Scenario> scenarios;
  scenarios.push_back({"ring (d=2)", graph::make_ring(kNodes)});
  scenarios.push_back(
      {"4-regular", graph::make_random_regular(kNodes, 4, topo_rng)});
  scenarios.push_back(
      {"8-regular", graph::make_random_regular(kNodes, 8, topo_rng)});
  scenarios.push_back(
      {"fully connected", graph::make_fully_connected(kNodes)});

  util::TablePrinter table({"topology", "spectral gap", "diameter",
                            "final acc%", "acc std%"});

  for (auto& scenario : scenarios) {
    const graph::MixingMatrix mixing =
        graph::MixingMatrix::metropolis_hastings(scenario.topology);

    // Run SkipTrain directly on this topology through the engine (the
    // high-level runner always builds d-regular graphs).
    const core::SkipTrainScheduler scheduler(4, 4);
    const energy::Fleet fleet =
        energy::Fleet::even(kNodes, energy::Workload::kCifar10);
    std::vector<std::size_t> degrees(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) {
      degrees[i] = scenario.topology.degree(i);
    }
    energy::EnergyAccountant accountant(fleet, energy::CommModel{}, 89834,
                                        std::move(degrees));
    sim::EngineConfig config;
    config.local_steps = 10;
    config.batch_size = 16;
    config.learning_rate = 0.1f;
    config.seed = 11;
    sim::RoundEngine engine(model, dataset, mixing, scheduler,
                            std::move(accountant), config);
    engine.run_rounds(120);

    const metrics::Evaluator evaluator(&dataset.test, 600);
    std::vector<nn::Sequential*> models(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) models[i] = &engine.model(i);
    const auto eval = evaluator.evaluate_fleet(models);

    table.add_row({scenario.name, util::fixed(mixing.spectral_gap(), 4),
                   std::to_string(scenario.topology.diameter()),
                   util::fixed(100.0 * eval.accuracy.mean, 2),
                   util::fixed(100.0 * eval.accuracy.stddev, 2)});
  }
  table.print();

  std::printf("\nreading: larger spectral gap = faster gossip mixing. "
              "Accuracy (and its spread across nodes) improves with the "
              "gap; the marginal value of extra sync rounds falls as the "
              "graph densifies — exactly the Γsync trend of Figure 3.\n");
  return 0;
}
