// UAV swarm: the paper's motivating battery-constrained setting (§1, §3.2)
// with a custom energy envelope instead of the smartphone traces. A swarm
// of drones with heterogeneous remaining-flight budgets trains a shared
// perception model; we drive the RoundEngine directly to show how the
// lower-level API composes:
//
//   * custom per-node budgets injected into the EnergyAccountant,
//   * a SkipTrainConstrainedScheduler built from those budgets,
//   * a sparse topology (drones only reach nearby peers).
#include <cstdio>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  constexpr std::size_t kDrones = 48;
  constexpr std::size_t kRounds = 160;
  constexpr std::size_t kGammaTrain = 3;
  constexpr std::size_t kGammaSync = 3;

  // Perception workload: FEMNIST-like (many classes, per-drone styles, think
  // "terrain seen by each drone").
  data::FemnistSynConfig data_config;
  data_config.nodes = kDrones;
  data_config.mean_samples_per_node = 60;
  data_config.seed = 7;
  const data::FederatedData dataset =
      data::make_femnist_synthetic(data_config);

  nn::Sequential model =
      nn::make_compact_femnist_model(data_config.feature_dim);
  util::Rng rng(7);
  nn::initialize(model, rng);

  // Heterogeneous budgets: drones return from sorties with 20-90% battery.
  util::Rng budget_rng(99);
  std::vector<std::size_t> budgets(kDrones);
  const double t_train =
      core::expected_training_rounds(kGammaTrain, kGammaSync, kRounds);
  for (auto& tau : budgets) {
    tau = static_cast<std::size_t>(
        budget_rng.uniform_range(10, static_cast<std::int64_t>(t_train)));
  }

  // Sparse mesh: each drone reaches 4 neighbors.
  util::Rng topo_rng(5);
  const graph::Topology mesh =
      graph::make_random_regular(kDrones, 4, topo_rng);
  const graph::MixingMatrix mixing =
      graph::MixingMatrix::metropolis_hastings(mesh);
  std::printf("swarm mesh: %s, spectral gap %.4f\n", mesh.describe().c_str(),
              mixing.spectral_gap());

  const auto run = [&](const core::RoundScheduler& scheduler) {
    // Energy trace: use the OnePlus Nord profile as a stand-in for the
    // drone compute module, with the custom sortie budgets.
    energy::Fleet fleet =
        energy::Fleet::uniform(kDrones, 2, energy::Workload::kFemnist);
    std::vector<std::size_t> degrees(kDrones, 4);
    energy::EnergyAccountant accountant(
        fleet, energy::CommModel{},
        energy::workload_spec(energy::Workload::kFemnist).model_params,
        std::move(degrees));
    accountant.set_budgets(budgets);

    sim::EngineConfig config;
    config.local_steps = 5;
    config.batch_size = 16;
    config.learning_rate = 0.1f;
    config.seed = 7;
    sim::RoundEngine engine(model, dataset, mixing, scheduler,
                            std::move(accountant), config);
    engine.run_rounds(kRounds);

    const metrics::Evaluator evaluator(&dataset.test, 600);
    std::vector<nn::Sequential*> models(kDrones);
    for (std::size_t i = 0; i < kDrones; ++i) models[i] = &engine.model(i);
    const auto eval = evaluator.evaluate_fleet(models);

    std::size_t total_trainings = 0;
    for (std::size_t i = 0; i < kDrones; ++i) {
      total_trainings += engine.accountant().training_rounds_executed(i);
    }
    std::printf("  %-28s acc %.2f%% (std %.2f%%), trainings %zu, energy "
                "%.3f Wh\n",
                scheduler.name().c_str(), 100.0 * eval.accuracy.mean,
                100.0 * eval.accuracy.stddev, total_trainings,
                engine.accountant().total_training_wh());
  };

  std::printf("\nsortie budgets: 10..%.0f training rounds per drone\n\n",
              t_train);
  const core::SkipTrainConstrainedScheduler constrained(
      kGammaTrain, kGammaSync, kRounds, budgets, 7);
  const core::GreedyScheduler greedy;
  run(constrained);
  run(greedy);

  std::printf("\nexpected: spreading the training budget across the mission "
              "(SkipTrain-constrained) beats burning it upfront (Greedy) — "
              "late-mission models keep learning from fresh aggregates.\n");
  return 0;
}
