// Churning phone fleet: the scenario engine's stress case. Tight
// batteries (six training rounds of capacity, starting 60% charged)
// under heavy weather force frequent mid-run dropout and re-entry —
// a phone fleet where devices constantly leave and rejoin. A down
// node's model freezes in place and the aggregation masks it out until
// its battery clears the re-entry threshold (hysteresis, so boundary
// nodes don't flap every round).
//
// The grid is the "churning_phone_fleet" sweep preset: three
// budget-aware participation policies — SkipTrain-constrained (Eq. 5),
// DEAL-style decremental participation, and Greedy — compared under
// byte-identical churn (counter-based draws make the weather a pure
// function of (seed, node, round), so every policy sees the same sky).
#include <cstdio>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  sweep::PresetParams params;
  params.seed = 3;
  sweep::SweepGrid grid = sweep::make_preset("churning_phone_fleet", params);

  const scenario::ScenarioConfig churn = scenario::make_config("churn");
  std::printf(
      "fleet of %zu phones: battery %.0f training-rounds starting at "
      "%.0f%% charge, harvest mean %.2f rounds/round on a %.0f-round "
      "cycle, dropout below %.0f%% SoC, re-entry above %.0f%%\n\n",
      grid.data.nodes, churn.battery_rounds, 100.0 * churn.initial_soc,
      churn.harvest_rounds_mean, churn.period_rounds,
      100.0 * churn.dropout_soc, 100.0 * churn.reentry_soc);

  const sweep::SweepReport report =
      sweep::SweepRunner({.threads = 1}).run(grid);

  util::TablePrinter results({"policy", "final acc%", "availability%",
                              "down node-rounds", "harvested Wh",
                              "spent Wh"});
  for (const sweep::TrialResult& trial : report.trials) {
    if (!trial.ok()) {
      results.add_row({trial.error, "-", "-", "-", "-", "-"});
      continue;
    }
    results.add_row(
        {trial.result.algorithm,
         util::fixed(100.0 * trial.result.final_mean_accuracy, 2),
         util::fixed(100.0 * trial.result.mean_availability, 1),
         std::to_string(trial.result.down_node_rounds),
         util::fixed(trial.result.harvested_wh, 3),
         util::fixed(trial.result.total_training_wh +
                         trial.result.total_comm_wh, 3)});
  }
  results.print();

  std::printf(
      "\nexpected: Greedy drains batteries early and rides out the run "
      "mostly down; the decremental policy tapers spend as charge drops, "
      "holding availability higher at similar accuracy.\n");
  return report.all_ok() ? 0 : 1;
}
