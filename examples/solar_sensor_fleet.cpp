// Solar sensor fleet: energy-harvesting scenario end-to-end. A fleet of
// 32 solar-powered sensors trains collaboratively while each node's
// battery charges from a diurnal harvest (clipped sine x weather noise,
// heterogeneous panel efficiencies) and pays for every local update and
// exchange. Weak-panel nodes brown out at night, freeze in place, and
// re-enter by day.
//
// The grid is the "solar_sensor_fleet" sweep preset: SkipTrain, its
// harvest-aware variant (participation rides the diurnal wave), and
// D-PSGD — each under both the paper's always-powered setting
// (scenario=none) and the solar scenario, so the availability/accuracy
// cost of intermittent power is read directly off one table.
#include <cstdio>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  sweep::PresetParams params;
  params.seed = 3;
  sweep::SweepGrid grid = sweep::make_preset("solar_sensor_fleet", params);

  const scenario::ScenarioConfig solar = scenario::make_config("solar");
  std::printf(
      "fleet of %zu sensors: battery %.0f training-rounds, harvest mean "
      "%.2f rounds/round over a %.0f-round day, dropout below %.0f%% SoC, "
      "re-entry above %.0f%%\n\n",
      grid.data.nodes, solar.battery_rounds, solar.harvest_rounds_mean,
      solar.period_rounds, 100.0 * solar.dropout_soc,
      100.0 * solar.reentry_soc);

  const sweep::SweepReport report =
      sweep::SweepRunner({.threads = 1}).run(grid);

  util::TablePrinter results({"algorithm", "scenario", "final acc%",
                              "availability%", "harvested Wh", "spent Wh"});
  for (const sweep::TrialResult& trial : report.trials) {
    if (!trial.ok()) {
      results.add_row({trial.error, "-", "-", "-", "-", "-"});
      continue;
    }
    const std::string scenario_name =
        scenario::scenario_token(trial.spec.options.scenario);
    results.add_row(
        {trial.result.algorithm, scenario_name,
         util::fixed(100.0 * trial.result.final_mean_accuracy, 2),
         util::fixed(100.0 * trial.result.mean_availability, 1),
         util::fixed(trial.result.harvested_wh, 3),
         util::fixed(trial.result.total_training_wh +
                         trial.result.total_comm_wh, 3)});
  }
  results.print();

  std::printf(
      "\nexpected: under scenario=none every run sits at 100%% "
      "availability; under solar, nodes brown out at night and the "
      "harvest-aware schedule concentrates training in daylight, keeping "
      "more accuracy per harvested Wh than the fixed Γ-schedule.\n");
  return report.all_ok() ? 0 : 1;
}
