// Interrupted fleet: kill a simulation mid-run and resume it bit-exactly
// — the paper's intermittent-powered setting (§3.2) applied to the
// simulator itself.
//
// Demonstrates both checkpointing layers:
//
//   1. engine level — run 24 rounds, checkpoint a fleet image at round
//      12, "crash" (destroy the engine), restore into a fresh engine and
//      finish; the resumed fleet's parameter plane is verified bitwise
//      against an uninterrupted run;
//   2. sweep level — run a small grid with a checkpoint directory, throw
//      away one trial's persisted result (as a crash would), and resume:
//      completed trials are skipped, the lost one reruns, and the
//      summary CSV is byte-identical to the uninterrupted sweep's.
//
// Build & run:   ./build/example_interrupted_fleet
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/skiptrain.hpp"

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main() {
  using namespace skiptrain;
  const std::string workdir =
      (std::filesystem::temp_directory_path() / "interrupted_fleet")
          .string();
  std::filesystem::remove_all(workdir);
  std::filesystem::create_directories(workdir);

  // --- Part 1: engine-level kill/resume --------------------------------
  std::printf("=== engine-level kill/resume ===\n");
  data::CifarSynConfig data_config;
  data_config.nodes = 16;
  data_config.samples_per_node = 30;
  data_config.seed = 3;
  const data::FederatedData dataset =
      data::make_cifar_synthetic(data_config);
  nn::Sequential model = nn::make_compact_cifar_model(data_config.feature_dim);
  util::Rng rng(3);
  nn::initialize(model, rng);

  util::Rng topo_rng(4);
  const graph::Topology topology =
      graph::make_random_regular(16, 4, topo_rng);
  const graph::MixingMatrix mixing =
      graph::MixingMatrix::metropolis_hastings(topology);
  const core::SkipTrainScheduler scheduler(2, 2);
  const energy::Fleet fleet =
      energy::Fleet::even(16, energy::Workload::kCifar10);
  const auto make_accountant = [&] {
    std::vector<std::size_t> degrees(16, 4);
    return energy::EnergyAccountant(fleet, energy::CommModel{}, 89834,
                                    std::move(degrees));
  };
  sim::EngineConfig engine_config;
  engine_config.local_steps = 5;
  engine_config.batch_size = 16;

  // Uninterrupted reference: 24 straight rounds.
  sim::RoundEngine reference(model, dataset, mixing, scheduler,
                             make_accountant(), engine_config);
  reference.run_rounds(24);

  // The "victim" gets to round 12, checkpoints, and dies with the scope.
  const std::string image = workdir + "/fleet.sktf";
  {
    sim::RoundEngine victim(model, dataset, mixing, scheduler,
                            make_accountant(), engine_config);
    victim.run_rounds(12);
    ckpt::save_fleet_image(victim, image);
    std::printf("checkpointed at round %zu (%zu nodes x %zu params, %zu"
                " bytes)\n",
                victim.rounds_executed(), victim.num_nodes(),
                victim.parameter_plane().dim(),
                static_cast<std::size_t>(
                    std::filesystem::file_size(image)));
  }  // crash: the victim engine is gone

  // A fresh engine restores the image and finishes the run.
  const ckpt::FleetImageInfo info = ckpt::probe_fleet_image(image);
  std::printf("image probe: round %llu, %llu x %llu\n",
              static_cast<unsigned long long>(info.round),
              static_cast<unsigned long long>(info.nodes),
              static_cast<unsigned long long>(info.dim));
  sim::RoundEngine resumed(model, dataset, mixing, scheduler,
                           make_accountant(), engine_config);
  ckpt::restore_fleet_image(resumed, image);
  resumed.run_rounds(24 - resumed.rounds_executed());

  const auto ref_view = reference.node_parameters();
  const auto res_view = resumed.node_parameters();
  const bool identical =
      std::memcmp(ref_view.flat().data(), res_view.flat().data(),
                  ref_view.rows * ref_view.dim * sizeof(float)) == 0;
  std::printf("resumed fleet vs uninterrupted fleet: %s\n",
              identical ? "BIT-IDENTICAL" : "MISMATCH");

  // --- Part 2: sweep-level crash resume --------------------------------
  std::printf("\n=== sweep-level crash resume ===\n");
  sweep::SweepGrid grid;
  grid.name = "interrupted";
  grid.data.nodes = 12;
  grid.data.samples_per_node = 20;
  grid.data.test_pool = 120;
  grid.base.total_rounds = 24;
  grid.base.local_steps = 2;
  grid.base.batch_size = 8;
  grid.base.eval_every = 24;
  grid.base.eval_max_samples = 60;
  grid.base.degree = 4;
  grid.gamma_trains = {1, 2, 3};
  grid.seeds = {1, 2};

  const std::string ckpt_dir = workdir + "/sweep";
  sweep::SweepOptions options;
  options.threads = 2;
  options.checkpoint_dir = ckpt_dir;
  options.checkpoint_every = 8;  // in-flight images every 8 rounds
  const sweep::SweepReport first = sweep::SweepRunner(options).run(grid);
  const std::string first_csv = workdir + "/sweep_first.csv";
  first.write_csv(first_csv);
  std::printf("pass 1: %zu trials, %zu failed — results persisted to %s\n",
              first.trials.size(), first.failures, ckpt_dir.c_str());

  // Simulate a crash that happened before trial 4 finished: its result
  // file is gone, everything else survived.
  std::filesystem::remove(ckpt::trial_file_base(ckpt_dir, 4) + ".result");

  options.resume = true;
  const sweep::SweepReport second = sweep::SweepRunner(options).run(grid);
  const std::string second_csv = workdir + "/sweep_resumed.csv";
  second.write_csv(second_csv);
  std::printf("pass 2 (--resume): %zu of %zu trials loaded from "
              "checkpoint, %zu re-run\n",
              second.resumed_trials, second.trials.size(),
              second.trials.size() - second.resumed_trials);
  const bool csv_identical = read_file(first_csv) == read_file(second_csv);
  std::printf("summary CSVs byte-identical: %s\n",
              csv_identical ? "YES" : "NO");

  std::printf("\nEverything a killed run needs lives in %s —\n"
              "rerun any sweep with --checkpoint-dir/--resume to get the\n"
              "same behavior from the command line.\n",
              workdir.c_str());
  return identical && csv_identical ? 0 : 1;
}
