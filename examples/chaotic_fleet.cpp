// Chaotic fleet: the fault-injection layer end to end. Real fleets lose
// messages, flip bits on the wire, crash-restart, and tear checkpoint
// writes; this example turns all of that on at once and shows the two
// guarantees that make the chaos usable:
//
//   1. graceful degradation — a degradation ladder from a lossless run
//      to drop+corrupt+dup+crash chaos. Lost and corrupt neighbor mass
//      reverts to self through the masked-aggregation difference form,
//      so accuracy bends instead of breaking, and the delivery/outage
//      telemetry quantifies exactly how much of the wire survived;
//
//   2. multi-generation checkpoint fallback — a checkpointed run under
//      an IO-fault plan retains its last three fleet images. Corrupt
//      the newest one (as a torn write would) and --resume falls back
//      to the previous generation, recomputing at most
//      checkpoint_every rounds, with results bit-identical to the
//      original run.
//
// Every fault is a pure function of (seed, round, src, dst) — rerun
// this example and the same messages are lost at the same rounds.
//
// Build & run:   ./build/example_chaotic_fleet
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  data::CifarSynConfig data_config;
  data_config.nodes = 12;
  data_config.samples_per_node = 30;
  data_config.test_pool = 240;
  data_config.seed = 7;
  const data::FederatedData dataset = data::make_cifar_synthetic(data_config);
  nn::Sequential model = nn::make_compact_cifar_model(data_config.feature_dim);
  util::Rng rng(7);
  nn::initialize(model, rng);

  sim::RunOptions base;
  base.algorithm = sim::Algorithm::kSkipTrain;
  base.gamma_train = 2;
  base.gamma_sync = 2;
  base.total_rounds = 18;
  base.degree = 4;
  base.local_steps = 3;
  base.batch_size = 8;
  base.eval_every = 6;
  base.eval_max_samples = 120;
  base.seed = 7;

  // --- Part 1: degradation ladder --------------------------------------
  std::printf("=== graceful degradation under lossy links ===\n");
  const std::vector<std::string> ladder = {
      "none",
      "drop:0.1",
      "drop:0.3",
      "drop:0.1,corrupt:0.05,dup:0.05,crash:0.02,crash-rounds:2",
  };
  util::TablePrinter table({"faults", "acc%", "delivery%", "dropped",
                            "corrupt", "dup", "down rounds"});
  for (const std::string& spec : ladder) {
    sim::RunOptions options = base;
    options.faults = spec;
    const sim::ExperimentResult result =
        sim::run_experiment(dataset, model, options);
    table.add_row({spec,
                   util::fixed(100.0 * result.final_mean_accuracy, 2),
                   util::fixed(100.0 * result.delivery_rate, 1),
                   std::to_string(result.dropped_messages),
                   std::to_string(result.corrupt_messages),
                   std::to_string(result.duplicated_messages),
                   std::to_string(result.crash_down_rounds)});
  }
  table.print();
  std::printf(
      "\nlost/corrupt neighbor mass reverts to self (masked aggregation), "
      "so heavier loss slows consensus without crashing the run.\n");

  // --- Part 2: multi-generation checkpoint fallback ---------------------
  std::printf("\n=== checkpoint-generation fallback ===\n");
  const std::string workdir =
      (std::filesystem::temp_directory_path() / "chaotic_fleet").string();
  std::filesystem::remove_all(workdir);
  std::filesystem::create_directories(workdir);
  const std::string image = workdir + "/fleet.sktf";

  sim::RunOptions chaos = base;
  // io:0.3 makes roughly a third of write attempts fail; the atomic
  // writer retries with deterministic virtual-time backoff, so every
  // image still lands on disk.
  chaos.faults = "drop:0.1,io:0.3";
  chaos.checkpoint_path = image;
  chaos.checkpoint_every = 6;
  chaos.keep_generations = 3;
  const sim::ExperimentResult reference =
      sim::run_experiment(dataset, model, chaos);
  std::printf("reference run done; retained generations:\n");
  for (const std::string& path :
       ckpt::generation_paths(image, chaos.keep_generations)) {
    if (!std::filesystem::exists(path)) continue;
    const ckpt::FleetImageInfo info = ckpt::probe_fleet_image(path);
    std::printf("  %s  (round %llu)\n", path.c_str(),
                static_cast<unsigned long long>(info.round));
  }

  // A torn write corrupts the newest image: flip one byte mid-file.
  {
    std::fstream file(image,
                      std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(0, std::ios::end);
    const std::streamoff size = file.tellg();
    file.seekp(size / 2);
    char byte = 0;
    file.seekg(size / 2);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(size / 2);
    file.write(&byte, 1);
  }
  std::printf("corrupted newest image %s; resuming...\n", image.c_str());

  sim::RunOptions resumed_options = chaos;
  resumed_options.resume = true;
  const sim::ExperimentResult resumed =
      sim::run_experiment(dataset, model, resumed_options);

  const bool identical =
      resumed.final_mean_accuracy == reference.final_mean_accuracy &&
      resumed.final_std_accuracy == reference.final_std_accuracy &&
      resumed.dropped_messages == reference.dropped_messages &&
      resumed.recorder.records().size() == reference.recorder.records().size();
  std::printf(
      "resumed from the previous generation: final acc %.4f%% vs %.4f%% "
      "reference — %s\n",
      100.0 * resumed.final_mean_accuracy,
      100.0 * reference.final_mean_accuracy,
      identical ? "BIT-IDENTICAL" : "MISMATCH");
  std::printf(
      "\none corrupt image cost at most checkpoint_every rounds of "
      "recomputation; the same fallback runs in every sweep via "
      "--keep-generations.\n");
  return identical ? 0 : 1;
}
