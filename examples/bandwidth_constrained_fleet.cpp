// Bandwidth-constrained fleet: a deployment whose radio link affords each
// node only a fixed byte budget per round — think LoRa-class sensor meshes
// or fleets on metered cellular plans. The dense float32 exchange does not
// fit, so the exchange path must shrink: this example composes the int8
// wire codec (quant/codec.hpp) with the masked sparse exchange, picking
// the largest coordinate count k whose quantized wire volume fits the
// budget, and compares it against fp32 variants under the same cap.
//
// The point: for a fixed byte budget, cheaper bytes buy MORE coordinates —
// int8 ships ~3.5x the coordinates of fp32 per round, which mixes the
// fleet faster and shows up directly in accuracy.
#include <algorithm>
#include <cstdio>

#include "core/skiptrain.hpp"

int main() {
  using namespace skiptrain;

  constexpr std::size_t kNodes = 32;
  constexpr std::size_t kRounds = 160;
  constexpr std::size_t kDegree = 4;
  // Per-round, per-neighbor wire budget. The compact CIFAR model has 2752
  // parameters = 11 KB dense fp32, so the dense exchange is ~14x over.
  constexpr std::size_t kBudgetBytes = 800;

  data::CifarSynConfig data_config;
  data_config.nodes = kNodes;
  data_config.samples_per_node = 60;
  data_config.seed = 21;
  const data::FederatedData dataset = data::make_cifar_synthetic(data_config);

  nn::Sequential model = nn::make_compact_cifar_model(data_config.feature_dim);
  util::Rng rng(21);
  nn::initialize(model, rng);
  const std::size_t dim = model.num_parameters();

  util::Rng topo_rng(3);
  const graph::Topology mesh =
      graph::make_random_regular(kNodes, kDegree, topo_rng);
  const graph::MixingMatrix mixing =
      graph::MixingMatrix::metropolis_hastings(mesh);
  const core::SkipTrainScheduler scheduler(3, 3);
  const energy::Fleet fleet =
      energy::Fleet::even(kNodes, energy::Workload::kCifar10);
  const auto& spec = energy::workload_spec(energy::Workload::kCifar10);
  const metrics::Evaluator evaluator(&dataset.test, 600);

  std::printf("link budget: %zu bytes/round/neighbor; dense fp32 needs %zu\n\n",
              kBudgetBytes, dim * 4);

  // Exact wire bytes of a k-value masked message under `codec` — encode a
  // k-float probe and ask the payload, so block-header rounding (int8
  // ships an 8-byte header per 64-value block, partial blocks included)
  // is accounted for instead of the amortized 1.125 B/param estimate.
  const auto exact_bytes = [](quant::Codec codec, std::size_t k) {
    const std::vector<float> probe(k, 1.0f);
    quant::QuantizedRow wire;
    quant::make_codec(codec)->encode(probe, wire);
    return wire.wire_bytes();
  };

  // The largest masked-exchange k whose quantized values fit the budget
  // (the shared mask derives from the seed, so indices cost nothing).
  const auto fitted_k = [&](quant::Codec codec) {
    std::size_t k = std::min(
        dim, static_cast<std::size_t>(
                 static_cast<double>(kBudgetBytes) /
                 quant::wire_bytes_per_param(codec)));
    while (k > 0 && exact_bytes(codec, k) > kBudgetBytes) --k;
    return k;
  };

  struct Variant {
    const char* label;
    quant::Codec codec;
    std::size_t sparse_k;
  };
  const Variant variants[] = {
      {"dense fp32 (over budget)", quant::Codec::kIdentity, 0},
      {"fp32 mask", quant::Codec::kIdentity, fitted_k(quant::Codec::kIdentity)},
      {"fp16 mask", quant::Codec::kFp16, fitted_k(quant::Codec::kFp16)},
      {"int8 mask", quant::Codec::kInt8Dithered,
       fitted_k(quant::Codec::kInt8Dithered)},
  };

  util::TablePrinter table({"exchange", "k coords", "bytes/round", "within",
                            "final acc%", "comm energy Wh"});
  for (const Variant& variant : variants) {
    std::vector<std::size_t> degrees(kNodes, kDegree);
    energy::EnergyAccountant accountant(
        fleet, quant::comm_model_for(variant.codec), spec.model_params,
        std::move(degrees));
    sim::EngineConfig config;
    config.local_steps = 5;
    config.batch_size = 16;
    config.seed = 21;
    config.sparse_exchange_k = variant.sparse_k;
    config.exchange_codec = variant.codec;
    sim::RoundEngine engine(model, dataset, mixing, scheduler,
                            std::move(accountant), config);
    engine.run_rounds(kRounds);

    std::vector<nn::Sequential*> models(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) models[i] = &engine.model(i);
    const double acc = evaluator.evaluate_fleet(models).accuracy.mean;

    const std::size_t k = variant.sparse_k == 0 ? dim : variant.sparse_k;
    const std::size_t wire_bytes = exact_bytes(variant.codec, k);
    table.add_row({variant.label, std::to_string(k),
                   std::to_string(wire_bytes),
                   wire_bytes <= kBudgetBytes ? "yes" : "NO",
                   util::fixed(100.0 * acc, 2),
                   util::fixed(engine.accountant().total_comm_wh(), 4)});
  }
  table.print();

  std::printf(
      "\nreading: at a fixed byte budget the codec decides how many "
      "coordinates mix per round — int8 affords ~3.5x more than fp32, so "
      "the constrained fleet converges closer to the unconstrained dense "
      "run while staying inside the link budget.\n");
  return 0;
}
