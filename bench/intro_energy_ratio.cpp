// Regenerates the §1 motivating measurement: on CIFAR-10 with 256 nodes
// and 1000 rounds of D-PSGD, training consumes 1.51 kWh while sharing and
// aggregating consumes ~7 Wh — training is >200x costlier. This quantity
// is closed-form under the trace + communication models.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("intro_energy_ratio",
                       "§1: training vs communication energy (200x claim)");
  args.add_int("degree", 6, "topology degree");
  args.parse(argc, argv);

  bench::print_header("Intro claim: training is >200x costlier than sharing",
                      "256 nodes, 1000 rounds, CIFAR-10 model (89834 params)");

  const auto degree = static_cast<std::size_t>(args.get_int("degree"));
  const auto& spec = energy::workload_spec(energy::Workload::kCifar10);
  const energy::CommModel comm;

  const double train_wh =
      bench::paper_scale_energy_wh(energy::Workload::kCifar10, 1000);
  const double comm_wh =
      comm.exchange_energy_mwh(spec.model_params, degree) * 256.0 * 1000.0 /
      1000.0;

  util::TablePrinter table({"quantity", "ours", "paper"});
  table.add_row({"training energy", util::fixed(train_wh / 1000.0, 3) + " kWh",
                 "1.51 kWh"});
  table.add_row({"sharing+aggregation energy", util::fixed(comm_wh, 2) + " Wh",
                 "7 Wh"});
  table.add_row({"ratio", util::fixed(train_wh / comm_wh, 0) + "x", ">200x"});
  table.print();

  std::printf("\nper node-round: training %.3f mWh vs one exchange %.5f mWh "
              "(model %.2f MB to %zu neighbors)\n",
              energy::mean_energy_per_round_mwh(energy::Workload::kCifar10),
              comm.exchange_energy_mwh(spec.model_params, degree),
              static_cast<double>(spec.model_params) * 4.0 / 1e6, degree);
  std::printf("\nThis asymmetry is SkipTrain's enabling observation: "
              "synchronization rounds are energetically almost free.\n");
  return 0;
}
