// Regenerates Figure 2: the round-pattern schematic of D-PSGD, SkipTrain
// and SkipTrain-constrained for a handful of nodes, by unrolling the
// schedulers. 'T' marks a round where the node trains (+shares), 's' a
// round where it only shares/aggregates.
#include "common.hpp"

namespace {

void print_pattern(const char* title,
                   const skiptrain::core::RoundScheduler& scheduler,
                   std::size_t nodes, std::size_t rounds,
                   const std::vector<std::size_t>& budgets) {
  std::printf("\n%s\n  round:  ", title);
  for (std::size_t t = 1; t <= rounds; ++t) {
    std::printf("%zu", t % 10);
  }
  std::printf("\n");
  for (std::size_t node = 0; node < nodes; ++node) {
    std::printf("  node %zu: ", node + 1);
    std::size_t budget = budgets.empty() ? rounds : budgets[node];
    for (std::size_t t = 1; t <= rounds; ++t) {
      const bool trains = scheduler.should_train(t, node, budget);
      if (trains && budget > 0) --budget;
      std::printf("%c", trains ? 'T' : 's');
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig2_schedule",
                       "Figure 2: round patterns of the three algorithms");
  args.add_int("rounds", 24, "rounds to unroll");
  args.add_int("gamma-train", 2, "Γtrain");
  args.add_int("gamma-sync", 2, "Γsync");
  args.parse(argc, argv);

  const auto rounds = static_cast<std::size_t>(args.get_int("rounds"));
  const auto gt = static_cast<std::size_t>(args.get_int("gamma-train"));
  const auto gs = static_cast<std::size_t>(args.get_int("gamma-sync"));

  bench::print_header("Figure 2: operations per round, 4 nodes",
                      "T = train+share+aggregate, s = share+aggregate");

  const core::DpsgdScheduler dpsgd;
  print_pattern("(a) D-PSGD", dpsgd, 4, rounds, {});

  const core::SkipTrainScheduler skiptrain(gt, gs);
  print_pattern(("(b) SkipTrain Γtrain=" + std::to_string(gt) +
                 " Γsync=" + std::to_string(gs))
                    .c_str(),
                skiptrain, 4, rounds, {});

  // Heterogeneous budgets make the per-node probabilistic skipping visible.
  const std::vector<std::size_t> budgets{2, 4, 6, 12};
  const core::SkipTrainConstrainedScheduler constrained(gt, gs, rounds,
                                                        budgets, 7);
  print_pattern("(c) SkipTrain-constrained (budgets 2/4/6/12)", constrained, 4,
                rounds, budgets);

  std::printf("\ntraining-round fraction: D-PSGD %.2f, SkipTrain %.2f "
              "(Eq. 4 predicts %.2f)\n",
              core::training_round_fraction(dpsgd, rounds),
              core::training_round_fraction(skiptrain, rounds),
              static_cast<double>(gt) / static_cast<double>(gt + gs));
  return 0;
}
