// Regenerates Figure 1: D-PSGD (mean accuracy across nodes) vs D-PSGD with
// a per-round all-reduce (accuracy of the global average model) on the
// 2-shard CIFAR workload over a 6-regular topology. The paper reports an
// ~10% gap at 256 nodes; the scaled run must reproduce the ordering and a
// clearly positive gap.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig1_allreduce",
                       "Figure 1: D-PSGD vs all-reduce upper bound");
  bench::add_common_flags(args);
  args.add_int("degree", 6, "topology degree");
  args.parse(argc, argv);

  bench::print_header("Figure 1: D-PSGD vs all-reduce (CIFAR-10, d-regular)",
                      "test accuracy vs round; all-reduce >> D-PSGD");

  const bench::Workbench bench_data = bench::make_cifar_bench(args);
  sim::RunOptions options = bench::options_from_flags(args, bench_data);
  options.degree = static_cast<std::size_t>(args.get_int("degree"));
  options.eval_every = std::max<std::size_t>(options.total_rounds / 16, 1);

  options.algorithm = sim::Algorithm::kDpsgd;
  const auto dpsgd = sim::run_experiment(bench_data.data, bench_data.model,
                                         options);
  options.algorithm = sim::Algorithm::kDpsgdAllReduce;
  const auto allreduce = sim::run_experiment(bench_data.data,
                                             bench_data.model, options);

  util::TablePrinter table(
      {"round", "D-PSGD acc%", "All-reduce acc%", "gap%"});
  const auto& d_records = dpsgd.recorder.records();
  const auto& a_records = allreduce.recorder.records();
  for (std::size_t i = 0; i < std::min(d_records.size(), a_records.size());
       ++i) {
    const double d = 100.0 * d_records[i].mean_accuracy;
    const double a = 100.0 * a_records[i].mean_accuracy;
    table.add_row({std::to_string(d_records[i].round), util::fixed(d, 2),
                   util::fixed(a, 2), util::fixed(a - d, 2)});
  }
  table.print();

  dpsgd.recorder.write_csv("fig1_dpsgd.csv");
  allreduce.recorder.write_csv("fig1_allreduce.csv");

  const double gap =
      100.0 * (allreduce.final_mean_accuracy - dpsgd.final_mean_accuracy);
  std::printf("\nfinal: D-PSGD %.2f%%  all-reduce %.2f%%  gap %.2f%% "
              "(paper: ~10%% at 256 nodes/1000 rounds)\n",
              100.0 * dpsgd.final_mean_accuracy,
              100.0 * allreduce.final_mean_accuracy, gap);
  std::printf("series written to fig1_dpsgd.csv / fig1_allreduce.csv\n");
  return 0;
}
