// Google-benchmark micro benches for the substrate hot paths: GEMM, the
// decentralized aggregation step, a full engine round, topology/mixing
// construction, and evaluation. These quantify what a simulated round
// costs and where the wall-clock goes.
#include <benchmark/benchmark.h>

#include "core/skiptrain.hpp"

namespace {

using namespace skiptrain;

void BM_GemmNT(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 64, n = 32;
  std::vector<float> a(m * k), b(n * k), c(m * n);
  util::Rng rng(1);
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    tensor::gemm_nt(m, k, n, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * k * n));
}
BENCHMARK(BM_GemmNT)->Arg(16)->Arg(64)->Arg(256);

void BM_AggregationStep(benchmark::State& state) {
  // One node's Metropolis-Hastings aggregation over `degree` neighbors
  // with a compact-model-sized parameter vector.
  const auto degree = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 2752;  // compact CIFAR MLP parameter count
  std::vector<std::vector<float>> neighbors(degree + 1,
                                            std::vector<float>(dim));
  util::Rng rng(2);
  for (auto& v : neighbors) rng.fill_normal(v, 0.0f, 1.0f);
  std::vector<float> out(dim);
  const float w = 1.0f / static_cast<float>(degree + 1);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    for (const auto& neighbor : neighbors) {
      tensor::axpy(w, neighbor, out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * (degree + 1)));
}
BENCHMARK(BM_AggregationStep)->Arg(6)->Arg(8)->Arg(10);

void BM_LocalSgdStep(benchmark::State& state) {
  data::CifarSynConfig config;
  config.nodes = 1;
  config.samples_per_node = 128;
  config.test_pool = 10;
  auto dataset = data::make_cifar_synthetic(config);
  auto model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(3);
  nn::initialize(model, rng);
  sim::Node node(0, model, dataset.node_view(0), nn::SgdOptions{0.1f}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.train_local(1, 16));
  }
}
BENCHMARK(BM_LocalSgdStep);

void BM_FullRound(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  data::CifarSynConfig config;
  config.nodes = nodes;
  config.samples_per_node = 40;
  config.test_pool = 10;
  auto dataset = data::make_cifar_synthetic(config);
  auto model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(4);
  nn::initialize(model, rng);

  util::Rng topo_rng(5);
  const auto topology = graph::make_random_regular(nodes, 6, topo_rng);
  const auto mixing = graph::MixingMatrix::metropolis_hastings(topology);
  const core::DpsgdScheduler scheduler;
  const auto fleet = energy::Fleet::even(nodes, energy::Workload::kCifar10);
  std::vector<std::size_t> degrees(nodes, 6);
  energy::EnergyAccountant accountant(fleet, energy::CommModel{}, 89834,
                                      std::move(degrees));
  sim::EngineConfig engine_config;
  engine_config.local_steps = 5;
  engine_config.batch_size = 16;
  sim::RoundEngine engine(model, dataset, mixing, scheduler,
                          std::move(accountant), engine_config);
  for (auto _ : state) {
    engine.run_round();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_FullRound)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_TopologyAndMixing(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  for (auto _ : state) {
    const auto topology = graph::make_random_regular(nodes, 6, rng);
    const auto mixing = graph::MixingMatrix::metropolis_hastings(topology);
    benchmark::DoNotOptimize(mixing.num_nodes());
  }
}
BENCHMARK(BM_TopologyAndMixing)->Arg(64)->Arg(256);

void BM_SpectralGap(benchmark::State& state) {
  util::Rng rng(7);
  const auto topology = graph::make_random_regular(
      static_cast<std::size_t>(state.range(0)), 6, rng);
  const auto mixing = graph::MixingMatrix::metropolis_hastings(topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixing.spectral_gap(100));
  }
}
BENCHMARK(BM_SpectralGap)->Arg(64)->Arg(256);

void BM_Evaluation(benchmark::State& state) {
  data::CifarSynConfig config;
  config.nodes = 2;
  config.samples_per_node = 40;
  config.test_pool = 1200;
  auto dataset = data::make_cifar_synthetic(config);
  auto model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(8);
  nn::initialize(model, rng);
  const metrics::Evaluator evaluator(&dataset.test, 600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(model).accuracy);
  }
}
BENCHMARK(BM_Evaluation);

void BM_ShardPartition(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> labels(nodes * 200);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int32_t>(i % 10);
  }
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::shard_partition(labels, nodes, 2, rng));
  }
}
BENCHMARK(BM_ShardPartition)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
