// Google-benchmark micro benches for the substrate hot paths: GEMM, the
// decentralized aggregation step, a full engine round, topology/mixing
// construction, and evaluation. These quantify what a simulated round
// costs and where the wall-clock goes.
//
// Results are written to BENCH_aggregate.json (override with
// --benchmark_out=...) so CI records the gossip-kernel perf trajectory
// per PR. `--quick` runs the aggregate-phase, large-fleet sharded-gossip,
// exchange-codec, fleet-checkpoint, scenario/harvest, kernel-layer GEMM,
// and Conv2d grids at a short min-time — the mode the CI Release job
// uses; the GEMM/Conv/Gossip rows feed the bench regression gate
// (tools/check_bench_regression.py).
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/skiptrain.hpp"
#include "graph/sparse.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "plane/plane.hpp"
#include "plane/sharded.hpp"

namespace {

using namespace skiptrain;

void BM_GemmNT(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const std::size_t k = 64, n = 32;
  std::vector<float> a(m * k), b(n * k), c(m * n);
  util::Rng rng(1);
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    tensor::gemm_nt(m, k, n, a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * k * n));
}
BENCHMARK(BM_GemmNT)->Arg(16)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Kernel-layer GEMM grid: the blocked/packed kernels vs the retained seed
// loops (gemm_*_ref), at the shapes the model-zoo layers actually run
// (args are {m, k, n}). Runs under --quick; the CI bench gate compares
// each blocked row against its Ref twin from BENCH_aggregate.json.
//
//   nt {16, 3136, 512}: femnist Linear(3136->512) forward, batch 16
//   nt {16, 64, 32}   : compact CIFAR MLP forward, batch 16
//   nn {16, 512, 3136}: femnist Linear backward dX
//   nn {32, 800, 256} : GN-LeNet conv2 forward as im2col GEMM
//   tn {512, 16, 3136}: femnist Linear backward dW
//   tn {32, 256, 800} : GN-LeNet conv2 backward dW as im2col GEMM
// ---------------------------------------------------------------------------

using GemmFn = void (*)(std::size_t, std::size_t, std::size_t,
                        std::span<const float>, std::span<const float>,
                        std::span<float>, float);

template <GemmFn kGemm>
void BM_GemmShape(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  std::vector<float> a(m * k), b(k * n);  // same extent for every layout
  std::vector<float> c(m * n);
  util::Rng rng(12);
  rng.fill_normal(a, 0.0f, 1.0f);
  rng.fill_normal(b, 0.0f, 1.0f);
  for (auto _ : state) {
    kGemm(m, k, n, a, b, c, 0.0f);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * k * n));
}

void GemmNTShapes(benchmark::internal::Benchmark* bench) {
  bench->Args({16, 3136, 512})->Args({16, 64, 32});
}
void GemmNNShapes(benchmark::internal::Benchmark* bench) {
  bench->Args({16, 512, 3136})->Args({32, 800, 256});
}
void GemmTNShapes(benchmark::internal::Benchmark* bench) {
  bench->Args({512, 16, 3136})->Args({32, 256, 800});
}

BENCHMARK(BM_GemmShape<tensor::gemm_nt>)
    ->Name("BM_GemmNTBlocked")
    ->Apply(GemmNTShapes);
BENCHMARK(BM_GemmShape<tensor::gemm_nt_ref>)
    ->Name("BM_GemmNTRef")
    ->Apply(GemmNTShapes);
BENCHMARK(BM_GemmShape<tensor::gemm_nn>)
    ->Name("BM_GemmNNBlocked")
    ->Apply(GemmNNShapes);
BENCHMARK(BM_GemmShape<tensor::gemm_nn_ref>)
    ->Name("BM_GemmNNRef")
    ->Apply(GemmNNShapes);
BENCHMARK(BM_GemmShape<tensor::gemm_tn>)
    ->Name("BM_GemmTNBlocked")
    ->Apply(GemmTNShapes);
BENCHMARK(BM_GemmShape<tensor::gemm_tn_ref>)
    ->Name("BM_GemmTNRef")
    ->Apply(GemmTNShapes);

// ---------------------------------------------------------------------------
// Conv2d forward/backward: im2col + GEMM vs the retained direct loop, on
// GN-LeNet conv2 (32->32, 5x5, pad 2, 16x16 input; arg is the batch).
// Runs under --quick for the CI bench gate.
// ---------------------------------------------------------------------------

struct ConvBench {
  nn::Conv2d conv{32, 32, 5, 1, 2};
  tensor::Tensor input;
  tensor::Tensor output;
  tensor::Tensor grad_out;
  tensor::Tensor grad_in;

  explicit ConvBench(std::size_t batch, nn::Conv2dAlgo algo)
      : input({batch, 32, 16, 16}) {
    conv.set_algorithm(algo);
    util::Rng rng(13);
    rng.fill_normal(conv.parameters(), 0.0f, 0.5f);
    rng.fill_normal(input.data(), 0.0f, 1.0f);
    const auto out_shape = conv.output_shape(input.shape());
    output = tensor::Tensor(out_shape);
    grad_out = tensor::Tensor(out_shape);
    grad_in = tensor::Tensor(input.shape());
    rng.fill_normal(grad_out.data(), 0.0f, 1.0f);
    conv.forward(input, output);
  }
};

void BM_Conv2dFwd(benchmark::State& state) {
  ConvBench bench(static_cast<std::size_t>(state.range(0)),
                  static_cast<nn::Conv2dAlgo>(state.range(1)));
  for (auto _ : state) {
    bench.conv.forward(bench.input, bench.output);
    benchmark::DoNotOptimize(bench.output.raw());
  }
  state.SetLabel(state.range(1) == 1 ? "direct" : "im2col");
}

void BM_Conv2dBwd(benchmark::State& state) {
  ConvBench bench(static_cast<std::size_t>(state.range(0)),
                  static_cast<nn::Conv2dAlgo>(state.range(1)));
  for (auto _ : state) {
    bench.conv.zero_grad();
    bench.conv.backward(bench.input, bench.grad_out, bench.grad_in);
    benchmark::DoNotOptimize(bench.grad_in.raw());
  }
  state.SetLabel(state.range(1) == 1 ? "direct" : "im2col");
}

void ConvAlgoGrid(benchmark::internal::Benchmark* bench) {
  bench->Args({8, static_cast<std::int64_t>(nn::Conv2dAlgo::kIm2col)})
      ->Args({8, static_cast<std::int64_t>(nn::Conv2dAlgo::kDirect)});
}
BENCHMARK(BM_Conv2dFwd)->Apply(ConvAlgoGrid)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Conv2dBwd)->Apply(ConvAlgoGrid)->Unit(benchmark::kMillisecond);

void BM_AggregationStep(benchmark::State& state) {
  // One node's Metropolis-Hastings aggregation over `degree` neighbors
  // with a compact-model-sized parameter vector.
  const auto degree = static_cast<std::size_t>(state.range(0));
  const std::size_t dim = 2752;  // compact CIFAR MLP parameter count
  std::vector<std::vector<float>> neighbors(degree + 1,
                                            std::vector<float>(dim));
  util::Rng rng(2);
  for (auto& v : neighbors) rng.fill_normal(v, 0.0f, 1.0f);
  std::vector<float> out(dim);
  const float w = 1.0f / static_cast<float>(degree + 1);
  for (auto _ : state) {
    std::fill(out.begin(), out.end(), 0.0f);
    for (const auto& neighbor : neighbors) {
      tensor::axpy(w, neighbor, out);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * (degree + 1)));
}
BENCHMARK(BM_AggregationStep)->Arg(6)->Arg(8)->Arg(10);

// ---------------------------------------------------------------------------
// Aggregate phase: the seed engine's scattered row loop (including its
// get_parameters/set_parameters copies) vs the blocked plane kernel the
// engine now runs. Grid: fleet size x parameter dimension.
// ---------------------------------------------------------------------------

graph::MixingMatrix aggregate_mixing(std::size_t nodes) {
  util::Rng rng(41);
  const auto topology = graph::make_random_regular(nodes, 6, rng);
  return graph::MixingMatrix::metropolis_hastings(topology);
}

void BM_AggregateSeedRowLoop(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto mixing = aggregate_mixing(nodes);

  // Pre-refactor storage model: layer-owned vectors (modelled as one
  // owned vector per node) plus the two per-round snapshot copies.
  std::vector<std::vector<float>> model(nodes, std::vector<float>(dim));
  std::vector<std::vector<float>> half(nodes, std::vector<float>(dim));
  std::vector<std::vector<float>> current(nodes, std::vector<float>(dim));
  util::Rng rng(42);
  for (auto& row : model) rng.fill_normal(row, 0.0f, 1.0f);

  for (auto _ : state) {
    util::parallel_for(0, nodes, [&](std::size_t i) {
      // get_parameters: model -> half snapshot.
      std::copy(model[i].begin(), model[i].end(), half[i].begin());
    });
    util::parallel_for(0, nodes, [&](std::size_t i) {
      auto& out = current[i];
      const auto& mine = half[i];
      const float self_w = mixing.self_weight(i);
      for (std::size_t k = 0; k < out.size(); ++k) out[k] = self_w * mine[k];
      for (const auto& entry : mixing.neighbor_weights(i)) {
        const auto& theirs = half[entry.neighbor];
        const float w = entry.weight;
        for (std::size_t k = 0; k < out.size(); ++k) out[k] += w * theirs[k];
      }
      // set_parameters: aggregated row -> model.
      std::copy(out.begin(), out.end(), model[i].begin());
    });
    benchmark::DoNotOptimize(model.front().data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(nodes * dim * sizeof(float)));
}
BENCHMARK(BM_AggregateSeedRowLoop)
    ->Args({16, 2752})
    ->Args({64, 2752})
    ->Args({16, 100000})
    ->Args({64, 100000})
    ->Unit(benchmark::kMillisecond);

void BM_AggregatePlaneBlocked(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto mixing = aggregate_mixing(nodes);

  plane::ParameterPlane fleet_plane(nodes, dim);
  util::Rng rng(42);
  for (std::size_t i = 0; i < nodes; ++i) {
    rng.fill_normal(fleet_plane.current().row(i), 0.0f, 1.0f);
  }
  for (auto _ : state) {
    // The engine's whole aggregate phase: blocked kernel + buffer flip
    // (model rows re-attach by pointer swap — nothing to copy).
    plane::apply_mixing(mixing, fleet_plane);
    benchmark::DoNotOptimize(fleet_plane.current().row(0).data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(nodes * dim * sizeof(float)));
}
BENCHMARK(BM_AggregatePlaneBlocked)
    ->Args({16, 2752})
    ->Args({64, 2752})
    ->Args({16, 100000})
    ->Args({64, 100000})
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Large-fleet sharded gossip: the row-sharded kernel on an implicit
// k-regular topology over a huge-page ShardedPlane. The headline row is
// n = 100k, dim = 1024 — a fleet whose dense adjacency (10^10 entries)
// could never be materialized; topology memory stays O(n·k) and the
// peak_rss_mb counter (getrusage max RSS) documents that the process
// footprint is the two plane buffers + O(n·k) mixing, nothing quadratic.
// Runs under --quick; the regression gate checks the rows exist and warns
// when peak RSS drifts.
// ---------------------------------------------------------------------------

void BM_GossipSharded(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const std::size_t k = 6;
  const graph::ImplicitKRegular topology(nodes, k, /*seed=*/91);
  const auto mixing = graph::SparseMixing::metropolis_hastings(topology);
  plane::ShardedPlane fleet_plane(nodes, dim);
  // Deterministic fill, touched in parallel: rng-normal would dominate
  // setup at 10^8 floats, and the values only need to be nonuniform.
  util::parallel_for(0, nodes, [&](std::size_t i) {
    auto row = fleet_plane.current_row(i);
    for (std::size_t j = 0; j < dim; ++j) {
      row[j] = 1e-3f * static_cast<float>((i * 131 + j * 7) % 997);
    }
  });
  for (auto _ : state) {
    plane::apply_mixing_sharded(mixing, fleet_plane);
    benchmark::DoNotOptimize(fleet_plane.current_row(0).data());
  }
  // Gossip streams (k + 1) row reads plus 1 row write per node.
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(nodes * dim * sizeof(float) * (k + 2)));
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  state.counters["peak_rss_mb"] = benchmark::Counter(
      static_cast<double>(usage.ru_maxrss) / 1024.0,
      benchmark::Counter::kAvgThreads);
}
BENCHMARK(BM_GossipSharded)
    ->Args({1000, 1024})
    ->Args({10000, 1024})
    ->Args({100000, 1024})
    ->UseRealTime()  // the kernel runs on pool workers, not this thread
    ->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Exchange-codec kernels: encode/decode throughput per codec at compact
// and large row sizes. Runs under --quick, so the codec grid lands in
// BENCH_aggregate.json and codec kernel regressions show in the CI
// artifact alongside the gossip-kernel trajectory.
// ---------------------------------------------------------------------------

void codec_bench_row(std::size_t dim, std::vector<float>& row) {
  row.resize(dim);
  util::Rng rng(10);
  rng.fill_normal(row, 0.0f, 1.0f);
}

void BM_CodecEncode(benchmark::State& state) {
  const auto kind = static_cast<quant::Codec>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto codec = quant::make_codec(kind, 42);
  codec->begin_round(1);
  std::vector<float> row;
  codec_bench_row(dim, row);
  quant::QuantizedRow wire;
  for (auto _ : state) {
    codec->encode(row, wire);
    benchmark::DoNotOptimize(wire.dim);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * sizeof(float)));
  state.SetLabel(quant::codec_token(kind));
}

void BM_CodecDecode(benchmark::State& state) {
  const auto kind = static_cast<quant::Codec>(state.range(0));
  const auto dim = static_cast<std::size_t>(state.range(1));
  const auto codec = quant::make_codec(kind, 42);
  codec->begin_round(1);
  std::vector<float> row;
  codec_bench_row(dim, row);
  quant::QuantizedRow wire;
  codec->encode(row, wire);
  std::vector<float> decoded(dim);
  for (auto _ : state) {
    codec->decode(wire, decoded);
    benchmark::DoNotOptimize(decoded.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * sizeof(float)));
  state.SetLabel(quant::codec_token(kind));
}

void RegisterCodecGrid(benchmark::internal::Benchmark* bench) {
  for (const quant::Codec codec : quant::all_codecs()) {
    for (const std::int64_t dim : {2752L, 100000L}) {
      bench->Args({static_cast<std::int64_t>(codec), dim});
    }
  }
}
BENCHMARK(BM_CodecEncode)->Apply(RegisterCodecGrid);
BENCHMARK(BM_CodecDecode)->Apply(RegisterCodecGrid);

// ---------------------------------------------------------------------------
// Fleet-image checkpoint write/restore throughput (ckpt/fleet_image): the
// plane blob dominates, so bytes/s ~ serialization of n x dim float32.
// Runs under --quick so the CI artifact tracks checkpoint-path
// regressions alongside the gossip and codec kernels.
// ---------------------------------------------------------------------------

struct CheckpointBench {
  data::FederatedData dataset;
  nn::Sequential model;
  graph::Topology topology;
  graph::MixingMatrix mixing;
  core::DpsgdScheduler scheduler;
  energy::Fleet fleet;
  std::unique_ptr<sim::RoundEngine> engine;
  std::string path;

  explicit CheckpointBench(std::size_t nodes)
      : fleet(energy::Fleet::even(nodes, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 8;
    config.test_pool = 10;
    dataset = data::make_cifar_synthetic(config);
    model = nn::make_compact_cifar_model(config.feature_dim);
    util::Rng rng(11);
    nn::initialize(model, rng);
    util::Rng topo_rng(12);
    topology = graph::make_random_regular(nodes, 6, topo_rng);
    mixing = graph::MixingMatrix::metropolis_hastings(topology);
    std::vector<std::size_t> degrees(nodes, 6);
    energy::EnergyAccountant accountant(fleet, energy::CommModel{}, 89834,
                                        std::move(degrees));
    sim::EngineConfig engine_config;
    engine_config.local_steps = 1;
    engine_config.batch_size = 4;
    engine = std::make_unique<sim::RoundEngine>(model, dataset, mixing,
                                                scheduler,
                                                std::move(accountant),
                                                engine_config);
    engine->run_round();
    path = (std::filesystem::temp_directory_path() /
            ("bench_ckpt_" + std::to_string(nodes) + ".sktf"))
               .string();
  }

  std::int64_t plane_bytes() const {
    return static_cast<std::int64_t>(engine->num_nodes() *
                                     engine->parameter_plane().dim() *
                                     sizeof(float));
  }
};

void BM_CheckpointWrite(benchmark::State& state) {
  CheckpointBench bench(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    ckpt::save_fleet_image(*bench.engine, bench.path);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bench.plane_bytes());
}
BENCHMARK(BM_CheckpointWrite)->Arg(16)->Arg(64)->Arg(256);

void BM_CheckpointRestore(benchmark::State& state) {
  CheckpointBench bench(static_cast<std::size_t>(state.range(0)));
  ckpt::save_fleet_image(*bench.engine, bench.path);
  for (auto _ : state) {
    ckpt::restore_fleet_image(*bench.engine, bench.path);
    benchmark::DoNotOptimize(bench.engine->rounds_executed());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          bench.plane_bytes());
}
BENCHMARK(BM_CheckpointRestore)->Arg(16)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Scenario-engine kernels (scenario/scenario.hpp): the per-round cost the
// harvest/churn layer adds to every simulated round. BM_HarvestSample is
// the pure counter-based solar draw (two stateless_uniform evaluations +
// a sine); BM_ScenarioRoundStep is the full synchronous begin_round
// (harvest + hysteresis for n nodes); BM_ScenarioTraceStep replays a CSV
// trace series instead of the synthetic sky. All run under --quick so CI
// catches a scenario layer that starts dominating round time.
// ---------------------------------------------------------------------------

scenario::FleetScenario make_scenario_bench(std::size_t nodes,
                                            scenario::HarvestKind kind) {
  scenario::ScenarioConfig config = scenario::make_config("solar");
  if (kind == scenario::HarvestKind::kTrace) {
    // A 48-sample, 4-series in-memory trace: long enough to defeat any
    // single-sample caching, small enough to stay cache-resident (the
    // realistic case — traces are tiny next to the plane).
    std::string csv = "time,node,harvest_mwh,available\n";
    for (int t = 0; t < 48; ++t) {
      for (int node = 0; node < 4; ++node) {
        csv += std::to_string(t) + "," + std::to_string(node) + "," +
               std::to_string(0.25 * ((t + node) % 7)) + "," +
               ((t + node) % 11 == 0 ? "0" : "1") + "\n";
      }
    }
    std::istringstream in(csv);
    config.harvest = scenario::HarvestKind::kTrace;
    config.trace = std::make_shared<const scenario::HarvestTrace>(
        scenario::HarvestTrace::parse_csv(in, "bench"));
  }
  return scenario::FleetScenario(config, nodes, /*seed=*/42,
                                 std::vector<double>(nodes, 25.0));
}

void BM_HarvestSample(benchmark::State& state) {
  const auto fleet =
      make_scenario_bench(64, scenario::HarvestKind::kSolar);
  std::size_t t = 0;
  for (auto _ : state) {
    ++t;
    benchmark::DoNotOptimize(fleet.harvest_sample_mwh(t % 64, t));
  }
}
BENCHMARK(BM_HarvestSample);

void BM_ScenarioRoundStep(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  auto fleet = make_scenario_bench(nodes, scenario::HarvestKind::kSolar);
  std::size_t t = 0;
  for (auto _ : state) {
    fleet.begin_round(++t);
    benchmark::DoNotOptimize(fleet.down_steps_total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_ScenarioRoundStep)->Arg(64)->Arg(256);

void BM_ScenarioTraceStep(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  auto fleet = make_scenario_bench(nodes, scenario::HarvestKind::kTrace);
  std::size_t t = 0;
  for (auto _ : state) {
    fleet.begin_round(++t);
    benchmark::DoNotOptimize(fleet.down_steps_total());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_ScenarioTraceStep)->Arg(64)->Arg(256);

// ---------------------------------------------------------------------------
// Fault-layer kernels (fault/frame.hpp, fault/fault.hpp): what the wire
// framing and a fully faulted gossip round cost. BM_CrcFrame measures
// encode_frame + verify_frame (the CRC32C slicing-by-4 path dominates at
// large dims); BM_FaultedGossipRound runs whole engine rounds under an
// active drop/corrupt/dup plan, so the framing, per-link stateless draws,
// and masked difference-form aggregation are all on the clock. Both run
// under --quick; the CI gate requires the rows so a fault-path regression
// cannot hide by vanishing.
// ---------------------------------------------------------------------------

void BM_CrcFrame(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const auto codec = quant::make_codec(quant::Codec::kIdentity, 42);
  codec->begin_round(1);
  std::vector<float> row;
  codec_bench_row(dim, row);
  quant::QuantizedRow wire;
  codec->encode(row, wire);
  std::vector<std::uint8_t> frame;
  for (auto _ : state) {
    fault::encode_frame(wire, frame);
    benchmark::DoNotOptimize(fault::verify_frame(frame));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frame.size()));
}
BENCHMARK(BM_CrcFrame)->Arg(2752)->Arg(100000);

void BM_FaultedGossipRound(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  const bool faulted = state.range(1) != 0;
  data::CifarSynConfig config;
  config.nodes = nodes;
  config.samples_per_node = 8;
  config.test_pool = 10;
  auto dataset = data::make_cifar_synthetic(config);
  auto model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(14);
  nn::initialize(model, rng);

  util::Rng topo_rng(15);
  const auto topology = graph::make_random_regular(nodes, 6, topo_rng);
  const auto mixing = graph::MixingMatrix::metropolis_hastings(topology);
  const core::DpsgdScheduler scheduler;
  const auto fleet = energy::Fleet::even(nodes, energy::Workload::kCifar10);
  std::vector<std::size_t> degrees(nodes, 6);
  energy::EnergyAccountant accountant(fleet, energy::CommModel{}, 89834,
                                      std::move(degrees));
  sim::EngineConfig engine_config;
  // One tiny local step: the gossip/fault path is what's on the clock.
  engine_config.local_steps = 1;
  engine_config.batch_size = 4;
  if (faulted) {
    engine_config.faults =
        fault::make_plan("drop:0.05,corrupt:0.01,dup:0.02");
  }
  sim::RoundEngine engine(model, dataset, mixing, scheduler,
                          std::move(accountant), engine_config);
  for (auto _ : state) {
    engine.run_round();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
  state.SetLabel(faulted ? "faulted" : "lossless");
}
BENCHMARK(BM_FaultedGossipRound)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Unit(benchmark::kMillisecond);

void BM_LocalSgdStep(benchmark::State& state) {
  data::CifarSynConfig config;
  config.nodes = 1;
  config.samples_per_node = 128;
  config.test_pool = 10;
  auto dataset = data::make_cifar_synthetic(config);
  auto model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(3);
  nn::initialize(model, rng);
  sim::Node node(0, model, dataset.node_view(0), nn::SgdOptions{0.1f}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(node.train_local(1, 16));
  }
}
BENCHMARK(BM_LocalSgdStep);

void BM_FullRound(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  data::CifarSynConfig config;
  config.nodes = nodes;
  config.samples_per_node = 40;
  config.test_pool = 10;
  auto dataset = data::make_cifar_synthetic(config);
  auto model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(4);
  nn::initialize(model, rng);

  util::Rng topo_rng(5);
  const auto topology = graph::make_random_regular(nodes, 6, topo_rng);
  const auto mixing = graph::MixingMatrix::metropolis_hastings(topology);
  const core::DpsgdScheduler scheduler;
  const auto fleet = energy::Fleet::even(nodes, energy::Workload::kCifar10);
  std::vector<std::size_t> degrees(nodes, 6);
  energy::EnergyAccountant accountant(fleet, energy::CommModel{}, 89834,
                                      std::move(degrees));
  sim::EngineConfig engine_config;
  engine_config.local_steps = 5;
  engine_config.batch_size = 16;
  sim::RoundEngine engine(model, dataset, mixing, scheduler,
                          std::move(accountant), engine_config);
  for (auto _ : state) {
    engine.run_round();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nodes));
}
BENCHMARK(BM_FullRound)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_TopologyAndMixing(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  for (auto _ : state) {
    const auto topology = graph::make_random_regular(nodes, 6, rng);
    const auto mixing = graph::MixingMatrix::metropolis_hastings(topology);
    benchmark::DoNotOptimize(mixing.num_nodes());
  }
}
BENCHMARK(BM_TopologyAndMixing)->Arg(64)->Arg(256);

void BM_SpectralGap(benchmark::State& state) {
  util::Rng rng(7);
  const auto topology = graph::make_random_regular(
      static_cast<std::size_t>(state.range(0)), 6, rng);
  const auto mixing = graph::MixingMatrix::metropolis_hastings(topology);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mixing.spectral_gap(100));
  }
}
BENCHMARK(BM_SpectralGap)->Arg(64)->Arg(256);

void BM_Evaluation(benchmark::State& state) {
  data::CifarSynConfig config;
  config.nodes = 2;
  config.samples_per_node = 40;
  config.test_pool = 1200;
  auto dataset = data::make_cifar_synthetic(config);
  auto model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(8);
  nn::initialize(model, rng);
  const metrics::Evaluator evaluator(&dataset.test, 600);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluator.evaluate(model).accuracy);
  }
}
BENCHMARK(BM_Evaluation);

void BM_ShardPartition(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  std::vector<std::int32_t> labels(nodes * 200);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    labels[i] = static_cast<std::int32_t>(i % 10);
  }
  util::Rng rng(9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(data::shard_partition(labels, nodes, 2, rng));
  }
}
BENCHMARK(BM_ShardPartition)->Arg(64)->Arg(256);

// --- telemetry overhead ----------------------------------------------------
// Cost of one Counter::add (Arg(1) = enabled, Arg(0) = disabled) and one
// OBS_SPAN with tracing inactive. These pin the "near-zero cost" claim:
// disabled is a relaxed flag load + branch, enabled adds one relaxed
// fetch_add on a thread-local shard. Run under --quick; the CI gate
// requires the rows so a hot-path regression cannot hide by vanishing.
void BM_ObsCounterOverhead(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  static const obs::Counter counter = obs::counter("bench.obs.counter");
  for (auto _ : state) {
    counter.add(1);
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_ObsCounterOverhead)->Arg(0)->Arg(1);

void BM_ObsSpanOverhead(benchmark::State& state) {
  const bool was_enabled = obs::enabled();
  obs::set_enabled(state.range(0) != 0);
  for (auto _ : state) {
    OBS_SPAN("bench.obs.span");
    benchmark::ClobberMemory();
  }
  obs::set_enabled(was_enabled);
}
BENCHMARK(BM_ObsSpanOverhead)->Arg(0)->Arg(1);

}  // namespace

// Custom main: `--quick` restricts the run to the aggregate-phase and
// codec grids at a short min-time (the per-PR CI mode), and results
// default to BENCH_aggregate.json so the perf trajectory is recorded even
// when no --benchmark_out is given.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  bool quick = false;
  for (auto it = args.begin(); it != args.end();) {
    if (*it == "--quick") {
      quick = true;
      it = args.erase(it);
    } else {
      ++it;
    }
  }
  if (quick) {
    args.insert(args.begin() + 1,
                "--benchmark_filter=BM_Aggregate|BM_Gossip|BM_Codec|BM_Checkpoint|BM_Harvest|BM_Scenario|BM_Gemm(NN|NT|TN)(Blocked|Ref)|BM_Conv2d|BM_Obs|BM_CrcFrame|BM_FaultedGossip");
    args.insert(args.begin() + 1, "--benchmark_min_time=0.05");
  }
  const bool has_out =
      std::any_of(args.begin(), args.end(), [](const std::string& arg) {
        return arg.rfind("--benchmark_out=", 0) == 0;
      });
  if (!has_out) {
    args.push_back("--benchmark_out=BENCH_aggregate.json");
    args.push_back("--benchmark_out_format=json");
  }

  std::vector<char*> argv2;
  argv2.reserve(args.size());
  for (auto& arg : args) argv2.push_back(arg.data());
  int argc2 = static_cast<int>(argv2.size());
  benchmark::Initialize(&argc2, argv2.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, argv2.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
