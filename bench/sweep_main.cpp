// Generic sweep driver: runs any declarative parameter grid — a named
// paper preset or a key=value config file — without writing a new binary.
//
//   sweep_main --preset fig3 --threads 4
//   sweep_main --config grids/gamma8.conf --csv out.csv
//   sweep_main --preset table3 --list        # show trials, don't run
//
// Exits non-zero when any trial failed; failures are printed per trial,
// never swallowed.
#include <cstdio>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/fault.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("sweep_main",
                       "run a declarative parameter sweep (preset or config "
                       "file) on the trial-parallel sweep runner");
  args.add_string("preset", "",
                  "paper preset: fig3 | fig5 | fig6 | table3 | quant | "
                  "smartphone | solar_sensor_fleet | churning_phone_fleet | "
                  "large_fleet | chaotic_fleet");
  args.add_string("config", "", "key=value grid config file");
  args.add_string("csv", "", "summary CSV path (default <name>_sweep.csv)");
  args.add_flag("list", "print the expanded trial list and exit");
  args.add_flag("verbose", "per-trial progress on stderr");
  // Preset knobs (ignored with --config); the shared flag set keeps the
  // defaults identical to the figure/table benches, and 0 nodes/rounds
  // means "the preset's default".
  bench::add_common_flags(args, /*default_nodes=*/0, /*default_rounds=*/0);
  bench::add_sweep_flags(args);
  args.add_string("dataset", "", "cifar | femnist | both (preset default)");
  args.add_int("gamma-max", 4, "fig3: sweep Γ in 1..gamma-max");
  args.add_string("faults", "",
                  "override the grid's fault-plan axis: ';'-separated "
                  "fault::make_plan specs, e.g. 'none;drop:0.05,crash:0.01'");
  args.parse(argc, argv);

  if (args.get_int("gamma-max") < 1) {
    std::fprintf(stderr, "sweep_main: --gamma-max must be >= 1\n");
    return 2;
  }
  const std::string& preset = args.get_string("preset");
  const std::string& config = args.get_string("config");
  if ((preset.empty()) == (config.empty())) {
    std::fprintf(stderr, "sweep_main: pass exactly one of --preset/--config\n\n%s",
                 args.usage().c_str());
    return 2;
  }

  sweep::SweepGrid grid;
  std::vector<sweep::TrialSpec> trials;
  try {
    if (!config.empty()) {
      grid = sweep::load_grid_file(config);
    } else {
      sweep::PresetParams params = bench::preset_params_from_flags(args);
      params.dataset = args.get_string("dataset");
      params.gamma_max = static_cast<std::size_t>(args.get_int("gamma-max"));
      grid = sweep::make_preset(preset, params);
    }
    if (!args.get_string("faults").empty()) {
      // Fault specs themselves contain commas, so the axis separator is ';'.
      std::vector<std::string> axis;
      const std::string& spec_list = args.get_string("faults");
      std::size_t start = 0;
      while (start <= spec_list.size()) {
        const std::size_t end = spec_list.find(';', start);
        const std::string token = spec_list.substr(
            start, end == std::string::npos ? std::string::npos : end - start);
        if (!token.empty()) {
          fault::make_plan(token).validate();  // reject bad specs up front
          axis.push_back(token);
        }
        if (end == std::string::npos) break;
        start = end + 1;
      }
      grid.faults = std::move(axis);
    }
    trials = grid.expand();  // config-file grids validate axes here
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sweep_main: %s\n", e.what());
    return 2;
  }

  std::printf("sweep '%s': %zu trials\n", grid.name.c_str(), trials.size());
  if (args.get_flag("list")) {
    util::TablePrinter table(
        {"trial", "dataset", "nodes", "algorithm", "deg", "Γt", "Γs", "seed",
         "rounds"});
    for (const auto& spec : trials) {
      table.add_row({std::to_string(spec.index), spec.data.dataset,
                     std::to_string(spec.data.nodes),
                     sweep::algorithm_token(spec.options.algorithm),
                     std::to_string(spec.options.degree),
                     std::to_string(spec.options.gamma_train),
                     std::to_string(spec.options.gamma_sync),
                     std::to_string(spec.options.seed),
                     std::to_string(spec.options.total_rounds)});
    }
    table.print();
    return 0;
  }

  const sweep::SweepReport report =
      bench::run_sweep(grid, args, args.get_flag("verbose"));

  std::printf("%s", report.render_table().c_str());
  const std::string csv_path = args.get_string("csv").empty()
                                   ? grid.name + "_sweep.csv"
                                   : args.get_string("csv");
  report.write_csv(csv_path);
  bench::export_telemetry(report, args, csv_path);
  if (report.resumed_trials != 0) {
    std::printf("%zu completed trials loaded from checkpoint (not re-run)\n",
                report.resumed_trials);
  }
  std::printf("%zu trials in %.1fs (%zu failed), summary written to %s\n",
              report.trials.size(), report.wall_seconds, report.failures,
              csv_path.c_str());
  return report.all_ok() ? 0 : 1;
}
