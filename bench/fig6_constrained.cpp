// Regenerates Figure 6 (and the trajectories behind Table 4): the
// energy-constrained setting. SkipTrain-constrained vs Greedy vs D-PSGD,
// test accuracy against cumulative training energy, with per-node budgets
// τ_i from the smartphone traces (scaled to the bench horizon so budgets
// bind at the same proportion of the run as in the paper).
//
// The 3-algorithm x 3-topology grid is declared once (sweep preset
// "fig6") and executed by the trial-parallel sweep runner.
//
// Expected shape: SkipTrain-constrained > Greedy > D-PSGD at equal energy.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig6_constrained",
                       "Figure 6: energy-constrained comparison");
  bench::add_common_flags(args);
  bench::add_sweep_flags(args);
  args.add_string("dataset", "cifar", "cifar | femnist | both");
  args.parse(argc, argv);

  bench::print_header(
      "Figure 6: SkipTrain-constrained vs Greedy vs D-PSGD",
      "test accuracy vs training energy under per-device budgets");

  sweep::PresetParams params = bench::preset_params_from_flags(args);
  params.dataset = args.get_string("dataset");
  const sweep::SweepGrid grid = bench::make_preset_checked("fig6", params);
  const sweep::SweepReport report = bench::run_sweep(grid, args);

  util::CsvWriter csv("fig6_series.csv",
                      {"dataset", "degree", "algorithm", "round",
                       "mean_accuracy", "train_energy_wh"});

  for (const std::string& dataset : grid.datasets) {
    for (const std::size_t degree : grid.degrees) {
      const sweep::TrialResult* trials[3] = {
          bench::require_cell(report, dataset, degree,
                              sim::Algorithm::kSkipTrainConstrained),
          bench::require_cell(report, dataset, degree,
                              sim::Algorithm::kGreedy),
          bench::require_cell(report, dataset, degree,
                              sim::Algorithm::kDpsgd)};

      // A surviving trial's series is always written, even when another
      // algorithm's trial in this cell failed.
      const sweep::TrialResult* first_ok = nullptr;
      for (const sweep::TrialResult* trial : trials) {
        if (trial == nullptr) continue;
        if (first_ok == nullptr) first_ok = trial;
        for (const auto& record : trial->result.recorder.records()) {
          csv.write_row(std::vector<std::string>{
              trial->result.dataset, std::to_string(degree),
              trial->result.algorithm, std::to_string(record.round),
              util::fixed(100.0 * record.mean_accuracy, 4),
              util::fixed(record.train_energy_wh, 4)});
        }
      }
      if (first_ok == nullptr) continue;
      // Every trial in a cell shares the fleet, so any ok trial supplies
      // the budget the equal-energy column compares at.
      const double fleet_budget_wh = first_ok->result.fleet_budget_wh;

      std::printf("\n--- %s, %zu-regular | fleet budget %.2f Wh ---\n",
                  first_ok->result.dataset.c_str(), degree, fleet_budget_wh);
      util::TablePrinter table({"algorithm", "final acc%", "spent Wh",
                                "acc% @ equal energy"});
      for (const sweep::TrialResult* trial : trials) {
        if (trial == nullptr) continue;
        const sim::ExperimentResult& result = trial->result;
        const auto at_budget =
            result.recorder.record_at_energy(fleet_budget_wh);
        const double equal_energy_acc =
            at_budget ? at_budget->mean_accuracy
                      : result.recorder.last().mean_accuracy;
        table.add_row({result.algorithm,
                       util::fixed(100.0 * result.final_mean_accuracy, 2),
                       util::fixed(result.total_training_wh, 2),
                       util::fixed(100.0 * equal_energy_acc, 2)});
      }
      table.print();
    }
  }

  std::printf("\nseries written to fig6_series.csv\n");
  std::printf("paper shape: at equal energy, SkipTrain-constrained > Greedy "
              "> D-PSGD (up to +12%% / +9%% on CIFAR-10).\n");
  return report.all_ok() ? 0 : 1;
}
