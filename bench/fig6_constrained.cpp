// Regenerates Figure 6 (and the trajectories behind Table 4): the
// energy-constrained setting. SkipTrain-constrained vs Greedy vs D-PSGD,
// test accuracy against cumulative training energy, with per-node budgets
// τ_i from the smartphone traces (scaled to the bench horizon so budgets
// bind at the same proportion of the run as in the paper).
//
// Expected shape: SkipTrain-constrained > Greedy > D-PSGD at equal energy.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig6_constrained",
                       "Figure 6: energy-constrained comparison");
  bench::add_common_flags(args);
  args.add_string("dataset", "cifar", "cifar | femnist | both");
  args.parse(argc, argv);

  bench::print_header(
      "Figure 6: SkipTrain-constrained vs Greedy vs D-PSGD",
      "test accuracy vs training energy under per-device budgets");

  std::vector<energy::Workload> workloads;
  const std::string& dataset = args.get_string("dataset");
  if (dataset == "cifar" || dataset == "both") {
    workloads.push_back(energy::Workload::kCifar10);
  }
  if (dataset == "femnist" || dataset == "both") {
    workloads.push_back(energy::Workload::kFemnist);
  }

  util::CsvWriter csv("fig6_series.csv",
                      {"dataset", "degree", "algorithm", "round",
                       "mean_accuracy", "train_energy_wh"});

  for (const auto workload : workloads) {
    const bench::Workbench wb = bench::make_bench(args, workload);
    sim::RunOptions base = bench::options_from_flags(args, wb);
    base.eval_every = std::max<std::size_t>(base.total_rounds / 12, 1);

    for (const std::size_t degree : {6u, 8u, 10u}) {
      const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
      sim::RunOptions options = base;
      options.degree = degree;

      options.algorithm = sim::Algorithm::kSkipTrainConstrained;
      options.gamma_train = gamma_train;
      options.gamma_sync = gamma_sync;
      const auto constrained = sim::run_experiment(wb.data, wb.model, options);

      options.algorithm = sim::Algorithm::kGreedy;
      const auto greedy = sim::run_experiment(wb.data, wb.model, options);

      options.algorithm = sim::Algorithm::kDpsgd;
      const auto dpsgd = sim::run_experiment(wb.data, wb.model, options);

      std::printf("\n--- %s, %zu-regular | fleet budget %.2f Wh ---\n",
                  wb.data.name.c_str(), degree, constrained.fleet_budget_wh);
      util::TablePrinter table({"algorithm", "final acc%", "spent Wh",
                                "acc% @ equal energy"});
      const auto row = [&](const sim::ExperimentResult& result) {
        const auto at_budget =
            result.recorder.record_at_energy(constrained.fleet_budget_wh);
        const double equal_energy_acc =
            at_budget ? at_budget->mean_accuracy
                      : result.recorder.last().mean_accuracy;
        table.add_row({result.algorithm,
                       util::fixed(100.0 * result.final_mean_accuracy, 2),
                       util::fixed(result.total_training_wh, 2),
                       util::fixed(100.0 * equal_energy_acc, 2)});
        for (const auto& record : result.recorder.records()) {
          csv.write_row(std::vector<std::string>{
              wb.data.name, std::to_string(degree), result.algorithm,
              std::to_string(record.round),
              util::fixed(100.0 * record.mean_accuracy, 4),
              util::fixed(record.train_energy_wh, 4)});
        }
      };
      row(constrained);
      row(greedy);
      row(dpsgd);
      table.print();
    }
  }

  std::printf("\nseries written to fig6_series.csv\n");
  std::printf("paper shape: at equal energy, SkipTrain-constrained > Greedy "
              "> D-PSGD (up to +12%% / +9%% on CIFAR-10).\n");
  return 0;
}
