// Regenerates Table 2: per-device per-round training energy and the
// battery-drain round budgets τ, for both workloads. Also prints the
// derivation-pipeline values (Burnout power x FedScale-scaled duration)
// next to the canonical trace so the methodology is auditable.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("table2_energy_traces",
                       "Table 2: smartphone energy traces");
  args.parse(argc, argv);

  bench::print_header(
      "Table 2: Energy traces for CIFAR-10 and FEMNIST",
      "per-round mWh and training-round budgets for 4 smartphones");

  util::TablePrinter table({"Device", "CIFAR mWh", "FEMNIST mWh",
                            "CIFAR rounds", "FEMNIST rounds", "derived CIFAR",
                            "derived FEMNIST", "battery Wh"});
  const auto& cifar_spec = energy::workload_spec(energy::Workload::kCifar10);
  const auto& femnist_spec = energy::workload_spec(energy::Workload::kFemnist);
  for (const auto& entry : energy::smartphone_traces()) {
    table.add_row({entry.profile.name, util::fixed(entry.cifar_mwh, 1),
                   util::fixed(entry.femnist_mwh, 1),
                   std::to_string(entry.cifar_rounds),
                   std::to_string(entry.femnist_rounds),
                   util::fixed(entry.profile.derived_energy_per_round_mwh(
                                   cifar_spec),
                               2),
                   util::fixed(entry.profile.derived_energy_per_round_mwh(
                                   femnist_spec),
                               2),
                   util::fixed(entry.profile.battery_wh, 2)});
  }
  table.print();

  std::printf("\npaper Table 2 (displayed values):\n");
  std::printf("  Xiaomi 12 Pro            6.5 / 22   | 272 / 413\n");
  std::printf("  Samsung Galaxy S22 Ultra 6.0 / 20   | 324 / 492\n");
  std::printf("  OnePlus Nord 2 5G        2.6 / 8.4  | 681 / 1034\n");
  std::printf("  Xiaomi Poco X3           8.5 / 28   | 272 / 413\n");

  std::printf(
      "\nmean per-round energy: CIFAR-10 %.4f mWh, FEMNIST %.4f mWh\n",
      energy::mean_energy_per_round_mwh(energy::Workload::kCifar10),
      energy::mean_energy_per_round_mwh(energy::Workload::kFemnist));
  std::printf(
      "implied D-PSGD totals (256 nodes): CIFAR-10 %.2f Wh (paper 1510.04), "
      "FEMNIST %.2f Wh (paper 14914.38)\n",
      bench::paper_scale_energy_wh(energy::Workload::kCifar10, 1000),
      bench::paper_scale_energy_wh(energy::Workload::kFemnist, 3000));
  return 0;
}
