// Ablation for §5.1 (bias toward high-energy-capacity devices): under
// SkipTrain-constrained, low-budget devices skip more training rounds and
// contribute less. This bench groups final per-node accuracy by device
// type and reports the fairness gap, alongside each device's realized
// training participation.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("ablation_fairness",
                       "§5.1: accuracy by device class under budgets");
  bench::add_common_flags(args);
  args.add_int("degree", 6, "topology degree");
  args.parse(argc, argv);

  bench::print_header(
      "Ablation: per-device fairness under SkipTrain-constrained",
      "do low-budget devices end up with worse models?");

  const bench::Workbench wb = bench::make_cifar_bench(args);
  sim::RunOptions options = bench::options_from_flags(args, wb);
  options.algorithm = sim::Algorithm::kSkipTrainConstrained;
  options.degree = static_cast<std::size_t>(args.get_int("degree"));
  const auto [gamma_train, gamma_sync] =
      bench::tuned_gammas(options.degree);
  options.gamma_train = gamma_train;
  options.gamma_sync = gamma_sync;
  options.eval_every = options.total_rounds;

  const auto result = sim::run_experiment(wb.data, wb.model, options);
  const energy::Fleet fleet =
      energy::Fleet::even(wb.data.num_nodes(), wb.workload)
          .with_budget_scale(options.budget_scale);

  const auto& traces = energy::smartphone_traces();
  std::vector<util::RunningStat> accuracy_by_device(traces.size());
  for (std::size_t node = 0; node < result.final_per_node_accuracy.size();
       ++node) {
    accuracy_by_device[fleet.device_index(node)].add(
        result.final_per_node_accuracy[node]);
  }

  util::TablePrinter table({"device", "tau (scaled)", "p_i", "mean acc%",
                            "std acc%"});
  const double t_train = core::expected_training_rounds(
      gamma_train, gamma_sync, options.total_rounds);
  double min_acc = 1.0, max_acc = 0.0;
  for (std::size_t d = 0; d < traces.size(); ++d) {
    // Representative node of this device class.
    std::size_t node = d;  // Fleet::even assigns device i%4
    const std::size_t tau = fleet.budget_rounds(node);
    const double p = core::training_probability(tau, t_train);
    const double mean_acc = accuracy_by_device[d].mean();
    min_acc = std::min(min_acc, mean_acc);
    max_acc = std::max(max_acc, mean_acc);
    table.add_row({traces[d].profile.name, std::to_string(tau),
                   util::fixed(p, 3),
                   util::fixed(100.0 * mean_acc, 2),
                   util::fixed(100.0 * accuracy_by_device[d].stddev(), 2)});
  }
  table.print();

  std::printf("\nfairness gap (max - min device-class accuracy): %.2f%%\n",
              100.0 * (max_acc - min_acc));
  std::printf("fleet mean accuracy: %.2f%% (std %.2f%%)\n",
              100.0 * result.final_mean_accuracy,
              100.0 * result.final_std_accuracy);
  std::printf("\n§5.1's concern: devices with smaller budgets (higher skip "
              "rates) may converge to worse models; synchronization rounds "
              "mitigate but may not erase the gap.\n");
  return 0;
}
