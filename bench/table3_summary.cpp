// Regenerates Table 3: training energy and average test accuracy of
// SkipTrain vs D-PSGD on both datasets across 6/8/10-regular topologies.
//
// Energy columns are reported at PAPER scale (256 nodes, T=1000/3000) —
// they are closed-form under the trace model and must match the paper to
// <0.1%. Accuracy columns come from the scaled simulation; the shape to
// check is SkipTrain ≥ D-PSGD on CIFAR with ~2x less energy, and parity on
// FEMNIST.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("table3_summary", "Table 3: energy + accuracy summary");
  bench::add_common_flags(args);
  args.add_string("dataset", "both", "cifar | femnist | both");
  args.parse(argc, argv);

  bench::print_header("Table 3: training energy and average test accuracy",
                      "SkipTrain vs D-PSGD, 2 datasets x 3 topologies");

  struct PaperRow {
    double skip_energy[3];
    double dpsgd_energy;
    double skip_acc[3];
    double dpsgd_acc[3];
  };
  // Paper Table 3 values, indexed by degree {6, 8, 10}.
  const PaperRow paper_cifar{{755.02, 756.53, 1008.71},
                             1510.04,
                             {65.09, 65.93, 66.96},
                             {57.55, 60.08, 62.20}};
  const PaperRow paper_femnist{{7457.19, 7457.19, 9942.92},
                               14914.38,
                               {79.26, 79.32, 79.24},
                               {78.6, 78.69, 78.73}};

  std::vector<energy::Workload> workloads;
  const std::string& dataset = args.get_string("dataset");
  if (dataset == "cifar" || dataset == "both") {
    workloads.push_back(energy::Workload::kCifar10);
  }
  if (dataset == "femnist" || dataset == "both") {
    workloads.push_back(energy::Workload::kFemnist);
  }

  util::TablePrinter table({"Algorithm", "Dataset", "Degree",
                            "Energy Wh (ours)", "Energy Wh (paper)",
                            "Acc% (ours)", "Acc% (paper)"});

  for (const auto workload : workloads) {
    const bench::Workbench wb = bench::make_bench(args, workload);
    sim::RunOptions base = bench::options_from_flags(args, wb);
    base.eval_every = base.total_rounds;
    const PaperRow& paper =
        workload == energy::Workload::kCifar10 ? paper_cifar : paper_femnist;
    const std::size_t paper_total =
        energy::workload_spec(workload).total_rounds;

    const std::size_t degrees[3] = {6, 8, 10};
    for (int i = 0; i < 3; ++i) {
      const std::size_t degree = degrees[i];
      const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
      sim::RunOptions options = base;
      options.degree = degree;

      options.algorithm = sim::Algorithm::kSkipTrain;
      options.gamma_train = gamma_train;
      options.gamma_sync = gamma_sync;
      const auto skip = sim::run_experiment(wb.data, wb.model, options);
      // Closed-form paper-scale energy for this Γ configuration.
      const double skip_energy = bench::paper_scale_energy_wh(
          workload,
          core::count_training_rounds(gamma_train, gamma_sync, paper_total));

      options.algorithm = sim::Algorithm::kDpsgd;
      const auto dpsgd = sim::run_experiment(wb.data, wb.model, options);
      const double dpsgd_energy =
          bench::paper_scale_energy_wh(workload, paper_total);

      table.add_row({"SkipTrain", wb.data.name, std::to_string(degree),
                     util::fixed(skip_energy, 2),
                     util::fixed(paper.skip_energy[i], 2),
                     util::fixed(100.0 * skip.final_mean_accuracy, 2),
                     util::fixed(paper.skip_acc[i], 2)});
      table.add_row({"D-PSGD", wb.data.name, std::to_string(degree),
                     util::fixed(dpsgd_energy, 2),
                     util::fixed(paper.dpsgd_energy, 2),
                     util::fixed(100.0 * dpsgd.final_mean_accuracy, 2),
                     util::fixed(paper.dpsgd_acc[i], 2)});
    }
  }
  table.print();

  std::printf("\nnotes: energy columns are closed-form at 256-node paper "
              "scale (exact reproduction); accuracy columns come from the "
              "scaled simulation — check ordering and ratios, not absolute "
              "points.\n");
  return 0;
}
