// Regenerates Table 3: training energy and average test accuracy of
// SkipTrain vs D-PSGD on both datasets across 6/8/10-regular topologies.
//
// The 2x3x2 grid is declared once (sweep preset "table3") and executed by
// the trial-parallel sweep runner.
//
// Energy columns are reported at PAPER scale (256 nodes, T=1000/3000) —
// they are closed-form under the trace model and must match the paper to
// <0.1%. Accuracy columns come from the scaled simulation; the shape to
// check is SkipTrain ≥ D-PSGD on CIFAR with ~2x less energy, and parity on
// FEMNIST.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("table3_summary", "Table 3: energy + accuracy summary");
  bench::add_common_flags(args);
  bench::add_sweep_flags(args);
  args.add_string("dataset", "both", "cifar | femnist | both");
  args.parse(argc, argv);

  bench::print_header("Table 3: training energy and average test accuracy",
                      "SkipTrain vs D-PSGD, 2 datasets x 3 topologies");

  struct PaperRow {
    double skip_energy[3];
    double dpsgd_energy;
    double skip_acc[3];
    double dpsgd_acc[3];
  };
  // Paper Table 3 values, indexed by degree {6, 8, 10}.
  const PaperRow paper_cifar{{755.02, 756.53, 1008.71},
                             1510.04,
                             {65.09, 65.93, 66.96},
                             {57.55, 60.08, 62.20}};
  const PaperRow paper_femnist{{7457.19, 7457.19, 9942.92},
                               14914.38,
                               {79.26, 79.32, 79.24},
                               {78.6, 78.69, 78.73}};

  sweep::PresetParams params = bench::preset_params_from_flags(args);
  params.dataset = args.get_string("dataset");
  const sweep::SweepGrid grid = bench::make_preset_checked("table3", params);
  const sweep::SweepReport report = bench::run_sweep(grid, args);

  util::TablePrinter table({"Algorithm", "Dataset", "Degree",
                            "Energy Wh (ours)", "Energy Wh (paper)",
                            "Acc% (ours)", "Acc% (paper)"});

  for (const std::string& dataset : grid.datasets) {
    const energy::Workload workload = sweep::workload_for(dataset);
    const PaperRow& paper =
        workload == energy::Workload::kCifar10 ? paper_cifar : paper_femnist;
    const std::size_t paper_total =
        energy::workload_spec(workload).total_rounds;

    // Paper reference columns exist for the published degrees only.
    const auto paper_index = [](std::size_t degree) {
      return degree == 6 ? 0 : degree == 8 ? 1 : degree == 10 ? 2 : -1;
    };
    for (const std::size_t degree : grid.degrees) {
      const int i = paper_index(degree);
      const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
      const sweep::TrialResult* skip = bench::require_cell(
          report, dataset, degree, sim::Algorithm::kSkipTrain);
      const sweep::TrialResult* dpsgd = bench::require_cell(
          report, dataset, degree, sim::Algorithm::kDpsgd);
      if (skip == nullptr || dpsgd == nullptr) continue;
      // Closed-form paper-scale energy for this Γ configuration.
      const double skip_energy = bench::paper_scale_energy_wh(
          workload,
          core::count_training_rounds(gamma_train, gamma_sync, paper_total));
      const double dpsgd_energy =
          bench::paper_scale_energy_wh(workload, paper_total);

      table.add_row({"SkipTrain", skip->result.dataset,
                     std::to_string(degree), util::fixed(skip_energy, 2),
                     i >= 0 ? util::fixed(paper.skip_energy[i], 2) : "-",
                     util::fixed(100.0 * skip->result.final_mean_accuracy, 2),
                     i >= 0 ? util::fixed(paper.skip_acc[i], 2) : "-"});
      table.add_row({"D-PSGD", dpsgd->result.dataset, std::to_string(degree),
                     util::fixed(dpsgd_energy, 2),
                     util::fixed(paper.dpsgd_energy, 2),
                     util::fixed(100.0 * dpsgd->result.final_mean_accuracy, 2),
                     i >= 0 ? util::fixed(paper.dpsgd_acc[i], 2) : "-"});
    }
  }
  table.print();

  std::printf("\nnotes: energy columns are closed-form at 256-node paper "
              "scale (exact reproduction); accuracy columns come from the "
              "scaled simulation — check ordering and ratios, not absolute "
              "points.\n");
  return report.all_ok() ? 0 : 1;
}
