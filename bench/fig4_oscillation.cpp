// Regenerates Figure 4: SkipTrain's test-accuracy oscillation near
// convergence when evaluated every round — accuracy drops across training
// rounds (models biased toward local shards) and recovers across
// synchronization rounds, with the std-deviation moving inversely.
#include "common.hpp"

#include "energy/accountant.hpp"
#include "graph/topology.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig4_oscillation",
                       "Figure 4: per-round train/sync accuracy oscillation");
  bench::add_common_flags(args);
  args.add_int("degree", 6, "topology degree");
  args.add_int("tail", 32, "rounds at the end to evaluate per-round");
  args.parse(argc, argv);

  bench::print_header(
      "Figure 4: SkipTrain test accuracy, per-round at the end of training",
      "accuracy falls in train rounds, rises in sync rounds; std inverts");

  const bench::Workbench wb = bench::make_cifar_bench(args);
  const sim::RunOptions base = bench::options_from_flags(args, wb);
  const auto degree = static_cast<std::size_t>(args.get_int("degree"));
  const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
  const auto tail = static_cast<std::size_t>(args.get_int("tail"));

  // Drive the engine directly so we can evaluate every round in the tail.
  const std::size_t n = wb.data.num_nodes();
  util::Rng topo_rng(util::hash_combine(base.seed, 0x70700000ULL));
  const graph::Topology topology =
      graph::make_random_regular(n, degree, topo_rng);
  const graph::MixingMatrix mixing =
      graph::MixingMatrix::metropolis_hastings(topology);
  const core::SkipTrainScheduler scheduler(gamma_train, gamma_sync);
  const energy::Fleet fleet = energy::Fleet::even(n, wb.workload);
  std::vector<std::size_t> degrees(n, degree);
  energy::EnergyAccountant accountant(
      fleet, energy::CommModel{},
      energy::workload_spec(wb.workload).model_params, std::move(degrees));

  sim::EngineConfig config;
  config.local_steps = base.local_steps;
  config.batch_size = base.batch_size;
  config.learning_rate = base.learning_rate;
  config.seed = base.seed;
  sim::RoundEngine engine(wb.model, wb.data, mixing, scheduler,
                          std::move(accountant), config);

  const metrics::Evaluator evaluator(&wb.data.test, base.eval_max_samples);
  std::vector<nn::Sequential*> models(n);
  for (std::size_t i = 0; i < n; ++i) models[i] = &engine.model(i);

  const std::size_t warmup = base.total_rounds > tail
                                 ? base.total_rounds - tail
                                 : 0;
  engine.run_rounds(warmup);

  util::CsvWriter csv("fig4_oscillation.csv",
                      {"round", "kind", "mean_accuracy", "std_accuracy"});
  util::TablePrinter table({"round", "kind", "acc mean%", "acc std%"});
  for (std::size_t t = warmup + 1; t <= base.total_rounds; ++t) {
    const auto outcome = engine.run_round();
    const auto eval = evaluator.evaluate_fleet(models);
    const char* kind =
        outcome.kind == core::RoundKind::kTraining ? "train" : "sync";
    table.add_row({std::to_string(t), kind,
                   util::fixed(100.0 * eval.accuracy.mean, 2),
                   util::fixed(100.0 * eval.accuracy.stddev, 2)});
    csv.write_row(std::vector<std::string>{
        std::to_string(t), kind,
        util::fixed(100.0 * eval.accuracy.mean, 4),
        util::fixed(100.0 * eval.accuracy.stddev, 4)});
  }
  table.print();

  std::printf("\nexpected shape (paper Fig. 4): accuracy dips across 'train' "
              "stretches and recovers across 'sync' stretches, while the "
              "std-dev does the opposite.\nseries written to "
              "fig4_oscillation.csv\n");
  return 0;
}
