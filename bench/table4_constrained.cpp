// Regenerates Table 4: the energy-constrained setting. For each dataset x
// degree it reports the energy budget/spend and the average test accuracy
// of SkipTrain-constrained, Greedy, and D-PSGD evaluated at equal energy.
//
// Energy budgets are closed-form at paper scale: Σ_i τ_i·e_i with τ from
// Table 2 (498.9 Wh for the CIFAR fleet). The paper's own budget column is
// internally noisy (see DESIGN.md); we report exact expected spends.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("table4_constrained",
                       "Table 4: constrained-setting summary");
  bench::add_common_flags(args);
  args.add_string("dataset", "both", "cifar | femnist | both");
  args.parse(argc, argv);

  bench::print_header("Table 4: energy budget and accuracy, constrained",
                      "SkipTrain-constrained vs Greedy vs D-PSGD");

  struct PaperRow {
    double budget[3];  // per algorithm ordering: constrained, greedy, dpsgd
    double acc[3][3];  // [algorithm][degree]
  };
  const PaperRow paper_cifar{
      {462.7, 463.37, 468.11},
      {{63.50, 63.52, 64.33}, {54.39, 56.57, 57.86}, {51.57, 53.98, 56.36}}};
  const PaperRow paper_femnist{
      {2455.43, 2460.41, 2485.73},
      {{78.27, 78.26, 78.23}, {77.25, 77.45, 77.60}, {77.05, 77.34, 77.54}}};

  std::vector<energy::Workload> workloads;
  const std::string& dataset = args.get_string("dataset");
  if (dataset == "cifar" || dataset == "both") {
    workloads.push_back(energy::Workload::kCifar10);
  }
  if (dataset == "femnist" || dataset == "both") {
    workloads.push_back(energy::Workload::kFemnist);
  }

  util::TablePrinter table({"Algorithm", "Dataset", "Degree", "Budget Wh",
                            "Paper Wh", "Acc% (ours)", "Acc% (paper)"});

  for (const auto workload : workloads) {
    const bench::Workbench wb = bench::make_bench(args, workload);
    sim::RunOptions base = bench::options_from_flags(args, wb);
    base.eval_every = std::max<std::size_t>(base.total_rounds / 16, 1);
    const PaperRow& paper =
        workload == energy::Workload::kCifar10 ? paper_cifar : paper_femnist;

    // Paper-scale fleet budget (256 nodes, canonical τ).
    const double paper_budget_wh =
        energy::Fleet::even(256, workload).total_budget_wh();

    const std::size_t degrees[3] = {6, 8, 10};
    for (int i = 0; i < 3; ++i) {
      const std::size_t degree = degrees[i];
      const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
      sim::RunOptions options = base;
      options.degree = degree;

      options.algorithm = sim::Algorithm::kSkipTrainConstrained;
      options.gamma_train = gamma_train;
      options.gamma_sync = gamma_sync;
      const auto constrained = sim::run_experiment(wb.data, wb.model, options);

      options.algorithm = sim::Algorithm::kGreedy;
      const auto greedy = sim::run_experiment(wb.data, wb.model, options);

      options.algorithm = sim::Algorithm::kDpsgd;
      const auto dpsgd = sim::run_experiment(wb.data, wb.model, options);
      // D-PSGD is not energy-aware; compare its accuracy at the point
      // where it has consumed the fleet budget.
      const auto dpsgd_at_budget =
          dpsgd.recorder.record_at_energy(constrained.fleet_budget_wh);
      const double dpsgd_acc = dpsgd_at_budget
                                   ? dpsgd_at_budget->mean_accuracy
                                   : dpsgd.final_mean_accuracy;

      const auto add = [&](const std::string& name, double acc,
                           double paper_acc, double paper_budget) {
        table.add_row({name, wb.data.name, std::to_string(degree),
                       util::fixed(paper_budget_wh, 2),
                       util::fixed(paper_budget, 2),
                       util::fixed(100.0 * acc, 2),
                       util::fixed(paper_acc, 2)});
      };
      add("SkipTrain-constrained", constrained.final_mean_accuracy,
          paper.acc[0][i], paper.budget[0]);
      add("Greedy", greedy.final_mean_accuracy, paper.acc[1][i],
          paper.budget[1]);
      add("D-PSGD", dpsgd_acc, paper.acc[2][i], paper.budget[2]);
    }
  }
  table.print();

  std::printf("\nnotes: 'Budget Wh' is the closed-form 256-node fleet budget "
              "Σ τ_i·e_i; the paper's column deviates from it by up to ~7%% "
              "(its own rounding; see EXPERIMENTS.md). Check the accuracy "
              "ordering SkipTrain-constrained > Greedy > D-PSGD.\n");
  return 0;
}
