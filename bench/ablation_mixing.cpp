// Ablation: why does the optimal Γsync shrink with topology degree
// (Figure 3's trend)? Because denser graphs mix faster. This bench reports
// the spectral gap of the Metropolis-Hastings matrix per topology and the
// accuracy of SkipTrain with a fixed Γ budget, showing that extra sync
// rounds buy more on sparse graphs.
#include "common.hpp"

#include "graph/topology.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("ablation_mixing",
                       "mixing speed (spectral gap) vs topology degree");
  bench::add_common_flags(args, /*default_nodes=*/32, /*default_rounds=*/120);
  args.parse(argc, argv);

  bench::print_header("Ablation: spectral gap and the value of sync rounds",
                      "denser graphs mix faster => fewer Γsync needed");

  const bench::Workbench wb = bench::make_cifar_bench(args);
  sim::RunOptions base = bench::options_from_flags(args, wb);
  base.algorithm = sim::Algorithm::kSkipTrain;
  base.eval_every = base.total_rounds;
  const std::size_t n = wb.data.num_nodes();

  util::TablePrinter gap_table(
      {"topology", "degree", "lambda2", "spectral gap", "diameter"});
  util::Rng rng(base.seed);
  const auto add_gap = [&](const std::string& name,
                           const graph::Topology& topo) {
    const auto mix = graph::MixingMatrix::metropolis_hastings(topo);
    gap_table.add_row({name, std::to_string(topo.degree(0)),
                       util::fixed(mix.second_eigenvalue(), 4),
                       util::fixed(mix.spectral_gap(), 4),
                       std::to_string(topo.diameter())});
  };
  add_gap("ring", graph::make_ring(n));
  for (const std::size_t degree : {4u, 6u, 8u, 10u}) {
    add_gap(std::to_string(degree) + "-regular",
            graph::make_random_regular(n, degree, rng));
  }
  add_gap("fully-connected", graph::make_fully_connected(n));
  gap_table.print();

  // Accuracy of SkipTrain under a heavy-sync vs light-sync split, on a
  // sparse and a dense topology. Expectation: heavy sync pays off on the
  // sparse graph, matters less on the dense one.
  std::printf("\nSkipTrain accuracy: heavy sync (Γ=2/6) vs light sync "
              "(Γ=6/2):\n");
  util::TablePrinter acc_table(
      {"degree", "heavy-sync acc%", "light-sync acc%", "delta"});
  for (const std::size_t degree : {4u, 10u}) {
    sim::RunOptions heavy = base;
    heavy.degree = degree;
    heavy.gamma_train = 2;
    heavy.gamma_sync = 6;
    const auto heavy_result = sim::run_experiment(wb.data, wb.model, heavy);

    sim::RunOptions light = base;
    light.degree = degree;
    light.gamma_train = 6;
    light.gamma_sync = 2;
    const auto light_result = sim::run_experiment(wb.data, wb.model, light);

    acc_table.add_row(
        {std::to_string(degree),
         util::fixed(100.0 * heavy_result.final_mean_accuracy, 2),
         util::fixed(100.0 * light_result.final_mean_accuracy, 2),
         util::fixed(100.0 * (heavy_result.final_mean_accuracy -
                              light_result.final_mean_accuracy),
                     2)});
  }
  acc_table.print();
  std::printf("\nexpected: spectral gap increases with degree; the "
              "heavy-vs-light sync delta shrinks (or flips) as the graph "
              "gets denser.\n");
  return 0;
}
