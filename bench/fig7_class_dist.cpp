// Regenerates Figure 7: per-node class distributions of the two workloads
// for the first 10 nodes, as an ASCII dot plot plus summary heterogeneity
// statistics. The point (paper §4.7): the 2-shard CIFAR split confines each
// node to ~2 classes while FEMNIST writers cover most classes.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig7_class_dist",
                       "Figure 7: class distributions across nodes");
  bench::add_common_flags(args);
  args.add_int("show-nodes", 10, "how many nodes to plot");
  args.parse(argc, argv);

  bench::print_header("Figure 7: class distribution, first 10 nodes",
                      "dot size = sample count of class c at node i");

  const auto show = static_cast<std::size_t>(args.get_int("show-nodes"));

  const bench::Workbench cifar = bench::make_cifar_bench(args);
  const auto cifar_counts = data::class_distribution(cifar.data);
  std::printf("\nCIFAR-10 (2-shard non-IID):\n%s",
              data::render_distribution_plot(cifar_counts, show).c_str());

  const bench::Workbench femnist = bench::make_femnist_bench(args);
  const auto femnist_counts = data::class_distribution(femnist.data);
  std::printf("\nFEMNIST (natural by-writer):\n%s",
              data::render_distribution_plot(femnist_counts, show).c_str());

  const auto cifar_distinct = data::distinct_classes_per_node(cifar_counts);
  const auto femnist_distinct =
      data::distinct_classes_per_node(femnist_counts);
  const auto mean_of = [](const std::vector<std::size_t>& values) {
    double total = 0.0;
    for (const std::size_t v : values) total += static_cast<double>(v);
    return values.empty() ? 0.0 : total / static_cast<double>(values.size());
  };

  util::TablePrinter table({"dataset", "classes", "mean distinct/node",
                            "heterogeneity (TV)"});
  table.add_row({"CIFAR-10 (2-shard)", "10",
                 util::fixed(mean_of(cifar_distinct), 2),
                 util::fixed(data::heterogeneity_index(cifar_counts), 3)});
  table.add_row({"FEMNIST (natural)", "62",
                 util::fixed(mean_of(femnist_distinct), 2),
                 util::fixed(data::heterogeneity_index(femnist_counts), 3)});
  table.print();

  std::printf("\npaper shape: CIFAR nodes hold ~2 of 10 classes (severe "
              "label skew); FEMNIST writers cover most of the 62 classes.\n");
  return 0;
}
