// Regenerates Figure 3: the (Γtrain, Γsync) grid search. For each topology
// degree in {6, 8, 10} it prints the validation-accuracy heatmap of
// SkipTrain over Γtrain, Γsync in {1..4}, plus the energy heatmap (which is
// closed-form at paper scale: T_train x 256 x mean trace energy).
//
// The 48-run grid is declared once (sweep preset "fig3") and executed by
// the trial-parallel sweep runner; rows come back in grid order, so the
// CSV is identical at any --threads value.
//
// Expected shape (paper §4.3): accuracy improves with balanced Γ; the
// optimal Γsync decreases as the degree (mixing speed) grows; energy
// depends only on Γtrain/(Γtrain+Γsync).
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig3_gamma_grid",
                       "Figure 3: Γtrain/Γsync grid search");
  // 48 inner runs: lighter node count, but a horizon long enough to reach
  // the accuracy plateau — the paper's grid shape (sync rounds beating
  // extra training rounds) only exists at the plateau.
  bench::add_common_flags(args, /*default_nodes=*/32, /*default_rounds=*/280);
  bench::add_sweep_flags(args);
  args.add_int("gamma-max", 4, "sweep Γ in 1..gamma-max");
  args.parse(argc, argv);

  bench::print_header(
      "Figure 3: validation accuracy + energy over (Γtrain, Γsync)",
      "grids for 6/8/10-regular; energy at 256-node paper scale");

  if (args.get_int("gamma-max") < 1) {
    std::fprintf(stderr, "--gamma-max must be >= 1\n");
    return 2;
  }
  sweep::PresetParams params = bench::preset_params_from_flags(args);
  params.gamma_max = static_cast<std::size_t>(args.get_int("gamma-max"));
  const sweep::SweepGrid grid = bench::make_preset_checked("fig3", params);
  const sweep::SweepReport report = bench::run_sweep(grid, args);
  const std::size_t gamma_max = params.gamma_max;

  std::vector<std::string> labels;
  for (std::size_t g = 1; g <= gamma_max; ++g) {
    labels.push_back(std::to_string(g));
  }

  util::CsvWriter csv("fig3_grid.csv", {"degree", "gamma_train", "gamma_sync",
                                        "val_accuracy", "energy_wh"});

  for (const std::size_t degree : {6u, 8u, 10u}) {
    std::vector<std::vector<double>> accuracy(
        gamma_max, std::vector<double>(gamma_max, 0.0));
    double best_acc = 0.0;
    std::size_t best_gt = 1, best_gs = 1;
    double best_energy = 0.0;

    for (std::size_t gs = 1; gs <= gamma_max; ++gs) {
      for (std::size_t gt = 1; gt <= gamma_max; ++gt) {
        // Look the cell up by spec, not position, so a preset/nesting
        // change can never silently misattribute cells.
        const sweep::TrialResult* row =
            report.find([&](const sweep::TrialResult& t) {
              return t.spec.options.degree == degree &&
                     t.spec.options.gamma_sync == gs &&
                     t.spec.options.gamma_train == gt;
            });
        if (row == nullptr || !row->ok()) {
          std::fprintf(stderr, "(%zu, Γt=%zu, Γs=%zu) failed: %s\n", degree,
                       gt, gs, row != nullptr ? row->error.c_str() : "missing");
          continue;
        }
        const double acc = 100.0 * row->result.final_mean_accuracy;
        accuracy[gs - 1][gt - 1] = acc;

        const std::size_t paper_train_rounds =
            core::count_training_rounds(gt, gs, 1000);
        const double energy_wh = bench::paper_scale_energy_wh(
            energy::Workload::kCifar10, paper_train_rounds);
        csv.write_row(std::vector<double>{
            static_cast<double>(degree), static_cast<double>(gt),
            static_cast<double>(gs), acc, energy_wh});
        // Ties resolve toward lower energy, as in the paper.
        if (acc > best_acc + 1e-9 ||
            (std::abs(acc - best_acc) <= 1e-9 && energy_wh < best_energy)) {
          best_acc = acc;
          best_gt = gt;
          best_gs = gs;
          best_energy = energy_wh;
        }
      }
    }

    std::printf("\n%s", util::render_grid(
                            std::to_string(degree) +
                                "-regular. Validation accuracy [%] "
                                "(rows=Γsync, cols=Γtrain)",
                            labels, labels, accuracy, 1)
                            .c_str());
    std::printf("  best: Γtrain=%zu Γsync=%zu at %.1f%% (energy %.0f Wh at "
                "paper scale)\n",
                best_gt, best_gs, best_acc, best_energy);
  }

  // Energy heatmap (paper's right-most panel) — closed form.
  std::vector<std::vector<double>> energy_grid(
      gamma_max, std::vector<double>(gamma_max, 0.0));
  for (std::size_t gs = 1; gs <= gamma_max; ++gs) {
    for (std::size_t gt = 1; gt <= gamma_max; ++gt) {
      energy_grid[gs - 1][gt - 1] = bench::paper_scale_energy_wh(
          energy::Workload::kCifar10, core::count_training_rounds(gt, gs, 1000));
    }
  }
  std::printf("\n%s", util::render_grid(
                          "Energy [Wh] at paper scale (rows=Γsync, "
                          "cols=Γtrain); paper: 755/504/378/302 in column 1",
                          labels, labels, energy_grid, 0)
                          .c_str());
  std::printf("\ngrid written to fig3_grid.csv\n");
  std::printf("paper best picks: 6-reg (4,4)=66.1%%, 8-reg (3,3)=66.3%%, "
              "10-reg (4,2)=66.8%%\n");
  return report.all_ok() ? 0 : 1;
}
