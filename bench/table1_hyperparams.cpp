// Regenerates Table 1: the simulation hyperparameters, both the paper's
// values (encoded in energy::workload_spec and the model zoo) and the
// scaled defaults this repository's benches use.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("table1_hyperparams",
                       "Table 1: simulation hyperparameters");
  bench::add_common_flags(args);
  args.parse(argc, argv);

  bench::print_header("Table 1: Simulation hyperparameters",
                      "CIFAR-10 and FEMNIST configurations");

  const auto& cifar = energy::workload_spec(energy::Workload::kCifar10);
  const auto& femnist = energy::workload_spec(energy::Workload::kFemnist);

  util::TablePrinter table(
      {"Hyperparameter", "Description", "CIFAR-10", "FEMNIST"});
  table.add_row({"eta", "Learning rate", "0.1", "0.1"});
  table.add_row({"|xi|", "Batch size", std::to_string(cifar.batch_size),
                 std::to_string(femnist.batch_size)});
  table.add_row({"E", "Local steps", std::to_string(cifar.local_steps),
                 std::to_string(femnist.local_steps)});
  table.add_row({"|x|", "Model size", std::to_string(cifar.model_params),
                 std::to_string(femnist.model_params)});
  table.add_row({"T", "Total number of rounds",
                 std::to_string(cifar.total_rounds),
                 std::to_string(femnist.total_rounds)});
  table.print();

  // Verify the model zoo matches |x| exactly.
  const std::size_t cifar_params = nn::make_cifar_cnn().num_parameters();
  const std::size_t femnist_params = nn::make_femnist_cnn().num_parameters();
  std::printf("\nmodel zoo parameter counts: cifar_cnn=%zu (paper %zu)  "
              "femnist_cnn=%zu (paper %zu)\n",
              cifar_params, nn::kPaperCifarModelSize, femnist_params,
              nn::kPaperFemnistModelSize);

  std::printf("\nGN-LeNet (CIFAR-10) architecture:\n%s",
              nn::make_cifar_cnn().summary().c_str());
  std::printf("\nLEAF CNN (FEMNIST) architecture:\n%s",
              nn::make_femnist_cnn().summary().c_str());

  std::printf("\nscaled bench defaults: nodes=%lld rounds=%lld E=%lld "
              "batch=%lld lr=%.3f\n",
              static_cast<long long>(args.get_int("nodes")),
              static_cast<long long>(args.get_int("rounds")),
              static_cast<long long>(args.get_int("local-steps")),
              static_cast<long long>(args.get_int("batch")),
              args.get_double("lr"));
  return 0;
}
