// Shared setup for the bench harnesses that regenerate the paper's tables
// and figures.
//
// Scaling: the paper runs 256 nodes for 1000-3000 rounds with CNNs; the
// default bench configuration uses the same node-count knob but a compact
// model, fewer rounds, and synthetic data so every harness finishes in
// minutes on a laptop. Energy quantities are computed from the canonical
// traces at PAPER scale (they are closed-form, see DESIGN.md), so Table 2/3
// energy columns reproduce exactly regardless of the accuracy-side scaling.
// Pass --nodes/--rounds/--full to move toward paper scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/skiptrain.hpp"
#include "obs/trace.hpp"
#include "sweep/telemetry.hpp"

namespace skiptrain::bench {

struct Workbench {
  data::FederatedData data;
  nn::Sequential model;
  energy::Workload workload = energy::Workload::kCifar10;
  std::size_t paper_rounds = 1000;  // T in Table 1
};

/// Standard flags shared by the experiment harnesses. Harnesses with many
/// inner runs (e.g. the Figure 3 grid) pass smaller defaults.
inline void add_common_flags(util::ArgParser& args,
                             std::int64_t default_nodes = 64,
                             std::int64_t default_rounds = 200) {
  args.add_int("nodes", default_nodes,
               "number of simulated nodes (paper: 256)");
  args.add_int("rounds", default_rounds, "total rounds T (paper: 1000/3000)");
  args.add_int("local-steps", 10, "local SGD steps E per training round");
  args.add_int("batch", 16, "mini-batch size");
  args.add_double("lr", 0.1, "SGD learning rate");
  args.add_int("eval-every", 0,
               "evaluation cadence in rounds (0 = harness default)");
  args.add_int("eval-samples", 600, "samples used per evaluation (0 = all)");
  args.add_int("seed", 42, "master seed");
  args.add_flag("full", "paper-scale run: 256 nodes, paper round counts");
}

/// Flags for harnesses that execute their grid on the sweep runner. Only
/// those harnesses register them — on a serial bench they would be no-ops.
/// The checkpoint trio makes any such harness crash-resumable: kill it
/// mid-grid, rerun with --resume, and the summary CSV comes out
/// byte-identical to an uninterrupted run.
inline void add_sweep_flags(util::ArgParser& args) {
  args.add_int("threads", 0,
               "concurrent sweep trials (0 = hardware threads, 1 = serial)");
  args.add_string("checkpoint-dir", "",
                  "directory for per-trial results + fleet images "
                  "(enables crash-resumable sweeps)");
  args.add_int("checkpoint-every", 0,
               "also write an in-flight fleet image every N rounds "
               "(0 = trial granularity only)");
  args.add_flag("resume",
                "skip completed trials and re-enter in-flight ones from "
                "their last fleet image");
  args.add_int("keep-generations", 0,
               "in-flight fleet-image generations each trial retains; "
               "--resume falls back to the newest one that validates "
               "(0 = grid default)");
  args.add_string("trace-out", "",
                  "stream phase spans to this Chrome trace-event JSON "
                  "(load in Perfetto); observational only — result bytes "
                  "are identical with tracing on or off");
  args.add_string("telemetry-out", "",
                  "write runtime telemetry JSON here (harnesses with a "
                  "summary CSV default to <csv>.telemetry.json)");
}

/// Reads a count-valued flag, rejecting negatives with a clean exit —
/// an unchecked cast would wrap them to astronomically large unsigneds.
inline std::size_t flag_size(const util::ArgParser& args,
                             const std::string& name) {
  const std::int64_t value = args.get_int(name);
  if (value < 0) {
    std::fprintf(stderr, "--%s must be >= 0\n", name.c_str());
    std::exit(2);
  }
  return static_cast<std::size_t>(value);
}

/// Fills the sweep-preset knobs from the common flags. The flag defaults
/// match the preset defaults, so an untouched flag defers to the preset.
/// Callers with a --dataset flag set params.dataset themselves.
inline sweep::PresetParams preset_params_from_flags(
    const util::ArgParser& args) {
  sweep::PresetParams params;
  params.nodes = flag_size(args, "nodes");
  params.rounds = flag_size(args, "rounds");
  params.local_steps = flag_size(args, "local-steps");
  params.batch = flag_size(args, "batch");
  params.learning_rate = args.get_double("lr");
  params.eval_every = flag_size(args, "eval-every");
  params.eval_samples = flag_size(args, "eval-samples");
  params.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  params.full = args.get_flag("full");
  return params;
}

/// Report-cell lookup with uniform failure reporting: returns the ok
/// trial for (dataset, degree, algorithm), or prints why it is unusable
/// to stderr and returns nullptr.
inline const sweep::TrialResult* require_cell(const sweep::SweepReport& report,
                                              const std::string& dataset,
                                              std::size_t degree,
                                              sim::Algorithm algorithm) {
  const sweep::TrialResult* trial =
      report.find_trial(dataset, degree, algorithm);
  if (trial == nullptr || !trial->ok()) {
    std::fprintf(stderr, "%s %zu-regular %s: %s\n", dataset.c_str(), degree,
                 sim::algorithm_name(algorithm),
                 trial != nullptr ? trial->error.c_str() : "trial missing");
    return nullptr;
  }
  return trial;
}

/// make_preset with CLI-grade error handling: a bad --dataset (or other
/// invalid preset knob) prints the message and exits 2 instead of
/// escaping main() as an uncaught exception.
inline sweep::SweepGrid make_preset_checked(
    const std::string& name, const sweep::PresetParams& params) {
  try {
    return sweep::make_preset(name, params);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

/// Runs `grid` on the sweep runner with the --threads flag's concurrency
/// and the checkpoint flags (grid config-file values fill in whatever the
/// flags leave unset).
inline sweep::SweepReport run_sweep(const sweep::SweepGrid& grid,
                                    const util::ArgParser& args,
                                    bool verbose = false) {
  const std::int64_t threads = args.get_int("threads");
  if (threads < 0) {
    std::fprintf(stderr, "--threads must be >= 0\n");
    std::exit(2);
  }
  sweep::SweepOptions options;
  options.threads = static_cast<std::size_t>(threads);
  options.verbose = verbose;
  options.checkpoint_dir = args.get_string("checkpoint-dir");
  if (options.checkpoint_dir.empty()) {
    options.checkpoint_dir = grid.checkpoint_dir;
  }
  options.checkpoint_every = flag_size(args, "checkpoint-every");
  if (options.checkpoint_every == 0) {
    options.checkpoint_every = grid.checkpoint_every;
  }
  options.resume = args.get_flag("resume") || grid.resume;
  options.keep_generations = flag_size(args, "keep-generations");
  if (options.keep_generations == 0) {
    options.keep_generations = grid.keep_generations;
  }
  // Tracing wraps the whole sweep so the file closes complete even when
  // the harness keeps running afterwards; SKIPTRAIN_TRACE-initiated traces
  // stay process-lifetime and are finalized at exit instead.
  const std::string trace_path = args.get_string("trace-out");
  const bool own_trace = !trace_path.empty() && obs::start_tracing(trace_path);
  sweep::SweepReport report = sweep::SweepRunner(options).run(grid);
  if (own_trace) obs::stop_tracing();
  return report;
}

/// Writes the report's telemetry JSON to --telemetry-out, or next to the
/// summary CSV when the flag is unset and a CSV path is known. Export
/// failures warn and continue — telemetry must never fail a bench run.
inline void export_telemetry(const sweep::SweepReport& report,
                             const util::ArgParser& args,
                             const std::string& csv_path = "") {
  std::string path = args.get_string("telemetry-out");
  if (path.empty() && !csv_path.empty()) {
    path = sweep::default_telemetry_path(csv_path);
  }
  if (path.empty()) return;
  try {
    sweep::write_telemetry_json(path, report);
    std::printf("Telemetry written to %s\n", path.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry export failed: %s\n", e.what());
  }
}

inline std::size_t flag_nodes(const util::ArgParser& args) {
  return args.get_flag("full") ? 256
                               : static_cast<std::size_t>(args.get_int("nodes"));
}

/// Builds the synthetic CIFAR-10 workload + compact model.
inline Workbench make_cifar_bench(const util::ArgParser& args) {
  Workbench bench;
  data::CifarSynConfig config;
  config.nodes = flag_nodes(args);
  config.samples_per_node = 60;
  config.test_pool = 1200;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  bench.data = data::make_cifar_synthetic(config);
  bench.model = nn::make_compact_cifar_model(config.feature_dim);
  util::Rng rng(config.seed);
  nn::initialize(bench.model, rng);
  bench.workload = energy::Workload::kCifar10;
  bench.paper_rounds = 1000;
  return bench;
}

/// Builds the synthetic FEMNIST workload + compact model.
inline Workbench make_femnist_bench(const util::ArgParser& args) {
  Workbench bench;
  data::FemnistSynConfig config;
  config.nodes = flag_nodes(args);
  config.mean_samples_per_node = 60;
  config.test_pool = 1200;
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  bench.data = data::make_femnist_synthetic(config);
  bench.model = nn::make_compact_femnist_model(config.feature_dim);
  util::Rng rng(config.seed);
  nn::initialize(bench.model, rng);
  bench.workload = energy::Workload::kFemnist;
  bench.paper_rounds = 3000;
  return bench;
}

inline Workbench make_bench(const util::ArgParser& args,
                            energy::Workload workload) {
  return workload == energy::Workload::kCifar10 ? make_cifar_bench(args)
                                                : make_femnist_bench(args);
}

/// Fills RunOptions from the common flags.
inline sim::RunOptions options_from_flags(const util::ArgParser& args,
                                          const Workbench& bench) {
  sim::RunOptions options;
  options.total_rounds = args.get_flag("full")
                             ? bench.paper_rounds
                             : static_cast<std::size_t>(args.get_int("rounds"));
  options.local_steps = static_cast<std::size_t>(args.get_int("local-steps"));
  options.batch_size = static_cast<std::size_t>(args.get_int("batch"));
  options.learning_rate = static_cast<float>(args.get_double("lr"));
  options.eval_every = static_cast<std::size_t>(args.get_int("eval-every"));
  options.eval_max_samples =
      static_cast<std::size_t>(args.get_int("eval-samples"));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  options.workload = bench.workload;
  options.budget_scale = static_cast<double>(options.total_rounds) /
                         static_cast<double>(bench.paper_rounds);
  return options;
}

/// Tuned (Γtrain, Γsync) per topology degree from the paper's §4.3 grid
/// search; canonical definition lives with the sweep presets.
inline std::pair<std::size_t, std::size_t> tuned_gammas(std::size_t degree) {
  return sweep::tuned_gammas(degree);
}

/// Closed-form 256-node training energy of the paper's configuration (Wh):
/// mean trace energy x 256 x training_rounds.
inline double paper_scale_energy_wh(energy::Workload workload,
                                    std::size_t training_rounds) {
  return energy::mean_energy_per_round_mwh(workload) * 256.0 *
         static_cast<double>(training_rounds) / 1000.0;
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::printf("=====================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("  paper reference: %s\n", paper.c_str());
  std::printf("=====================================================\n");
}

}  // namespace skiptrain::bench
