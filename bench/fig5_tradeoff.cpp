// Regenerates Figure 5 (and the accuracy trajectories behind Table 3):
// SkipTrain vs D-PSGD on both workloads across 6/8/10-regular topologies,
// reporting test accuracy vs rounds AND vs cumulative training energy.
//
// The 2x3x2 grid is declared once (sweep preset "fig5") and executed by
// the trial-parallel sweep runner; the D-PSGD/SkipTrain pair per cell is
// looked up from the report by spec.
//
// Expected shape: SkipTrain matches or beats D-PSGD at equal rounds while
// consuming ~half the training energy; per-energy, SkipTrain dominates.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig5_tradeoff",
                       "Figure 5: SkipTrain vs D-PSGD trade-off");
  bench::add_common_flags(args);
  bench::add_sweep_flags(args);
  args.add_string("dataset", "both", "cifar | femnist | both");
  args.parse(argc, argv);

  bench::print_header(
      "Figure 5: test accuracy vs rounds and vs training energy",
      "2 datasets x {6,8,10}-regular x {D-PSGD, SkipTrain}");

  sweep::PresetParams params = bench::preset_params_from_flags(args);
  params.dataset = args.get_string("dataset");
  const sweep::SweepGrid grid = bench::make_preset_checked("fig5", params);
  const sweep::SweepReport report = bench::run_sweep(grid, args);

  util::CsvWriter csv("fig5_series.csv",
                      {"dataset", "degree", "algorithm", "round",
                       "mean_accuracy", "train_energy_wh"});

  for (const std::string& dataset : grid.datasets) {
    for (const std::size_t degree : grid.degrees) {
      const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
      const sweep::TrialResult* dpsgd =
          bench::require_cell(report, dataset, degree, sim::Algorithm::kDpsgd);
      const sweep::TrialResult* skip = bench::require_cell(
          report, dataset, degree, sim::Algorithm::kSkipTrain);
      // A surviving trial's series is always written, even when its
      // partner failed and the comparison table below is impossible.
      const auto write_series = [&](const sweep::TrialResult* trial,
                                    const char* token) {
        if (trial == nullptr) return;
        for (const auto& record : trial->result.recorder.records()) {
          csv.write_row(std::vector<std::string>{
              trial->result.dataset, std::to_string(degree), token,
              std::to_string(record.round),
              util::fixed(100.0 * record.mean_accuracy, 4),
              util::fixed(record.train_energy_wh, 4)});
        }
      };
      write_series(dpsgd, "dpsgd");
      write_series(skip, "skiptrain");
      if (dpsgd == nullptr || skip == nullptr) continue;
      const std::string& name = dpsgd->result.dataset;

      std::printf("\n--- %s, %zu-regular (Γtrain=%zu, Γsync=%zu) ---\n",
                  name.c_str(), degree, gamma_train, gamma_sync);
      util::TablePrinter table({"round", "D-PSGD acc%", "D-PSGD Wh",
                                "SkipTrain acc%", "SkipTrain Wh"});
      const auto& d_rec = dpsgd->result.recorder.records();
      const auto& s_rec = skip->result.recorder.records();
      for (std::size_t i = 0; i < std::min(d_rec.size(), s_rec.size()); ++i) {
        table.add_row({std::to_string(d_rec[i].round),
                       util::fixed(100.0 * d_rec[i].mean_accuracy, 2),
                       util::fixed(d_rec[i].train_energy_wh, 1),
                       util::fixed(100.0 * s_rec[i].mean_accuracy, 2),
                       util::fixed(s_rec[i].train_energy_wh, 1)});
      }
      table.print();
      std::printf("final: D-PSGD %.2f%% @ %.1f Wh | SkipTrain %.2f%% @ %.1f "
                  "Wh (energy ratio %.2fx)\n",
                  100.0 * dpsgd->result.final_mean_accuracy,
                  dpsgd->result.total_training_wh,
                  100.0 * skip->result.final_mean_accuracy,
                  skip->result.total_training_wh,
                  dpsgd->result.total_training_wh /
                      std::max(skip->result.total_training_wh, 1e-9));
    }
  }

  std::printf("\nseries written to fig5_series.csv\n");
  std::printf("paper shape: SkipTrain ≥ D-PSGD accuracy at equal rounds with "
              "~2x less training energy; CIFAR gap >> FEMNIST gap.\n");
  return report.all_ok() ? 0 : 1;
}
