// Regenerates Figure 5 (and the accuracy trajectories behind Table 3):
// SkipTrain vs D-PSGD on both workloads across 6/8/10-regular topologies,
// reporting test accuracy vs rounds AND vs cumulative training energy.
//
// Expected shape: SkipTrain matches or beats D-PSGD at equal rounds while
// consuming ~half the training energy; per-energy, SkipTrain dominates.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("fig5_tradeoff",
                       "Figure 5: SkipTrain vs D-PSGD trade-off");
  bench::add_common_flags(args);
  args.add_string("dataset", "both", "cifar | femnist | both");
  args.parse(argc, argv);

  bench::print_header(
      "Figure 5: test accuracy vs rounds and vs training energy",
      "2 datasets x {6,8,10}-regular x {D-PSGD, SkipTrain}");

  std::vector<energy::Workload> workloads;
  const std::string& dataset = args.get_string("dataset");
  if (dataset == "cifar" || dataset == "both") {
    workloads.push_back(energy::Workload::kCifar10);
  }
  if (dataset == "femnist" || dataset == "both") {
    workloads.push_back(energy::Workload::kFemnist);
  }

  util::CsvWriter csv("fig5_series.csv",
                      {"dataset", "degree", "algorithm", "round",
                       "mean_accuracy", "train_energy_wh"});

  for (const auto workload : workloads) {
    const bench::Workbench wb = bench::make_bench(args, workload);
    sim::RunOptions base = bench::options_from_flags(args, wb);
    base.eval_every = std::max<std::size_t>(base.total_rounds / 10, 1);

    for (const std::size_t degree : {6u, 8u, 10u}) {
      const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
      sim::RunOptions options = base;
      options.degree = degree;

      options.algorithm = sim::Algorithm::kDpsgd;
      const auto dpsgd = sim::run_experiment(wb.data, wb.model, options);

      options.algorithm = sim::Algorithm::kSkipTrain;
      options.gamma_train = gamma_train;
      options.gamma_sync = gamma_sync;
      const auto skip = sim::run_experiment(wb.data, wb.model, options);

      std::printf("\n--- %s, %zu-regular (Γtrain=%zu, Γsync=%zu) ---\n",
                  wb.data.name.c_str(), degree, gamma_train, gamma_sync);
      util::TablePrinter table({"round", "D-PSGD acc%", "D-PSGD Wh",
                                "SkipTrain acc%", "SkipTrain Wh"});
      const auto& d_rec = dpsgd.recorder.records();
      const auto& s_rec = skip.recorder.records();
      for (std::size_t i = 0; i < std::min(d_rec.size(), s_rec.size()); ++i) {
        table.add_row({std::to_string(d_rec[i].round),
                       util::fixed(100.0 * d_rec[i].mean_accuracy, 2),
                       util::fixed(d_rec[i].train_energy_wh, 1),
                       util::fixed(100.0 * s_rec[i].mean_accuracy, 2),
                       util::fixed(s_rec[i].train_energy_wh, 1)});
        csv.write_row(std::vector<std::string>{
            wb.data.name, std::to_string(degree), "dpsgd",
            std::to_string(d_rec[i].round),
            util::fixed(100.0 * d_rec[i].mean_accuracy, 4),
            util::fixed(d_rec[i].train_energy_wh, 4)});
        csv.write_row(std::vector<std::string>{
            wb.data.name, std::to_string(degree), "skiptrain",
            std::to_string(s_rec[i].round),
            util::fixed(100.0 * s_rec[i].mean_accuracy, 4),
            util::fixed(s_rec[i].train_energy_wh, 4)});
      }
      table.print();
      std::printf("final: D-PSGD %.2f%% @ %.1f Wh | SkipTrain %.2f%% @ %.1f "
                  "Wh (energy ratio %.2fx)\n",
                  100.0 * dpsgd.final_mean_accuracy, dpsgd.total_training_wh,
                  100.0 * skip.final_mean_accuracy, skip.total_training_wh,
                  dpsgd.total_training_wh /
                      std::max(skip.total_training_wh, 1e-9));
    }
  }

  std::printf("\nseries written to fig5_series.csv\n");
  std::printf("paper shape: SkipTrain ≥ D-PSGD accuracy at equal rounds with "
              "~2x less training energy; CIFAR gap >> FEMNIST gap.\n");
  return 0;
}
