// Fault-plan ablation: the accuracy-vs-loss-rate frontier. Runs the
// schedule policies under a ladder of fault plans — from the paper's
// lossless wire to heavy drop/corrupt/dup/crash chaos — and reports the
// realized delivery rate, the fault telemetry, and what the chaos cost
// in accuracy. The frontier question: how much wire loss can the gossip
// averaging absorb before accuracy falls off, and does the SkipTrain
// schedule (fewer, larger sync phases) degrade differently from D-PSGD
// (every round on the wire)?
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("ablation_faults",
                       "accuracy-vs-loss-rate frontier under deterministic "
                       "fault injection");
  bench::add_common_flags(args, /*default_nodes=*/32, /*default_rounds=*/96);
  args.add_int("degree", 6, "topology degree");
  args.add_string("faults",
                  "none;drop:0.05;drop:0.15;drop:0.3;"
                  "drop:0.05,corrupt:0.02,dup:0.05;"
                  "drop:0.1,corrupt:0.05,dup:0.05,crash:0.01",
                  "';'-separated fault::make_plan specs forming the loss "
                  "ladder (specs themselves contain commas)");
  args.parse(argc, argv);

  bench::print_header(
      "Ablation: fault frontier (accuracy vs loss rate)",
      "how much lossy-wire chaos does gossip averaging absorb, and at "
      "what accuracy cost?");

  const bench::Workbench wb = bench::make_cifar_bench(args);
  const std::size_t degree = static_cast<std::size_t>(args.get_int("degree"));

  const sim::Algorithm algorithms[] = {
      sim::Algorithm::kDpsgd,
      sim::Algorithm::kSkipTrain,
  };

  // Parse the ';'-separated ladder by hand — sweep::split_list splits on
  // commas, which fault specs use internally.
  std::vector<std::string> ladder;
  {
    const std::string& spec_list = args.get_string("faults");
    std::size_t start = 0;
    while (start <= spec_list.size()) {
      const std::size_t end = spec_list.find(';', start);
      const std::string token = spec_list.substr(
          start, end == std::string::npos ? std::string::npos : end - start);
      if (!token.empty()) ladder.push_back(token);
      if (end == std::string::npos) break;
      start = end + 1;
    }
  }

  util::TablePrinter table({"faults", "algorithm", "acc%", "delivery%",
                            "dropped", "corrupt", "dup", "down rounds",
                            "comm Wh"});
  bool all_ok = true;
  for (const std::string& spec : ladder) {
    for (const sim::Algorithm algorithm : algorithms) {
      sim::RunOptions options = bench::options_from_flags(args, wb);
      options.algorithm = algorithm;
      options.degree = degree;
      options.gamma_train = 4;
      options.gamma_sync = 4;
      options.faults = spec;
      options.eval_every = options.total_rounds;
      try {
        const auto result = sim::run_experiment(wb.data, wb.model, options);
        table.add_row({fault::fault_token(spec), result.algorithm,
                       util::fixed(100.0 * result.final_mean_accuracy, 2),
                       util::fixed(100.0 * result.delivery_rate, 1),
                       std::to_string(result.dropped_messages),
                       std::to_string(result.corrupt_messages),
                       std::to_string(result.duplicated_messages),
                       std::to_string(result.crash_down_rounds),
                       util::fixed(result.total_comm_wh, 4)});
      } catch (const std::exception& e) {
        all_ok = false;
        table.add_row({fault::fault_token(spec),
                       sim::algorithm_name(algorithm), e.what(), "-", "-",
                       "-", "-", "-", "-"});
      }
    }
  }
  table.print();

  std::printf(
      "\nreading the frontier: lost and corrupt neighbor mass reverts to "
      "self through the masked-aggregation difference form, so moderate "
      "loss mostly slows consensus rather than sinking accuracy. The "
      "CRC-framed wire turns every corruption into a counted drop — "
      "delivery%% is the single knob that predicts the accuracy hit.\n");
  return all_ok ? 0 : 1;
}
