// Ablation: why does SkipTrain-constrained spend measurably LESS than the
// fleet budget (the §4.6 / Table 4 energy gap)? Because each node's
// realized training count is min(Binomial(T_train, p_i), τ_i), whose mean
// is strictly below τ_i when p_i < 1. This bench computes the closed-form
// budget, the Greedy spend, and a Monte-Carlo estimate of the constrained
// spend at full 256-node paper scale — no learning simulation needed.
#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("ablation_budget_spend",
                       "expected energy spend under budget mechanisms");
  args.add_int("trials", 200, "Monte-Carlo trials");
  args.add_int("seed", 42, "seed");
  args.parse(argc, argv);

  bench::print_header(
      "Ablation: budget vs realized spend (binomial under-spend)",
      "explains Table 4's spend < budget for SkipTrain-constrained");

  const auto trials = static_cast<std::size_t>(args.get_int("trials"));
  util::Rng rng(static_cast<std::uint64_t>(args.get_int("seed")));

  util::TablePrinter table({"workload", "Γt/Γs", "budget Wh", "greedy Wh",
                            "constrained Wh (MC)", "under-spend %"});

  struct Config {
    energy::Workload workload;
    std::size_t gamma_train, gamma_sync, total_rounds;
  };
  const Config configs[] = {
      {energy::Workload::kCifar10, 4, 4, 1000},
      {energy::Workload::kCifar10, 4, 2, 1000},
      {energy::Workload::kFemnist, 4, 4, 3000},
  };

  for (const Config& config : configs) {
    const energy::Fleet fleet = energy::Fleet::even(256, config.workload);
    const double budget_wh = fleet.total_budget_wh();

    const std::size_t t_train = core::count_training_rounds(
        config.gamma_train, config.gamma_sync, config.total_rounds);
    const double t_train_expected = core::expected_training_rounds(
        config.gamma_train, config.gamma_sync, config.total_rounds);

    // Greedy: every node trains min(τ_i, T) rounds (T = total rounds here,
    // all of which are training rounds for Greedy).
    double greedy_mwh = 0.0;
    for (std::size_t node = 0; node < fleet.num_nodes(); ++node) {
      const std::size_t trained =
          std::min(fleet.budget_rounds(node), config.total_rounds);
      greedy_mwh += fleet.training_energy_mwh(node) *
                    static_cast<double>(trained);
    }

    // SkipTrain-constrained: Monte-Carlo of min(Bin(T_train, p_i), τ_i).
    double constrained_mwh = 0.0;
    for (std::size_t trial = 0; trial < trials; ++trial) {
      for (std::size_t node = 0; node < fleet.num_nodes(); ++node) {
        const std::size_t tau = fleet.budget_rounds(node);
        const double p = core::training_probability(tau, t_train_expected);
        std::size_t trained = 0;
        for (std::size_t t = 0; t < t_train && trained < tau; ++t) {
          if (rng.bernoulli(p)) ++trained;
        }
        constrained_mwh += fleet.training_energy_mwh(node) *
                           static_cast<double>(trained);
      }
    }
    constrained_mwh /= static_cast<double>(trials);

    const double greedy_wh = greedy_mwh / 1000.0;
    const double constrained_wh = constrained_mwh / 1000.0;
    table.add_row(
        {energy::workload_name(config.workload),
         std::to_string(config.gamma_train) + "/" +
             std::to_string(config.gamma_sync),
         util::fixed(budget_wh, 2), util::fixed(greedy_wh, 2),
         util::fixed(constrained_wh, 2),
         util::fixed(100.0 * (1.0 - constrained_wh / budget_wh), 2)});
  }
  table.print();

  std::printf(
      "\npaper CIFAR Table 4 row: budget column 462.7-468.1 Wh vs our exact "
      "budget 498.9 Wh — the binomial under-spend above accounts for the "
      "bulk of that gap (nodes with p_i < 1 rarely hit τ_i exactly).\n");
  return 0;
}
