// Ablation (related work, §6): top-k sparsified model exchange. Sweeps the
// wire fraction and reports final accuracy vs communication energy —
// quantifying how much of the (already tiny) sharing cost sparsification
// can recover and what it costs in accuracy.
#include "common.hpp"

#include "graph/topology.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("ablation_compression",
                       "masked sparse exchange: accuracy vs wire volume");
  bench::add_common_flags(args, /*default_nodes=*/32, /*default_rounds=*/160);
  args.add_int("degree", 6, "topology degree");
  args.parse(argc, argv);

  bench::print_header(
      "Ablation: masked sparse exchanges (Sparse-Push axis)",
      "round-shared random coordinate mask; dense = the paper's setting");

  const bench::Workbench wb = bench::make_cifar_bench(args);
  const sim::RunOptions base = bench::options_from_flags(args, wb);
  const auto degree = static_cast<std::size_t>(args.get_int("degree"));
  const std::size_t n = wb.data.num_nodes();
  const std::size_t dim = wb.model.num_parameters();

  util::Rng topo_rng(util::hash_combine(base.seed, 0x70700000ULL));
  const graph::Topology topology =
      graph::make_random_regular(n, degree, topo_rng);
  const graph::MixingMatrix mixing =
      graph::MixingMatrix::metropolis_hastings(topology);
  const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
  const core::SkipTrainScheduler scheduler(gamma_train, gamma_sync);
  const auto& spec = energy::workload_spec(wb.workload);
  const energy::Fleet fleet = energy::Fleet::even(n, wb.workload);
  const metrics::Evaluator evaluator(&wb.data.test, base.eval_max_samples);

  util::TablePrinter table({"exchange", "wire fraction", "final acc%",
                            "comm energy Wh", "train energy Wh"});

  const std::size_t dense_marker = 0;
  const std::size_t ks[] = {dense_marker, dim / 2, dim / 4, dim / 10,
                            dim / 50};
  for (const std::size_t k : ks) {
    std::vector<std::size_t> degrees(n);
    for (std::size_t i = 0; i < n; ++i) degrees[i] = topology.degree(i);
    energy::EnergyAccountant accountant(fleet, energy::CommModel{},
                                        spec.model_params,
                                        std::move(degrees));
    sim::EngineConfig config;
    config.local_steps = base.local_steps;
    config.batch_size = base.batch_size;
    config.learning_rate = base.learning_rate;
    config.seed = base.seed;
    config.sparse_exchange_k = k;
    sim::RoundEngine engine(wb.model, wb.data, mixing, scheduler,
                            std::move(accountant), config);
    engine.run_rounds(base.total_rounds);

    std::vector<nn::Sequential*> models(n);
    for (std::size_t i = 0; i < n; ++i) models[i] = &engine.model(i);
    const double acc = evaluator.evaluate_fleet(models).accuracy.mean;

    const double fraction =
        k == 0 ? 1.0
               : static_cast<double>(std::min(k, dim)) /
                     static_cast<double>(dim);
    table.add_row({k == 0 ? "dense" : "mask-" + std::to_string(k),
                   util::fixed(fraction, 2), util::fixed(100.0 * acc, 2),
                   util::fixed(engine.accountant().total_comm_wh(), 4),
                   util::fixed(engine.accountant().total_training_wh(), 2)});
  }
  table.print();

  std::printf("\nreading: masked sharing trims the (already ~200x smaller) "
              "communication energy; because the mask rotates every round, "
              "all coordinates keep mixing and accuracy degrades "
              "gracefully. (Magnitude top-k on raw parameters instead "
              "starves the unsent coordinates and collapses — see "
              "core/compression.hpp.)\n");
  return 0;
}
