// Scenario-engine ablation: the fairness / accuracy / joules frontier
// under intermittent power. Runs a schedule-policy grid under the paper's
// always-powered setting and under the solar and churn scenarios, and
// reports for each run the final accuracy, the fairness gap (max - min
// per-node accuracy — weak-panel nodes brown out more and can fall
// behind), the realized fleet availability, and the energy actually
// spent. The frontier question: which policy buys the most accuracy per
// joule once nodes churn, and at what fairness cost?
#include <algorithm>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("ablation_scenario",
                       "fairness/accuracy/joules frontier under "
                       "energy-harvesting scenarios");
  bench::add_common_flags(args, /*default_nodes=*/32, /*default_rounds=*/96);
  args.add_int("degree", 6, "topology degree");
  args.add_string("scenarios", "none,solar,churn",
                  "comma-separated scenario tokens (none|solar|churn|"
                  "trace:<path>)");
  args.parse(argc, argv);

  bench::print_header(
      "Ablation: scenario frontier (fairness / accuracy / joules)",
      "what does intermittent power cost, and which schedule spends "
      "harvested energy best?");

  const bench::Workbench wb = bench::make_cifar_bench(args);
  const std::size_t degree = static_cast<std::size_t>(args.get_int("degree"));

  const sim::Algorithm algorithms[] = {
      sim::Algorithm::kDpsgd,
      sim::Algorithm::kSkipTrain,
      sim::Algorithm::kSkipTrainHarvest,
      sim::Algorithm::kDealDecremental,
  };

  util::TablePrinter table({"scenario", "algorithm", "acc%", "fair gap%",
                            "avail%", "spent Wh", "harvest Wh",
                            "acc%/Wh"});
  bool all_ok = true;
  for (const std::string& scenario_name :
       sweep::split_list(args.get_string("scenarios"))) {
    for (const sim::Algorithm algorithm : algorithms) {
      sim::RunOptions options = bench::options_from_flags(args, wb);
      options.algorithm = algorithm;
      options.degree = degree;
      options.gamma_train = 4;
      options.gamma_sync = 4;
      options.scenario = scenario_name;
      options.eval_every = options.total_rounds;
      try {
        const auto result = sim::run_experiment(wb.data, wb.model, options);
        const auto [min_it, max_it] =
            std::minmax_element(result.final_per_node_accuracy.begin(),
                                result.final_per_node_accuracy.end());
        const double gap = result.final_per_node_accuracy.empty()
                               ? 0.0
                               : *max_it - *min_it;
        const double spent_wh =
            result.total_training_wh + result.total_comm_wh;
        table.add_row(
            {scenario::scenario_token(scenario_name), result.algorithm,
             util::fixed(100.0 * result.final_mean_accuracy, 2),
             util::fixed(100.0 * gap, 2),
             util::fixed(100.0 * result.mean_availability, 1),
             util::fixed(spent_wh, 3), util::fixed(result.harvested_wh, 3),
             spent_wh > 0.0
                 ? util::fixed(100.0 * result.final_mean_accuracy / spent_wh,
                               2)
                 : "-"});
      } catch (const std::exception& e) {
        all_ok = false;
        table.add_row({scenario::scenario_token(scenario_name),
                       sim::algorithm_name(algorithm), e.what(), "-", "-",
                       "-", "-", "-"});
      }
    }
  }
  table.print();

  std::printf(
      "\nreading the frontier: scenario=none is the paper's setting "
      "(availability 100%%). Under solar/churn, the harvest-aware and "
      "decremental policies should dominate the fixed schedules on "
      "acc%%/Wh, at a modest fairness-gap increase from weak-panel nodes "
      "browning out more often.\n");
  return all_ok ? 0 : 1;
}
