// Ablation for §5.3: synchronous vs asynchronous SkipTrain under
// heterogeneous device speeds. The synchronous engine's wall-clock per
// round is gated by the slowest device (the Poco X3 takes ~2.6x the Nord's
// time), while the asynchronous engine lets fast devices keep cycling.
// Compares test accuracy at equal simulated wall-clock.
#include "common.hpp"

#include "graph/topology.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("ablation_async",
                       "sync vs async SkipTrain under heterogeneous speeds");
  bench::add_common_flags(args, /*default_nodes=*/32, /*default_rounds=*/160);
  args.add_int("degree", 6, "topology degree");
  args.parse(argc, argv);

  bench::print_header(
      "Ablation (§5.3): synchronous vs asynchronous SkipTrain",
      "equal simulated wall-clock; stragglers gate the sync engine");

  const bench::Workbench wb = bench::make_cifar_bench(args);
  const sim::RunOptions base = bench::options_from_flags(args, wb);
  const auto degree = static_cast<std::size_t>(args.get_int("degree"));
  const std::size_t n = wb.data.num_nodes();

  // Device-speed heterogeneity from the traces: per-round training time.
  const energy::Fleet fleet = energy::Fleet::even(n, wb.workload);
  const auto& spec = energy::workload_spec(wb.workload);
  std::vector<double> train_seconds(n);
  double slowest = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    train_seconds[i] = fleet.device(i).profile.training_round_seconds(spec);
    slowest = std::max(slowest, train_seconds[i]);
  }

  util::Rng topo_rng(util::hash_combine(base.seed, 0x70700000ULL));
  const graph::Topology topology =
      graph::make_random_regular(n, degree, topo_rng);
  const graph::MixingMatrix mixing =
      graph::MixingMatrix::metropolis_hastings(topology);
  const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
  const core::SkipTrainScheduler scheduler(gamma_train, gamma_sync);

  const auto make_accountant = [&] {
    std::vector<std::size_t> degrees(n);
    for (std::size_t i = 0; i < n; ++i) degrees[i] = topology.degree(i);
    return energy::EnergyAccountant(fleet, energy::CommModel{},
                                    spec.model_params, std::move(degrees));
  };

  const metrics::Evaluator evaluator(&wb.data.test, base.eval_max_samples);
  const auto fleet_accuracy = [&](auto& engine) {
    std::vector<nn::Sequential*> models(n);
    for (std::size_t i = 0; i < n; ++i) models[i] = &engine.model(i);
    return evaluator.evaluate_fleet(models).accuracy.mean;
  };

  // --- Synchronous: every round waits for the slowest trainer. ---
  sim::EngineConfig sync_config;
  sync_config.local_steps = base.local_steps;
  sync_config.batch_size = base.batch_size;
  sync_config.learning_rate = base.learning_rate;
  sync_config.seed = base.seed;
  sim::RoundEngine sync_engine(wb.model, wb.data, mixing, scheduler,
                               make_accountant(), sync_config);
  const double sync_duration_factor = 0.05;
  double sync_clock = 0.0;
  for (std::size_t t = 1; t <= base.total_rounds; ++t) {
    const auto outcome = sync_engine.run_round();
    sync_clock += (outcome.kind == core::RoundKind::kTraining)
                      ? slowest
                      : slowest * sync_duration_factor;
  }
  const double sync_acc = fleet_accuracy(sync_engine);

  // --- Asynchronous: same wall-clock horizon, no barrier. ---
  sim::AsyncConfig async_config;
  async_config.local_steps = base.local_steps;
  async_config.batch_size = base.batch_size;
  async_config.learning_rate = base.learning_rate;
  async_config.seed = base.seed;
  async_config.sync_duration_factor = sync_duration_factor;
  sim::AsyncGossipEngine async_engine(wb.model, wb.data, topology, scheduler,
                                      make_accountant(), train_seconds,
                                      async_config);
  async_engine.run_until(sync_clock);
  const double async_acc = fleet_accuracy(async_engine);

  std::size_t async_trainings = 0;
  for (std::size_t i = 0; i < n; ++i) {
    async_trainings += async_engine.accountant().training_rounds_executed(i);
  }

  util::TablePrinter table({"engine", "wall-clock s", "trainings",
                            "train energy Wh", "test acc%"});
  table.add_row({"synchronous", util::fixed(sync_clock, 1),
                 std::to_string(base.total_rounds / 2 * n),
                 util::fixed(sync_engine.accountant().total_training_wh(), 3),
                 util::fixed(100.0 * sync_acc, 2)});
  table.add_row({"asynchronous", util::fixed(async_engine.now(), 1),
                 std::to_string(async_trainings),
                 util::fixed(async_engine.accountant().total_training_wh(), 3),
                 util::fixed(100.0 * async_acc, 2)});
  table.print();

  std::printf("\ndevice speeds (s/training round): fastest %.2f, slowest "
              "%.2f (%.1fx spread)\n",
              *std::min_element(train_seconds.begin(), train_seconds.end()),
              slowest,
              slowest / *std::min_element(train_seconds.begin(),
                                          train_seconds.end()));
  std::printf("\nexpected: at equal wall-clock the async engine executes "
              "more training (fast devices are not gated by the Poco X3) "
              "and reaches at least comparable accuracy — the §5.3 "
              "practicality argument.\n");
  return 0;
}
