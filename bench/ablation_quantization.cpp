// Ablation (ROADMAP quantized-exchange axis; SAQ-style scalar
// quantization): accuracy vs wire bytes across exchange codecs on a
// fig-5-style workload (synthetic CIFAR-10, SkipTrain at the tuned Γ
// schedule). Rows cover the dense codecs {fp32, fp16, int8, int8d} plus
// the sparse+quant composition (int8 values on a masked 10% exchange) —
// the full accuracy-vs-energy frontier one codec knob opens.
#include "common.hpp"

#include "graph/topology.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace skiptrain;
  util::ArgParser args("ablation_quantization",
                       "quantized exchange: accuracy vs wire bytes");
  bench::add_common_flags(args, /*default_nodes=*/32, /*default_rounds=*/160);
  args.add_int("degree", 6, "topology degree");
  args.parse(argc, argv);

  bench::print_header(
      "Ablation: quantized model exchange (codec axis)",
      "energy model bills wire bytes; fp32 dense = the paper's setting");

  const bench::Workbench wb = bench::make_cifar_bench(args);
  const sim::RunOptions base = bench::options_from_flags(args, wb);
  const auto degree = static_cast<std::size_t>(args.get_int("degree"));
  const std::size_t n = wb.data.num_nodes();
  const std::size_t dim = wb.model.num_parameters();

  util::Rng topo_rng(util::hash_combine(base.seed, 0x70700000ULL));
  const graph::Topology topology =
      graph::make_random_regular(n, degree, topo_rng);
  const graph::MixingMatrix mixing =
      graph::MixingMatrix::metropolis_hastings(topology);
  const auto [gamma_train, gamma_sync] = bench::tuned_gammas(degree);
  const core::SkipTrainScheduler scheduler(gamma_train, gamma_sync);
  const auto& spec = energy::workload_spec(wb.workload);
  const energy::Fleet fleet = energy::Fleet::even(n, wb.workload);
  const metrics::Evaluator evaluator(&wb.data.test, base.eval_max_samples);

  struct Variant {
    quant::Codec codec;
    std::size_t sparse_k;  // 0 = dense
  };
  const Variant variants[] = {
      {quant::Codec::kIdentity, 0},
      {quant::Codec::kFp16, 0},
      {quant::Codec::kInt8, 0},
      {quant::Codec::kInt8Dithered, 0},
      {quant::Codec::kInt8Dithered, dim / 10},
  };

  util::TablePrinter table({"exchange", "B/param", "wire fraction",
                            "final acc%", "comm energy Wh",
                            "train energy Wh"});
  for (const Variant& variant : variants) {
    std::vector<std::size_t> degrees(n);
    for (std::size_t i = 0; i < n; ++i) degrees[i] = topology.degree(i);
    energy::EnergyAccountant accountant(
        fleet, quant::comm_model_for(variant.codec), spec.model_params,
        std::move(degrees));
    sim::EngineConfig config;
    config.local_steps = base.local_steps;
    config.batch_size = base.batch_size;
    config.learning_rate = base.learning_rate;
    config.seed = base.seed;
    config.sparse_exchange_k = variant.sparse_k;
    config.exchange_codec = variant.codec;
    sim::RoundEngine engine(wb.model, wb.data, mixing, scheduler,
                            std::move(accountant), config);
    engine.run_rounds(base.total_rounds);

    std::vector<nn::Sequential*> models(n);
    for (std::size_t i = 0; i < n; ++i) models[i] = &engine.model(i);
    const double acc = evaluator.evaluate_fleet(models).accuracy.mean;

    const double bpp = quant::wire_bytes_per_param(variant.codec);
    const double mask_fraction =
        variant.sparse_k == 0
            ? 1.0
            : static_cast<double>(std::min(variant.sparse_k, dim)) /
                  static_cast<double>(dim);
    std::string label = quant::codec_name(variant.codec);
    if (variant.sparse_k != 0) {
      label += "+mask-" + std::to_string(variant.sparse_k);
    }
    table.add_row({label, util::fixed(bpp, 3),
                   util::fixed(mask_fraction * bpp / 4.0, 3),
                   util::fixed(100.0 * acc, 2),
                   util::fixed(engine.accountant().total_comm_wh(), 4),
                   util::fixed(engine.accountant().total_training_wh(), 2)});
  }
  table.print();

  std::printf(
      "\nreading: the comm bill scales with the codec's wire bytes "
      "(4 / 2 / 1.125 B per param), and quantization composes with the "
      "masked sparse exchange for a combined ~35x wire reduction. fp16 is "
      "accuracy-neutral; int8 costs little because the per-block scales "
      "track each row's range, and dithering keeps its error unbiased.\n");
  return 0;
}
