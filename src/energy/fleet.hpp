// A fleet maps every simulated node to a smartphone trace entry. The paper
// distributes its 256 nodes evenly among the four device types (§4.2).
#pragma once

#include <cstddef>
#include <vector>

#include "energy/device.hpp"

namespace skiptrain::energy {

class Fleet {
 public:
  Fleet() = default;
  Fleet(std::vector<std::size_t> device_of_node, Workload workload);

  /// Round-robin even assignment over smartphone_traces(): node i gets
  /// device i % 4, so 256 nodes yield 64 of each type as in the paper.
  static Fleet even(std::size_t nodes, Workload workload);

  /// Single-device fleet (all nodes share one profile); used by ablations.
  static Fleet uniform(std::size_t nodes, std::size_t device_index,
                       Workload workload);

  std::size_t num_nodes() const { return device_of_node_.size(); }
  Workload workload() const { return workload_; }

  const TraceEntry& device(std::size_t node) const;
  std::size_t device_index(std::size_t node) const;

  /// Per-round training energy of `node` (canonical trace value, mWh).
  double training_energy_mwh(std::size_t node) const;

  /// τ_i — the node's training-round budget under the drain rule, scaled
  /// by the fleet's budget scale (see with_budget_scale).
  std::size_t budget_rounds(std::size_t node) const;

  /// Returns a copy whose budgets are the canonical Table 2 budgets times
  /// `factor` (floored, minimum 1). Scaled-horizon experiments use this to
  /// keep τ_i / T at the paper's proportion: the paper runs T = 1000 with
  /// τ ∈ [272, 681]; a T = 200 bench uses factor 0.2.
  [[nodiscard]] Fleet with_budget_scale(double factor) const;
  double budget_scale() const { return budget_scale_; }

  /// Mean per-round training energy across nodes (mWh). For an even
  /// 256-node fleet this equals mean_energy_per_round_mwh(workload).
  double mean_training_energy_mwh() const;

  /// Closed-form total training energy (Wh) when every node executes
  /// `training_rounds` training rounds — the quantity behind Figure 3's
  /// energy heatmap and Table 3's energy columns.
  double total_training_energy_wh(std::size_t training_rounds) const;

  /// Closed-form fleet-wide budget (Wh): Σ_i τ_i x e_i. The "Energy
  /// budget" ceiling of Table 4.
  double total_budget_wh() const;

 private:
  std::vector<std::size_t> device_of_node_;
  Workload workload_ = Workload::kCifar10;
  double budget_scale_ = 1.0;
};

}  // namespace skiptrain::energy
