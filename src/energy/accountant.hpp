// Per-node energy accounting during a simulation (Eq. 2-3 of the paper)
// plus budget enforcement for the constrained setting (§3.2).
#pragma once

#include <cstddef>
#include <vector>

#include "energy/device.hpp"
#include "energy/fleet.hpp"

namespace skiptrain::energy {

class EnergyAccountant {
 public:
  /// `model_params` and `degree_of_node` drive the communication model.
  EnergyAccountant(Fleet fleet, CommModel comm_model,
                   std::size_t model_params,
                   std::vector<std::size_t> degree_of_node);

  /// Replaces the per-node training budgets (default: the fleet's τ_i).
  /// Lets deployments with non-smartphone energy envelopes — e.g. the UAV
  /// swarm example — impose their own round budgets.
  void set_budgets(std::vector<std::size_t> budgets);

  std::size_t num_nodes() const { return fleet_.num_nodes(); }
  const Fleet& fleet() const { return fleet_; }

  /// Dense model size the communication model bills for full exchanges.
  std::size_t model_params() const { return model_params_; }

  /// Records one local training execution by `node` (adds its per-round
  /// training energy and decrements the remaining budget).
  void record_training(std::size_t node);

  /// Records one sharing+aggregation step by `node` (communication energy;
  /// does not touch the training budget — this is the paper's core
  /// observation: sync rounds are nearly free).
  void record_exchange(std::size_t node);

  /// Same, but for a compressed exchange whose wire volume corresponds to
  /// `effective_params` dense parameters (see core::effective_params).
  void record_exchange(std::size_t node, std::size_t effective_params);

  /// What record_training(node) WOULD bill — the scenario engine quotes
  /// this before committing, so a battery brownout can cancel the work
  /// instead of billing energy the node does not have.
  double training_cost_mwh(std::size_t node) const;

  /// What record_exchange(node[, effective_params]) would bill.
  double exchange_cost_mwh(std::size_t node) const;
  double exchange_cost_mwh(std::size_t node,
                           std::size_t effective_params) const;

  /// Remaining training rounds before node i's battery allowance runs out.
  std::size_t remaining_budget(std::size_t node) const;
  bool has_budget(std::size_t node) const {
    return remaining_budget(node) > 0;
  }

  std::size_t training_rounds_executed(std::size_t node) const;

  /// Cumulative energies.
  double node_training_mwh(std::size_t node) const;
  double node_comm_mwh(std::size_t node) const;
  double total_training_wh() const;
  double total_comm_wh() const;
  double total_wh() const { return total_training_wh() + total_comm_wh(); }

  /// Complete mutable state (per-node tallies and remaining budgets) —
  /// everything record_training/record_exchange touch. Fleet checkpoints
  /// capture and restore it so resumed runs bill identically; the
  /// construction parameters (fleet, comm model, degrees) are NOT part of
  /// the state and must match at restore time.
  struct State {
    std::vector<double> training_mwh;
    std::vector<double> comm_mwh;
    std::vector<std::size_t> training_rounds;
    std::vector<std::size_t> budget;
  };

  [[nodiscard]] State capture_state() const;
  /// Throws std::invalid_argument when the state's node count mismatches.
  void restore_state(State state);

 private:
  Fleet fleet_;
  CommModel comm_model_;
  std::size_t model_params_;
  std::vector<std::size_t> degree_of_node_;
  std::vector<double> training_mwh_;
  std::vector<double> comm_mwh_;
  std::vector<std::size_t> training_rounds_;
  std::vector<std::size_t> budget_;
};

}  // namespace skiptrain::energy
