// Smartphone energy traces (paper §2.3 and §4.2, Table 2).
//
// The paper derives per-round training energy for four smartphones from
// three ingredients:
//   1. sustained training power P_hw from the Burnout benchmark;
//   2. per-sample MobileNet-v2 inference latency from the AI Benchmark;
//   3. FedScale's scaling rule: training time = 3 x inference time, with
//      inference time scaled linearly by batch size, local steps and the
//      model-to-MobileNet parameter ratio.
// Per-round energy is then E = P_hw * Δt (Eq. 2).
//
// This module keeps BOTH representations:
//  * the *canonical trace* — per-round mWh and round budgets exactly as in
//    Table 2 (with the sub-display-precision digits calibrated so the
//    aggregate Table 3 energies land on the paper's values, see DESIGN.md);
//  * the *derivation pipeline* — the formulas above with per-device
//    (power, latency) constants, tested to agree with the canonical trace
//    to within a few percent. Benches use the canonical numbers; the
//    pipeline documents and validates the methodology.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace skiptrain::energy {

/// The two evaluation workloads of the paper.
enum class Workload { kCifar10, kFemnist };

[[nodiscard]] const char* workload_name(Workload workload);

/// Table 1 constants that feed the energy derivation.
struct WorkloadSpec {
  std::string name;
  std::size_t model_params;       // |x|
  std::size_t batch_size;         // |ξ|
  std::size_t local_steps;        // E
  std::size_t total_rounds;       // T
  double battery_drain_fraction;  // budget rule: 10% CIFAR, 50% FEMNIST
};

[[nodiscard]] const WorkloadSpec& workload_spec(Workload workload);

/// MobileNet-v2 parameter count used as the AI-Benchmark reference model.
inline constexpr std::size_t kMobileNetV2Params = 3504872;

/// FedScale's training-time rule: train = 3 x inference.
inline constexpr double kTrainOverInferenceFactor = 3.0;

struct DeviceProfile {
  std::string name;
  double power_watts;           // Burnout-style sustained training power
  double mobilenet_latency_ms;  // AI-Benchmark per-sample inference latency
  double battery_wh;            // pack capacity

  /// Δt of one training round (seconds):
  ///   3 x t_inf x |ξ| x E x (|x| / |x_mobilenet|).
  [[nodiscard]] double training_round_seconds(const WorkloadSpec& spec) const;

  /// E = P x Δt, in mWh (Eq. 2).
  [[nodiscard]] double derived_energy_per_round_mwh(
      const WorkloadSpec& spec) const;

  /// τ: number of training rounds before the allowed battery drain is
  /// exhausted, given a per-round energy.
  [[nodiscard]] std::size_t budget_rounds(const WorkloadSpec& spec,
                                          double energy_per_round_mwh) const;
};

/// One canonical trace row = Table 2 of the paper.
struct TraceEntry {
  DeviceProfile profile;
  double cifar_mwh;            // "Average Energy [mWh]" CIFAR-10 column
  double femnist_mwh;          // FEMNIST column
  std::size_t cifar_rounds;    // "Training rounds" CIFAR-10 column (τ)
  std::size_t femnist_rounds;  // FEMNIST column (τ)

  [[nodiscard]] double energy_per_round_mwh(Workload workload) const;
  [[nodiscard]] std::size_t canonical_budget_rounds(Workload workload) const;
};

/// The four smartphones of Table 2, in paper order:
/// Xiaomi 12 Pro, Samsung Galaxy S22 Ultra, OnePlus Nord 2 5G, Xiaomi Poco X3.
[[nodiscard]] const std::vector<TraceEntry>& smartphone_traces();

/// Mean per-round training energy across the trace devices (mWh); this is
/// the constant behind every closed-form energy figure in the paper:
/// total = mean x nodes x training_rounds.
[[nodiscard]] double mean_energy_per_round_mwh(Workload workload);

/// Communication + aggregation energy model, calibrated against the
/// intro's measurement: on CIFAR-10 with 256 nodes and 1000 rounds,
/// training costs 1.51 kWh while sharing+aggregation costs ~7 Wh (>200x
/// cheaper). Energy scales with transferred bytes (model size x degree).
struct CommModel {
  /// mWh consumed per megabyte sent or received (default calibrated to the
  /// paper's 7 Wh aggregate; ~46 J/GB, in line with published Wi-Fi/LTE
  /// per-bit energy measurements).
  double mwh_per_megabyte = 0.01268;

  /// Wire bytes per exchanged parameter. Defaults to float32 (the paper's
  /// setting); quantized exchanges derive it from the active codec via
  /// quant::comm_model_for (4 / 2 / 1.125 for fp32 / fp16 / int8) so the
  /// bill tracks the true wire volume instead of assuming 4 bytes.
  double bytes_per_param = 4.0;

  /// Energy for one sharing+aggregation step of a node with `degree`
  /// neighbors exchanging a `params`-parameter model (send only; the
  /// symmetric receive is billed to the peer's own exchange).
  [[nodiscard]] double exchange_energy_mwh(std::size_t params,
                                           std::size_t degree) const;
};

}  // namespace skiptrain::energy
