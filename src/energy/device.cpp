#include "energy/device.hpp"

#include <cmath>
#include <stdexcept>

namespace skiptrain::energy {

const char* workload_name(Workload workload) {
  switch (workload) {
    case Workload::kCifar10:
      return "CIFAR-10";
    case Workload::kFemnist:
      return "FEMNIST";
  }
  return "?";
}

const WorkloadSpec& workload_spec(Workload workload) {
  // Table 1 of the paper; the drain fractions come from §4.2 ("We set this
  // value to 10% and 50% for CIFAR-10 and FEMNIST").
  static const WorkloadSpec kCifar{
      "CIFAR-10", 89834, 32, 20, 1000, 0.10};
  static const WorkloadSpec kFemnist{
      "FEMNIST", 1690046, 16, 7, 3000, 0.50};
  return workload == Workload::kCifar10 ? kCifar : kFemnist;
}

double DeviceProfile::training_round_seconds(const WorkloadSpec& spec) const {
  const double param_scale = static_cast<double>(spec.model_params) /
                             static_cast<double>(kMobileNetV2Params);
  const double samples_per_round =
      static_cast<double>(spec.batch_size * spec.local_steps);
  return kTrainOverInferenceFactor * (mobilenet_latency_ms / 1000.0) *
         samples_per_round * param_scale;
}

double DeviceProfile::derived_energy_per_round_mwh(
    const WorkloadSpec& spec) const {
  const double joules = power_watts * training_round_seconds(spec);
  return joules / 3.6;  // 1 mWh = 3.6 J
}

std::size_t DeviceProfile::budget_rounds(const WorkloadSpec& spec,
                                         double energy_per_round_mwh) const {
  if (energy_per_round_mwh <= 0.0) {
    throw std::invalid_argument("budget_rounds: energy must be positive");
  }
  const double allowance_mwh =
      spec.battery_drain_fraction * battery_wh * 1000.0;
  // The 1e-9 guards against FP representation error turning an exact
  // integer quotient (e.g. 681.0) into 680.999... before the floor.
  return static_cast<std::size_t>(
      std::floor(allowance_mwh / energy_per_round_mwh + 1e-9));
}

double TraceEntry::energy_per_round_mwh(Workload workload) const {
  return workload == Workload::kCifar10 ? cifar_mwh : femnist_mwh;
}

std::size_t TraceEntry::canonical_budget_rounds(Workload workload) const {
  return workload == Workload::kCifar10 ? cifar_rounds : femnist_rounds;
}

const std::vector<TraceEntry>& smartphone_traces() {
  // Canonical Table 2 rows. The per-round energies carry one or two more
  // digits than the paper displays; those digits are calibrated so that
  //   mean(cifar) x 256 nodes x 1000 rounds  = 1510.04 Wh  (Table 3) and
  //   mean(femnist) x 256 nodes x 3000 rounds = 14914.38 Wh (Table 3),
  // while still rounding to the displayed Table 2 values. Battery
  // capacities follow from the τ column via the drain rule
  // (battery = τ_cifar x e_cifar / 10%), landing on realistic pack sizes
  // (e.g. Poco X3: 23.1 Wh ≈ its 6000 mAh @ 3.85 V battery).
  //
  // power_watts / mobilenet_latency_ms implement the Burnout + AI-Benchmark
  // derivation; they are fitted so the pipeline reproduces the canonical
  // energies within ~3% for both workloads (tested).
  static const std::vector<TraceEntry> kTraces = {
      {{"Xiaomi 12 Pro", 6.0, 79.25, 17.680}, 6.5, 21.9, 272, 413},
      {{"Samsung Galaxy S22 Ultra", 5.5, 79.81, 19.440}, 6.0, 19.8, 324, 492},
      {{"OnePlus Nord 2 5G", 4.0, 47.55, 17.706}, 2.6, 8.4, 681, 1034},
      {{"Xiaomi Poco X3", 5.0, 124.28, 23.105}, 8.4944, 27.5791, 272, 413},
  };
  return kTraces;
}

double mean_energy_per_round_mwh(Workload workload) {
  const auto& traces = smartphone_traces();
  double total = 0.0;
  for (const TraceEntry& entry : traces) {
    total += entry.energy_per_round_mwh(workload);
  }
  return total / static_cast<double>(traces.size());
}

double CommModel::exchange_energy_mwh(std::size_t params,
                                      std::size_t degree) const {
  const double megabytes =
      static_cast<double>(params) * bytes_per_param / 1.0e6;
  return mwh_per_megabyte * megabytes * static_cast<double>(degree);
}

}  // namespace skiptrain::energy
