#include "energy/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace skiptrain::energy {

Fleet::Fleet(std::vector<std::size_t> device_of_node, Workload workload)
    : device_of_node_(std::move(device_of_node)), workload_(workload) {
  const std::size_t device_count = smartphone_traces().size();
  for (const std::size_t d : device_of_node_) {
    if (d >= device_count) {
      throw std::invalid_argument("Fleet: device index out of range");
    }
  }
}

Fleet Fleet::even(std::size_t nodes, Workload workload) {
  std::vector<std::size_t> assignment(nodes);
  const std::size_t device_count = smartphone_traces().size();
  for (std::size_t i = 0; i < nodes; ++i) assignment[i] = i % device_count;
  return Fleet(std::move(assignment), workload);
}

Fleet Fleet::uniform(std::size_t nodes, std::size_t device_index,
                     Workload workload) {
  return Fleet(std::vector<std::size_t>(nodes, device_index), workload);
}

const TraceEntry& Fleet::device(std::size_t node) const {
  return smartphone_traces()[device_of_node_[node]];
}

std::size_t Fleet::device_index(std::size_t node) const {
  return device_of_node_[node];
}

double Fleet::training_energy_mwh(std::size_t node) const {
  return device(node).energy_per_round_mwh(workload_);
}

std::size_t Fleet::budget_rounds(std::size_t node) const {
  const std::size_t canonical = device(node).canonical_budget_rounds(workload_);
  if (budget_scale_ == 1.0) return canonical;
  const double scaled =
      std::floor(static_cast<double>(canonical) * budget_scale_ + 1e-9);
  return std::max<std::size_t>(1, static_cast<std::size_t>(scaled));
}

Fleet Fleet::with_budget_scale(double factor) const {
  if (factor <= 0.0) {
    throw std::invalid_argument("Fleet: budget scale must be positive");
  }
  Fleet scaled = *this;
  scaled.budget_scale_ = factor;
  return scaled;
}

double Fleet::mean_training_energy_mwh() const {
  if (device_of_node_.empty()) return 0.0;
  double total = 0.0;
  for (std::size_t node = 0; node < num_nodes(); ++node) {
    total += training_energy_mwh(node);
  }
  return total / static_cast<double>(num_nodes());
}

double Fleet::total_training_energy_wh(std::size_t training_rounds) const {
  double total_mwh = 0.0;
  for (std::size_t node = 0; node < num_nodes(); ++node) {
    total_mwh +=
        training_energy_mwh(node) * static_cast<double>(training_rounds);
  }
  return total_mwh / 1000.0;
}

double Fleet::total_budget_wh() const {
  double total_mwh = 0.0;
  for (std::size_t node = 0; node < num_nodes(); ++node) {
    total_mwh += training_energy_mwh(node) *
                 static_cast<double>(budget_rounds(node));
  }
  return total_mwh / 1000.0;
}

}  // namespace skiptrain::energy
