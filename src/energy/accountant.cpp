#include "energy/accountant.hpp"

#include <cassert>
#include <stdexcept>

namespace skiptrain::energy {

EnergyAccountant::EnergyAccountant(Fleet fleet, CommModel comm_model,
                                   std::size_t model_params,
                                   std::vector<std::size_t> degree_of_node)
    : fleet_(std::move(fleet)),
      comm_model_(comm_model),
      model_params_(model_params),
      degree_of_node_(std::move(degree_of_node)) {
  if (degree_of_node_.size() != fleet_.num_nodes()) {
    throw std::invalid_argument(
        "EnergyAccountant: degree list size must match fleet size");
  }
  const std::size_t n = fleet_.num_nodes();
  training_mwh_.assign(n, 0.0);
  comm_mwh_.assign(n, 0.0);
  training_rounds_.assign(n, 0);
  budget_.resize(n);
  for (std::size_t node = 0; node < n; ++node) {
    budget_[node] = fleet_.budget_rounds(node);
  }
}

void EnergyAccountant::set_budgets(std::vector<std::size_t> budgets) {
  if (budgets.size() != num_nodes()) {
    throw std::invalid_argument(
        "EnergyAccountant::set_budgets: size must match node count");
  }
  budget_ = std::move(budgets);
}

void EnergyAccountant::record_training(std::size_t node) {
  assert(node < num_nodes());
  training_mwh_[node] += fleet_.training_energy_mwh(node);
  ++training_rounds_[node];
  if (budget_[node] > 0) --budget_[node];
}

void EnergyAccountant::record_exchange(std::size_t node) {
  record_exchange(node, model_params_);
}

void EnergyAccountant::record_exchange(std::size_t node,
                                       std::size_t effective_params) {
  assert(node < num_nodes());
  comm_mwh_[node] += comm_model_.exchange_energy_mwh(effective_params,
                                                     degree_of_node_[node]);
}

double EnergyAccountant::training_cost_mwh(std::size_t node) const {
  assert(node < num_nodes());
  return fleet_.training_energy_mwh(node);
}

double EnergyAccountant::exchange_cost_mwh(std::size_t node) const {
  return exchange_cost_mwh(node, model_params_);
}

double EnergyAccountant::exchange_cost_mwh(
    std::size_t node, std::size_t effective_params) const {
  assert(node < num_nodes());
  return comm_model_.exchange_energy_mwh(effective_params,
                                         degree_of_node_[node]);
}

std::size_t EnergyAccountant::remaining_budget(std::size_t node) const {
  assert(node < num_nodes());
  return budget_[node];
}

std::size_t EnergyAccountant::training_rounds_executed(
    std::size_t node) const {
  assert(node < num_nodes());
  return training_rounds_[node];
}

double EnergyAccountant::node_training_mwh(std::size_t node) const {
  assert(node < num_nodes());
  return training_mwh_[node];
}

double EnergyAccountant::node_comm_mwh(std::size_t node) const {
  assert(node < num_nodes());
  return comm_mwh_[node];
}

double EnergyAccountant::total_training_wh() const {
  double total = 0.0;
  for (const double mwh : training_mwh_) total += mwh;
  return total / 1000.0;
}

EnergyAccountant::State EnergyAccountant::capture_state() const {
  return State{training_mwh_, comm_mwh_, training_rounds_, budget_};
}

void EnergyAccountant::restore_state(State state) {
  const std::size_t n = num_nodes();
  if (state.training_mwh.size() != n || state.comm_mwh.size() != n ||
      state.training_rounds.size() != n || state.budget.size() != n) {
    throw std::invalid_argument(
        "EnergyAccountant::restore_state: state size mismatch");
  }
  training_mwh_ = std::move(state.training_mwh);
  comm_mwh_ = std::move(state.comm_mwh);
  training_rounds_ = std::move(state.training_rounds);
  budget_ = std::move(state.budget);
}

double EnergyAccountant::total_comm_wh() const {
  double total = 0.0;
  for (const double mwh : comm_mwh_) total += mwh;
  return total / 1000.0;
}

}  // namespace skiptrain::energy
