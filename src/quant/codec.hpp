// Quantized model-exchange codecs (ROADMAP: "int8/FP16 row storage with
// per-row scales for the exchange path, converting at the staging
// boundary"; SAQ-style scalar quantization is the related-work axis).
//
// A codec turns one ParameterPlane row (a node's flat float32 parameter
// vector) into the compact representation that crosses the simulated wire,
// and back. Everything stays float32 inside the plane and the blocked
// aggregation kernels — encode/decode happen only at the staging boundary,
// so the wire-volume model and the plane layout stay in sync:
//
//   sender row ──encode──▶ QuantizedRow (wire) ──decode──▶ staging row
//                                │
//                                └── wire_bytes() drives the energy bill
//
// Codecs:
//   identity  4     B/param  float32 passthrough (the paper's setting);
//                            engines skip the staging copy entirely.
//   fp16      2     B/param  IEEE binary16, round-to-nearest-even.
//   int8      1.125 B/param  per-block (64 values) affine uint8:
//                            q = round((x−lo)/scale), x̂ = lo + scale·q,
//                            block header = lo + scale as float32 (8 B).
//   int8d     1.125 B/param  int8 with subtractive dithering: a uniform
//                            offset u_c derived from (seed, round, slot)
//                            is added before the floor at encode and
//                            subtracted at decode. The dither stream is a
//                            round-shared deterministic RNG — every
//                            receiver regenerates the same u_c, so all
//                            decodes are bit-identical — and it makes the
//                            quantization error unbiased and
//                            signal-independent (|err| ≤ scale/2).
//
// Determinism: encode and decode are pure functions of (row bytes, codec
// seed, round), never of thread interleaving; the dither hash is stateless
// per coordinate.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "energy/device.hpp"

namespace skiptrain::quant {

/// Wire format of one exchanged model row.
enum class Codec {
  kIdentity,      // float32 passthrough
  kFp16,          // IEEE binary16 values
  kInt8,          // per-block affine uint8, nearest rounding
  kInt8Dithered,  // per-block affine uint8, shared subtractive dither
};

/// Display name ("fp32", "fp16", "int8", "int8d").
[[nodiscard]] const char* codec_name(Codec codec);

/// Config-file token ("identity", "fp16", "int8", "int8-dither").
[[nodiscard]] const char* codec_token(Codec codec);

/// Parses a config token (also accepts the display aliases "fp32" and
/// "int8d"). Throws std::invalid_argument on anything else.
[[nodiscard]] Codec parse_codec(const std::string& name);

/// All codecs, identity first — the axis order of codec sweeps.
[[nodiscard]] const std::vector<Codec>& all_codecs();

/// Values per int8 block; each block ships a (lo, scale) float32 header.
inline constexpr std::size_t kInt8BlockValues = 64;
inline constexpr std::size_t kInt8BlockHeaderBytes = 2 * sizeof(float);

/// Analytic wire cost per parameter: 4 (identity), 2 (fp16),
/// 1 + 8/64 = 1.125 (int8 variants, block header amortized). Partial
/// trailing blocks are ignored here — the energy model bills at the
/// paper's model size, not the simulated dim, so the amortized figure is
/// the right constant (QuantizedRow::wire_bytes is exact per row).
[[nodiscard]] double wire_bytes_per_param(Codec codec);

/// energy::CommModel with bytes_per_param derived from the active codec —
/// the one place that replaces the old hardcoded 4 bytes/param.
[[nodiscard]] energy::CommModel comm_model_for(Codec codec,
                                               energy::CommModel base = {});

/// Exact bytes one encoded `dim`-value row occupies on the wire, including
/// partial-block int8 headers — what QuantizedRow::wire_bytes() reports
/// after an encode, computable without encoding. The engines' telemetry
/// wire-byte tallies use this (the analytic per-param figure above
/// amortizes away partial trailing blocks).
[[nodiscard]] std::size_t exact_row_wire_bytes(Codec codec, std::size_t dim);

// --- fp16 scalar conversions (exposed for tests/benches) -------------------

/// float32 -> binary16 with round-to-nearest-even (overflow -> ±Inf,
/// underflow -> ±0, NaN preserved as a quiet NaN).
[[nodiscard]] std::uint16_t fp16_from_float(float value);

/// binary16 -> float32, exact.
[[nodiscard]] float fp16_to_float(std::uint16_t half);

// --- wire buffer -----------------------------------------------------------

/// One encoded row. Storage is typed per codec family (only the active
/// family's vectors are populated); wire_bytes() reports the exact
/// serialized size, including int8 block headers.
struct QuantizedRow {
  Codec codec = Codec::kIdentity;
  std::size_t dim = 0;
  std::size_t round = 0;  // dither stream id (kInt8Dithered only)

  std::vector<float> fp32;            // kIdentity
  std::vector<std::uint16_t> half;    // kFp16
  std::vector<std::uint8_t> codes;    // int8 variants
  std::vector<float> block_lo;        // int8 variants, per block
  std::vector<float> block_scale;     // int8 variants, per block

  [[nodiscard]] std::size_t num_blocks() const {
    return (dim + kInt8BlockValues - 1) / kInt8BlockValues;
  }

  /// Exact bytes this row occupies on the wire.
  [[nodiscard]] std::size_t wire_bytes() const;
};

// --- codec interface -------------------------------------------------------

/// Stateless-per-row encoder/decoder. One instance may be shared by every
/// node of an engine: encode/decode are const and thread-safe; only
/// begin_round mutates (call it once per round, before the parallel
/// encode fan-out).
class RowCodec {
 public:
  virtual ~RowCodec() = default;

  [[nodiscard]] virtual Codec kind() const = 0;

  [[nodiscard]] double bytes_per_param() const {
    return wire_bytes_per_param(kind());
  }

  /// Sets the shared dither stream for the round about to be exchanged.
  /// No-op for undithered codecs. Decode does NOT depend on this state —
  /// it reads the round id stored on the QuantizedRow, so a receiver
  /// decodes any payload its seed can regenerate the dither for.
  virtual void begin_round(std::size_t round);

  /// Encodes `row` into `out`, reusing out's buffers when possible.
  virtual void encode(std::span<const float> row, QuantizedRow& out) const = 0;

  /// Decodes `in` (dim must match out.size()) into float32.
  virtual void decode(const QuantizedRow& in, std::span<float> out) const = 0;
};

/// Factory. `seed` feeds the dither stream of kInt8Dithered (all nodes of
/// a fleet must share it — pass the experiment seed); other codecs ignore
/// it.
[[nodiscard]] std::unique_ptr<RowCodec> make_codec(Codec kind,
                                                   std::uint64_t seed = 0);

}  // namespace skiptrain::quant
