// Batch (whole-row) kernels for the exchange codecs, plus the scalar
// reference paths they must match bit for bit.
//
// The vectorized kernels process entire rows with branch-free bodies
// (integer selects, floor/compare rounding) that the compiler can
// auto-vectorize, instead of calling the scalar conversion per element.
// Every kernel is bitwise identical to its `*_scalar` counterpart — the
// seed per-element code retained verbatim — which
// tests/test_quant_kernels.cpp enforces exhaustively for fp16 (all 2^16
// halves) and by fuzz for the int8 block codecs (including constant and
// denormal-heavy rows). One scoping note: for pathological int8 blocks
// whose range is denormal-small, infinite, or NaN, the seed path funnels
// ±Inf/NaN through lroundf, whose out-of-range result is the *x86*
// saturating float→long conversion (clamps to code 0); the batch kernels
// replicate that outcome explicitly, so on a non-x86 target the scalar
// seed path — not the batch kernels — is what would diverge.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace skiptrain::quant {

// --- shared dither stream (kInt8Dithered; round-shared stateless RNG) ------

/// Stream id for (seed, round): SplitMix64 over a tagged seed.
[[nodiscard]] std::uint64_t dither_stream(std::uint64_t seed,
                                          std::size_t round);

/// Uniform in [0, 1) from (stream, coordinate): one SplitMix64 finalizer
/// over a Weyl-advanced state. Every node with the same seed and round
/// regenerates the identical dither.
[[nodiscard]] float dither_uniform(std::uint64_t stream,
                                   std::uint64_t coordinate);

// --- fp16 -------------------------------------------------------------------

/// Wire variant of fp16_from_float (codec.hpp): values that would map to
/// ±Inf saturate to the largest finite half. An Inf on the wire would turn
/// receiver-side aggregation — and the sender's exact-self correction,
/// Inf − Inf — into NaN; NaN inputs are kept (they signal a run that is
/// already broken).
[[nodiscard]] std::uint16_t fp16_wire_from_float(float value);

/// dst[i] = fp16_from_float(src[i]) — vectorized round-to-nearest-even.
void fp16_encode(std::span<const float> src, std::uint16_t* dst);

/// dst[i] = fp16_wire_from_float(src[i]) — vectorized, Inf-saturating.
void fp16_encode_wire(std::span<const float> src, std::uint16_t* dst);

/// dst[i] = fp16_to_float(src[i]) — vectorized exact widening.
void fp16_decode(const std::uint16_t* src, std::span<float> dst);

/// Scalar reference loops (call the per-element conversions).
void fp16_encode_scalar(std::span<const float> src, std::uint16_t* dst);
void fp16_encode_wire_scalar(std::span<const float> src, std::uint16_t* dst);
void fp16_decode_scalar(const std::uint16_t* src, std::span<float> dst);

// --- int8 per-block affine --------------------------------------------------
//
// Blocks of kInt8BlockValues (codec.hpp) values share an affine range
// [lo, lo + 255*scale]; a constant block encodes with scale = 0 and
// decodes exactly to lo. `codes`, `lo`, `scale` are caller-sized to
// row.size() and num_blocks respectively.

/// Nearest-rounding encode (the kInt8 wire format).
void int8_encode(std::span<const float> row, std::uint8_t* codes, float* lo,
                 float* scale);

/// Subtractive-dither encode (kInt8Dithered): q = floor(t + u).
void int8_encode_dithered(std::span<const float> row, std::uint64_t stream,
                          std::uint8_t* codes, float* lo, float* scale);

/// Decode for kInt8: out[i] = lo + scale * code.
void int8_decode(std::size_t dim, const std::uint8_t* codes, const float* lo,
                 const float* scale, float* out);

/// Decode for kInt8Dithered: out[i] = lo + scale * (code + 0.5 - u).
void int8_decode_dithered(std::size_t dim, const std::uint8_t* codes,
                          const float* lo, const float* scale,
                          std::uint64_t stream, float* out);

/// Scalar reference paths (the seed per-element code, verbatim).
void int8_encode_scalar(std::span<const float> row, std::uint8_t* codes,
                        float* lo, float* scale);
void int8_encode_dithered_scalar(std::span<const float> row,
                                 std::uint64_t stream, std::uint8_t* codes,
                                 float* lo, float* scale);
void int8_decode_scalar(std::size_t dim, const std::uint8_t* codes,
                        const float* lo, const float* scale, float* out);
void int8_decode_dithered_scalar(std::size_t dim, const std::uint8_t* codes,
                                 const float* lo, const float* scale,
                                 std::uint64_t stream, float* out);

}  // namespace skiptrain::quant
