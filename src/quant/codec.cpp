#include "quant/codec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace skiptrain::quant {

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kIdentity:
      return "fp32";
    case Codec::kFp16:
      return "fp16";
    case Codec::kInt8:
      return "int8";
    case Codec::kInt8Dithered:
      return "int8d";
  }
  return "?";
}

const char* codec_token(Codec codec) {
  switch (codec) {
    case Codec::kIdentity:
      return "identity";
    case Codec::kFp16:
      return "fp16";
    case Codec::kInt8:
      return "int8";
    case Codec::kInt8Dithered:
      return "int8-dither";
  }
  return "?";
}

Codec parse_codec(const std::string& name) {
  if (name == "identity" || name == "fp32") return Codec::kIdentity;
  if (name == "fp16") return Codec::kFp16;
  if (name == "int8") return Codec::kInt8;
  if (name == "int8-dither" || name == "int8d") return Codec::kInt8Dithered;
  throw std::invalid_argument(
      "parse_codec: unknown codec '" + name +
      "' (expected identity|fp16|int8|int8-dither)");
}

const std::vector<Codec>& all_codecs() {
  static const std::vector<Codec> kAll = {Codec::kIdentity, Codec::kFp16,
                                          Codec::kInt8, Codec::kInt8Dithered};
  return kAll;
}

double wire_bytes_per_param(Codec codec) {
  switch (codec) {
    case Codec::kIdentity:
      return 4.0;
    case Codec::kFp16:
      return 2.0;
    case Codec::kInt8:
    case Codec::kInt8Dithered:
      return 1.0 + static_cast<double>(kInt8BlockHeaderBytes) /
                       static_cast<double>(kInt8BlockValues);
  }
  return 4.0;
}

energy::CommModel comm_model_for(Codec codec, energy::CommModel base) {
  base.bytes_per_param = wire_bytes_per_param(codec);
  return base;
}

// --- fp16 ------------------------------------------------------------------

std::uint16_t fp16_from_float(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t abs = bits & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // Inf / NaN
    return static_cast<std::uint16_t>(
        sign | (abs > 0x7f800000u ? 0x7e00u : 0x7c00u));
  }
  const std::uint32_t exp = abs >> 23;
  const std::uint32_t mant = abs & 0x7fffffu;
  if (exp >= 143) return static_cast<std::uint16_t>(sign | 0x7c00u);  // ovf
  if (exp >= 113) {
    // Normal half. Rounding may carry into the exponent field — including
    // into Inf at the top of the range — which the flat layout absorbs.
    auto half = static_cast<std::uint16_t>(((exp - 112) << 10) | (mant >> 13));
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  if (exp < 102) return sign;  // underflows to signed zero
  // Subnormal half: shift the full 24-bit significand into 10 bits with
  // round-to-nearest-even.
  const std::uint32_t significand = mant | 0x800000u;
  const std::uint32_t shift = 126 - exp;  // 14..24
  auto half = static_cast<std::uint16_t>(significand >> shift);
  const std::uint32_t half_bit = 1u << (shift - 1);
  const std::uint32_t rem = significand & ((1u << shift) - 1u);
  if (rem > half_bit || (rem == half_bit && (half & 1u))) ++half;
  return static_cast<std::uint16_t>(sign | half);
}

float fp16_to_float(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1fu;
  const std::uint32_t mant = half & 0x3ffu;
  std::uint32_t bits;
  if (exp == 31) {  // Inf / NaN
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {  // normal
    bits = sign | ((exp + 112) << 23) | (mant << 13);
  } else if (mant == 0) {  // signed zero
    bits = sign;
  } else {  // subnormal: renormalize
    std::uint32_t m = mant;
    std::uint32_t shifts = 0;
    while (!(m & 0x400u)) {
      m <<= 1;
      ++shifts;
    }
    bits = sign | ((113 - shifts) << 23) | ((m & 0x3ffu) << 13);
  }
  return std::bit_cast<float>(bits);
}

// --- wire buffer -----------------------------------------------------------

std::size_t QuantizedRow::wire_bytes() const {
  switch (codec) {
    case Codec::kIdentity:
      return dim * sizeof(float);
    case Codec::kFp16:
      return dim * sizeof(std::uint16_t);
    case Codec::kInt8:
    case Codec::kInt8Dithered:
      return dim + num_blocks() * kInt8BlockHeaderBytes;
  }
  return dim * sizeof(float);
}

namespace {

/// Stateless uniform in [0,1) from (stream, coordinate): one SplitMix64
/// finalizer over a Weyl-advanced state. Every node with the same seed and
/// round regenerates the identical dither — the round-shared RNG.
float dither_uniform(std::uint64_t stream, std::uint64_t coordinate) {
  std::uint64_t z = stream + coordinate * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<float>(z >> 40) * 0x1.0p-24f;
}

std::uint64_t dither_stream(std::uint64_t seed, std::size_t round) {
  // SplitMix64 over (seed ^ round-tag): cheap, and the per-coordinate Weyl
  // walk above decorrelates rounds with nearby ids.
  std::uint64_t z = seed ^ (0xd1770000ULL + round);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void check_decode_shapes(const QuantizedRow& in, std::span<float> out,
                         Codec expected) {
  if (in.codec != expected) {
    throw std::invalid_argument("RowCodec::decode: payload codec mismatch");
  }
  if (in.dim != out.size()) {
    throw std::invalid_argument("RowCodec::decode: dimension mismatch");
  }
}

class IdentityCodec final : public RowCodec {
 public:
  Codec kind() const override { return Codec::kIdentity; }

  void encode(std::span<const float> row, QuantizedRow& out) const override {
    out.codec = Codec::kIdentity;
    out.dim = row.size();
    out.fp32.assign(row.begin(), row.end());
  }

  void decode(const QuantizedRow& in, std::span<float> out) const override {
    check_decode_shapes(in, out, Codec::kIdentity);
    std::copy(in.fp32.begin(), in.fp32.end(), out.begin());
  }
};

/// Wire variant of fp16_from_float: values that would map to ±Inf
/// (finite overflow or a genuinely infinite parameter) saturate to the
/// largest finite half instead. An Inf on the wire would turn the
/// receiver-side aggregation — and the sender's exact-self correction,
/// Inf − Inf — into NaN and poison the whole fleet; NaN inputs are kept
/// (they signal a run that is already broken).
std::uint16_t fp16_wire(float value) {
  const std::uint16_t half = fp16_from_float(value);
  if ((half & 0x7fffu) == 0x7c00u) {  // ±Inf
    return static_cast<std::uint16_t>((half & 0x8000u) | 0x7bffu);
  }
  return half;
}

class Fp16Codec final : public RowCodec {
 public:
  Codec kind() const override { return Codec::kFp16; }

  void encode(std::span<const float> row, QuantizedRow& out) const override {
    out.codec = Codec::kFp16;
    out.dim = row.size();
    out.half.resize(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      out.half[i] = fp16_wire(row[i]);
    }
  }

  void decode(const QuantizedRow& in, std::span<float> out) const override {
    check_decode_shapes(in, out, Codec::kFp16);
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = fp16_to_float(in.half[i]);
    }
  }
};

/// Shared skeleton of the two int8 variants: per-block affine range
/// [lo, lo + 255·scale], codes in [0, 255]. A constant block encodes with
/// scale = 0 and decodes exactly to lo.
class Int8CodecBase : public RowCodec {
 public:
  void encode(std::span<const float> row, QuantizedRow& out) const override {
    out.codec = kind();
    out.dim = row.size();
    out.round = round_;
    const std::size_t blocks =
        (row.size() + kInt8BlockValues - 1) / kInt8BlockValues;
    out.codes.resize(row.size());
    out.block_lo.resize(blocks);
    out.block_scale.resize(blocks);
    const std::uint64_t stream = dither_stream(seed_, round_);
    for (std::size_t b = 0; b < blocks; ++b) {
      const std::size_t begin = b * kInt8BlockValues;
      const std::size_t end = std::min(begin + kInt8BlockValues, row.size());
      float lo = row[begin];
      float hi = row[begin];
      for (std::size_t i = begin + 1; i < end; ++i) {
        lo = std::min(lo, row[i]);
        hi = std::max(hi, row[i]);
      }
      const float scale = (hi - lo) / 255.0f;
      out.block_lo[b] = lo;
      out.block_scale[b] = scale;
      if (scale <= 0.0f) {
        std::fill(out.codes.begin() + static_cast<std::ptrdiff_t>(begin),
                  out.codes.begin() + static_cast<std::ptrdiff_t>(end),
                  std::uint8_t{0});
        continue;
      }
      const float inv_scale = 1.0f / scale;
      for (std::size_t i = begin; i < end; ++i) {
        const float t = (row[i] - lo) * inv_scale;
        out.codes[i] = quantize(t, stream, i);
      }
    }
  }

  void decode(const QuantizedRow& in, std::span<float> out) const override {
    check_decode_shapes(in, out, kind());
    const std::uint64_t stream = dither_stream(seed_, in.round);
    for (std::size_t b = 0; b < in.num_blocks(); ++b) {
      const std::size_t begin = b * kInt8BlockValues;
      const std::size_t end = std::min(begin + kInt8BlockValues, in.dim);
      const float lo = in.block_lo[b];
      const float scale = in.block_scale[b];
      for (std::size_t i = begin; i < end; ++i) {
        out[i] = lo + scale * dequantize(in.codes[i], stream, i);
      }
    }
  }

  void begin_round(std::size_t round) override { round_ = round; }

 protected:
  explicit Int8CodecBase(std::uint64_t seed) : seed_(seed) {}

  /// Code for normalized value t in [0, 255].
  virtual std::uint8_t quantize(float t, std::uint64_t stream,
                                std::size_t coordinate) const = 0;

  /// Normalized reconstruction point of a code.
  virtual float dequantize(std::uint8_t code, std::uint64_t stream,
                           std::size_t coordinate) const = 0;

 private:
  std::uint64_t seed_;
  std::size_t round_ = 0;
};

class Int8Codec final : public Int8CodecBase {
 public:
  explicit Int8Codec(std::uint64_t seed) : Int8CodecBase(seed) {}
  Codec kind() const override { return Codec::kInt8; }

 protected:
  std::uint8_t quantize(float t, std::uint64_t, std::size_t) const override {
    // Nearest code; t is in [0, 255] by construction, so no clamping error.
    return static_cast<std::uint8_t>(
        std::min(255L, std::max(0L, std::lroundf(t))));
  }

  float dequantize(std::uint8_t code, std::uint64_t,
                   std::size_t) const override {
    return static_cast<float>(code);
  }
};

class Int8DitheredCodec final : public Int8CodecBase {
 public:
  explicit Int8DitheredCodec(std::uint64_t seed) : Int8CodecBase(seed) {}
  Codec kind() const override { return Codec::kInt8Dithered; }

 protected:
  // Subtractive dither: q = floor(t + u), x̂ = q + 0.5 − u (both in
  // normalized units). The error (q + 0.5 − u) − t lies in (−0.5, 0.5]
  // for ANY t, is uniform, and is independent of the signal — unlike
  // nearest rounding, which correlates the error with the value.
  std::uint8_t quantize(float t, std::uint64_t stream,
                        std::size_t coordinate) const override {
    const float u = dither_uniform(stream, coordinate);
    return static_cast<std::uint8_t>(
        std::min(255.0f, std::max(0.0f, std::floor(t + u))));
  }

  float dequantize(std::uint8_t code, std::uint64_t stream,
                   std::size_t coordinate) const override {
    const float u = dither_uniform(stream, coordinate);
    return static_cast<float>(code) + 0.5f - u;
  }
};

}  // namespace

void RowCodec::begin_round(std::size_t) {}

std::unique_ptr<RowCodec> make_codec(Codec kind, std::uint64_t seed) {
  switch (kind) {
    case Codec::kIdentity:
      return std::make_unique<IdentityCodec>();
    case Codec::kFp16:
      return std::make_unique<Fp16Codec>();
    case Codec::kInt8:
      return std::make_unique<Int8Codec>(seed);
    case Codec::kInt8Dithered:
      return std::make_unique<Int8DitheredCodec>(seed);
  }
  throw std::invalid_argument("make_codec: unknown codec");
}

}  // namespace skiptrain::quant
