#include "quant/codec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "obs/registry.hpp"
#include "quant/kernels.hpp"

namespace skiptrain::quant {

const char* codec_name(Codec codec) {
  switch (codec) {
    case Codec::kIdentity:
      return "fp32";
    case Codec::kFp16:
      return "fp16";
    case Codec::kInt8:
      return "int8";
    case Codec::kInt8Dithered:
      return "int8d";
  }
  return "?";
}

const char* codec_token(Codec codec) {
  switch (codec) {
    case Codec::kIdentity:
      return "identity";
    case Codec::kFp16:
      return "fp16";
    case Codec::kInt8:
      return "int8";
    case Codec::kInt8Dithered:
      return "int8-dither";
  }
  return "?";
}

Codec parse_codec(const std::string& name) {
  if (name == "identity" || name == "fp32") return Codec::kIdentity;
  if (name == "fp16") return Codec::kFp16;
  if (name == "int8") return Codec::kInt8;
  if (name == "int8-dither" || name == "int8d") return Codec::kInt8Dithered;
  throw std::invalid_argument(
      "parse_codec: unknown codec '" + name +
      "' (expected identity|fp16|int8|int8-dither)");
}

const std::vector<Codec>& all_codecs() {
  static const std::vector<Codec> kAll = {Codec::kIdentity, Codec::kFp16,
                                          Codec::kInt8, Codec::kInt8Dithered};
  return kAll;
}

double wire_bytes_per_param(Codec codec) {
  switch (codec) {
    case Codec::kIdentity:
      return 4.0;
    case Codec::kFp16:
      return 2.0;
    case Codec::kInt8:
    case Codec::kInt8Dithered:
      return 1.0 + static_cast<double>(kInt8BlockHeaderBytes) /
                       static_cast<double>(kInt8BlockValues);
  }
  return 4.0;
}

energy::CommModel comm_model_for(Codec codec, energy::CommModel base) {
  base.bytes_per_param = wire_bytes_per_param(codec);
  return base;
}

std::size_t exact_row_wire_bytes(Codec codec, std::size_t dim) {
  QuantizedRow row;
  row.codec = codec;
  row.dim = dim;
  return row.wire_bytes();
}

// --- fp16 ------------------------------------------------------------------

std::uint16_t fp16_from_float(float value) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(value);
  const auto sign = static_cast<std::uint16_t>((bits >> 16) & 0x8000u);
  const std::uint32_t abs = bits & 0x7fffffffu;
  if (abs >= 0x7f800000u) {  // Inf / NaN
    return static_cast<std::uint16_t>(
        sign | (abs > 0x7f800000u ? 0x7e00u : 0x7c00u));
  }
  const std::uint32_t exp = abs >> 23;
  const std::uint32_t mant = abs & 0x7fffffu;
  if (exp >= 143) return static_cast<std::uint16_t>(sign | 0x7c00u);  // ovf
  if (exp >= 113) {
    // Normal half. Rounding may carry into the exponent field — including
    // into Inf at the top of the range — which the flat layout absorbs.
    auto half = static_cast<std::uint16_t>(((exp - 112) << 10) | (mant >> 13));
    const std::uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half & 1u))) ++half;
    return static_cast<std::uint16_t>(sign | half);
  }
  if (exp < 102) return sign;  // underflows to signed zero
  // Subnormal half: shift the full 24-bit significand into 10 bits with
  // round-to-nearest-even.
  const std::uint32_t significand = mant | 0x800000u;
  const std::uint32_t shift = 126 - exp;  // 14..24
  auto half = static_cast<std::uint16_t>(significand >> shift);
  const std::uint32_t half_bit = 1u << (shift - 1);
  const std::uint32_t rem = significand & ((1u << shift) - 1u);
  if (rem > half_bit || (rem == half_bit && (half & 1u))) ++half;
  return static_cast<std::uint16_t>(sign | half);
}

float fp16_to_float(std::uint16_t half) {
  const std::uint32_t sign = static_cast<std::uint32_t>(half & 0x8000u) << 16;
  const std::uint32_t exp = (half >> 10) & 0x1fu;
  const std::uint32_t mant = half & 0x3ffu;
  std::uint32_t bits;
  if (exp == 31) {  // Inf / NaN
    bits = sign | 0x7f800000u | (mant << 13);
  } else if (exp != 0) {  // normal
    bits = sign | ((exp + 112) << 23) | (mant << 13);
  } else if (mant == 0) {  // signed zero
    bits = sign;
  } else {  // subnormal: renormalize
    std::uint32_t m = mant;
    std::uint32_t shifts = 0;
    while (!(m & 0x400u)) {
      m <<= 1;
      ++shifts;
    }
    bits = sign | ((113 - shifts) << 23) | ((m & 0x3ffu) << 13);
  }
  return std::bit_cast<float>(bits);
}

// --- wire buffer -----------------------------------------------------------

std::size_t QuantizedRow::wire_bytes() const {
  switch (codec) {
    case Codec::kIdentity:
      return dim * sizeof(float);
    case Codec::kFp16:
      return dim * sizeof(std::uint16_t);
    case Codec::kInt8:
    case Codec::kInt8Dithered:
      return dim + num_blocks() * kInt8BlockHeaderBytes;
  }
  return dim * sizeof(float);
}

namespace {

// The dither stream helpers (dither_stream / dither_uniform) live in
// quant/kernels.hpp now, shared with the vectorized batch kernels.

/// Telemetry tap shared by every concrete encode: rows and exact wire
/// bytes produced. Handles are registered once; the per-encode cost is
/// two relaxed thread-local adds (observational only).
void note_encode(const QuantizedRow& out) {
  static const obs::Counter rows = obs::counter("codec.rows_encoded");
  static const obs::Counter bytes = obs::counter("codec.wire_bytes");
  rows.add(1);
  bytes.add(out.wire_bytes());
}

void check_decode_shapes(const QuantizedRow& in, std::span<float> out,
                         Codec expected) {
  if (in.codec != expected) {
    throw std::invalid_argument("RowCodec::decode: payload codec mismatch");
  }
  if (in.dim != out.size()) {
    throw std::invalid_argument("RowCodec::decode: dimension mismatch");
  }
}

class IdentityCodec final : public RowCodec {
 public:
  Codec kind() const override { return Codec::kIdentity; }

  void encode(std::span<const float> row, QuantizedRow& out) const override {
    out.codec = Codec::kIdentity;
    out.dim = row.size();
    out.fp32.assign(row.begin(), row.end());
    note_encode(out);
  }

  void decode(const QuantizedRow& in, std::span<float> out) const override {
    check_decode_shapes(in, out, Codec::kIdentity);
    std::copy(in.fp32.begin(), in.fp32.end(), out.begin());
  }
};

class Fp16Codec final : public RowCodec {
 public:
  Codec kind() const override { return Codec::kFp16; }

  void encode(std::span<const float> row, QuantizedRow& out) const override {
    out.codec = Codec::kFp16;
    out.dim = row.size();
    out.half.resize(row.size());
    // Vectorized wire conversion (±Inf saturates to the largest finite
    // half — see fp16_wire_from_float), bit-identical to the scalar path.
    fp16_encode_wire(row, out.half.data());
    note_encode(out);
  }

  void decode(const QuantizedRow& in, std::span<float> out) const override {
    check_decode_shapes(in, out, Codec::kFp16);
    fp16_decode(in.half.data(), out);
  }
};

/// Shared skeleton of the two int8 variants: per-block affine range
/// [lo, lo + 255·scale], codes in [0, 255]. A constant block encodes with
/// scale = 0 and decodes exactly to lo. The per-block batch kernels live
/// in quant/kernels.cpp; kInt8Dithered applies subtractive dither
/// (q = floor(t + u), x̂ = q + 0.5 − u), whose error is uniform in
/// (−0.5, 0.5] and independent of the signal, unlike nearest rounding.
class Int8CodecBase : public RowCodec {
 public:
  void encode(std::span<const float> row, QuantizedRow& out) const override {
    out.codec = kind();
    out.dim = row.size();
    out.round = round_;
    const std::size_t blocks =
        (row.size() + kInt8BlockValues - 1) / kInt8BlockValues;
    out.codes.resize(row.size());
    out.block_lo.resize(blocks);
    out.block_scale.resize(blocks);
    if (!row.empty()) {
      if (kind() == Codec::kInt8Dithered) {
        int8_encode_dithered(row, dither_stream(seed_, round_),
                             out.codes.data(), out.block_lo.data(),
                             out.block_scale.data());
      } else {
        int8_encode(row, out.codes.data(), out.block_lo.data(),
                    out.block_scale.data());
      }
    }
    note_encode(out);
  }

  void decode(const QuantizedRow& in, std::span<float> out) const override {
    check_decode_shapes(in, out, kind());
    if (in.dim == 0) return;
    if (kind() == Codec::kInt8Dithered) {
      int8_decode_dithered(in.dim, in.codes.data(), in.block_lo.data(),
                           in.block_scale.data(),
                           dither_stream(seed_, in.round), out.data());
    } else {
      int8_decode(in.dim, in.codes.data(), in.block_lo.data(),
                  in.block_scale.data(), out.data());
    }
  }

  void begin_round(std::size_t round) override { round_ = round; }

 protected:
  explicit Int8CodecBase(std::uint64_t seed) : seed_(seed) {}

 private:
  std::uint64_t seed_;
  std::size_t round_ = 0;
};

class Int8Codec final : public Int8CodecBase {
 public:
  explicit Int8Codec(std::uint64_t seed) : Int8CodecBase(seed) {}
  Codec kind() const override { return Codec::kInt8; }
};

class Int8DitheredCodec final : public Int8CodecBase {
 public:
  explicit Int8DitheredCodec(std::uint64_t seed) : Int8CodecBase(seed) {}
  Codec kind() const override { return Codec::kInt8Dithered; }
};

}  // namespace

void RowCodec::begin_round(std::size_t) {}

std::unique_ptr<RowCodec> make_codec(Codec kind, std::uint64_t seed) {
  switch (kind) {
    case Codec::kIdentity:
      return std::make_unique<IdentityCodec>();
    case Codec::kFp16:
      return std::make_unique<Fp16Codec>();
    case Codec::kInt8:
      return std::make_unique<Int8Codec>(seed);
    case Codec::kInt8Dithered:
      return std::make_unique<Int8DitheredCodec>(seed);
  }
  throw std::invalid_argument("make_codec: unknown codec");
}

}  // namespace skiptrain::quant
