#include "quant/kernels.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "quant/codec.hpp"

// The batch kernels are element-wise exact (no reductions, no FMA — fma
// is deliberately absent from the clone list so no contraction can change
// results), so every ISA variant produces identical bits; AVX2 supplies
// the per-lane variable shifts and rounds the fp16/int8 bodies vectorize
// with, while the default clone keeps baseline machines working.
#if defined(__x86_64__) && defined(__ELF__) && defined(__GNUC__) && \
    !defined(__clang__) && !defined(__SANITIZE_ADDRESS__)
#define SKIPTRAIN_VEC_CLONES \
  __attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
#else
#define SKIPTRAIN_VEC_CLONES
#endif

namespace skiptrain::quant {

namespace {

/// Branch-free fp16_from_float over the raw float bits: every path is
/// computed with shift amounts clamped into defined range, then selected
/// with ternaries the vectorizer can if-convert. Bitwise identical to the
/// scalar conversion (enforced exhaustively in tests).
inline std::uint16_t fp16_bits_rne(std::uint32_t bits) {
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::uint32_t abs = bits & 0x7fffffffu;
  const std::uint32_t exp = abs >> 23;
  const std::uint32_t mant = abs & 0x7fffffu;
  // Normal half (113 <= exp < 143); rounding may carry into the exponent
  // field — including into Inf at the top of the range.
  std::uint32_t half_n = ((exp - 112u) << 10) | (mant >> 13);
  const std::uint32_t rem_n = mant & 0x1fffu;
  half_n += static_cast<std::uint32_t>(rem_n > 0x1000u ||
                                       (rem_n == 0x1000u && (half_n & 1u)));
  // Subnormal half (102 <= exp < 113): shift the full 24-bit significand
  // into 10 bits with round-to-nearest-even. The clamp keeps the shift
  // defined on the paths the select discards.
  const std::uint32_t significand = mant | 0x800000u;
  const std::uint32_t shift = std::clamp(126u - exp, 1u, 31u);
  const std::uint32_t half_bit = 1u << (shift - 1u);
  std::uint32_t half_s = significand >> shift;
  const std::uint32_t rem_s = significand & ((1u << shift) - 1u);
  half_s += static_cast<std::uint32_t>(rem_s > half_bit ||
                                       (rem_s == half_bit && (half_s & 1u)));
  const std::uint32_t infnan = abs > 0x7f800000u ? 0x7e00u : 0x7c00u;
  const std::uint32_t half = exp >= 143u  ? infnan
                             : exp >= 113u ? half_n
                             : exp >= 102u ? half_s
                                           : 0u;
  return static_cast<std::uint16_t>(sign | half);
}

inline std::uint16_t fp16_bits_wire(std::uint32_t bits) {
  const std::uint16_t half = fp16_bits_rne(bits);
  return (half & 0x7fffu) == 0x7c00u
             ? static_cast<std::uint16_t>((half & 0x8000u) | 0x7bffu)
             : half;
}

/// Branch-free fp16_to_float: subnormals widen exactly via an integer →
/// float convert scaled by 2^-24 (mant/2^24 is the subnormal's value and
/// is exactly representable in binary32).
inline float fp16_bits_to_float(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  const std::uint32_t exp = (h >> 10) & 0x1fu;
  const std::uint32_t mant = h & 0x3ffu;
  const std::uint32_t norm = sign | ((exp + 112u) << 23) | (mant << 13);
  const std::uint32_t infnan = sign | 0x7f800000u | (mant << 13);
  const std::uint32_t sub =
      sign |
      std::bit_cast<std::uint32_t>(static_cast<float>(mant) * 0x1.0p-24f);
  const std::uint32_t out = exp == 31u ? infnan : exp != 0u ? norm : sub;
  return std::bit_cast<float>(out);
}

inline float dither_uniform_at(std::uint64_t stream,
                               std::uint64_t coordinate) {
  std::uint64_t z = stream + coordinate * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<float>(z >> 40) * 0x1.0p-24f;
}

/// Shared int8 block skeleton. The min/max scan keeps the seed's
/// sequential order (so ±0 ties select the same bits); only the quantize
/// loop differs per variant and is what `Quantize` vectorizes.
template <typename Quantize>
[[gnu::always_inline]] inline void int8_encode_blocks(
    std::span<const float> row, std::uint8_t* codes, float* lo_out,
    float* scale_out, Quantize&& quantize) {
  const std::size_t blocks =
      (row.size() + kInt8BlockValues - 1) / kInt8BlockValues;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * kInt8BlockValues;
    const std::size_t end = std::min(begin + kInt8BlockValues, row.size());
    float lo = row[begin];
    float hi = row[begin];
    for (std::size_t i = begin + 1; i < end; ++i) {
      lo = std::min(lo, row[i]);
      hi = std::max(hi, row[i]);
    }
    const float scale = (hi - lo) / 255.0f;
    lo_out[b] = lo;
    scale_out[b] = scale;
    if (scale <= 0.0f) {
      std::fill(codes + begin, codes + end, std::uint8_t{0});
      continue;
    }
    const float inv_scale = 1.0f / scale;
    quantize(begin, end, lo, inv_scale);
  }
}

}  // namespace

// --- dither stream ----------------------------------------------------------

std::uint64_t dither_stream(std::uint64_t seed, std::size_t round) {
  // SplitMix64 over (seed ^ round-tag): cheap, and the per-coordinate Weyl
  // walk above decorrelates rounds with nearby ids.
  std::uint64_t z = seed ^ (0xd1770000ULL + round);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

float dither_uniform(std::uint64_t stream, std::uint64_t coordinate) {
  return dither_uniform_at(stream, coordinate);
}

// --- fp16 -------------------------------------------------------------------

std::uint16_t fp16_wire_from_float(float value) {
  const std::uint16_t half = fp16_from_float(value);
  if ((half & 0x7fffu) == 0x7c00u) {  // ±Inf
    return static_cast<std::uint16_t>((half & 0x8000u) | 0x7bffu);
  }
  return half;
}

SKIPTRAIN_VEC_CLONES
void fp16_encode(std::span<const float> src, std::uint16_t* dst) {
  const float* __restrict__ in = src.data();
  std::uint16_t* __restrict__ out = dst;
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = fp16_bits_rne(std::bit_cast<std::uint32_t>(in[i]));
  }
}

SKIPTRAIN_VEC_CLONES
void fp16_encode_wire(std::span<const float> src, std::uint16_t* dst) {
  const float* __restrict__ in = src.data();
  std::uint16_t* __restrict__ out = dst;
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = fp16_bits_wire(std::bit_cast<std::uint32_t>(in[i]));
  }
}

SKIPTRAIN_VEC_CLONES
void fp16_decode(const std::uint16_t* src, std::span<float> dst) {
  const std::uint16_t* __restrict__ in = src;
  float* __restrict__ out = dst.data();
  const std::size_t n = dst.size();
  for (std::size_t i = 0; i < n; ++i) out[i] = fp16_bits_to_float(in[i]);
}

void fp16_encode_scalar(std::span<const float> src, std::uint16_t* dst) {
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = fp16_from_float(src[i]);
}

void fp16_encode_wire_scalar(std::span<const float> src, std::uint16_t* dst) {
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = fp16_wire_from_float(src[i]);
  }
}

void fp16_decode_scalar(const std::uint16_t* src, std::span<float> dst) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] = fp16_to_float(src[i]);
}

// --- int8 -------------------------------------------------------------------

SKIPTRAIN_VEC_CLONES
void int8_encode(std::span<const float> row, std::uint8_t* codes, float* lo,
                 float* scale) {
  const float* __restrict__ in = row.data();
  std::uint8_t* __restrict__ out = codes;
  int8_encode_blocks(
      row, codes, lo, scale,
      [in, out](std::size_t begin, std::size_t end, float blo, float inv) {
        if (!(inv > 0.0f) || inv > std::numeric_limits<float>::max()) {
          // Degenerate block range: a denormal-small scale gave inv = Inf,
          // an infinite range (hi - lo overflow) gave inv = 0, or a NaN
          // endpoint gave inv = NaN. In all three the reference's
          // lroundf(±Inf / NaN / ±0) clamps to code 0 for the whole block
          // (via the x86 saturating float→long conversion). Replicate
          // that bitwise.
          std::fill(out + begin, out + end, std::uint8_t{0});
          return;
        }
        for (std::size_t i = begin; i < end; ++i) {
          const float t = (in[i] - blo) * inv;
          // Positive half-away-from-zero, branch-free: bitwise equal to
          // the reference's lroundf (t >= 0 by construction — and with a
          // finite inv, t stays far below 2^31 — and t - floor(t) is
          // exact for these magnitudes). The int32 intermediate is what
          // lets the conversion-to-code vectorize; the NaN select (an
          // element of a poisoned row whose block endpoints are finite)
          // keeps the conversion in defined range and lands on code 0,
          // the reference's clamped result.
          const float r = std::floor(t);
          const float rc = (t == t) ? std::min(r, 255.0f) : 0.0f;
          const int q = static_cast<int>(rc) + ((t - r >= 0.5f) ? 1 : 0);
          out[i] = static_cast<std::uint8_t>(std::min(q, 255));
        }
      });
}

SKIPTRAIN_VEC_CLONES
void int8_encode_dithered(std::span<const float> row, std::uint64_t stream,
                          std::uint8_t* codes, float* lo, float* scale) {
  const float* __restrict__ in = row.data();
  std::uint8_t* __restrict__ out = codes;
  int8_encode_blocks(
      row, codes, lo, scale,
      [in, out, stream](std::size_t begin, std::size_t end, float blo,
                        float inv) {
        for (std::size_t i = begin; i < end; ++i) {
          const float t = (in[i] - blo) * inv;
          const float u = dither_uniform_at(stream, i);
          out[i] = static_cast<std::uint8_t>(
              std::min(255.0f, std::max(0.0f, std::floor(t + u))));
        }
      });
}

SKIPTRAIN_VEC_CLONES
void int8_decode(std::size_t dim, const std::uint8_t* codes, const float* lo,
                 const float* scale, float* out_ptr) {
  const std::uint8_t* __restrict__ in = codes;
  float* __restrict__ out = out_ptr;
  const std::size_t blocks = (dim + kInt8BlockValues - 1) / kInt8BlockValues;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * kInt8BlockValues;
    const std::size_t end = std::min(begin + kInt8BlockValues, dim);
    const float blo = lo[b];
    const float bscale = scale[b];
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = blo + bscale * static_cast<float>(in[i]);
    }
  }
}

SKIPTRAIN_VEC_CLONES
void int8_decode_dithered(std::size_t dim, const std::uint8_t* codes,
                          const float* lo, const float* scale,
                          std::uint64_t stream, float* out_ptr) {
  const std::uint8_t* __restrict__ in = codes;
  float* __restrict__ out = out_ptr;
  const std::size_t blocks = (dim + kInt8BlockValues - 1) / kInt8BlockValues;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * kInt8BlockValues;
    const std::size_t end = std::min(begin + kInt8BlockValues, dim);
    const float blo = lo[b];
    const float bscale = scale[b];
    for (std::size_t i = begin; i < end; ++i) {
      const float u = dither_uniform_at(stream, i);
      out[i] = blo + bscale * (static_cast<float>(in[i]) + 0.5f - u);
    }
  }
}

// --- scalar int8 references (the seed per-element code, verbatim) -----------

void int8_encode_scalar(std::span<const float> row, std::uint8_t* codes,
                        float* lo, float* scale) {
  int8_encode_blocks(
      row, codes, lo, scale,
      [&row, codes](std::size_t begin, std::size_t end, float blo, float inv) {
        for (std::size_t i = begin; i < end; ++i) {
          const float t = (row[i] - blo) * inv;
          codes[i] = static_cast<std::uint8_t>(
              std::min(255L, std::max(0L, std::lroundf(t))));
        }
      });
}

void int8_encode_dithered_scalar(std::span<const float> row,
                                 std::uint64_t stream, std::uint8_t* codes,
                                 float* lo, float* scale) {
  int8_encode_blocks(
      row, codes, lo, scale,
      [&row, codes, stream](std::size_t begin, std::size_t end, float blo,
                            float inv) {
        for (std::size_t i = begin; i < end; ++i) {
          const float t = (row[i] - blo) * inv;
          const float u = dither_uniform(stream, i);
          codes[i] = static_cast<std::uint8_t>(
              std::min(255.0f, std::max(0.0f, std::floor(t + u))));
        }
      });
}

void int8_decode_scalar(std::size_t dim, const std::uint8_t* codes,
                        const float* lo, const float* scale, float* out) {
  const std::size_t blocks = (dim + kInt8BlockValues - 1) / kInt8BlockValues;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * kInt8BlockValues;
    const std::size_t end = std::min(begin + kInt8BlockValues, dim);
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = lo[b] + scale[b] * static_cast<float>(codes[i]);
    }
  }
}

void int8_decode_dithered_scalar(std::size_t dim, const std::uint8_t* codes,
                                 const float* lo, const float* scale,
                                 std::uint64_t stream, float* out) {
  const std::size_t blocks = (dim + kInt8BlockValues - 1) / kInt8BlockValues;
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t begin = b * kInt8BlockValues;
    const std::size_t end = std::min(begin + kInt8BlockValues, dim);
    for (std::size_t i = begin; i < end; ++i) {
      const float u = dither_uniform(stream, i);
      out[i] = lo[b] + scale[b] * (static_cast<float>(codes[i]) + 0.5f - u);
    }
  }
}

}  // namespace skiptrain::quant
