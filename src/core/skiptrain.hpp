// Umbrella header: everything a downstream user needs to run SkipTrain
// experiments.
//
//   #include "core/skiptrain.hpp"
//
//   auto data = skiptrain::data::make_cifar_synthetic({.nodes = 64});
//   auto model = skiptrain::nn::make_compact_cifar_model(
//       data.train.feature_dim());
//   skiptrain::util::Rng rng(1);
//   skiptrain::nn::initialize(model, rng);
//
//   skiptrain::sim::RunOptions options;
//   options.algorithm = skiptrain::sim::Algorithm::kSkipTrain;
//   auto result = skiptrain::sim::run_experiment(data, model, options);
#pragma once

#include "ckpt/fleet_image.hpp"
#include "ckpt/io.hpp"
#include "ckpt/trial_store.hpp"
#include "core/compression.hpp"
#include "core/equations.hpp"
#include "core/scheduler.hpp"
#include "data/dataset.hpp"
#include "data/distribution.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "energy/device.hpp"
#include "energy/fleet.hpp"
#include "fault/crc32c.hpp"
#include "fault/fault.hpp"
#include "fault/frame.hpp"
#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "metrics/consensus.hpp"
#include "metrics/evaluator.hpp"
#include "metrics/recorder.hpp"
#include "nn/conv2d.hpp"
#include "nn/gradcheck.hpp"
#include "nn/init.hpp"
#include "nn/loss.hpp"
#include "nn/model_zoo.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "quant/codec.hpp"
#include "scenario/scenario.hpp"
#include "scenario/trace.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"
#include "sim/node.hpp"
#include "sim/runner.hpp"
#include "sweep/sweep.hpp"
#include "tensor/gemm.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
