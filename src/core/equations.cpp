#include "core/equations.hpp"

#include <algorithm>
#include <stdexcept>

namespace skiptrain::core {

double expected_training_rounds(std::size_t gamma_train,
                                std::size_t gamma_sync,
                                std::size_t total_rounds) {
  if (gamma_train == 0) {
    throw std::invalid_argument("expected_training_rounds: Γtrain must be > 0");
  }
  const double cycle = static_cast<double>(gamma_train + gamma_sync);
  return static_cast<double>(gamma_train) / cycle *
         static_cast<double>(total_rounds);
}

std::size_t count_training_rounds(std::size_t gamma_train,
                                  std::size_t gamma_sync,
                                  std::size_t total_rounds) {
  if (gamma_train == 0) {
    throw std::invalid_argument("count_training_rounds: Γtrain must be > 0");
  }
  // Rounds are numbered from 1 and every cycle opens with Γtrain training
  // rounds (round_kind's (t-1) mod cycle < Γtrain), so the partial final
  // cycle contributes its first min(remainder, Γtrain) rounds.
  const std::size_t cycle = gamma_train + gamma_sync;
  const std::size_t full_cycles = total_rounds / cycle;
  const std::size_t remainder = total_rounds % cycle;
  return full_cycles * gamma_train + std::min(remainder, gamma_train);
}

double training_probability(std::size_t budget_rounds, double t_train) {
  if (t_train <= 0.0) return 1.0;
  return std::min(static_cast<double>(budget_rounds) / t_train, 1.0);
}

}  // namespace skiptrain::core
