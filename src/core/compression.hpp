// Sparsified model exchange (related-work axis, paper §6: Sparse-Push,
// Alistarh et al., Dhasade et al. "Get More for Less").
//
// Instead of the full parameter vector, a node broadcasts only its top-k
// coordinates by magnitude. A receiver treats the missing coordinates as
// "no update from this neighbor" — i.e. it substitutes its own values —
// which turns the Metropolis-Hastings aggregation into
//
//   x_i ← x_i + Σ_j W_ij · Σ_{c ∈ topk(x_j)} (x_j[c] − x_i[c]) e_c .
//
// With k = dim this is exactly the dense aggregation; with k << dim the
// wire volume drops to ~2k/dim of the dense exchange (index + value per
// coordinate). The ablation bench measures the accuracy cost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace skiptrain::core {

/// A sparsified model message: parallel (coordinate, value) arrays sorted
/// by coordinate, plus the dense dimension for validation.
struct SparseModel {
  std::vector<std::uint32_t> indices;
  std::vector<float> values;
  std::size_t dim = 0;

  /// Wire bytes per transmitted value: 4 (float32, the default), 2 (fp16)
  /// or ~1 (int8) when the message's values are additionally quantized by
  /// an exchange codec (see quant/codec.hpp). Indices always cost 4 bytes.
  std::size_t value_bytes = 4;

  std::size_t nnz() const { return indices.size(); }

  /// Bytes on the wire: 4 per index + value_bytes per value.
  std::size_t wire_bytes() const { return nnz() * (4 + value_bytes); }
};

/// Selects the k largest-magnitude coordinates of `params` (all of them
/// when k >= dim). Deterministic: magnitude ties resolve to the lower
/// coordinate.
[[nodiscard]] SparseModel sparsify_topk(std::span<const float> params,
                                        std::size_t k);

/// Effective parameter count for the energy model: the message's wire
/// bytes expressed in 4-byte dense-parameter units (rounded to nearest —
/// flooring would bill tiny messages at zero). With the default 4-byte
/// values this is exactly 2k; with quantized values it shrinks to
/// k·(4 + value_bytes)/4.
[[nodiscard]] std::size_t effective_params(const SparseModel& message);

/// Applies `weight * (message − base)` onto `out` at the message's
/// coordinates: the incremental form of sparse aggregation derived above.
/// `base` and `out` may alias.
void accumulate_sparse_difference(const SparseModel& message,
                                  std::span<const float> base,
                                  std::span<float> out, float weight);

/// Round-shared random coordinate mask: k distinct coordinates of [0, dim)
/// drawn deterministically from (seed, round), identical across nodes.
///
/// Why not per-node magnitude top-k? Sparsifying the RAW parameter vector
/// by magnitude keeps re-sending the same large weights and never mixes
/// the small ones, so the unsent coordinates drift apart and accuracy
/// collapses (measured in bench/ablation_compression). A mask shared by
/// all nodes in a round costs no index transmission (everyone derives it
/// from the seed), touches every coordinate with equal frequency over
/// time, and degrades gracefully as k shrinks. Returned sorted.
[[nodiscard]] std::vector<std::uint32_t> shared_round_mask(
    std::uint64_t seed, std::size_t round, std::size_t dim, std::size_t k);

/// Sparse aggregation over an explicit mask:
/// out[c] += weight * (theirs[c] - base[c]) for every c in mask.
void accumulate_masked_difference(std::span<const std::uint32_t> mask,
                                  std::span<const float> theirs,
                                  std::span<const float> base,
                                  std::span<float> out, float weight);

/// Gathers the mask coordinates of a dense plane row into a compact array:
/// staged[i] = row[mask[i]]. staged.size() must equal mask.size().
void gather_masked(std::span<const std::uint32_t> mask,
                   std::span<const float> row, std::span<float> staged);

/// Staged form of accumulate_masked_difference: both parties' masked
/// coordinates have been gathered (gather_masked) into compact pre-update
/// snapshots, so the receiver can aggregate IN PLACE on its plane row —
///   out[mask[i]] += weight * (theirs_staged[i] - mine_staged[i]) —
/// touching only k coordinates instead of copying the dense row first.
/// `out` may alias the row `mine_staged` was gathered from.
void accumulate_staged_difference(std::span<const std::uint32_t> mask,
                                  std::span<const float> theirs_staged,
                                  std::span<const float> mine_staged,
                                  std::span<float> out, float weight);

}  // namespace skiptrain::core
