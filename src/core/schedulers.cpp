#include "core/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <stdexcept>

#include "core/equations.hpp"
#include "util/rng.hpp"

namespace skiptrain::core {

SkipTrainScheduler::SkipTrainScheduler(std::size_t gamma_train,
                                       std::size_t gamma_sync)
    : gamma_train_(gamma_train), gamma_sync_(gamma_sync) {
  if (gamma_train_ == 0) {
    throw std::invalid_argument("SkipTrain: Γtrain must be > 0");
  }
  if (gamma_sync_ == 0) {
    throw std::invalid_argument(
        "SkipTrain: Γsync must be > 0 (use D-PSGD for Γsync = 0)");
  }
}

std::string SkipTrainScheduler::name() const {
  return "SkipTrain(Γtrain=" + std::to_string(gamma_train_) +
         ", Γsync=" + std::to_string(gamma_sync_) + ")";
}

RoundKind SkipTrainScheduler::round_kind(std::size_t t) const {
  // Algorithm 2, line 5 numbers rounds from 1, so the Γ-block position of
  // round t is (t-1) mod (Γtrain + Γsync): every cycle opens with Γtrain
  // training rounds. The former `t mod cycle` comparison shifted the
  // whole schedule by one — with Γtrain = Γsync = 1 the very first round
  // came out as a synchronization round.
  const std::size_t cycle = gamma_train_ + gamma_sync_;
  return ((t - 1) % cycle) < gamma_train_ ? RoundKind::kTraining
                                          : RoundKind::kSynchronization;
}

bool SkipTrainScheduler::should_train(std::size_t t, std::size_t node,
                                      std::size_t remaining_budget) const {
  (void)node;
  (void)remaining_budget;
  return round_kind(t) == RoundKind::kTraining;
}

SkipTrainConstrainedScheduler::SkipTrainConstrainedScheduler(
    std::size_t gamma_train, std::size_t gamma_sync, std::size_t total_rounds,
    std::vector<std::size_t> budgets, std::uint64_t seed)
    : SkipTrainScheduler(gamma_train, gamma_sync), seed_(seed) {
  const double t_train =
      expected_training_rounds(gamma_train, gamma_sync, total_rounds);
  probabilities_.reserve(budgets.size());
  for (const std::size_t tau : budgets) {
    probabilities_.push_back(training_probability(tau, t_train));
  }
}

bool SkipTrainConstrainedScheduler::should_train(
    std::size_t t, std::size_t node, std::size_t remaining_budget) const {
  if (round_kind(t) != RoundKind::kTraining) return false;
  if (remaining_budget == 0) return false;  // τ_i^t > 0 (Algorithm 2, line 5)
  // Algorithm 2, lines 6-7: r ~ U[0,1], train iff r <= p_i. The draw is
  // counter-based on (seed, node, t) so it is independent of execution
  // order and thread count.
  const double r = util::stateless_uniform(seed_, node, t);
  return r <= probabilities_[node];
}

double SkipTrainConstrainedScheduler::probability(std::size_t node) const {
  return probabilities_.at(node);
}

HarvestAwareSkipTrainScheduler::HarvestAwareSkipTrainScheduler(
    std::size_t gamma_train, std::size_t gamma_sync, double period_rounds,
    double participation_floor, std::uint64_t seed)
    : SkipTrainScheduler(gamma_train, gamma_sync),
      period_rounds_(period_rounds),
      participation_floor_(participation_floor),
      seed_(seed) {
  if (period_rounds_ <= 0.0) {
    throw std::invalid_argument("HarvestAware: period must be positive");
  }
  if (participation_floor_ < 0.0 || participation_floor_ > 1.0) {
    throw std::invalid_argument(
        "HarvestAware: participation floor must lie in [0, 1]");
  }
}

std::string HarvestAwareSkipTrainScheduler::name() const {
  // %g keeps "period=24" readable (std::to_string(double) prints
  // 24.000000 into every table and CSV row).
  char period[32];
  std::snprintf(period, sizeof(period), "%g", period_rounds_);
  return "HarvestAware(Γtrain=" + std::to_string(gamma_train()) +
         ", Γsync=" + std::to_string(gamma_sync()) + ", period=" + period +
         ")";
}

double HarvestAwareSkipTrainScheduler::probability(std::size_t t) const {
  // Same clipped diurnal sine as the solar harvest generator (phase 0 at
  // round 1), normalized to [0, 1]: p = floor at night, 1 at solar noon.
  const double phase = 2.0 * std::numbers::pi *
                       (static_cast<double>(t - 1) / period_rounds_);
  const double daylight = std::max(0.0, std::sin(phase));
  return participation_floor_ + (1.0 - participation_floor_) * daylight;
}

bool HarvestAwareSkipTrainScheduler::should_train(
    std::size_t t, std::size_t node, std::size_t remaining_budget) const {
  if (round_kind(t) != RoundKind::kTraining) return false;
  if (remaining_budget == 0) return false;
  const double r = util::stateless_uniform(seed_, node, t);
  return r <= probability(t);
}

DecrementalParticipationScheduler::DecrementalParticipationScheduler(
    std::vector<std::size_t> initial_budgets, double alpha,
    std::uint64_t seed)
    : initial_budgets_(std::move(initial_budgets)),
      alpha_(alpha),
      seed_(seed) {
  if (alpha_ <= 0.0) {
    throw std::invalid_argument("Decremental: alpha must be positive");
  }
}

std::string DecrementalParticipationScheduler::name() const {
  char alpha[32];
  std::snprintf(alpha, sizeof(alpha), "%g", alpha_);
  return std::string("DEAL-decremental(α=") + alpha + ")";
}

double DecrementalParticipationScheduler::probability(
    std::size_t node, std::size_t remaining_budget) const {
  const std::size_t initial = initial_budgets_.at(node);
  if (initial == 0 || remaining_budget == 0) return 0.0;
  const double fraction = static_cast<double>(remaining_budget) /
                          static_cast<double>(initial);
  return std::pow(std::min(fraction, 1.0), alpha_);
}

bool DecrementalParticipationScheduler::should_train(
    std::size_t t, std::size_t node, std::size_t remaining_budget) const {
  if (remaining_budget == 0) return false;
  const double r = util::stateless_uniform(seed_, node, t);
  return r <= probability(node, remaining_budget);
}

double training_round_fraction(const RoundScheduler& scheduler,
                               std::size_t total_rounds) {
  if (total_rounds == 0) return 0.0;
  std::size_t count = 0;
  for (std::size_t t = 1; t <= total_rounds; ++t) {
    if (scheduler.round_kind(t) == RoundKind::kTraining) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(total_rounds);
}

}  // namespace skiptrain::core
