#include "core/scheduler.hpp"

#include <stdexcept>

#include "core/equations.hpp"
#include "util/rng.hpp"

namespace skiptrain::core {

SkipTrainScheduler::SkipTrainScheduler(std::size_t gamma_train,
                                       std::size_t gamma_sync)
    : gamma_train_(gamma_train), gamma_sync_(gamma_sync) {
  if (gamma_train_ == 0) {
    throw std::invalid_argument("SkipTrain: Γtrain must be > 0");
  }
  if (gamma_sync_ == 0) {
    throw std::invalid_argument(
        "SkipTrain: Γsync must be > 0 (use D-PSGD for Γsync = 0)");
  }
}

std::string SkipTrainScheduler::name() const {
  return "SkipTrain(Γtrain=" + std::to_string(gamma_train_) +
         ", Γsync=" + std::to_string(gamma_sync_) + ")";
}

RoundKind SkipTrainScheduler::round_kind(std::size_t t) const {
  // Algorithm 2, line 5 numbers rounds from 1, so the Γ-block position of
  // round t is (t-1) mod (Γtrain + Γsync): every cycle opens with Γtrain
  // training rounds. The former `t mod cycle` comparison shifted the
  // whole schedule by one — with Γtrain = Γsync = 1 the very first round
  // came out as a synchronization round.
  const std::size_t cycle = gamma_train_ + gamma_sync_;
  return ((t - 1) % cycle) < gamma_train_ ? RoundKind::kTraining
                                          : RoundKind::kSynchronization;
}

bool SkipTrainScheduler::should_train(std::size_t t, std::size_t node,
                                      std::size_t remaining_budget) const {
  (void)node;
  (void)remaining_budget;
  return round_kind(t) == RoundKind::kTraining;
}

SkipTrainConstrainedScheduler::SkipTrainConstrainedScheduler(
    std::size_t gamma_train, std::size_t gamma_sync, std::size_t total_rounds,
    std::vector<std::size_t> budgets, std::uint64_t seed)
    : SkipTrainScheduler(gamma_train, gamma_sync), seed_(seed) {
  const double t_train =
      expected_training_rounds(gamma_train, gamma_sync, total_rounds);
  probabilities_.reserve(budgets.size());
  for (const std::size_t tau : budgets) {
    probabilities_.push_back(training_probability(tau, t_train));
  }
}

bool SkipTrainConstrainedScheduler::should_train(
    std::size_t t, std::size_t node, std::size_t remaining_budget) const {
  if (round_kind(t) != RoundKind::kTraining) return false;
  if (remaining_budget == 0) return false;  // τ_i^t > 0 (Algorithm 2, line 5)
  // Algorithm 2, lines 6-7: r ~ U[0,1], train iff r <= p_i. The draw is
  // counter-based on (seed, node, t) so it is independent of execution
  // order and thread count.
  const double r = util::stateless_uniform(seed_, node, t);
  return r <= probabilities_[node];
}

double SkipTrainConstrainedScheduler::probability(std::size_t node) const {
  return probabilities_.at(node);
}

double training_round_fraction(const RoundScheduler& scheduler,
                               std::size_t total_rounds) {
  if (total_rounds == 0) return 0.0;
  std::size_t count = 0;
  for (std::size_t t = 1; t <= total_rounds; ++t) {
    if (scheduler.round_kind(t) == RoundKind::kTraining) ++count;
  }
  return static_cast<double>(count) / static_cast<double>(total_rounds);
}

}  // namespace skiptrain::core
