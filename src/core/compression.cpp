#include "core/compression.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace skiptrain::core {

SparseModel sparsify_topk(std::span<const float> params, std::size_t k) {
  SparseModel message;
  message.dim = params.size();
  if (k == 0) return message;
  k = std::min(k, params.size());

  std::vector<std::uint32_t> order(params.size());
  std::iota(order.begin(), order.end(), 0u);
  // Partial selection by |value| descending, index ascending on ties.
  std::nth_element(order.begin(), order.begin() + static_cast<long>(k - 1),
                   order.end(), [&](std::uint32_t a, std::uint32_t b) {
                     const float ma = std::abs(params[a]);
                     const float mb = std::abs(params[b]);
                     if (ma != mb) return ma > mb;
                     return a < b;
                   });
  order.resize(k);
  std::sort(order.begin(), order.end());

  message.indices = std::move(order);
  message.values.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    message.values[i] = params[message.indices[i]];
  }
  return message;
}

std::size_t effective_params(const SparseModel& message) {
  return static_cast<std::size_t>(
      std::llround(static_cast<double>(message.wire_bytes()) / 4.0));
}

void accumulate_sparse_difference(const SparseModel& message,
                                  std::span<const float> base,
                                  std::span<float> out, float weight) {
  if (base.size() != message.dim || out.size() != message.dim) {
    throw std::invalid_argument(
        "accumulate_sparse_difference: dimension mismatch");
  }
  for (std::size_t i = 0; i < message.indices.size(); ++i) {
    const std::uint32_t c = message.indices[i];
    assert(c < message.dim);
    out[c] += weight * (message.values[i] - base[c]);
  }
}

std::vector<std::uint32_t> shared_round_mask(std::uint64_t seed,
                                             std::size_t round,
                                             std::size_t dim, std::size_t k) {
  k = std::min(k, dim);
  util::Rng rng(util::hash_combine(seed, 0x3a5c0000ULL + round));
  const std::vector<std::size_t> picks = rng.sample_without_replacement(dim, k);
  std::vector<std::uint32_t> mask(picks.begin(), picks.end());
  std::sort(mask.begin(), mask.end());
  return mask;
}

void accumulate_masked_difference(std::span<const std::uint32_t> mask,
                                  std::span<const float> theirs,
                                  std::span<const float> base,
                                  std::span<float> out, float weight) {
  if (theirs.size() != base.size() || base.size() != out.size()) {
    throw std::invalid_argument(
        "accumulate_masked_difference: dimension mismatch");
  }
  for (const std::uint32_t c : mask) {
    assert(c < base.size());
    out[c] += weight * (theirs[c] - base[c]);
  }
}

void gather_masked(std::span<const std::uint32_t> mask,
                   std::span<const float> row, std::span<float> staged) {
  if (staged.size() != mask.size()) {
    throw std::invalid_argument("gather_masked: staged size != mask size");
  }
  for (std::size_t i = 0; i < mask.size(); ++i) {
    assert(mask[i] < row.size());
    staged[i] = row[mask[i]];
  }
}

void accumulate_staged_difference(std::span<const std::uint32_t> mask,
                                  std::span<const float> theirs_staged,
                                  std::span<const float> mine_staged,
                                  std::span<float> out, float weight) {
  if (theirs_staged.size() != mask.size() ||
      mine_staged.size() != mask.size()) {
    throw std::invalid_argument(
        "accumulate_staged_difference: staged size != mask size");
  }
  for (std::size_t i = 0; i < mask.size(); ++i) {
    const std::uint32_t c = mask[i];
    assert(c < out.size());
    out[c] += weight * (theirs_staged[i] - mine_staged[i]);
  }
}

}  // namespace skiptrain::core
