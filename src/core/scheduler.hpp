// Round schedulers — the heart of SkipTrain.
//
// Every algorithm in the paper fits one execution skeleton (Algorithm 2):
// in round t each node optionally performs E local SGD steps, then always
// shares its model and aggregates with its neighbors. A RoundScheduler
// decides the optional part:
//
//   * the coordinated round kind (train vs. synchronization), identical
//     across nodes — SkipTrain's Γtrain/Γsync alternation (Fig. 2b);
//   * the per-node participation decision — SkipTrain-constrained's
//     probabilistic skip driven by the node's energy budget (Fig. 2c).
//
// Determinism contract: should_train(t, node, budget) must be a pure
// function of its arguments and the scheduler's construction parameters
// (probabilistic schedulers use counter-based RNG keyed by (seed, node,
// t)), so simulations replay identically across thread counts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace skiptrain::core {

enum class RoundKind {
  kTraining,         // train + share + aggregate
  kSynchronization,  // share + aggregate only
};

class RoundScheduler {
 public:
  virtual ~RoundScheduler() = default;

  virtual std::string name() const = 0;

  /// Coordinated kind of round t (1-based, matching Algorithm 2).
  virtual RoundKind round_kind(std::size_t t) const = 0;

  /// Whether node `node` performs the local model update in round t.
  /// `remaining_budget` is the node's τ_i^t (trainings left before its
  /// battery allowance is gone); unconstrained schedulers may ignore it.
  virtual bool should_train(std::size_t t, std::size_t node,
                            std::size_t remaining_budget) const = 0;

  /// True when the scheduler consumes per-node energy budgets (the engine
  /// then enforces τ accounting strictly).
  virtual bool is_budget_aware() const { return false; }
};

/// D-PSGD (Lian et al. 2017, Algorithm 1): every round trains.
class DpsgdScheduler final : public RoundScheduler {
 public:
  std::string name() const override { return "D-PSGD"; }
  RoundKind round_kind(std::size_t) const override {
    return RoundKind::kTraining;
  }
  bool should_train(std::size_t, std::size_t, std::size_t) const override {
    return true;
  }
};

/// SkipTrain (§3.1): alternates Γtrain coordinated training rounds with
/// Γsync coordinated synchronization rounds; every node trains in every
/// training round (p_i = 1).
class SkipTrainScheduler : public RoundScheduler {
 public:
  SkipTrainScheduler(std::size_t gamma_train, std::size_t gamma_sync);

  std::string name() const override;
  RoundKind round_kind(std::size_t t) const override;
  bool should_train(std::size_t t, std::size_t node,
                    std::size_t remaining_budget) const override;

  std::size_t gamma_train() const { return gamma_train_; }
  std::size_t gamma_sync() const { return gamma_sync_; }

 private:
  std::size_t gamma_train_;
  std::size_t gamma_sync_;
};

/// SkipTrain-constrained (§3.2, Algorithm 2): on top of the coordinated
/// Γ-alternation, node i participates in a training round with probability
/// p_i = min(τ_i / T_train, 1) (Eq. 5) while its budget lasts.
class SkipTrainConstrainedScheduler final : public SkipTrainScheduler {
 public:
  /// `budgets[i]` = τ_i; `total_rounds` = T (to evaluate Eq. 4).
  SkipTrainConstrainedScheduler(std::size_t gamma_train,
                                std::size_t gamma_sync,
                                std::size_t total_rounds,
                                std::vector<std::size_t> budgets,
                                std::uint64_t seed);

  std::string name() const override { return "SkipTrain-constrained"; }
  bool should_train(std::size_t t, std::size_t node,
                    std::size_t remaining_budget) const override;
  bool is_budget_aware() const override { return true; }

  double probability(std::size_t node) const;

 private:
  std::vector<double> probabilities_;
  std::uint64_t seed_;
};

/// Greedy baseline (§3.2): trains every round until the node's budget is
/// exhausted, then switches to synchronization-only forever.
class GreedyScheduler final : public RoundScheduler {
 public:
  std::string name() const override { return "Greedy"; }
  RoundKind round_kind(std::size_t) const override {
    return RoundKind::kTraining;
  }
  bool should_train(std::size_t, std::size_t,
                    std::size_t remaining_budget) const override {
    return remaining_budget > 0;
  }
  bool is_budget_aware() const override { return true; }
};

/// Harvest-aware SkipTrain (scenario engine): on top of the Γ-alternation,
/// participation follows the diurnal harvest curve — p(t) ramps from
/// `participation_floor` at night up to 1 at solar noon, so nodes
/// preferentially spend their training budget when energy is arriving
/// (cf. Zhang et al., energy-harvesting DFL). Pure in (t, node) +
/// construction: the phase is computed from t and the draw is
/// counter-based on (seed, node, t).
class HarvestAwareSkipTrainScheduler final : public SkipTrainScheduler {
 public:
  /// `period_rounds` must match the scenario's diurnal cycle length.
  HarvestAwareSkipTrainScheduler(std::size_t gamma_train,
                                 std::size_t gamma_sync,
                                 double period_rounds,
                                 double participation_floor,
                                 std::uint64_t seed);

  std::string name() const override;
  bool should_train(std::size_t t, std::size_t node,
                    std::size_t remaining_budget) const override;

  /// The coordinated participation probability at round t (same for all
  /// nodes; exposed for tests).
  double probability(std::size_t t) const;

 private:
  double period_rounds_;
  double participation_floor_;
  std::uint64_t seed_;
};

/// DEAL-style decremental participation: node i trains with probability
/// (remaining_budget / initial_budget)^alpha — full participation on a
/// fresh battery allowance, tapering off as the budget drains instead of
/// Greedy's cliff. alpha < 1 stays aggressive longer; alpha > 1 backs
/// off early. Pure in (t, node, remaining_budget) + construction.
class DecrementalParticipationScheduler final : public RoundScheduler {
 public:
  /// `initial_budgets[i]` = τ_i at round 1 (a zero budget never trains).
  DecrementalParticipationScheduler(std::vector<std::size_t> initial_budgets,
                                    double alpha, std::uint64_t seed);

  std::string name() const override;
  RoundKind round_kind(std::size_t) const override {
    return RoundKind::kTraining;
  }
  bool should_train(std::size_t t, std::size_t node,
                    std::size_t remaining_budget) const override;
  bool is_budget_aware() const override { return true; }

  double probability(std::size_t node, std::size_t remaining_budget) const;

 private:
  std::vector<std::size_t> initial_budgets_;
  double alpha_;
  std::uint64_t seed_;
};

/// Utility: fraction of rounds in [1, T] that are coordinated training
/// rounds under a scheduler (1.0 for D-PSGD / Greedy).
double training_round_fraction(const RoundScheduler& scheduler,
                               std::size_t total_rounds);

}  // namespace skiptrain::core
