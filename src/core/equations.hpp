// The closed-form quantities of the SkipTrain paper (Eq. 4 and Eq. 5).
#pragma once

#include <cstddef>

namespace skiptrain::core {

/// Eq. 4: the maximum number of coordinated training rounds executed by
/// SkipTrain over T total rounds,
///   T_train = Γtrain / (Γtrain + Γsync) · T.
/// Returned as a double; callers that need an integer round count should
/// pair this with count_training_rounds() below, which counts the actual
/// schedule (the two agree up to the partial final cycle).
[[nodiscard]] double expected_training_rounds(std::size_t gamma_train,
                                              std::size_t gamma_sync,
                                              std::size_t total_rounds);

/// Exact number of rounds t in [1, T] satisfying Algorithm 2's predicate
/// `(t - 1) mod (Γtrain + Γsync) < Γtrain` (rounds numbered from 1, each
/// Γ-block opening with its training rounds).
[[nodiscard]] std::size_t count_training_rounds(std::size_t gamma_train,
                                                std::size_t gamma_sync,
                                                std::size_t total_rounds);

/// Eq. 5: the training probability of node i,
///   p_i = min(τ_i / T_train, 1),
/// with the convention p = 1 when T_train == 0.
[[nodiscard]] double training_probability(std::size_t budget_rounds,
                                          double t_train);

}  // namespace skiptrain::core
