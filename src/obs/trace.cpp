#include "obs/trace.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <vector>

namespace skiptrain::obs {

namespace detail {

std::atomic<bool> g_tracing{false};

namespace {

struct Event {
  const char* name;
  std::uint64_t start_ns;
  std::uint64_t end_ns;
  std::uint32_t tid;
};

constexpr std::size_t kFlushThreshold = 8192;

/// One recording thread's event buffer. Leaked (never freed) so
/// stop_tracing() can flush buffers of threads that have already exited;
/// each holds its own mutex so appends only contend with flushes.
struct ThreadBuffer {
  std::mutex mutex;
  std::vector<Event> events;
  std::uint32_t tid = 0;
};

/// Trace-wide state behind one mutex: the output file and the list of
/// every thread buffer ever created.
struct TraceFile {
  std::mutex mutex;
  std::ofstream out;
  std::uint64_t start_ns = 0;
  bool first_event = true;
  std::vector<ThreadBuffer*> buffers;
  std::uint32_t next_tid = 1;
};

TraceFile& trace_file() {
  static TraceFile* instance = new TraceFile();  // leaked, like the registry
  return *instance;
}

/// Writes `events` to the open file. Caller holds tf.mutex.
void write_events_locked(TraceFile& tf, const std::vector<Event>& events) {
  if (!tf.out.is_open()) return;
  char line[256];
  for (const Event& e : events) {
    const double ts_us =
        static_cast<double>(e.start_ns - tf.start_ns) * 1e-3;
    const double dur_us = static_cast<double>(e.end_ns - e.start_ns) * 1e-3;
    const int n = std::snprintf(
        line, sizeof(line),
        "%s{\"name\":\"%s\",\"cat\":\"obs\",\"ph\":\"X\",\"ts\":%.3f,"
        "\"dur\":%.3f,\"pid\":0,\"tid\":%u}",
        tf.first_event ? "\n" : ",\n", e.name, ts_us, dur_us, e.tid);
    tf.out.write(line, n);
    tf.first_event = false;
  }
}

ThreadBuffer& local_buffer() {
  thread_local ThreadBuffer* buffer = [] {
    auto* b = new ThreadBuffer();  // leaked: see struct comment
    TraceFile& tf = trace_file();
    std::lock_guard lock(tf.mutex);
    b->tid = tf.next_tid++;
    tf.buffers.push_back(b);
    return b;
  }();
  return *buffer;
}

}  // namespace

void emit_span(const char* name, std::uint64_t start_ns,
               std::uint64_t end_ns) {
  // The span may have outlived the trace (scope opened before
  // stop_tracing); drop it rather than write past the footer.
  if (!g_tracing.load(std::memory_order_relaxed)) return;
  ThreadBuffer& buf = local_buffer();
  std::vector<Event> spill;
  {
    std::lock_guard lock(buf.mutex);
    buf.events.push_back(Event{name, start_ns, end_ns, buf.tid});
    if (buf.events.size() >= kFlushThreshold) buf.events.swap(spill);
  }
  if (!spill.empty()) {
    TraceFile& tf = trace_file();
    std::lock_guard lock(tf.mutex);
    write_events_locked(tf, spill);
  }
}

}  // namespace detail

bool start_tracing(const std::string& path) {
  detail::TraceFile& tf = detail::trace_file();
  std::lock_guard lock(tf.mutex);
  if (detail::g_tracing.load(std::memory_order_relaxed)) return false;
  tf.out.open(path, std::ios::binary | std::ios::trunc);
  if (!tf.out.is_open()) return false;
  tf.out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  tf.start_ns = now_ns();
  tf.first_event = true;
  static const bool atexit_registered = [] {
    std::atexit([] { stop_tracing(); });
    return true;
  }();
  (void)atexit_registered;
  detail::g_tracing.store(true, std::memory_order_relaxed);
  return true;
}

void stop_tracing() {
  detail::TraceFile& tf = detail::trace_file();
  std::lock_guard lock(tf.mutex);
  if (!detail::g_tracing.load(std::memory_order_relaxed)) return;
  // Stop accepting spans first, then drain what every thread buffered.
  // Spans still open on other threads observe the cleared flag in their
  // destructor and drop themselves.
  detail::g_tracing.store(false, std::memory_order_relaxed);
  for (detail::ThreadBuffer* buf : tf.buffers) {
    std::vector<detail::Event> drained;
    {
      std::lock_guard buf_lock(buf->mutex);
      buf->events.swap(drained);
    }
    write_events_locked(tf, drained);
  }
  tf.out << "\n]}\n";
  tf.out.close();
}

namespace detail {
namespace {

/// SKIPTRAIN_TRACE=<path> starts a process-lifetime trace before main();
/// the atexit hook registered by start_tracing finalizes it.
const bool g_env_autostart = [] {
  // Static initialisation, single-threaded; no concurrent env mutation.
  const char* path = std::getenv("SKIPTRAIN_TRACE");  // NOLINT(concurrency-mt-unsafe)
  if (path != nullptr && path[0] != '\0') start_tracing(path);
  return true;
}();

}  // namespace
}  // namespace detail

}  // namespace skiptrain::obs
