// Shared wall-clock timing primitives for the telemetry layer.
//
// StopWatch replaces the ad-hoc `steady_clock::now()` + duration<double>
// boilerplate that used to be copied wherever something was timed (the
// sweep runner carried two copies). now_ns() is the single monotonic
// clock the span tracer and the histograms are denominated in.
//
// Everything here is observational: no caller may feed a measured time
// back into simulation state — sweep CSVs and checkpoint images must stay
// byte-identical with telemetry on or off.
#pragma once

#include <chrono>
#include <cstdint>

namespace skiptrain::obs {

/// Monotonic nanoseconds since an arbitrary process-local epoch.
[[nodiscard]] inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic elapsed-time meter. Starts at construction; `seconds()` may
/// be read any number of times; `restart()` returns the lap and rezeroes.
class StopWatch {
 public:
  StopWatch() : start_(now_ns()) {}

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return static_cast<double>(now_ns() - start_) * 1e-9;
  }

  /// Nanoseconds elapsed since construction or the last restart().
  [[nodiscard]] std::uint64_t ns() const { return now_ns() - start_; }

  /// Returns the elapsed seconds and starts a fresh lap.
  double restart() {
    const std::uint64_t now = now_ns();
    const double lap = static_cast<double>(now - start_) * 1e-9;
    start_ = now;
    return lap;
  }

 private:
  std::uint64_t start_;
};

}  // namespace skiptrain::obs
