#include "obs/phase.hpp"

#include "obs/registry.hpp"

namespace skiptrain::obs {

namespace {

constexpr const char* kPhaseNames[kPhaseCount] = {
    "setup", "liveness", "train", "encode", "gossip", "eval", "checkpoint",
};

constexpr const char* kPhaseSpanNames[kPhaseCount] = {
    "round.setup",  "round.liveness", "round.train",      "round.encode",
    "round.gossip", "round.eval",     "round.checkpoint",
};

/// Registry handles for the per-phase latency histograms, registered
/// once on first use so PhaseScope's destructor never takes the
/// registration lock.
const Histogram& phase_histogram(std::size_t p) {
  static const Histogram hists[kPhaseCount] = {
      hist_ns("phase.setup.ns"),  hist_ns("phase.liveness.ns"),
      hist_ns("phase.train.ns"),  hist_ns("phase.encode.ns"),
      hist_ns("phase.gossip.ns"), hist_ns("phase.eval.ns"),
      hist_ns("phase.checkpoint.ns"),
  };
  return hists[p];
}

}  // namespace

const char* phase_name(Phase phase) {
  return kPhaseNames[static_cast<std::size_t>(phase)];
}

const char* phase_span_name(Phase phase) {
  return kPhaseSpanNames[static_cast<std::size_t>(phase)];
}

void note_phase(PhaseStats& stats, Phase phase, std::uint64_t start_ns) {
  const std::uint64_t end_ns = now_ns();
  const std::uint64_t elapsed = end_ns - start_ns;
  stats.add(phase, elapsed);
  const auto p = static_cast<std::size_t>(phase);
  if (tracing_active()) {
    detail::emit_span(kPhaseSpanNames[p], start_ns, end_ns);
  }
  if (enabled()) phase_histogram(p).record(elapsed);
}

}  // namespace skiptrain::obs
