#include "obs/registry.hpp"

#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace skiptrain::obs {

namespace detail {

std::atomic<bool> g_enabled{[] {
  // Static initialisation, single-threaded; no concurrent env mutation.
  const char* env = std::getenv("SKIPTRAIN_OBS");  // NOLINT(concurrency-mt-unsafe)
  return !(env != nullptr && env[0] == '0' && env[1] == '\0');
}()};

namespace {

/// Process-wide gauge cell: multi-writer, so both fields are CAS-maxed /
/// stored directly rather than sharded.
struct GaugeCell {
  std::atomic<std::int64_t> value{0};
  std::atomic<std::int64_t> max{0};
};

/// Everything the registry owns behind its mutex: the name tables, the
/// live-shard list, and the retired totals of exited threads. A Meyers
/// singleton with an intentionally leaked shard policy is NOT needed —
// shards unregister themselves before the registry can be destroyed only
// if threads outlive main; to stay safe against static-destruction-order
// races the registry itself is leaked (never destroyed).
struct Registry {
  std::mutex mutex;

  std::unordered_map<std::string, std::size_t> counter_ids;
  std::vector<std::string> counter_names;
  std::unordered_map<std::string, std::size_t> gauge_ids;
  std::vector<std::string> gauge_names;
  std::unordered_map<std::string, std::size_t> hist_ids;
  std::vector<std::string> hist_names;

  GaugeCell gauges[kMaxGauges];

  std::vector<Shard*> live_shards;

  // Totals merged from destroyed shards (exited threads).
  std::uint64_t retired_counters[kMaxCounters] = {};
  std::uint64_t retired_hist_count[kMaxHistograms] = {};
  std::uint64_t retired_hist_sum[kMaxHistograms] = {};
  std::uint64_t retired_hist_max[kMaxHistograms] = {};
  std::uint64_t retired_hist_buckets[kMaxHistograms][kHistogramBuckets] = {};
};

Registry& registry() {
  static Registry* instance = new Registry();  // leaked: see struct comment
  return *instance;
}

std::size_t register_name(std::unordered_map<std::string, std::size_t>& ids,
                          std::vector<std::string>& names,
                          std::string_view name, std::size_t capacity,
                          const char* kind) {
  const auto it = ids.find(std::string(name));
  if (it != ids.end()) return it->second;
  if (names.size() >= capacity) {
    throw std::runtime_error(std::string("obs: ") + kind +
                             " slots exhausted registering '" +
                             std::string(name) + "'");
  }
  const std::size_t id = names.size();
  names.emplace_back(name);
  ids.emplace(names.back(), id);
  return id;
}

}  // namespace

Shard::Shard() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  reg.live_shards.push_back(this);
}

Shard::~Shard() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  // Merge this thread's totals into the retired pools so its history
  // survives the thread, then drop out of the live list.
  for (std::size_t i = 0; i < kMaxCounters; ++i) {
    reg.retired_counters[i] +=
        counters[i].load(std::memory_order_relaxed);
  }
  for (std::size_t h = 0; h < kMaxHistograms; ++h) {
    reg.retired_hist_count[h] +=
        hist_count[h].load(std::memory_order_relaxed);
    reg.retired_hist_sum[h] += hist_sum[h].load(std::memory_order_relaxed);
    const std::uint64_t max = hist_max[h].load(std::memory_order_relaxed);
    if (max > reg.retired_hist_max[h]) reg.retired_hist_max[h] = max;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      reg.retired_hist_buckets[h][b] +=
          hist_buckets[h][b].load(std::memory_order_relaxed);
    }
  }
  std::erase(reg.live_shards, this);
}

Shard& local_shard() {
  thread_local Shard shard;
  return shard;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  auto& reg = detail::registry();
  std::lock_guard lock(reg.mutex);
  return Counter(detail::register_name(reg.counter_ids, reg.counter_names,
                                       name, kMaxCounters, "counter"));
}

Gauge gauge(std::string_view name) {
  auto& reg = detail::registry();
  std::lock_guard lock(reg.mutex);
  return Gauge(detail::register_name(reg.gauge_ids, reg.gauge_names, name,
                                     kMaxGauges, "gauge"));
}

Histogram hist(std::string_view name) {
  auto& reg = detail::registry();
  std::lock_guard lock(reg.mutex);
  return Histogram(detail::register_name(reg.hist_ids, reg.hist_names, name,
                                         kMaxHistograms, "histogram"));
}

void Gauge::set(std::int64_t value) const {
  if (!enabled()) return;
  auto& cell = detail::registry().gauges[id_];
  cell.value.store(value, std::memory_order_relaxed);
  std::int64_t seen = cell.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !cell.max.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
  }
}

void Gauge::add(std::int64_t delta) const {
  if (!enabled()) return;
  auto& cell = detail::registry().gauges[id_];
  const std::int64_t value =
      cell.value.fetch_add(delta, std::memory_order_relaxed) + delta;
  std::int64_t seen = cell.max.load(std::memory_order_relaxed);
  while (value > seen &&
         !cell.max.compare_exchange_weak(seen, value,
                                         std::memory_order_relaxed)) {
  }
}

std::uint64_t HistogramValue::quantile_upper_bound(double q) const {
  if (count == 0) return 0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    seen += buckets[b];
    if (static_cast<double>(seen) >= target) {
      return b >= 63 ? max : (std::uint64_t{1} << (b + 1)) - 1;
    }
  }
  return max;
}

std::uint64_t Snapshot::counter_value(std::string_view name) const {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const HistogramValue* Snapshot::find_histogram(std::string_view name) const {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

const GaugeValue* Snapshot::find_gauge(std::string_view name) const {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

Snapshot snapshot() {
  auto& reg = detail::registry();
  std::lock_guard lock(reg.mutex);

  Snapshot snap;
  snap.counters.resize(reg.counter_names.size());
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    snap.counters[i].name = reg.counter_names[i];
    snap.counters[i].value = reg.retired_counters[i];
  }
  snap.gauges.resize(reg.gauge_names.size());
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    snap.gauges[i].name = reg.gauge_names[i];
    snap.gauges[i].value = reg.gauges[i].value.load(std::memory_order_relaxed);
    snap.gauges[i].max = reg.gauges[i].max.load(std::memory_order_relaxed);
  }
  snap.histograms.resize(reg.hist_names.size());
  for (std::size_t h = 0; h < snap.histograms.size(); ++h) {
    HistogramValue& out = snap.histograms[h];
    out.name = reg.hist_names[h];
    out.count = reg.retired_hist_count[h];
    out.sum = reg.retired_hist_sum[h];
    out.max = reg.retired_hist_max[h];
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      out.buckets[b] = reg.retired_hist_buckets[h][b];
    }
  }

  for (const detail::Shard* shard : reg.live_shards) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
      snap.counters[i].value +=
          shard->counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t h = 0; h < snap.histograms.size(); ++h) {
      HistogramValue& out = snap.histograms[h];
      out.count += shard->hist_count[h].load(std::memory_order_relaxed);
      out.sum += shard->hist_sum[h].load(std::memory_order_relaxed);
      const std::uint64_t max =
          shard->hist_max[h].load(std::memory_order_relaxed);
      if (max > out.max) out.max = max;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        out.buckets[b] +=
            shard->hist_buckets[h][b].load(std::memory_order_relaxed);
      }
    }
  }
  return snap;
}

void reset() {
  auto& reg = detail::registry();
  std::lock_guard lock(reg.mutex);
  for (auto& v : reg.retired_counters) v = 0;
  for (auto& v : reg.retired_hist_count) v = 0;
  for (auto& v : reg.retired_hist_sum) v = 0;
  for (auto& v : reg.retired_hist_max) v = 0;
  for (auto& hist : reg.retired_hist_buckets) {
    for (auto& v : hist) v = 0;
  }
  for (auto& cell : reg.gauges) {
    cell.value.store(0, std::memory_order_relaxed);
    cell.max.store(0, std::memory_order_relaxed);
  }
  for (detail::Shard* shard : reg.live_shards) {
    for (auto& v : shard->counters) v.store(0, std::memory_order_relaxed);
    for (auto& v : shard->hist_count) v.store(0, std::memory_order_relaxed);
    for (auto& v : shard->hist_sum) v.store(0, std::memory_order_relaxed);
    for (auto& v : shard->hist_max) v.store(0, std::memory_order_relaxed);
    for (auto& hist : shard->hist_buckets) {
      for (auto& v : hist) v.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace skiptrain::obs
