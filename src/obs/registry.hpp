// Process-wide telemetry registry: lock-free counters, gauges, and
// fixed-bucket histograms.
//
// Design goals, in order:
//
//   1. Observational only. Nothing here may influence simulation results;
//      sweep CSVs and checkpoint images stay byte-identical with
//      telemetry on, off, or at any thread count.
//   2. Near-zero cost on the hot path. A Counter::add from an engine loop
//      is one relaxed flag load + one relaxed add on a thread-local
//      cache line; with telemetry disabled it is the flag load alone —
//      no locks, no allocation, no clock reads.
//   3. Exact totals. Every recording thread owns a thread-local shard;
//      snapshot() sums the live shards plus the retired totals of
//      threads that have exited, so once writers quiesce the merged
//      counts are exact (the concurrent-hammer test pins this).
//
// Handles (Counter/Gauge/Histogram) are cheap POD wrappers around a slot
// index. Registration (`obs::counter("gossip.rows_mixed")`) takes a lock
// and may allocate — do it once per call site via a static local:
//
//   static const obs::Counter rows = obs::counter("gossip.rows_mixed");
//   rows.add(n);
//
// Recording through an existing handle never allocates, even when
// disabled (the zero-allocation test pins this). Slot capacities are
// fixed at compile time; exceeding them throws at registration, never at
// record time.
//
// Histograms use power-of-two buckets: bucket b counts values in
// [2^b, 2^(b+1)) (value 0 lands in bucket 0), which spans 1 ns to ~18 s
// of latency in 64 buckets with < 2x relative error — plenty for phase
// and kernel timings.
//
// The SKIPTRAIN_OBS environment variable ("0" disables) sets the initial
// enabled state; set_enabled() flips it at runtime.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace skiptrain::obs {

inline constexpr std::size_t kMaxCounters = 256;
inline constexpr std::size_t kMaxGauges = 64;
inline constexpr std::size_t kMaxHistograms = 64;
inline constexpr std::size_t kHistogramBuckets = 64;

namespace detail {

/// One thread's private slice of every metric. Slots are atomics only so
/// snapshot() may read them concurrently; the owning thread is the sole
/// writer, so all operations are relaxed.
struct Shard {
  std::atomic<std::uint64_t> counters[kMaxCounters];
  std::atomic<std::uint64_t> hist_count[kMaxHistograms];
  std::atomic<std::uint64_t> hist_sum[kMaxHistograms];
  std::atomic<std::uint64_t> hist_max[kMaxHistograms];
  std::atomic<std::uint64_t> hist_buckets[kMaxHistograms][kHistogramBuckets];

  Shard();
  ~Shard();
};

Shard& local_shard();

extern std::atomic<bool> g_enabled;

}  // namespace detail

/// Global runtime switch. Disabled, every record operation degenerates to
/// one relaxed load + branch. Defaults to on unless SKIPTRAIN_OBS=0.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Monotonic event counter (e.g. rows mixed, bytes shipped).
class Counter {
 public:
  void add(std::uint64_t delta = 1) const {
    if (!enabled()) return;
    detail::local_shard().counters[id_].fetch_add(delta,
                                                  std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t id() const { return id_; }

 private:
  friend Counter counter(std::string_view);
  explicit Counter(std::size_t id) : id_(id) {}
  std::size_t id_;
};

/// Last-write-wins instantaneous value (e.g. queue depth), with a
/// monotone high-water mark. Process-wide, multi-writer.
class Gauge {
 public:
  void set(std::int64_t value) const;
  void add(std::int64_t delta) const;

  [[nodiscard]] std::size_t id() const { return id_; }

 private:
  friend Gauge gauge(std::string_view);
  explicit Gauge(std::size_t id) : id_(id) {}
  std::size_t id_;
};

/// Fixed power-of-two-bucket distribution (count/sum/max + 64 buckets).
class Histogram {
 public:
  void record(std::uint64_t value) const {
    if (!enabled()) return;
    detail::Shard& shard = detail::local_shard();
    shard.hist_count[id_].fetch_add(1, std::memory_order_relaxed);
    shard.hist_sum[id_].fetch_add(value, std::memory_order_relaxed);
    // The owning thread is the only writer, so load+store is race-free.
    if (value > shard.hist_max[id_].load(std::memory_order_relaxed)) {
      shard.hist_max[id_].store(value, std::memory_order_relaxed);
    }
    shard.hist_buckets[id_][bucket_of(value)].fetch_add(
        1, std::memory_order_relaxed);
  }

  /// Bucket index of `value`: floor(log2(value)), 0 for 0.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t value) {
    if (value <= 1) return 0;
    return static_cast<std::size_t>(63 - __builtin_clzll(value));
  }

  [[nodiscard]] std::size_t id() const { return id_; }

 private:
  friend Histogram hist(std::string_view);
  explicit Histogram(std::size_t id) : id_(id) {}
  std::size_t id_;
};

/// Registers (or looks up) a metric by name. Idempotent: the same name
/// always maps to the same slot. Throws std::runtime_error past the
/// compile-time slot capacity. Takes a lock — cache the handle.
[[nodiscard]] Counter counter(std::string_view name);
[[nodiscard]] Gauge gauge(std::string_view name);
[[nodiscard]] Histogram hist(std::string_view name);

/// Naming sugar for nanosecond-valued histograms (`hist_ns` names should
/// end in "_ns" or ".ns" by convention; nothing enforces the unit).
[[nodiscard]] inline Histogram hist_ns(std::string_view name) {
  return hist(name);
}

// --- snapshot --------------------------------------------------------------

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeValue {
  std::string name;
  std::int64_t value = 0;
  std::int64_t max = 0;
};

struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[kHistogramBuckets] = {};

  [[nodiscard]] double mean() const {
    return count != 0 ? static_cast<double>(sum) / static_cast<double>(count)
                      : 0.0;
  }

  /// Upper bound of the bucket holding quantile `q` (0 < q <= 1): an
  /// upper estimate with < 2x relative error from the bucket width.
  [[nodiscard]] std::uint64_t quantile_upper_bound(double q) const;
};

/// Merged view of every registered metric: live shards + the retired
/// totals of exited threads. Exact once recording threads have quiesced.
struct Snapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of the named counter, 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;
  [[nodiscard]] const HistogramValue* find_histogram(
      std::string_view name) const;
  [[nodiscard]] const GaugeValue* find_gauge(std::string_view name) const;
};

[[nodiscard]] Snapshot snapshot();

/// Zeroes every metric (live shards, retired totals, gauges) without
/// forgetting registrations. For tests and per-run baselines; racing
/// writers may leak a few in-flight increments into the fresh epoch.
void reset();

}  // namespace skiptrain::obs
