// Phase-span tracer: RAII scopes that stream Chrome trace-event JSON.
//
//   {
//     OBS_SPAN("round.gossip");
//     ... the gossip phase ...
//   }   // emits {"name":"round.gossip","ph":"X","ts":...,"dur":...,"tid":N}
//
// The output is the Trace Event Format's "complete event" array, loadable
// directly in Perfetto (ui.perfetto.dev) or chrome://tracing, and parsed
// by tools/trace_summary.py. Spans carry a stable per-thread tid and nest
// naturally: a child span's [ts, ts+dur] interval is contained in its
// parent's, because destructors close inner scopes first.
//
// Cost model: tracing disabled (the default), OBS_SPAN is one relaxed
// atomic load and zero allocations. Enabled, each span costs two clock
// reads plus an append into a per-thread buffer (flushed to the file in
// batches under a mutex). Span names must be string literals or otherwise
// outlive the trace — the buffer stores the pointer.
//
// Activation: obs::start_tracing(path) / stop_tracing(), the sweep
// harnesses' --trace-out flag, or the SKIPTRAIN_TRACE environment
// variable (its value is the output path; the trace is finalized via
// atexit). Tracing is process-wide and observational only — simulation
// outputs stay byte-identical with it on or off.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "obs/stopwatch.hpp"

namespace skiptrain::obs {

namespace detail {
extern std::atomic<bool> g_tracing;
void emit_span(const char* name, std::uint64_t start_ns,
               std::uint64_t end_ns);
}  // namespace detail

/// True while a trace file is open and accepting spans.
[[nodiscard]] inline bool tracing_active() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

/// Opens `path` and starts recording spans. Returns false (and changes
/// nothing) when tracing is already active or the file cannot be opened.
bool start_tracing(const std::string& path);

/// Flushes every thread's buffered spans, writes the JSON footer, and
/// closes the file. No-op when tracing is not active.
void stop_tracing();

/// RAII span. Captures the start time at construction when tracing is
/// active; emits one complete event at destruction. `name` must outlive
/// the trace (pass a string literal).
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (tracing_active()) {
      name_ = name;
      start_ns_ = now_ns();
    }
  }
  ~SpanScope() {
    if (name_ != nullptr) detail::emit_span(name_, start_ns_, now_ns());
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
};

}  // namespace skiptrain::obs

#define SKIPTRAIN_OBS_CONCAT_INNER(a, b) a##b
#define SKIPTRAIN_OBS_CONCAT(a, b) SKIPTRAIN_OBS_CONCAT_INNER(a, b)

/// Traces the enclosing scope as one span named `name` (a string literal).
#define OBS_SPAN(name)                                       \
  ::skiptrain::obs::SpanScope SKIPTRAIN_OBS_CONCAT(          \
      obs_span_scope_, __LINE__) {                           \
    name                                                     \
  }
