// Per-trial phase accounting shared by both engines and the sweep layer.
//
// A Phase names one of the fixed stages a simulated round passes through;
// PhaseStats is the plain accumulator (seconds + call counts per phase)
// an engine owns for its trial; PhaseScope is the RAII probe that feeds
// one timed interval to all three sinks at once:
//
//   * the engine's PhaseStats    (always — two clock reads per phase),
//   * the span tracer            (when tracing is active), and
//   * the "phase.<name>" hist_ns (when the registry is enabled).
//
// PhaseStats is deliberately not thread-safe: engine phases execute on
// the trial's driving thread (inline, or pinned-serial under the sweep's
// ScopedForceSerial), so per-trial accumulation is single-writer.
// run_experiment folds engine stats plus its own eval/checkpoint/setup
// measurements into the trial's TrialTelemetry; the sweep layer merges
// trials into the aggregate exported in telemetry.json.
#pragma once

#include <cstddef>
#include <cstdint>

#include "obs/trace.hpp"

namespace skiptrain::obs {

enum class Phase : std::size_t {
  kSetup = 0,    // dataset fetch, topology/engine construction, resume load
  kLiveness,     // energy accounting + scenario liveness decisions
  kTrain,        // local SGD steps
  kEncode,       // codec encode/decode at the staging boundary
  kGossip,       // neighbor exchange + mixing/aggregation
  kEval,         // global-model evaluation
  kCheckpoint,   // fleet-image save/load IO
  kCount,
};

inline constexpr std::size_t kPhaseCount =
    static_cast<std::size_t>(Phase::kCount);

/// Short phase name: "train", "gossip", ...
[[nodiscard]] const char* phase_name(Phase phase);

/// Span/histogram name: "round.train", "round.gossip", ... (string
/// literal with static storage, safe to hand to the tracer).
[[nodiscard]] const char* phase_span_name(Phase phase);

/// Wall seconds and entry counts per phase for one trial. Single-writer;
/// merge() folds another trial (or engine) into an aggregate.
struct PhaseStats {
  double seconds[kPhaseCount] = {};
  std::uint64_t calls[kPhaseCount] = {};

  void add(Phase phase, std::uint64_t elapsed_ns) {
    const auto p = static_cast<std::size_t>(phase);
    seconds[p] += static_cast<double>(elapsed_ns) * 1e-9;
    calls[p] += 1;
  }

  void merge(const PhaseStats& other) {
    for (std::size_t p = 0; p < kPhaseCount; ++p) {
      seconds[p] += other.seconds[p];
      calls[p] += other.calls[p];
    }
  }

  [[nodiscard]] double total_seconds() const {
    double total = 0.0;
    for (double s : seconds) total += s;
    return total;
  }
};

/// Closes one timed entry of `phase` that began at `start_ns` (from
/// obs::now_ns()): accumulates into `stats`, emits a trace span, and
/// records into the phase's "phase.<name>.ns" histogram. The flat
/// counterpart of PhaseScope for sections that don't form a C++ scope —
/// the engines' interleaved encode/gossip branches use it directly.
void note_phase(PhaseStats& stats, Phase phase, std::uint64_t start_ns);

/// Times the enclosing scope as one entry of `phase`: accumulates into
/// `stats`, emits a trace span, and records into the phase's histogram.
class PhaseScope {
 public:
  PhaseScope(PhaseStats& stats, Phase phase)
      : stats_(stats), phase_(phase), start_ns_(now_ns()) {}

  ~PhaseScope() { note_phase(stats_, phase_, start_ns_); }

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  PhaseStats& stats_;
  Phase phase_;
  std::uint64_t start_ns_;
};

/// Everything one trial reports about its own runtime. Observational
/// only — never serialized into checkpoints or the sweep CSV.
struct TrialTelemetry {
  PhaseStats phases;
  std::uint64_t wire_bytes = 0;  // exact codec wire footprint shipped
  std::uint64_t rounds = 0;      // rounds (or async events) executed

  void merge(const TrialTelemetry& other) {
    phases.merge(other.phases);
    wire_bytes += other.wire_bytes;
    rounds += other.rounds;
  }
};

}  // namespace skiptrain::obs
