#include "tensor/tensor.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace skiptrain::tensor {

std::size_t shape_numel(const Shape& shape) {
  std::size_t n = 1;
  for (const std::size_t d : shape) n *= d;
  return shape.empty() ? 0 : n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream out;
  out << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) out << ", ";
    out << shape[i];
  }
  out << ']';
  return out.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(std::initializer_list<std::size_t> dims)
    : Tensor(Shape(dims)) {}

std::size_t Tensor::dim(std::size_t i) const {
  assert(i < shape_.size());
  return shape_[i];
}

float& Tensor::at(std::size_t i) {
  assert(i < data_.size());
  return data_[i];
}

float Tensor::at(std::size_t i) const {
  assert(i < data_.size());
  return data_[i];
}

float& Tensor::at(std::size_t r, std::size_t c) {
  assert(rank() >= 2);
  const std::size_t cols = numel() / shape_[0];
  assert(r < shape_[0] && c < cols);
  return data_[r * cols + c];
}

float Tensor::at(std::size_t r, std::size_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

std::span<float> Tensor::row(std::size_t r) {
  assert(rank() >= 1 && shape_[0] > 0);
  const std::size_t stride = numel() / shape_[0];
  assert(r < shape_[0]);
  return std::span<float>(data_.data() + r * stride, stride);
}

std::span<const float> Tensor::row(std::size_t r) const {
  assert(rank() >= 1 && shape_[0] > 0);
  const std::size_t stride = numel() / shape_[0];
  assert(r < shape_[0]);
  return std::span<const float>(data_.data() + r * stride, stride);
}

void Tensor::fill(float value) {
  for (auto& v : data_) v = value;
}

void Tensor::reshape(Shape new_shape) {
  if (shape_numel(new_shape) != numel()) {
    throw std::invalid_argument("Tensor::reshape: element count mismatch " +
                                shape_to_string(shape_) + " -> " +
                                shape_to_string(new_shape));
  }
  shape_ = std::move(new_shape);
}

}  // namespace skiptrain::tensor
