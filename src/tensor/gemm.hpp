// Blocked, packed GEMM kernel layer behind the gemm_nn/gemm_nt/gemm_tn
// entry points of tensor/ops.hpp.
//
// Bit-identity contract
// ---------------------
// The seed triple-loop kernels are retained verbatim below as
// `gemm_*_ref` and serve as verification oracles: for every input the
// blocked kernels must produce bitwise identical C. The blocked kernels
// earn this by visiting each output element's k-dimension in exactly the
// seed's sequential order:
//
//   * gemm_nn / gemm_tn accumulate directly into C (beta applied once,
//     before the first k-block touches an element; k-blocks then visit p
//     in ascending order, carrying the element through registers within a
//     block and through C memory across blocks). The seed's
//     skip-zero-multiplier branch is preserved per (element-of-A, p).
//   * gemm_nt keeps one register accumulator per output element across
//     the whole k extent (fresh dot, p ascending) and only then combines
//     with beta — the same op sequence as the reference inner loop.
//
// Every accumulation is written in the same `acc += a * b` expression
// shape as the reference loops, so FP contraction (when a target enables
// FMA) applies to both sides identically.
//
// What the blocked kernels add is purely locality and ILP: B panels are
// packed into dense aligned scratch sized from L1/L2 (measured once at
// startup), the microkernel holds a 4x8 register tile, and restrict-
// qualified unit-stride inner loops let the compiler vectorize.
#pragma once

#include <cstddef>
#include <span>

namespace skiptrain::tensor {

/// Cache-derived blocking parameters, computed once per process.
struct GemmTuning {
  std::size_t l1d_bytes;  // detected (or default 32 KiB)
  std::size_t l2_bytes;   // detected (or default 1 MiB)
  std::size_t mc;         // A rows per L2-resident block
  std::size_t kc;         // k depth per packed B panel (panel row hot in L1)
  std::size_t nc;         // B columns per packed panel
};

/// Process-wide tuning derived from L1d/L2 at first use.
[[nodiscard]] const GemmTuning& gemm_tuning();

// ---------------------------------------------------------------------------
// Reference kernels: the seed loops, kept for verification and as the
// small-shape fallback. Signatures mirror tensor/ops.hpp.
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n] + beta * C  (seed i-k-j loop)
void gemm_nn_ref(std::size_t m, std::size_t k, std::size_t n,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c, float beta = 0.0f);

/// C[m,n] = A[m,k] * B[n,k]^T + beta * C  (seed dot loop)
void gemm_nt_ref(std::size_t m, std::size_t k, std::size_t n,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c, float beta = 0.0f);

/// C[m,n] = A[k,m]^T * B[k,n] + beta * C  (seed outer-product loop)
void gemm_tn_ref(std::size_t m, std::size_t k, std::size_t n,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c, float beta = 0.0f);

}  // namespace skiptrain::tensor
