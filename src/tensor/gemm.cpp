// Blocked, packed GEMM kernels (see gemm.hpp for the bit-identity
// contract). The public gemm_nn/gemm_nt/gemm_tn entry points of
// tensor/ops.hpp dispatch between the seed reference loops (tiny shapes,
// degenerate dims) and the blocked kernels below; both produce bitwise
// identical C, so the dispatch threshold is a pure performance knob.
//
// Kernel structure: B panels and A blocks are both repacked into
// register-tile-wide slivers (kNR and kMR contiguous strips per k step),
// so the microkernel inner loops are pure unit-stride vector code. The
// reference loops' skip-zero-multiplier branch is honored by scanning
// each A sliver for zeros while packing it: zero-free slivers (the common
// case — model parameters and activations are continuous values) run a
// branch-free microkernel, slivers holding zeros (e.g. post-ReLU
// gradients in gemm_tn) run a blend microkernel whose
// `acc = av == 0 ? acc : acc + av*b` select reproduces the skip bitwise.
#include "tensor/gemm.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "obs/registry.hpp"
#include "tensor/ops.hpp"
#include "util/arena.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace skiptrain::tensor {

// ---------------------------------------------------------------------------
// Reference kernels — the seed loops, verbatim.
// ---------------------------------------------------------------------------

void gemm_nn_ref(std::size_t m, std::size_t k, std::size_t n,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c, float beta) {
  assert(a.size() >= m * k && b.size() >= k * n && c.size() >= m * n);
  // i-k-j loop order: the inner loop streams both B's row and C's row,
  // which vectorises well and is cache-friendly for row-major storage.
  for (std::size_t i = 0; i < m; ++i) {
    float* __restrict__ ci = c.data() + i * n;
    if (beta == 0.0f) {
      std::fill(ci, ci + n, 0.0f);
    } else if (beta != 1.0f) {
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    }
    const float* __restrict__ ai = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* __restrict__ bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_nt_ref(std::size_t m, std::size_t k, std::size_t n,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c, float beta) {
  assert(a.size() >= m * k && b.size() >= n * k && c.size() >= m * n);
  // C[i,j] = <A_row_i, B_row_j>: both operands stream contiguously.
  // BLAS semantics: C must not be read when beta == 0 — it may be
  // uninitialized or NaN-poisoned, and NaN * 0 is NaN, so the scale-by-beta
  // form is hoisted into an explicit branch.
  for (std::size_t i = 0; i < m; ++i) {
    const float* __restrict__ ai = a.data() + i * k;
    float* __restrict__ ci = c.data() + i * n;
    if (beta == 0.0f) {
      for (std::size_t j = 0; j < n; ++j) {
        const float* __restrict__ bj = b.data() + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] = acc;
      }
    } else {
      for (std::size_t j = 0; j < n; ++j) {
        const float* __restrict__ bj = b.data() + j * k;
        float acc = 0.0f;
        for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
        ci[j] = beta * ci[j] + acc;
      }
    }
  }
}

void gemm_tn_ref(std::size_t m, std::size_t k, std::size_t n,
                 std::span<const float> a, std::span<const float> b,
                 std::span<float> c, float beta) {
  assert(a.size() >= k * m && b.size() >= k * n && c.size() >= m * n);
  if (beta == 0.0f) {
    std::fill(c.begin(), c.begin() + static_cast<std::ptrdiff_t>(m * n), 0.0f);
  } else if (beta != 1.0f) {
    for (std::size_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  // C[i,j] += A[p,i] * B[p,j]: accumulate outer products row-by-row of the
  // shared dimension; inner loop is contiguous over B and C.
  for (std::size_t p = 0; p < k; ++p) {
    const float* __restrict__ ap = a.data() + p * m;
    const float* __restrict__ bp = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float api = ap[i];
      if (api == 0.0f) continue;
      float* __restrict__ ci = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
}

// ---------------------------------------------------------------------------
// Tuning
// ---------------------------------------------------------------------------

namespace {

// Register tile sized for the baseline x86-64 (SSE2) target the repo
// builds for: 4x8 accumulators = 8 vector registers, leaving half the
// register file for panel loads and broadcasts.
constexpr std::size_t kMR = 4;  // microkernel register-tile rows
constexpr std::size_t kNR = 8;  // microkernel register-tile columns

GemmTuning derive_tuning() {
  GemmTuning t{};
  t.l1d_bytes = 32 * 1024;
  t.l2_bytes = 1024 * 1024;
#if defined(_SC_LEVEL1_DCACHE_SIZE)
  if (const long l1 = sysconf(_SC_LEVEL1_DCACHE_SIZE); l1 > 0) {
    t.l1d_bytes = static_cast<std::size_t>(l1);
  }
#endif
#if defined(_SC_LEVEL2_CACHE_SIZE)
  if (const long l2 = sysconf(_SC_LEVEL2_CACHE_SIZE); l2 > 0) {
    t.l2_bytes = static_cast<std::size_t>(l2);
  }
#endif
  // One kc x kNR sliver of the packed B panel should occupy about a third
  // of L1d so it stays hot while the microkernel walks an A row block.
  const std::size_t kc_raw = t.l1d_bytes / (3 * sizeof(float) * kNR);
  t.kc = std::clamp<std::size_t>(kc_raw & ~std::size_t{7}, 64, 512);
  // The packed mc x kc block of A should fill about half of L2.
  const std::size_t mc_raw = t.l2_bytes / (2 * sizeof(float) * t.kc);
  t.mc = std::clamp<std::size_t>(mc_raw & ~(kMR - 1), kMR, 1024);
  t.nc = 256;
  return t;
}

/// Grow-only scratch for packed panels, backed by util::AlignedArena
/// (64-byte aligned, huge-page-advised past 2 MiB; per thread — the
/// engines run GEMMs from pool workers, never nested).
struct PackScratch {
  util::AlignedArena a;                // packed A slivers
  util::AlignedArena b;                // packed B slivers
  std::vector<std::uint8_t> a_zeros;   // per-A-sliver "contains a zero" flag
};

thread_local PackScratch t_scratch;

// ---------------------------------------------------------------------------
// Panel packing
//
// B panels: sliver s holds rows p of columns [j0, j0 + kNR) back to back
// (dst[s * depth * kNR + p * kNR + jj]), so the microkernel's per-p load
// is one contiguous strip. A blocks: sliver s holds the kMR rows
// [i0, i0 + kMR) interleaved per p (dst[s * depth * kMR + p * kMR + r]),
// so the per-p multiplier loads are contiguous too. Edge slivers pack
// only their live lanes; the microkernels never read past mr/nr.
// ---------------------------------------------------------------------------

/// Packs `depth` rows x nc columns of row-major storage starting at src
/// (row stride ld) into kNR-column slivers.
void pack_b_slivers(const float* __restrict__ src, std::size_t ld,
                    std::size_t depth, std::size_t nc,
                    float* __restrict__ dst) {
  for (std::size_t j0 = 0; j0 < nc; j0 += kNR) {
    const std::size_t w = std::min(kNR, nc - j0);
    float* __restrict__ out = dst + (j0 / kNR) * depth * kNR;
    const float* __restrict__ in = src + j0;
    if (w == kNR) {
      for (std::size_t p = 0; p < depth; ++p) {
        std::memcpy(out + p * kNR, in + p * ld, kNR * sizeof(float));
      }
    } else {
      for (std::size_t p = 0; p < depth; ++p) {
        std::memcpy(out + p * kNR, in + p * ld, w * sizeof(float));
      }
    }
  }
}

/// Packs A[ic..ic+mc, pc..pc+kc] of a row-major [m, k] matrix (lda == k)
/// into kMR-row slivers, recording per sliver whether it holds any exact
/// zero (selects the skip-preserving microkernel).
void pack_a_rows(const float* __restrict__ a, std::size_t lda, std::size_t ic,
                 std::size_t pc, std::size_t mc, std::size_t kc,
                 float* __restrict__ dst, std::uint8_t* __restrict__ zeros) {
  for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
    const std::size_t w = std::min(kMR, mc - i0);
    float* __restrict__ out = dst + (i0 / kMR) * kc * kMR;
    bool any_zero = false;
    for (std::size_t r = 0; r < w; ++r) {
      const float* __restrict__ src = a + (ic + i0 + r) * lda + pc;
      float* __restrict__ o = out + r;
      for (std::size_t p = 0; p < kc; ++p) {
        const float v = src[p];
        o[p * kMR] = v;
        any_zero |= (v == 0.0f);
      }
    }
    zeros[i0 / kMR] = any_zero ? 1 : 0;
  }
}

/// Packs A[pc..pc+kc, ic..ic+mc] of a row-major [k, m] matrix (lda == m —
/// the gemm_tn layout) into kMR-row slivers with zero flags.
void pack_a_cols(const float* __restrict__ a, std::size_t lda, std::size_t ic,
                 std::size_t pc, std::size_t mc, std::size_t kc,
                 float* __restrict__ dst, std::uint8_t* __restrict__ zeros) {
  for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
    const std::size_t w = std::min(kMR, mc - i0);
    float* __restrict__ out = dst + (i0 / kMR) * kc * kMR;
    bool any_zero = false;
    for (std::size_t p = 0; p < kc; ++p) {
      const float* __restrict__ src = a + (pc + p) * lda + ic + i0;
      float* __restrict__ o = out + p * kMR;
      for (std::size_t r = 0; r < w; ++r) {
        const float v = src[r];
        o[r] = v;
        any_zero |= (v == 0.0f);
      }
    }
    zeros[i0 / kMR] = any_zero ? 1 : 0;
  }
}

// ---------------------------------------------------------------------------
// Microkernels. All operands are packed slivers: A row p at ap + p * kMR,
// B row p at bp + p * kNR.
// ---------------------------------------------------------------------------

template <bool kFull>
void load_c_tile(float (&acc)[kMR][kNR], std::size_t mr, std::size_t nr,
                 const float* __restrict__ c, std::size_t ldc, float beta,
                 bool first_block) {
  const std::size_t rows = kFull ? kMR : mr;
  const std::size_t cols = kFull ? kNR : nr;
  if (!first_block || beta == 1.0f) {
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < cols; ++j) acc[r][j] = c[r * ldc + j];
    }
  } else if (beta == 0.0f) {
    // Write-only C: never read (it may be uninitialized or NaN-poisoned).
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < cols; ++j) acc[r][j] = 0.0f;
    }
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < cols; ++j) acc[r][j] = c[r * ldc + j] * beta;
    }
  }
}

template <bool kFull>
void store_c_tile(const float (&acc)[kMR][kNR], std::size_t mr, std::size_t nr,
                  float* __restrict__ c, std::size_t ldc) {
  const std::size_t rows = kFull ? kMR : mr;
  const std::size_t cols = kFull ? kNR : nr;
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t j = 0; j < cols; ++j) c[r * ldc + j] = acc[r][j];
  }
}

/// C-accumulating tile for gemm_nn / gemm_tn, zero-free A sliver: the
/// reference skip branch can never fire, so the plain fused loop is
/// bitwise identical and fully vectorizable.
void micro_cacc_fast(std::size_t kc, const float* __restrict__ ap,
                     const float* __restrict__ bp, float* __restrict__ c,
                     std::size_t ldc, float beta, bool first_block) {
  float acc[kMR][kNR];
  load_c_tile<true>(acc, kMR, kNR, c, ldc, beta, first_block);
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict__ arow = ap + p * kMR;
    const float* __restrict__ brow = bp + p * kNR;
    for (std::size_t r = 0; r < kMR; ++r) {
      const float av = arow[r];
      for (std::size_t j = 0; j < kNR; ++j) acc[r][j] += av * brow[j];
    }
  }
  store_c_tile<true>(acc, kMR, kNR, c, ldc);
}

/// C-accumulating tile for A slivers that DO hold zeros (and for edge
/// tiles): the select keeps the old accumulator when av == 0, which is
/// bitwise the reference's skip (an av of exactly zero contributes not
/// even a sign flip), and if-converts to a vector blend.
template <bool kFull>
void micro_cacc_guard(std::size_t mr, std::size_t nr, std::size_t kc,
                      const float* __restrict__ ap,
                      const float* __restrict__ bp, float* __restrict__ c,
                      std::size_t ldc, float beta, bool first_block) {
  const std::size_t rows = kFull ? kMR : mr;
  const std::size_t cols = kFull ? kNR : nr;
  float acc[kMR][kNR];
  load_c_tile<kFull>(acc, mr, nr, c, ldc, beta, first_block);
  for (std::size_t p = 0; p < kc; ++p) {
    const float* __restrict__ arow = ap + p * kMR;
    const float* __restrict__ brow = bp + p * kNR;
    for (std::size_t r = 0; r < rows; ++r) {
      const float av = arow[r];
      for (std::size_t j = 0; j < cols; ++j) {
        acc[r][j] = (av == 0.0f) ? acc[r][j] : acc[r][j] + av * brow[j];
      }
    }
  }
  store_c_tile<kFull>(acc, mr, nr, c, ldc);
}

/// Register tile for gemm_nt: fresh dot accumulators over the whole k
/// extent (p ascending — the reference op sequence), combined with beta
/// only at the end. No zero skip: the reference dot loop has none.
template <bool kFull>
void micro_nt(std::size_t mr, std::size_t nr, std::size_t k,
              const float* __restrict__ ap, const float* __restrict__ bp,
              float* __restrict__ c, std::size_t ldc, float beta) {
  const std::size_t rows = kFull ? kMR : mr;
  const std::size_t cols = kFull ? kNR : nr;
  float acc[kMR][kNR] = {};
  for (std::size_t p = 0; p < k; ++p) {
    const float* __restrict__ arow = ap + p * kMR;
    const float* __restrict__ brow = bp + p * kNR;
    for (std::size_t r = 0; r < rows; ++r) {
      const float av = arow[r];
      for (std::size_t j = 0; j < cols; ++j) acc[r][j] += av * brow[j];
    }
  }
  if (beta == 0.0f) {
    store_c_tile<kFull>(acc, mr, nr, c, ldc);
  } else {
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t j = 0; j < cols; ++j) {
        c[r * ldc + j] = beta * c[r * ldc + j] + acc[r][j];
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Blocked drivers
// ---------------------------------------------------------------------------

/// Shared driver for the two C-accumulating variants; PackA packs the
/// (ic, pc, mc, kc) block of A into slivers + zero flags.
template <typename PackA>
void gemm_cacc_blocked(std::size_t m, std::size_t k, std::size_t n,
                       std::span<const float> b, std::span<float> c,
                       float beta, PackA&& pack_a) {
  const GemmTuning& tun = gemm_tuning();
  float* bp = t_scratch.b.ensure_floats(tun.kc * (tun.nc + kNR));
  float* ap = t_scratch.a.ensure_floats(tun.kc * (tun.mc + kMR));
  t_scratch.a_zeros.resize(tun.mc / kMR + 1);
  std::uint8_t* zeros = t_scratch.a_zeros.data();
  for (std::size_t jc = 0; jc < n; jc += tun.nc) {
    const std::size_t nc = std::min(tun.nc, n - jc);
    for (std::size_t pc = 0; pc < k; pc += tun.kc) {
      const std::size_t kc = std::min(tun.kc, k - pc);
      const bool first = pc == 0;
      pack_b_slivers(b.data() + pc * n + jc, n, kc, nc, bp);
      for (std::size_t ic = 0; ic < m; ic += tun.mc) {
        const std::size_t mc = std::min(tun.mc, m - ic);
        pack_a(ic, pc, mc, kc, ap, zeros);
        for (std::size_t i0 = 0; i0 < mc; i0 += kMR) {
          const std::size_t mr = std::min(kMR, mc - i0);
          const float* asliver = ap + (i0 / kMR) * kc * kMR;
          const bool has_zero = zeros[i0 / kMR] != 0;
          float* crow = c.data() + (ic + i0) * n + jc;
          for (std::size_t j0 = 0; j0 < nc; j0 += kNR) {
            const std::size_t nr = std::min(kNR, nc - j0);
            const float* bsliver = bp + (j0 / kNR) * kc * kNR;
            if (mr == kMR && nr == kNR) {
              if (has_zero) {
                micro_cacc_guard<true>(kMR, kNR, kc, asliver, bsliver,
                                       crow + j0, n, beta, first);
              } else {
                micro_cacc_fast(kc, asliver, bsliver, crow + j0, n, beta,
                                first);
              }
            } else {
              micro_cacc_guard<false>(mr, nr, kc, asliver, bsliver, crow + j0,
                                      n, beta, first);
            }
          }
        }
      }
    }
  }
}

void gemm_nt_blocked(std::size_t m, std::size_t k, std::size_t n,
                     std::span<const float> a, std::span<const float> b,
                     std::span<float> c, float beta) {
  // The dot accumulators must span the whole k extent (the reference keeps
  // one register accumulator per element), so k is not blocked; instead
  // both operands are repacked per panel — B transposed into kNR slivers,
  // the current kMR rows of A interleaved — with the B panel width chosen
  // so the pack stays a few MB at most.
  const std::size_t panel_target = (2u << 20) / sizeof(float);
  std::size_t nc_max =
      std::max<std::size_t>(panel_target / std::max<std::size_t>(k, 1), kNR);
  nc_max = std::min<std::size_t>(nc_max & ~(kNR - 1), 256);
  float* bt = t_scratch.b.ensure_floats(k * (nc_max + kNR));
  float* ap = t_scratch.a.ensure_floats(k * kMR);
  for (std::size_t jc = 0; jc < n; jc += nc_max) {
    const std::size_t nc = std::min(nc_max, n - jc);
    // B transpose pack: sliver s row p holds B[jc+s*kNR .. +w][p].
    for (std::size_t j0 = 0; j0 < nc; j0 += kNR) {
      const std::size_t w = std::min(kNR, nc - j0);
      float* __restrict__ out = bt + (j0 / kNR) * k * kNR;
      for (std::size_t jj = 0; jj < w; ++jj) {
        const float* __restrict__ brow = b.data() + (jc + j0 + jj) * k;
        float* __restrict__ o = out + jj;
        for (std::size_t p = 0; p < k; ++p) o[p * kNR] = brow[p];
      }
    }
    for (std::size_t i0 = 0; i0 < m; i0 += kMR) {
      const std::size_t mr = std::min(kMR, m - i0);
      // A transpose pack for this row sliver: arow p = A[i0..i0+mr][p].
      for (std::size_t r = 0; r < mr; ++r) {
        const float* __restrict__ src = a.data() + (i0 + r) * k;
        float* __restrict__ o = ap + r;
        for (std::size_t p = 0; p < k; ++p) o[p * kMR] = src[p];
      }
      float* crow = c.data() + i0 * n + jc;
      for (std::size_t j0 = 0; j0 < nc; j0 += kNR) {
        const std::size_t nr = std::min(kNR, nc - j0);
        const float* bsliver = bt + (j0 / kNR) * k * kNR;
        if (mr == kMR && nr == kNR) {
          micro_nt<true>(kMR, kNR, k, ap, bsliver, crow + j0, n, beta);
        } else {
          micro_nt<false>(mr, nr, k, ap, bsliver, crow + j0, n, beta);
        }
      }
    }
  }
}

/// Below this work volume the packing overhead outweighs the locality win;
/// both sides are bitwise identical, so the threshold is purely a perf
/// knob.
constexpr std::size_t kBlockedMinVolume = 32 * 1024;

}  // namespace

const GemmTuning& gemm_tuning() {
  static const GemmTuning tuning = derive_tuning();
  return tuning;
}

// ---------------------------------------------------------------------------
// Public entry points (declared in tensor/ops.hpp)
// ---------------------------------------------------------------------------

namespace {

/// Telemetry tap at the dispatch layer: call and MAC volume, not timing —
/// per-call spans would dwarf the work at training's small shapes.
void note_gemm(std::size_t m, std::size_t k, std::size_t n) {
  static const obs::Counter calls = obs::counter("gemm.calls");
  static const obs::Counter macs = obs::counter("gemm.macs");
  calls.add(1);
  macs.add(static_cast<std::uint64_t>(m) * k * n);
}

}  // namespace

void gemm_nn(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta) {
  assert(a.size() >= m * k && b.size() >= k * n && c.size() >= m * n);
  note_gemm(m, k, n);
  // k == 0 must still apply beta to C — the reference handles it.
  if (k == 0 || n < 8 || m * k * n < kBlockedMinVolume) {
    gemm_nn_ref(m, k, n, a, b, c, beta);
    return;
  }
  gemm_cacc_blocked(
      m, k, n, b, c, beta,
      [&a, k](std::size_t ic, std::size_t pc, std::size_t mc, std::size_t kc,
              float* dst, std::uint8_t* zeros) {
        pack_a_rows(a.data(), k, ic, pc, mc, kc, dst, zeros);
      });
}

void gemm_nt(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta) {
  assert(a.size() >= m * k && b.size() >= n * k && c.size() >= m * n);
  note_gemm(m, k, n);
  if (k == 0 || n < 4 || k > 65536 || m * k * n < kBlockedMinVolume) {
    gemm_nt_ref(m, k, n, a, b, c, beta);
    return;
  }
  gemm_nt_blocked(m, k, n, a, b, c, beta);
}

void gemm_tn(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta) {
  assert(a.size() >= k * m && b.size() >= k * n && c.size() >= m * n);
  note_gemm(m, k, n);
  if (k == 0 || n < 8 || m * k * n < kBlockedMinVolume) {
    gemm_tn_ref(m, k, n, a, b, c, beta);
    return;
  }
  gemm_cacc_blocked(
      m, k, n, b, c, beta,
      [&a, m](std::size_t ic, std::size_t pc, std::size_t mc, std::size_t kc,
              float* dst, std::uint8_t* zeros) {
        pack_a_cols(a.data(), m, ic, pc, mc, kc, dst, zeros);
      });
}

}  // namespace skiptrain::tensor
