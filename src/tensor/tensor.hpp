// A dense row-major float tensor. This is the storage type underneath the
// nn:: layers; it deliberately supports only what decentralized SGD needs:
// contiguous storage, shape bookkeeping, and cheap span access. All heavy
// math lives in tensor/ops.hpp as free functions over spans.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace skiptrain::tensor {

/// Shape of a tensor; index 0 is the outermost (slowest-varying) dimension.
using Shape = std::vector<std::size_t>;

[[nodiscard]] std::size_t shape_numel(const Shape& shape);
[[nodiscard]] std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);
  Tensor(std::initializer_list<std::size_t> dims);

  const Shape& shape() const { return shape_; }
  std::size_t dim(std::size_t i) const;
  std::size_t rank() const { return shape_.size(); }
  std::size_t numel() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  /// 1-D / 2-D element access with bounds assertions (debug builds).
  float& at(std::size_t i);
  float at(std::size_t i) const;
  float& at(std::size_t row, std::size_t col);
  float at(std::size_t row, std::size_t col) const;

  /// Row view for a rank>=2 tensor: the contiguous slice [row * stride,
  /// (row+1) * stride) where stride = numel / dim(0).
  std::span<float> row(std::size_t r);
  std::span<const float> row(std::size_t r) const;

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Reinterprets the tensor with a new shape of identical element count.
  void reshape(Shape new_shape);

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace skiptrain::tensor
