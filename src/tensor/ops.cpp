#include "tensor/ops.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace skiptrain::tensor {

void axpy(float alpha, std::span<const float> x, std::span<float> y) {
  assert(x.size() == y.size());
  const float* __restrict__ xs = x.data();
  float* __restrict__ ys = y.data();
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) ys[i] += alpha * xs[i];
}

void scale(std::span<float> x, float alpha) {
  for (auto& v : x) v *= alpha;
}

void scaled_copy(float alpha, std::span<const float> src,
                 std::span<float> dst) {
  assert(src.size() == dst.size());
  const float* __restrict__ s = src.data();
  float* __restrict__ d = dst.data();
  const std::size_t n = src.size();
  for (std::size_t i = 0; i < n; ++i) d[i] = alpha * s[i];
}

void axpy2(float a1, std::span<const float> x1, float a2,
           std::span<const float> x2, std::span<float> y) {
  assert(x1.size() == y.size() && x2.size() == y.size());
  const float* __restrict__ s1 = x1.data();
  const float* __restrict__ s2 = x2.data();
  float* __restrict__ ys = y.data();
  const std::size_t n = y.size();
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = (ys[i] + a1 * s1[i]) + a2 * s2[i];
  }
}

void weighted_sum3(float a0, std::span<const float> x0, float a1,
                   std::span<const float> x1, float a2,
                   std::span<const float> x2, std::span<float> y) {
  assert(x0.size() == y.size() && x1.size() == y.size() &&
         x2.size() == y.size());
  const float* __restrict__ s0 = x0.data();
  const float* __restrict__ s1 = x1.data();
  const float* __restrict__ s2 = x2.data();
  float* __restrict__ ys = y.data();
  const std::size_t n = y.size();
  for (std::size_t i = 0; i < n; ++i) {
    ys[i] = ((a0 * s0[i]) + a1 * s1[i]) + a2 * s2[i];
  }
}

void copy(std::span<const float> src, std::span<float> dst) {
  assert(src.size() == dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
}

void subtract(std::span<const float> a, std::span<const float> b,
              std::span<float> out) {
  assert(a.size() == b.size() && a.size() == out.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

double dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return acc;
}

double squared_norm(std::span<const float> x) { return dot(x, x); }

double l2_distance(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return std::sqrt(acc);
}

// gemm_nn / gemm_nt / gemm_tn are implemented in tensor/gemm.cpp: blocked,
// packing kernels dispatching against the retained seed loops (gemm_*_ref
// in tensor/gemm.hpp), bitwise identical to them on every input.

void softmax_rows(std::size_t rows, std::size_t cols, std::span<float> x) {
  assert(x.size() >= rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    float* __restrict__ row = x.data() + r * cols;
    float max_val = row[0];
    for (std::size_t c = 1; c < cols; ++c) max_val = std::max(max_val, row[c]);
    float sum = 0.0f;
    for (std::size_t c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - max_val);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (std::size_t c = 0; c < cols; ++c) row[c] *= inv;
  }
}

std::size_t argmax(std::span<const float> x) {
  assert(!x.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if (x[i] > x[best]) best = i;
  }
  return best;
}

}  // namespace skiptrain::tensor
