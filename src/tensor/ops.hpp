// Dense kernels used by the nn:: layers and the parameter-averaging step of
// the decentralized-learning engine. All matrices are row-major.
//
// Naming: gemm_ab where a/b in {n, t} describe whether A/B is used as-is or
// transposed, matching the BLAS convention. Only the three combinations the
// backprop pass needs are provided.
#pragma once

#include <cstddef>
#include <span>

namespace skiptrain::tensor {

// ---------------------------------------------------------------------------
// Level-1: vector ops (the decentralized aggregation step is built on these)
// ---------------------------------------------------------------------------

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

/// dst = alpha * src — the fused first step of a weighted row reduction
/// (one pass instead of copy-then-scale; bitwise identical result).
void scaled_copy(float alpha, std::span<const float> src,
                 std::span<float> dst);

/// y = (y + a1·x1) + a2·x2 — two axpy steps in one pass over y. The
/// parenthesisation matches two sequential axpy calls, so the result is
/// bitwise identical at half the write-back traffic.
void axpy2(float a1, std::span<const float> x1, float a2,
           std::span<const float> x2, std::span<float> y);

/// y = ((a0·x0) + a1·x1) + a2·x2 — weighted three-term row sum, bitwise
/// equal to scaled_copy followed by two axpys in one pass.
void weighted_sum3(float a0, std::span<const float> x0, float a1,
                   std::span<const float> x1, float a2,
                   std::span<const float> x2, std::span<float> y);

/// dst = src
void copy(std::span<const float> src, std::span<float> dst);

/// out = a - b
void subtract(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

/// Dot product.
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 norm.
[[nodiscard]] double squared_norm(std::span<const float> x);

/// Euclidean distance between two parameter vectors.
[[nodiscard]] double l2_distance(std::span<const float> a,
                                 std::span<const float> b);

// ---------------------------------------------------------------------------
// Level-3: matrix multiplication
//
// Implemented as cache-blocked, packing kernels (tensor/gemm.cpp) that are
// bitwise identical to the seed triple loops, which tensor/gemm.hpp
// retains as gemm_*_ref verification oracles.
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n] + beta * C
void gemm_nn(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta = 0.0f);

/// C[m,n] = A[m,k] * B[n,k]^T + beta * C  (B stored row-major as [n,k])
void gemm_nt(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta = 0.0f);

/// C[m,n] = A[k,m]^T * B[k,n] + beta * C  (A stored row-major as [k,m])
void gemm_tn(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta = 0.0f);

// ---------------------------------------------------------------------------
// NN-specific kernels
// ---------------------------------------------------------------------------

/// Row-wise in-place softmax over a [rows, cols] matrix (max-subtracted for
/// numerical stability).
void softmax_rows(std::size_t rows, std::size_t cols, std::span<float> x);

/// Index of the maximum element (first occurrence on ties).
[[nodiscard]] std::size_t argmax(std::span<const float> x);

}  // namespace skiptrain::tensor
