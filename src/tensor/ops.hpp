// Dense kernels used by the nn:: layers and the parameter-averaging step of
// the decentralized-learning engine. All matrices are row-major.
//
// Naming: gemm_ab where a/b in {n, t} describe whether A/B is used as-is or
// transposed, matching the BLAS convention. Only the three combinations the
// backprop pass needs are provided.
#pragma once

#include <cstddef>
#include <span>

namespace skiptrain::tensor {

// ---------------------------------------------------------------------------
// Level-1: vector ops (the decentralized aggregation step is built on these)
// ---------------------------------------------------------------------------

/// y += alpha * x
void axpy(float alpha, std::span<const float> x, std::span<float> y);

/// x *= alpha
void scale(std::span<float> x, float alpha);

/// dst = src
void copy(std::span<const float> src, std::span<float> dst);

/// out = a - b
void subtract(std::span<const float> a, std::span<const float> b,
              std::span<float> out);

/// Dot product.
[[nodiscard]] double dot(std::span<const float> a, std::span<const float> b);

/// Squared L2 norm.
[[nodiscard]] double squared_norm(std::span<const float> x);

/// Euclidean distance between two parameter vectors.
[[nodiscard]] double l2_distance(std::span<const float> a,
                                 std::span<const float> b);

// ---------------------------------------------------------------------------
// Level-3: matrix multiplication
// ---------------------------------------------------------------------------

/// C[m,n] = A[m,k] * B[k,n] + beta * C
void gemm_nn(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta = 0.0f);

/// C[m,n] = A[m,k] * B[n,k]^T + beta * C  (B stored row-major as [n,k])
void gemm_nt(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta = 0.0f);

/// C[m,n] = A[k,m]^T * B[k,n] + beta * C  (A stored row-major as [k,m])
void gemm_tn(std::size_t m, std::size_t k, std::size_t n,
             std::span<const float> a, std::span<const float> b,
             std::span<float> c, float beta = 0.0f);

// ---------------------------------------------------------------------------
// NN-specific kernels
// ---------------------------------------------------------------------------

/// Row-wise in-place softmax over a [rows, cols] matrix (max-subtracted for
/// numerical stability).
void softmax_rows(std::size_t rows, std::size_t cols, std::span<float> x);

/// Index of the maximum element (first occurrence on ties).
[[nodiscard]] std::size_t argmax(std::span<const float> x);

}  // namespace skiptrain::tensor
