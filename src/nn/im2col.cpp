#include "nn/im2col.hpp"

#include <algorithm>
#include <cstring>

namespace skiptrain::nn {

namespace {

/// Valid output-position range for kernel offset ko on an extent of
/// `in_extent`: positions o with 0 <= o*stride + ko - pad < in_extent,
/// clamped to [0, out_extent).
struct OutRange {
  std::size_t lo;
  std::size_t hi;  // exclusive
};

OutRange valid_out_range(std::size_t out_extent, std::size_t in_extent,
                         std::size_t stride, std::size_t pad, std::size_t ko) {
  const auto s = static_cast<std::ptrdiff_t>(stride);
  const auto off = static_cast<std::ptrdiff_t>(ko) -
                   static_cast<std::ptrdiff_t>(pad);  // in = o*s + off
  std::ptrdiff_t lo = 0;
  if (off < 0) lo = (-off + s - 1) / s;
  std::ptrdiff_t hi = 0;
  const std::ptrdiff_t last_in = static_cast<std::ptrdiff_t>(in_extent) - 1;
  if (last_in - off >= 0) hi = (last_in - off) / s + 1;
  lo = std::min<std::ptrdiff_t>(lo, static_cast<std::ptrdiff_t>(out_extent));
  hi = std::clamp<std::ptrdiff_t>(hi, lo,
                                  static_cast<std::ptrdiff_t>(out_extent));
  return {static_cast<std::size_t>(lo), static_cast<std::size_t>(hi)};
}

}  // namespace

void im2col_kmajor(const ConvGeometry& g, const float* image, float* col) {
  const std::size_t ohw = g.out_hw();
  std::size_t kappa = 0;
  for (std::size_t ic = 0; ic < g.in_c; ++ic) {
    const float* __restrict__ in_plane = image + ic * g.h * g.w;
    for (std::size_t ky = 0; ky < g.k; ++ky) {
      for (std::size_t kx = 0; kx < g.k; ++kx, ++kappa) {
        float* __restrict__ row = col + kappa * ohw;
        const OutRange xr = valid_out_range(g.ow, g.w, g.stride, g.pad, kx);
        for (std::size_t oy = 0; oy < g.oh; ++oy) {
          float* __restrict__ seg = row + oy * g.ow;
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * g.stride + ky) -
              static_cast<std::ptrdiff_t>(g.pad);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.h)) {
            std::fill(seg, seg + g.ow, 0.0f);
            continue;
          }
          std::fill(seg, seg + xr.lo, 0.0f);
          std::fill(seg + xr.hi, seg + g.ow, 0.0f);
          const float* __restrict__ src =
              in_plane + static_cast<std::size_t>(iy) * g.w;
          if (xr.lo >= xr.hi) {
            // Fully clipped row (kernel overhangs the whole extent); the
            // empty-range guard also keeps the offset arithmetic below
            // from underflowing.
          } else if (g.stride == 1) {
            // ix = ox + kx - pad is contiguous in ox.
            const std::size_t ix0 = static_cast<std::size_t>(
                static_cast<std::ptrdiff_t>(xr.lo + kx) -
                static_cast<std::ptrdiff_t>(g.pad));
            std::memcpy(seg + xr.lo, src + ix0,
                        (xr.hi - xr.lo) * sizeof(float));
          } else {
            for (std::size_t ox = xr.lo; ox < xr.hi; ++ox) {
              seg[ox] = src[ox * g.stride + kx - g.pad];
            }
          }
        }
      }
    }
  }
}

void im2row_posmajor(const ConvGeometry& g, const float* image, float* colr) {
  const std::size_t kk = g.k * g.k;
  const std::size_t patch = g.patch();
  for (std::size_t oy = 0; oy < g.oh; ++oy) {
    const std::ptrdiff_t iy0 = static_cast<std::ptrdiff_t>(oy * g.stride) -
                               static_cast<std::ptrdiff_t>(g.pad);
    for (std::size_t ox = 0; ox < g.ow; ++ox) {
      const std::ptrdiff_t ix0 = static_cast<std::ptrdiff_t>(ox * g.stride) -
                                 static_cast<std::ptrdiff_t>(g.pad);
      float* __restrict__ row = colr + (oy * g.ow + ox) * patch;
      const KernelRange xr = clipped_kernel_range(g.k, g.w, ix0);
      const std::size_t kx_lo = xr.lo;
      const std::size_t kx_hi = xr.hi;
      for (std::size_t ic = 0; ic < g.in_c; ++ic) {
        const float* __restrict__ in_plane = image + ic * g.h * g.w;
        float* __restrict__ dst = row + ic * kk;
        for (std::size_t ky = 0; ky < g.k; ++ky) {
          float* __restrict__ seg = dst + ky * g.k;
          const std::ptrdiff_t iy = iy0 + static_cast<std::ptrdiff_t>(ky);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(g.h) ||
              kx_lo >= kx_hi) {
            std::fill(seg, seg + g.k, 0.0f);
            continue;
          }
          std::fill(seg, seg + kx_lo, 0.0f);
          std::fill(seg + kx_hi, seg + g.k, 0.0f);
          // ix = ix0 + kx is contiguous in kx.
          std::memcpy(seg + kx_lo,
                      in_plane + static_cast<std::size_t>(iy) * g.w +
                          static_cast<std::size_t>(
                              ix0 + static_cast<std::ptrdiff_t>(kx_lo)),
                      (kx_hi - kx_lo) * sizeof(float));
        }
      }
    }
  }
}

void transpose(std::size_t rows, std::size_t cols, const float* src,
               float* dst) {
  // Small 8x8 tiles keep both streams cache-resident; the matrices here
  // (gradient planes) are at most a few hundred KB.
  constexpr std::size_t kTile = 8;
  for (std::size_t i0 = 0; i0 < rows; i0 += kTile) {
    const std::size_t i1 = std::min(rows, i0 + kTile);
    for (std::size_t j0 = 0; j0 < cols; j0 += kTile) {
      const std::size_t j1 = std::min(cols, j0 + kTile);
      for (std::size_t i = i0; i < i1; ++i) {
        for (std::size_t j = j0; j < j1; ++j) {
          dst[j * rows + i] = src[i * cols + j];
        }
      }
    }
  }
}

}  // namespace skiptrain::nn
