// 2-D convolution over [B, C, H, W] tensors. Supports stride and symmetric
// zero padding. Weights are stored [out_c, in_c, kh, kw] followed by
// bias[out_c].
//
// Two algorithms compute identical results:
//   * kDirect — the seed seven-deep loop nest, retained as the reference
//     (forward_direct / backward_direct).
//   * kIm2col (default) — forward and the weight gradient are lowered to
//     the blocked GEMM kernels over patch matrices whose k-dimension is
//     ordered (ic, ky, kx), i.e. the direct loop's accumulation order; the
//     input gradient runs the direct loop nest with hoisted bounds. A
//     per-layer scratch arena holds the patch matrices, so steady-state
//     batches allocate nothing.
//
// Bit-identity contract: for inputs free of ±Inf/NaN where no parameter
// or accumulator is an exact (signed) zero at a divergence point, im2col
// results equal the direct loops bit for bit — the only op-sequence
// differences are `acc += w * 0` terms for padding slots the direct loop
// skips (exact for any nonzero finite accumulator) and the GEMM's
// skip-zero-multiplier branch (a zero weight or gradient contributes not
// even a sign flip). tests/test_conv_im2col.cpp enforces this bitwise on
// fuzzed shapes, including zero-heavy gradients.
#pragma once

#include <vector>

#include "nn/im2col.hpp"
#include "nn/layer.hpp"

namespace skiptrain::nn {

enum class Conv2dAlgo {
  kAuto,    // currently: im2col
  kDirect,  // seed loop nest (verification oracle)
  kIm2col,  // GEMM-lowered
};

class Conv2d final : public ParamLayer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, std::size_t stride = 1,
         std::size_t padding = 0);

  std::string name() const override;
  Shape output_shape(const Shape& input_shape) const override;
  void forward(const Tensor& input, Tensor& output) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;

  std::unique_ptr<Layer> clone() const override;

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel_size() const { return k_; }

  void set_algorithm(Conv2dAlgo algo) { algo_ = algo; }
  Conv2dAlgo algorithm() const { return algo_; }

  /// Seed direct loops, kept as the verification reference.
  void forward_direct(const Tensor& input, Tensor& output);
  void backward_direct(const Tensor& input, const Tensor& grad_output,
                       Tensor& grad_input);

 private:
  std::size_t spatial_out(std::size_t in) const;
  ConvGeometry geometry(std::size_t h, std::size_t w) const;

  void forward_im2col(const Tensor& input, Tensor& output);
  void backward_im2col(const Tensor& input, const Tensor& grad_output,
                       Tensor& grad_input);

  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t k_;
  std::size_t stride_;
  std::size_t pad_;
  Conv2dAlgo algo_ = Conv2dAlgo::kAuto;

  // Per-layer scratch (each simulated node owns its model clone, so no
  // cross-thread sharing): patch matrices and the transposed gradient
  // plane, grown once and reused across batch images and rounds.
  std::vector<float> col_;     // [patch x out_hw]   (forward)
  std::vector<float> colr_;    // [out_hw x patch]   (backward dW)
  std::vector<float> gout_t_;  // [out_hw x out_c]   (backward dW)
  // ParamLayer::params_ holds the weights then the bias.
};

}  // namespace skiptrain::nn
