// 2-D convolution over [B, C, H, W] tensors (direct algorithm, suitable for
// the small CNNs the paper trains). Supports stride and symmetric zero
// padding. Weights are stored [out_c, in_c, kh, kw] followed by bias[out_c].
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace skiptrain::nn {

class Conv2d final : public ParamLayer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel_size, std::size_t stride = 1,
         std::size_t padding = 0);

  std::string name() const override;
  Shape output_shape(const Shape& input_shape) const override;
  void forward(const Tensor& input, Tensor& output) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;

  std::unique_ptr<Layer> clone() const override;

  std::size_t in_channels() const { return in_c_; }
  std::size_t out_channels() const { return out_c_; }
  std::size_t kernel_size() const { return k_; }

 private:
  std::size_t spatial_out(std::size_t in) const;

  std::size_t in_c_;
  std::size_t out_c_;
  std::size_t k_;
  std::size_t stride_;
  std::size_t pad_;
  // ParamLayer::params_ holds the weights then the bias.
};

}  // namespace skiptrain::nn
