#include "nn/sequential.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace skiptrain::nn {

Sequential::Sequential(Sequential&& other) noexcept
    : layers_(std::move(other.layers_)),
      activations_(std::move(other.activations_)),
      owned_arena_(std::move(other.owned_arena_)),
      arena_(other.arena_),
      external_arena_(other.external_arena_) {
  other.arena_ = {};
  other.external_arena_ = false;
}

Sequential& Sequential::operator=(Sequential&& other) noexcept {
  if (this != &other) {
    layers_ = std::move(other.layers_);
    activations_ = std::move(other.activations_);
    owned_arena_ = std::move(other.owned_arena_);
    arena_ = other.arena_;
    external_arena_ = other.external_arena_;
    other.arena_ = {};
    other.external_arena_ = false;
  }
  return *this;
}

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  if (external_arena_) {
    throw std::logic_error(
        "Sequential::add: model is bound to an external arena");
  }
  layers_.push_back(std::move(layer));
  relayout_owned_arena();
  return *this;
}

void Sequential::relayout_owned_arena() {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->parameter_count();
  // Migrate values layer by layer; the old arena (layer-owned storage or
  // the previous owned_arena_) stays alive until after the loop.
  std::vector<float> fresh(total);
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    const std::size_t count = layer->parameter_count();
    layer->bind_parameters(std::span<float>(fresh).subspan(offset, count));
    offset += count;
  }
  owned_arena_ = std::move(fresh);
  arena_ = owned_arena_;
  external_arena_ = false;
}

void Sequential::bind_parameter_arena(std::span<float> arena) {
  if (arena.size() != num_parameters()) {
    throw std::invalid_argument("bind_parameter_arena: size mismatch");
  }
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    const std::size_t count = layer->parameter_count();
    layer->bind_parameters(arena.subspan(offset, count));
    offset += count;
  }
  arena_ = arena;
  external_arena_ = true;
  owned_arena_.clear();
  owned_arena_.shrink_to_fit();
}

void Sequential::attach_parameter_arena(std::span<float> arena) {
  if (arena.size() != num_parameters()) {
    throw std::invalid_argument("attach_parameter_arena: size mismatch");
  }
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    const std::size_t count = layer->parameter_count();
    layer->attach_parameters(arena.subspan(offset, count));
    offset += count;
  }
  arena_ = arena;
  external_arena_ = true;
  owned_arena_.clear();
  owned_arena_.shrink_to_fit();
}

const Tensor& Sequential::forward(const Tensor& input) {
  if (layers_.empty()) {
    throw std::logic_error("Sequential::forward: model has no layers");
  }
  activations_.resize(layers_.size());
  const Tensor* current = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Shape out_shape = layers_[i]->output_shape(current->shape());
    if (activations_[i].shape() != out_shape) {
      activations_[i] = Tensor(out_shape);
    }
    layers_[i]->forward(*current, activations_[i]);
    current = &activations_[i];
  }
  return activations_.back();
}

void Sequential::backward(const Tensor& input, const Tensor& grad_logits) {
  assert(activations_.size() == layers_.size());
  // Walk layers in reverse; grad buffers are allocated per call. The model
  // sizes involved (10^3..10^5 floats) make this allocation negligible
  // relative to the matrix math.
  Tensor grad_out = Tensor(grad_logits.shape());
  tensor::copy(grad_logits.data(), grad_out.data());

  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& layer_input = (i == 0) ? input : activations_[i - 1];
    Tensor grad_in(layer_input.shape());
    layers_[i]->backward(layer_input, grad_out, grad_in);
    grad_out = std::move(grad_in);
  }
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

void Sequential::get_parameters(std::span<float> out) const {
  assert(out.size() == num_parameters());
  std::copy(arena_.begin(), arena_.end(), out.begin());
}

void Sequential::set_parameters(std::span<const float> in) {
  assert(in.size() == num_parameters());
  std::copy(in.begin(), in.end(), arena_.begin());
}

std::vector<float> Sequential::parameters_flat() const {
  return std::vector<float>(arena_.begin(), arena_.end());
}

void Sequential::get_gradients(std::span<float> out) const {
  assert(out.size() == num_parameters());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    auto grads = const_cast<Layer&>(*layer).gradients();
    std::copy(grads.begin(), grads.end(), out.begin() + offset);
    offset += grads.size();
  }
}

void Sequential::apply_parameter_delta(std::span<const float> delta) {
  assert(delta.size() == num_parameters());
  for (std::size_t i = 0; i < arena_.size(); ++i) arena_[i] -= delta[i];
}

std::vector<std::span<float>> Sequential::parameter_spans() {
  std::vector<std::span<float>> spans;
  for (auto& layer : layers_) {
    if (!layer->parameters().empty()) spans.push_back(layer->parameters());
  }
  return spans;
}

std::vector<std::span<float>> Sequential::gradient_spans() {
  std::vector<std::span<float>> spans;
  for (auto& layer : layers_) {
    if (!layer->gradients().empty()) spans.push_back(layer->gradients());
  }
  return spans;
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) copy.layers_.push_back(layer->clone());
  copy.relayout_owned_arena();
  return copy;
}

std::string Sequential::summary() const {
  std::ostringstream out;
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    const std::size_t count = layer->parameters().size();
    out << "  " << layer->name() << "  params=" << count << '\n';
    total += count;
  }
  out << "  total parameters: " << total << '\n';
  return out.str();
}

}  // namespace skiptrain::nn
