#include "nn/sequential.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace skiptrain::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  layers_.push_back(std::move(layer));
  return *this;
}

const Tensor& Sequential::forward(const Tensor& input) {
  if (layers_.empty()) {
    throw std::logic_error("Sequential::forward: model has no layers");
  }
  activations_.resize(layers_.size());
  const Tensor* current = &input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    const Shape out_shape = layers_[i]->output_shape(current->shape());
    if (activations_[i].shape() != out_shape) {
      activations_[i] = Tensor(out_shape);
    }
    layers_[i]->forward(*current, activations_[i]);
    current = &activations_[i];
  }
  return activations_.back();
}

void Sequential::backward(const Tensor& input, const Tensor& grad_logits) {
  assert(activations_.size() == layers_.size());
  // Walk layers in reverse; grad buffers are allocated per call. The model
  // sizes involved (10^3..10^5 floats) make this allocation negligible
  // relative to the matrix math.
  Tensor grad_out = Tensor(grad_logits.shape());
  tensor::copy(grad_logits.data(), grad_out.data());

  for (std::size_t i = layers_.size(); i-- > 0;) {
    const Tensor& layer_input = (i == 0) ? input : activations_[i - 1];
    Tensor grad_in(layer_input.shape());
    layers_[i]->backward(layer_input, grad_out, grad_in);
    grad_out = std::move(grad_in);
  }
}

void Sequential::zero_grad() {
  for (auto& layer : layers_) layer->zero_grad();
}

std::size_t Sequential::num_parameters() const {
  std::size_t total = 0;
  for (const auto& layer : layers_) total += layer->parameters().size();
  return total;
}

void Sequential::get_parameters(std::span<float> out) const {
  assert(out.size() == num_parameters());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    const auto params = layer->parameters();
    std::copy(params.begin(), params.end(), out.begin() + offset);
    offset += params.size();
  }
}

void Sequential::set_parameters(std::span<const float> in) {
  assert(in.size() == num_parameters());
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    auto params = layer->parameters();
    std::copy(in.begin() + offset, in.begin() + offset + params.size(),
              params.begin());
    offset += params.size();
  }
}

std::vector<float> Sequential::parameters_flat() const {
  std::vector<float> flat(num_parameters());
  get_parameters(flat);
  return flat;
}

void Sequential::get_gradients(std::span<float> out) const {
  assert(out.size() == num_parameters());
  std::size_t offset = 0;
  for (const auto& layer : layers_) {
    auto grads = const_cast<Layer&>(*layer).gradients();
    std::copy(grads.begin(), grads.end(), out.begin() + offset);
    offset += grads.size();
  }
}

void Sequential::apply_parameter_delta(std::span<const float> delta) {
  assert(delta.size() == num_parameters());
  std::size_t offset = 0;
  for (auto& layer : layers_) {
    auto params = layer->parameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= delta[offset + i];
    }
    offset += params.size();
  }
}

std::vector<std::span<float>> Sequential::parameter_spans() {
  std::vector<std::span<float>> spans;
  for (auto& layer : layers_) {
    if (!layer->parameters().empty()) spans.push_back(layer->parameters());
  }
  return spans;
}

std::vector<std::span<float>> Sequential::gradient_spans() {
  std::vector<std::span<float>> spans;
  for (auto& layer : layers_) {
    if (!layer->gradients().empty()) spans.push_back(layer->gradients());
  }
  return spans;
}

Sequential Sequential::clone() const {
  Sequential copy;
  for (const auto& layer : layers_) copy.add(layer->clone());
  return copy;
}

std::string Sequential::summary() const {
  std::ostringstream out;
  std::size_t total = 0;
  for (const auto& layer : layers_) {
    const std::size_t count = layer->parameters().size();
    out << "  " << layer->name() << "  params=" << count << '\n';
    total += count;
  }
  out << "  total parameters: " << total << '\n';
  return out.str();
}

}  // namespace skiptrain::nn
