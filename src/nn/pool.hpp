// Spatial pooling and shape adapters.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace skiptrain::nn {

/// Max pooling over [B, C, H, W] with square window and stride == window.
/// The forward pass records argmax positions for the backward routing.
class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  std::string name() const override;
  Shape output_shape(const Shape& input_shape) const override;
  void forward(const Tensor& input, Tensor& output) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
};

/// Collapses every per-sample dimension into one: [B, ...] -> [B, prod].
class Flatten final : public Layer {
 public:
  std::string name() const override { return "Flatten"; }
  Shape output_shape(const Shape& input_shape) const override;
  void forward(const Tensor& input, Tensor& output) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;
};

}  // namespace skiptrain::nn
