// Fused softmax + cross-entropy, the training criterion used throughout the
// paper's evaluation ("trained with SGD and the Cross-Entropy loss").
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace skiptrain::nn {

struct LossResult {
  double loss = 0.0;      // mean over the batch
  double accuracy = 0.0;  // top-1 over the batch
};

/// Computes mean cross-entropy of `logits` [B, C] against integer labels
/// and writes d(loss)/d(logits) = (softmax - onehot)/B into `grad_logits`.
LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels,
                                 tensor::Tensor& grad_logits);

/// Loss/accuracy only (no gradient); used by evaluation paths.
LossResult softmax_cross_entropy_eval(const tensor::Tensor& logits,
                                      std::span<const std::int32_t> labels);

}  // namespace skiptrain::nn
