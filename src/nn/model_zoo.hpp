// Model architectures. make_cifar_cnn / make_femnist_cnn reconstruct the
// exact networks from the paper's Table 1 (89 834 and 1 690 046 parameters
// respectively); the compact builders provide the scaled models used by the
// default bench configuration so that 256-node simulations stay tractable.
#pragma once

#include <cstddef>
#include <vector>

#include "nn/sequential.hpp"

namespace skiptrain::nn {

/// Parameter counts reported in Table 1 of the paper ("|x| Model size").
inline constexpr std::size_t kPaperCifarModelSize = 89834;
inline constexpr std::size_t kPaperFemnistModelSize = 1690046;

/// Linear softmax classifier: Linear(in -> classes).
[[nodiscard]] Sequential make_softmax_regression(std::size_t in_features,
                                                 std::size_t classes);

/// Multilayer perceptron with ReLU activations:
/// in -> hidden[0] -> ... -> classes.
[[nodiscard]] Sequential make_mlp(std::size_t in_features,
                                  const std::vector<std::size_t>& hidden,
                                  std::size_t classes);

/// GN-LeNet for CIFAR-10 (input [B, 3, 32, 32], 10 classes):
/// 3x{Conv5x5 + GroupNorm + ReLU + MaxPool2} then Linear(1024 -> 10).
/// Exactly kPaperCifarModelSize parameters.
[[nodiscard]] Sequential make_cifar_cnn();

/// LEAF-style CNN for FEMNIST (input [B, 1, 28, 28], 62 classes):
/// 2x{Conv5x5 + ReLU + MaxPool2} then Linear(3136 -> 512) -> Linear(512 -> 62).
/// Exactly kPaperFemnistModelSize parameters.
[[nodiscard]] Sequential make_femnist_cnn();

/// Compact MLP used by the scaled benches for the synthetic CIFAR-10 task
/// (flat feature input, 10 classes).
[[nodiscard]] Sequential make_compact_cifar_model(std::size_t in_features);

/// Compact MLP for the synthetic FEMNIST task (62 classes).
[[nodiscard]] Sequential make_compact_femnist_model(std::size_t in_features);

}  // namespace skiptrain::nn
