// Optimizers operating on a Sequential's per-layer parameter/gradient spans.
// The paper trains with plain SGD (Table 1); momentum and weight decay are
// provided for completeness and the extension benches.
#pragma once

#include <span>
#include <vector>

#include "nn/sequential.hpp"

namespace skiptrain::nn {

struct SgdOptions {
  float learning_rate = 0.1f;  // η in Table 1
  float momentum = 0.0f;
  float weight_decay = 0.0f;
};

class SgdOptimizer {
 public:
  explicit SgdOptimizer(SgdOptions options = {});

  const SgdOptions& options() const { return options_; }
  void set_learning_rate(float lr) { options_.learning_rate = lr; }

  /// Applies one update: p -= lr * (grad + wd * p) [+ momentum buffer].
  /// The momentum buffer is lazily sized to the model on first use.
  void step(Sequential& model);

  /// Clears momentum state (e.g. after a parameter overwrite from
  /// aggregation, where stale momentum would mix models incorrectly).
  void reset_state();

  /// Serializable optimizer state (the lazily-sized momentum buffer;
  /// empty until the first momentum step). Fleet checkpoints capture and
  /// restore it so resumed runs continue bit-exactly.
  std::span<const float> velocity() const { return velocity_; }
  void set_velocity(std::vector<float> velocity) {
    velocity_ = std::move(velocity);
  }

 private:
  SgdOptions options_;
  std::vector<float> velocity_;
};

}  // namespace skiptrain::nn
