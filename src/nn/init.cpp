#include "nn/init.hpp"

#include <cmath>

#include "nn/conv2d.hpp"
#include "nn/linear.hpp"

namespace skiptrain::nn {

namespace {

float bound_for(InitScheme scheme, std::size_t fan_in, std::size_t fan_out) {
  switch (scheme) {
    case InitScheme::kKaimingUniform:
      return std::sqrt(6.0f / static_cast<float>(fan_in));
    case InitScheme::kXavierUniform:
      return std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  }
  return 0.0f;
}

}  // namespace

void initialize(Sequential& model, util::Rng& rng, InitScheme scheme) {
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    Layer& layer = model.layer(i);
    if (auto* linear = dynamic_cast<Linear*>(&layer)) {
      const float bound =
          bound_for(scheme, linear->in_features(), linear->out_features());
      rng.fill_uniform(linear->weights(), -bound, bound);
      for (auto& b : linear->bias()) b = 0.0f;
    } else if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
      const std::size_t receptive = conv->kernel_size() * conv->kernel_size();
      const std::size_t fan_in = conv->in_channels() * receptive;
      const std::size_t fan_out = conv->out_channels() * receptive;
      const float bound = bound_for(scheme, fan_in, fan_out);
      auto params = conv->parameters();
      const std::size_t weight_count = params.size() - conv->out_channels();
      rng.fill_uniform(params.subspan(0, weight_count), -bound, bound);
      for (auto& b : params.subspan(weight_count)) b = 0.0f;
    }
  }
}

}  // namespace skiptrain::nn
