#include "nn/serialize.hpp"

#include <fstream>
#include <stdexcept>

#include "ckpt/io.hpp"

namespace skiptrain::nn {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'T', 'N'};

std::ifstream open_for_read(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  return in;
}

/// Reads the declared parameter count and validates it against the
/// actual file size BEFORE any allocation happens: a hostile header can
/// neither overflow `count * sizeof(float)` nor trigger a huge
/// allocation, and files whose payload is shorter or longer than the
/// declared count (truncation, trailing garbage) are rejected outright.
std::uint64_t checked_param_count(ckpt::ImageReader& reader,
                                  const std::string& path) {
  const std::uint64_t count = reader.u64();
  // Divide, never multiply: count * 4 could overflow on hostile input.
  if (count != reader.remaining() / sizeof(float) ||
      reader.remaining() % sizeof(float) != 0) {
    throw std::runtime_error(
        "checkpoint: " + path + " declares " + std::to_string(count) +
        " parameters but holds " + std::to_string(reader.remaining()) +
        " payload bytes (truncated or trailing garbage)");
  }
  return count;
}

}  // namespace

void save_checkpoint(const Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);

  ckpt::write_header(out, kMagic, kCheckpointVersion);
  ckpt::ImageWriter writer(out);
  writer.u64(model.num_parameters());
  writer.f32_blob(model.parameter_arena());
}

void load_checkpoint(Sequential& model, const std::string& path) {
  std::ifstream in = open_for_read(path);
  const std::uint64_t payload_bytes = ckpt::read_header(
      in, ckpt::file_size_bytes(path), kMagic, kCheckpointVersion, path);
  ckpt::ImageReader reader(in, payload_bytes);
  const std::uint64_t count = checked_param_count(reader, path);
  if (count != model.num_parameters()) {
    throw std::runtime_error(
        "checkpoint: parameter count mismatch (file has " +
        std::to_string(count) + ", model has " +
        std::to_string(model.num_parameters()) + ")");
  }
  std::vector<float> params(static_cast<std::size_t>(count));
  reader.f32_blob(params);
  reader.require_exhausted(path);
  model.set_parameters(params);
}

std::size_t checkpoint_param_count(const std::string& path) {
  std::ifstream in = open_for_read(path);
  const std::uint64_t payload_bytes = ckpt::read_header(
      in, ckpt::file_size_bytes(path), kMagic, kCheckpointVersion, path);
  ckpt::ImageReader reader(in, payload_bytes);
  return static_cast<std::size_t>(checked_param_count(reader, path));
}

}  // namespace skiptrain::nn
