#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <stdexcept>

namespace skiptrain::nn {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'T', 'N'};

void write_exact(std::ofstream& out, const void* data, std::size_t bytes) {
  out.write(static_cast<const char*>(data),
            static_cast<std::streamsize>(bytes));
  if (!out) throw std::runtime_error("checkpoint: write failed");
}

void read_exact(std::ifstream& in, void* data, std::size_t bytes) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    throw std::runtime_error("checkpoint: truncated file");
  }
}

struct Header {
  char magic[4];
  std::uint32_t version;
  std::uint64_t param_count;
};

Header read_header(std::ifstream& in, const std::string& path) {
  Header header{};
  read_exact(in, header.magic, sizeof(header.magic));
  if (std::memcmp(header.magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("checkpoint: bad magic in " + path);
  }
  read_exact(in, &header.version, sizeof(header.version));
  if (header.version != kCheckpointVersion) {
    throw std::runtime_error("checkpoint: unsupported version " +
                             std::to_string(header.version));
  }
  read_exact(in, &header.param_count, sizeof(header.param_count));
  return header;
}

}  // namespace

void save_checkpoint(const Sequential& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("checkpoint: cannot open " + path);

  write_exact(out, kMagic, sizeof(kMagic));
  write_exact(out, &kCheckpointVersion, sizeof(kCheckpointVersion));
  const std::uint64_t count = model.num_parameters();
  write_exact(out, &count, sizeof(count));

  const std::vector<float> params = model.parameters_flat();
  write_exact(out, params.data(), params.size() * sizeof(float));
}

void load_checkpoint(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);

  const Header header = read_header(in, path);
  if (header.param_count != model.num_parameters()) {
    throw std::runtime_error(
        "checkpoint: parameter count mismatch (file has " +
        std::to_string(header.param_count) + ", model has " +
        std::to_string(model.num_parameters()) + ")");
  }
  std::vector<float> params(header.param_count);
  read_exact(in, params.data(), params.size() * sizeof(float));
  model.set_parameters(params);
}

std::size_t checkpoint_param_count(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  return read_header(in, path).param_count;
}

}  // namespace skiptrain::nn
