// Finite-difference gradient verification, the correctness oracle for the
// hand-written backward passes.
#pragma once

#include <cstdint>
#include <span>

#include "nn/sequential.hpp"

namespace skiptrain::nn {

struct GradCheckResult {
  double max_abs_error = 0.0;
  double max_rel_error = 0.0;
  std::size_t checked = 0;
  /// Parameters where BOTH the absolute and relative error exceeded their
  /// tolerances — the robust pass criterion for float32 arithmetic (tiny
  /// gradients inflate relative error; large ones inflate absolute error).
  std::size_t failures = 0;
};

/// Compares analytic gradients of the softmax-CE loss wrt every model
/// parameter against central finite differences.
///
/// `max_params` caps how many parameters are probed (uniformly strided);
/// 0 means all. `eps` is the finite-difference step. A parameter counts as
/// a failure when abs error > `abs_tol` AND rel error > `rel_tol`.
GradCheckResult gradient_check(Sequential& model, const tensor::Tensor& input,
                               std::span<const std::int32_t> labels,
                               double eps = 1e-3, std::size_t max_params = 0,
                               double abs_tol = 1e-3, double rel_tol = 5e-2);

}  // namespace skiptrain::nn
