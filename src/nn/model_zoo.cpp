#include "nn/model_zoo.hpp"

#include "nn/activations.hpp"
#include "nn/conv2d.hpp"
#include "nn/groupnorm.hpp"
#include "nn/linear.hpp"
#include "nn/pool.hpp"

namespace skiptrain::nn {

Sequential make_softmax_regression(std::size_t in_features,
                                   std::size_t classes) {
  Sequential model;
  model.emplace<Linear>(in_features, classes);
  return model;
}

Sequential make_mlp(std::size_t in_features,
                    const std::vector<std::size_t>& hidden,
                    std::size_t classes) {
  Sequential model;
  std::size_t prev = in_features;
  for (const std::size_t width : hidden) {
    model.emplace<Linear>(prev, width);
    model.emplace<ReLU>();
    prev = width;
  }
  model.emplace<Linear>(prev, classes);
  return model;
}

Sequential make_cifar_cnn() {
  // GN-LeNet (DecentralizePy / Hsieh et al. "non-IID quagmire"):
  //   conv(3->32, 5x5, pad 2) + GN(2,32) + ReLU + pool2   -> 32 x 16 x 16
  //   conv(32->32, 5x5, pad 2) + GN(2,32) + ReLU + pool2  -> 32 x 8 x 8
  //   conv(32->64, 5x5, pad 2) + GN(2,64) + ReLU + pool2  -> 64 x 4 x 4
  //   linear(1024 -> 10)
  // Parameters: 2432 + 64 + 25632 + 64 + 51264 + 128 + 10250 = 89834.
  Sequential model;
  model.emplace<Conv2d>(3, 32, 5, 1, 2);
  model.emplace<GroupNorm>(2, 32);
  model.emplace<ReLU>();
  model.emplace<MaxPool2d>(2);
  model.emplace<Conv2d>(32, 32, 5, 1, 2);
  model.emplace<GroupNorm>(2, 32);
  model.emplace<ReLU>();
  model.emplace<MaxPool2d>(2);
  model.emplace<Conv2d>(32, 64, 5, 1, 2);
  model.emplace<GroupNorm>(2, 64);
  model.emplace<ReLU>();
  model.emplace<MaxPool2d>(2);
  model.emplace<Flatten>();
  model.emplace<Linear>(64 * 4 * 4, 10);
  return model;
}

Sequential make_femnist_cnn() {
  // LEAF-style FEMNIST CNN:
  //   conv(1->32, 5x5, pad 2) + ReLU + pool2   -> 32 x 14 x 14
  //   conv(32->64, 5x5, pad 2) + ReLU + pool2  -> 64 x 7 x 7
  //   linear(3136 -> 512) + ReLU
  //   linear(512 -> 62)
  // Parameters: 832 + 51264 + 1606144 + 31806 = 1690046.
  Sequential model;
  model.emplace<Conv2d>(1, 32, 5, 1, 2);
  model.emplace<ReLU>();
  model.emplace<MaxPool2d>(2);
  model.emplace<Conv2d>(32, 64, 5, 1, 2);
  model.emplace<ReLU>();
  model.emplace<MaxPool2d>(2);
  model.emplace<Flatten>();
  model.emplace<Linear>(64 * 7 * 7, 512);
  model.emplace<ReLU>();
  model.emplace<Linear>(512, 62);
  return model;
}

Sequential make_compact_cifar_model(std::size_t in_features) {
  return make_mlp(in_features, {32}, 10);
}

Sequential make_compact_femnist_model(std::size_t in_features) {
  return make_mlp(in_features, {48}, 62);
}

}  // namespace skiptrain::nn
