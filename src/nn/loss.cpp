#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace skiptrain::nn {

namespace {

/// Row-stable log-sum-exp; returns max + log(sum(exp(x - max))).
double log_sum_exp(const float* row, std::size_t n) {
  float max_val = row[0];
  for (std::size_t i = 1; i < n; ++i) max_val = std::max(max_val, row[i]);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += std::exp(static_cast<double>(row[i]) - max_val);
  }
  return static_cast<double>(max_val) + std::log(sum);
}

}  // namespace

LossResult softmax_cross_entropy(const tensor::Tensor& logits,
                                 std::span<const std::int32_t> labels,
                                 tensor::Tensor& grad_logits) {
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.numel() / batch;
  assert(labels.size() == batch);
  assert(grad_logits.shape() == logits.shape());

  double total_loss = 0.0;
  std::size_t correct = 0;
  const float inv_batch = 1.0f / static_cast<float>(batch);

  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.raw() + b * classes;
    float* grad = grad_logits.raw() + b * classes;
    const auto label = static_cast<std::size_t>(labels[b]);
    assert(label < classes);

    const double lse = log_sum_exp(row, classes);
    total_loss += lse - static_cast<double>(row[label]);

    std::size_t pred = 0;
    for (std::size_t c = 0; c < classes; ++c) {
      const float p =
          static_cast<float>(std::exp(static_cast<double>(row[c]) - lse));
      grad[c] = p * inv_batch;
      if (row[c] > row[pred]) pred = c;
    }
    grad[label] -= inv_batch;
    if (pred == label) ++correct;
  }

  return LossResult{total_loss / static_cast<double>(batch),
                    static_cast<double>(correct) / static_cast<double>(batch)};
}

LossResult softmax_cross_entropy_eval(const tensor::Tensor& logits,
                                      std::span<const std::int32_t> labels) {
  const std::size_t batch = logits.dim(0);
  const std::size_t classes = logits.numel() / batch;
  assert(labels.size() == batch);

  double total_loss = 0.0;
  std::size_t correct = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    const float* row = logits.raw() + b * classes;
    const auto label = static_cast<std::size_t>(labels[b]);
    const double lse = log_sum_exp(row, classes);
    total_loss += lse - static_cast<double>(row[label]);
    std::size_t pred = 0;
    for (std::size_t c = 1; c < classes; ++c) {
      if (row[c] > row[pred]) pred = c;
    }
    if (pred == label) ++correct;
  }
  return LossResult{total_loss / static_cast<double>(batch),
                    static_cast<double>(correct) / static_cast<double>(batch)};
}

}  // namespace skiptrain::nn
