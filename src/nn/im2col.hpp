// Patch-matrix (im2col / im2row) lowering for Conv2d.
//
// The convolution's k-dimension is the patch index κ = (ic*k + ky)*k + kx,
// ordered (ic, ky, kx) — exactly the direct loop's accumulation order —
// so running the lowered GEMM with the repo's order-preserving kernels
// reproduces the direct convolution bitwise (see conv2d.hpp for the exact
// contract). Out-of-bounds (padding) slots are stored as 0.0f.
#pragma once

#include <algorithm>
#include <cstddef>

namespace skiptrain::nn {

/// Clipped kernel-offset range for one output position: the ko in
/// [lo, hi) with 0 <= base + ko < in_extent, where base = o*stride - pad.
/// Shared by the patch builders and the input-gradient kernel so the
/// direct and lowered paths clip identically.
struct KernelRange {
  std::size_t lo;
  std::size_t hi;  // exclusive; lo >= hi means no valid offset
};

[[nodiscard]] inline KernelRange clipped_kernel_range(std::size_t k,
                                                      std::size_t in_extent,
                                                      std::ptrdiff_t base) {
  const std::size_t lo =
      base < 0 ? static_cast<std::size_t>(-base) : std::size_t{0};
  const auto room = static_cast<std::size_t>(
      std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(in_extent) -
                                      base));
  return {lo, std::min(k, room)};
}

/// Geometry of one conv application on an h x w input image.
struct ConvGeometry {
  std::size_t in_c = 0;
  std::size_t h = 0;
  std::size_t w = 0;
  std::size_t k = 0;       // kernel size
  std::size_t stride = 1;
  std::size_t pad = 0;
  std::size_t oh = 0;
  std::size_t ow = 0;

  /// im2col k-dimension: in_c * k * k.
  [[nodiscard]] std::size_t patch() const { return in_c * k * k; }
  /// Output positions per channel plane.
  [[nodiscard]] std::size_t out_hw() const { return oh * ow; }
};

/// col[κ][pos] (patch-major, [patch() x out_hw()]): the forward GEMM's B
/// operand. Interior segments are copied contiguously; padding is zeroed.
void im2col_kmajor(const ConvGeometry& g, const float* image, float* col);

/// colr[pos][κ] (position-major, [out_hw() x patch()]): the dW GEMM's B
/// operand (gemm_tn wants the shared dimension — output positions —
/// outermost).
void im2row_posmajor(const ConvGeometry& g, const float* image, float* colr);

/// dst[j][i] = src[i][j] for row-major src of shape [rows x cols].
void transpose(std::size_t rows, std::size_t cols, const float* src,
               float* dst);

}  // namespace skiptrain::nn
