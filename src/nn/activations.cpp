#include "nn/activations.hpp"

#include <cassert>
#include <cmath>

namespace skiptrain::nn {

Shape ReLU::output_shape(const Shape& input_shape) const {
  return input_shape;
}

void ReLU::forward(const Tensor& input, Tensor& output) {
  assert(input.numel() == output.numel());
  const auto in = input.data();
  const auto out = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] > 0.0f ? in[i] : 0.0f;
  }
}

void ReLU::backward(const Tensor& input, const Tensor& grad_output,
                    Tensor& grad_input) {
  assert(input.numel() == grad_output.numel());
  const auto in = input.data();
  const auto gout = grad_output.data();
  const auto gin = grad_input.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    gin[i] = in[i] > 0.0f ? gout[i] : 0.0f;
  }
}

std::unique_ptr<Layer> ReLU::clone() const { return std::make_unique<ReLU>(); }

Shape Tanh::output_shape(const Shape& input_shape) const {
  return input_shape;
}

void Tanh::forward(const Tensor& input, Tensor& output) {
  assert(input.numel() == output.numel());
  const auto in = input.data();
  const auto out = output.data();
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = std::tanh(in[i]);
}

void Tanh::backward(const Tensor& input, const Tensor& grad_output,
                    Tensor& grad_input) {
  const auto in = input.data();
  const auto gout = grad_output.data();
  const auto gin = grad_input.data();
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float t = std::tanh(in[i]);
    gin[i] = gout[i] * (1.0f - t * t);
  }
}

std::unique_ptr<Layer> Tanh::clone() const { return std::make_unique<Tanh>(); }

}  // namespace skiptrain::nn
