// Sequential container = the "model" type of this library. Owns layers and
// the activation buffers needed for backprop, and keeps ALL parameters in
// one contiguous flat arena (layer order, weights-then-bias within a
// layer). The arena is self-owned by default, so standalone models behave
// exactly like value types; a simulation engine can rebind the model into
// an externally owned arena (a plane::ParameterPlane row) to make
// whole-fleet aggregation a zero-copy contiguous operation.
//
// Layer-view contract: layers VIEW spans of the arena instead of owning
// storage. add(), clone() into a new object, bind_parameter_arena() and
// attach_parameter_arena() re-lay the arena and therefore invalidate every
// span previously obtained from parameters()/parameter_spans()/weights().
// Spans stay valid across forward/backward/optimizer steps and across
// moves of the Sequential itself.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "nn/layer.hpp"

namespace skiptrain::nn {

class Sequential {
 public:
  Sequential() = default;

  // Movable, non-copyable (use clone() for explicit deep copies). Moves
  // keep layer spans valid: the arena's heap buffer travels with it.
  Sequential(Sequential&& other) noexcept;
  Sequential& operator=(Sequential&& other) noexcept;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  /// Appends a layer; returns *this for chaining. Re-lays the self-owned
  /// arena (throws std::logic_error if bound to an external arena).
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs a layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Runs the forward pass and returns the final activation (logits).
  /// Buffers are retained across calls and resized when the batch changes.
  const Tensor& forward(const Tensor& input);

  /// Backpropagates `grad_logits` through every layer, accumulating
  /// parameter gradients. Must follow a forward() on the same input.
  void backward(const Tensor& input, const Tensor& grad_logits);

  void zero_grad();

  /// Total parameter count across layers (== parameter_arena().size()).
  std::size_t num_parameters() const { return arena_.size(); }

  /// The contiguous flat storage every parameter lives in. Zero-copy view
  /// of the whole model; invalidated by add/bind/attach (see the
  /// layer-view contract above).
  std::span<float> parameter_arena() { return arena_; }
  std::span<const float> parameter_arena() const { return arena_; }

  /// True while the arena is self-owned (not an external plane row).
  bool owns_parameter_arena() const { return !external_arena_; }

  /// Migrates every layer's parameters into `arena` (contiguous, layer
  /// order), copying the current values. `arena` must outlive the model
  /// (or the next bind/attach). Size must equal num_parameters().
  void bind_parameter_arena(std::span<float> arena);

  /// Repoints the layers into `arena` WITHOUT copying: the caller
  /// guarantees `arena` already holds this model's parameters in layout
  /// order (e.g. the freshly aggregated plane row after a buffer flip).
  void attach_parameter_arena(std::span<float> arena);

  /// Copies all parameters into / from one flat contiguous vector, ordered
  /// by layer. This is the model representation exchanged between nodes
  /// when a caller wants an owned snapshot; engines use the arena views.
  void get_parameters(std::span<float> out) const;
  void set_parameters(std::span<const float> in);
  std::vector<float> parameters_flat() const;

  /// Copies all gradients into one flat vector (ordered as parameters).
  void get_gradients(std::span<float> out) const;

  /// Applies `update[i]` to parameter i: p -= update. Used by optimizers
  /// operating on the flat view.
  void apply_parameter_delta(std::span<const float> delta);

  /// Per-layer parameter/gradient spans (skips parameter-free layers).
  std::vector<std::span<float>> parameter_spans();
  std::vector<std::span<float>> gradient_spans();

  /// Deep copy of layers and parameters. The copy owns its arena.
  [[nodiscard]] Sequential clone() const;

  /// Human-readable architecture summary, one layer per line.
  [[nodiscard]] std::string summary() const;

 private:
  /// Rebuilds the self-owned arena from the current layer list, migrating
  /// every layer's values into it.
  void relayout_owned_arena();

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> activations_;  // activations_[i] = output of layer i
  std::vector<float> owned_arena_;   // empty when bound externally
  std::span<float> arena_;           // where the parameters actually live
  bool external_arena_ = false;
};

}  // namespace skiptrain::nn
