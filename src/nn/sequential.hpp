// Sequential container = the "model" type of this library. Owns layers and
// the activation buffers needed for backprop, and exposes the whole-model
// flat parameter view used by decentralized averaging.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace skiptrain::nn {

class Sequential {
 public:
  Sequential() = default;

  // Movable, non-copyable (use clone() for explicit deep copies).
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;
  Sequential(const Sequential&) = delete;
  Sequential& operator=(const Sequential&) = delete;

  /// Appends a layer; returns *this for chaining.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Convenience: constructs a layer in place.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  /// Runs the forward pass and returns the final activation (logits).
  /// Buffers are retained across calls and resized when the batch changes.
  const Tensor& forward(const Tensor& input);

  /// Backpropagates `grad_logits` through every layer, accumulating
  /// parameter gradients. Must follow a forward() on the same input.
  void backward(const Tensor& input, const Tensor& grad_logits);

  void zero_grad();

  /// Total parameter count across layers.
  std::size_t num_parameters() const;

  /// Copies all parameters into / from one flat contiguous vector, ordered
  /// by layer. This is the model representation exchanged between nodes.
  void get_parameters(std::span<float> out) const;
  void set_parameters(std::span<const float> in);
  std::vector<float> parameters_flat() const;

  /// Copies all gradients into one flat vector (ordered as parameters).
  void get_gradients(std::span<float> out) const;

  /// Applies `update[i]` to parameter i: p -= update. Used by optimizers
  /// operating on the flat view.
  void apply_parameter_delta(std::span<const float> delta);

  /// Per-layer parameter/gradient spans (skips parameter-free layers).
  std::vector<std::span<float>> parameter_spans();
  std::vector<std::span<float>> gradient_spans();

  /// Deep copy of layers and parameters.
  [[nodiscard]] Sequential clone() const;

  /// Human-readable architecture summary, one layer per line.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<Tensor> activations_;  // activations_[i] = output of layer i
};

}  // namespace skiptrain::nn
