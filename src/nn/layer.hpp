// Layer abstraction for the from-scratch neural-network stack.
//
// Design notes
// ------------
// * Parameters live in one flat float block per layer (weights first, then
//   bias), exposed as a span. The block is VIEWED, not necessarily owned:
//   a freshly constructed layer owns its storage, but a Sequential rebinds
//   every layer into one contiguous arena — its own by default, or an
//   externally owned plane row (plane::ParameterPlane) when a simulation
//   engine hosts thousands of model replicas. This makes whole-model
//   aggregation a zero-copy operation on contiguous memory, exactly the
//   view D-PSGD/SkipTrain need.
// * Gradients stay layer-owned: they are private scratch of the backward
//   pass and never travel between nodes.
// * Layers are stateless across samples except for cached forward artifacts
//   needed by backward (e.g. max-pool argmax masks). Each simulated node
//   owns its private model clone, so no cross-thread sharing occurs.
// * Batch dimension is always tensor dim 0.
#pragma once

#include <algorithm>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace skiptrain::nn {

using tensor::Shape;
using tensor::Tensor;

/// Flat parameter block of a layer: a span view over storage that is either
/// layer-owned (standalone use, fresh clones) or part of an external arena
/// (a Sequential's contiguous arena or a plane row). Copying a ParamStorage
/// copies the *values* into fresh self-owned storage — exactly the
/// semantics clone() wants.
class ParamStorage {
 public:
  ParamStorage() = default;
  explicit ParamStorage(std::size_t count)
      : owned_(count, 0.0f), view_(owned_) {}

  ParamStorage(const ParamStorage& other)
      : owned_(other.view_.begin(), other.view_.end()), view_(owned_) {}
  ParamStorage& operator=(const ParamStorage& other) {
    if (this != &other) {
      owned_.assign(other.view_.begin(), other.view_.end());
      view_ = owned_;
    }
    return *this;
  }
  // Layers live behind unique_ptr and never move; keep the view/ownership
  // invariant simple by forbidding moves.
  ParamStorage(ParamStorage&&) = delete;
  ParamStorage& operator=(ParamStorage&&) = delete;

  std::size_t size() const { return view_.size(); }
  std::span<float> view() { return view_; }
  std::span<const float> view() const { return view_; }
  float* data() { return view_.data(); }
  const float* data() const { return view_.data(); }
  float& operator[](std::size_t i) { return view_[i]; }
  float operator[](std::size_t i) const { return view_[i]; }

  /// Migrates the block into `storage`: copies the current values over and
  /// repoints the view. Invalidates previously returned spans.
  void bind(std::span<float> storage) {
    check_size(storage);
    if (storage.data() != view_.data()) {
      std::copy(view_.begin(), view_.end(), storage.begin());
    }
    view_ = storage;
    release_owned();
  }

  /// Repoints the view WITHOUT copying: `storage` must already hold this
  /// block's values (e.g. the freshly aggregated plane row).
  void attach(std::span<float> storage) {
    check_size(storage);
    view_ = storage;
    release_owned();
  }

 private:
  void check_size(std::span<float> storage) const {
    if (storage.size() != view_.size()) {
      throw std::invalid_argument("ParamStorage: storage size mismatch");
    }
  }
  void release_owned() {
    owned_.clear();
    owned_.shrink_to_fit();
  }

  std::vector<float> owned_;  // empty once bound to an external arena
  std::span<float> view_;
};

class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer name ("Linear(64->10)").
  virtual std::string name() const = 0;

  /// Given the per-batch input shape (including batch dim 0), returns the
  /// output shape. Throws std::invalid_argument on incompatible shapes.
  virtual Shape output_shape(const Shape& input_shape) const = 0;

  /// Computes output = f(input). `output` is pre-sized by the caller to
  /// output_shape(input.shape()).
  virtual void forward(const Tensor& input, Tensor& output) = 0;

  /// Accumulates parameter gradients and writes grad wrt input.
  /// Contract: called after forward() on the same `input`.
  virtual void backward(const Tensor& input, const Tensor& grad_output,
                        Tensor& grad_input) = 0;

  /// Flat parameter/gradient storage; empty spans for parameter-free layers.
  virtual std::span<float> parameters() { return {}; }
  virtual std::span<const float> parameters() const { return {}; }
  virtual std::span<float> gradients() { return {}; }

  /// Number of learnable parameters (== parameters().size()).
  virtual std::size_t parameter_count() const { return 0; }

  /// Migrates parameter storage into `storage` (size parameter_count()),
  /// copying the current values. Spans previously returned by parameters()
  /// are invalidated. Parameter-free layers accept only an empty span.
  virtual void bind_parameters(std::span<float> storage) {
    require_empty(storage);
  }

  /// Repoints parameter storage WITHOUT copying: `storage` must already
  /// hold this layer's parameters (caller-managed arena contents).
  virtual void attach_parameters(std::span<float> storage) {
    require_empty(storage);
  }

  virtual void zero_grad() {}

  /// Deep copy (used to instantiate one model per simulated node). The
  /// copy always owns its parameter storage, regardless of how the source
  /// was bound.
  virtual std::unique_ptr<Layer> clone() const = 0;

 private:
  static void require_empty(std::span<float> storage) {
    if (!storage.empty()) {
      throw std::invalid_argument(
          "Layer::bind_parameters: layer has no parameters");
    }
  }
};

/// Base for layers whose parameters live in one flat ParamStorage block
/// with same-sized layer-owned gradients; implements the storage plumbing
/// (views, counts, bind/attach, zero_grad) once.
class ParamLayer : public Layer {
 public:
  std::span<float> parameters() override { return params_.view(); }
  std::span<const float> parameters() const override { return params_.view(); }
  std::span<float> gradients() override { return grads_; }
  std::size_t parameter_count() const override { return params_.size(); }
  void bind_parameters(std::span<float> storage) override {
    params_.bind(storage);
  }
  void attach_parameters(std::span<float> storage) override {
    params_.attach(storage);
  }
  void zero_grad() override {
    std::fill(grads_.begin(), grads_.end(), 0.0f);
  }

 protected:
  explicit ParamLayer(std::size_t count)
      : params_(count), grads_(count, 0.0f) {}

  ParamStorage params_;
  std::vector<float> grads_;
};

}  // namespace skiptrain::nn
