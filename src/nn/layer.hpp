// Layer abstraction for the from-scratch neural-network stack.
//
// Design notes
// ------------
// * Parameters and their gradients live in two flat float vectors per layer
//   (weights first, then bias). This makes the decentralized-learning
//   aggregation step — averaging whole models — a single contiguous vector
//   operation, exactly the view D-PSGD/SkipTrain need.
// * Layers are stateless across samples except for cached forward artifacts
//   needed by backward (e.g. max-pool argmax masks). Each simulated node
//   owns its private model clone, so no cross-thread sharing occurs.
// * Batch dimension is always tensor dim 0.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "tensor/tensor.hpp"

namespace skiptrain::nn {

using tensor::Shape;
using tensor::Tensor;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Human-readable layer name ("Linear(64->10)").
  virtual std::string name() const = 0;

  /// Given the per-batch input shape (including batch dim 0), returns the
  /// output shape. Throws std::invalid_argument on incompatible shapes.
  virtual Shape output_shape(const Shape& input_shape) const = 0;

  /// Computes output = f(input). `output` is pre-sized by the caller to
  /// output_shape(input.shape()).
  virtual void forward(const Tensor& input, Tensor& output) = 0;

  /// Accumulates parameter gradients and writes grad wrt input.
  /// Contract: called after forward() on the same `input`.
  virtual void backward(const Tensor& input, const Tensor& grad_output,
                        Tensor& grad_input) = 0;

  /// Flat parameter/gradient storage; empty spans for parameter-free layers.
  virtual std::span<float> parameters() { return {}; }
  virtual std::span<const float> parameters() const { return {}; }
  virtual std::span<float> gradients() { return {}; }

  virtual void zero_grad() {}

  /// Deep copy (used to instantiate one model per simulated node).
  virtual std::unique_ptr<Layer> clone() const = 0;
};

}  // namespace skiptrain::nn
