// Element-wise activation layers. Parameter-free; backward uses the cached
// forward output (monotone activations let us recompute the mask cheaply).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace skiptrain::nn {

class ReLU final : public Layer {
 public:
  std::string name() const override { return "ReLU"; }
  Shape output_shape(const Shape& input_shape) const override;
  void forward(const Tensor& input, Tensor& output) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;
};

class Tanh final : public Layer {
 public:
  std::string name() const override { return "Tanh"; }
  Shape output_shape(const Shape& input_shape) const override;
  void forward(const Tensor& input, Tensor& output) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;
  std::unique_ptr<Layer> clone() const override;
};

}  // namespace skiptrain::nn
