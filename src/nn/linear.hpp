// Fully connected layer: y = x W^T + b, with W stored row-major [out, in].
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace skiptrain::nn {

class Linear final : public ParamLayer {
 public:
  Linear(std::size_t in_features, std::size_t out_features);

  std::string name() const override;
  Shape output_shape(const Shape& input_shape) const override;
  void forward(const Tensor& input, Tensor& output) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;

  std::unique_ptr<Layer> clone() const override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

  /// Weight block view ([out, in], row-major) within the flat parameters.
  std::span<float> weights() { return {params_.data(), in_ * out_}; }
  std::span<float> bias() { return {params_.data() + in_ * out_, out_}; }

 private:
  std::size_t in_;
  std::size_t out_;
  // ParamLayer::params_ holds W (out*in) then b (out).
};

}  // namespace skiptrain::nn
