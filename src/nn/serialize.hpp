// Model checkpointing: saves/loads the flat parameter vector with a small
// self-describing header so mismatched architectures fail loudly instead
// of silently mis-assigning weights. Deployed SkipTrain nodes checkpoint
// between sessions; the examples use this to persist trained models.
#pragma once

#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace skiptrain::nn {

/// File layout: magic "SKTN" | u32 version | u64 param_count | f32 data...
inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Writes the model's parameters to `path`. Throws std::runtime_error on
/// I/O failure.
void save_checkpoint(const Sequential& model, const std::string& path);

/// Loads parameters from `path` into `model`. Throws std::runtime_error on
/// I/O failure, bad magic/version, or parameter-count mismatch.
void load_checkpoint(Sequential& model, const std::string& path);

/// Reads just the parameter count from a checkpoint header.
std::size_t checkpoint_param_count(const std::string& path);

}  // namespace skiptrain::nn
