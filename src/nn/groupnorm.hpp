// Group normalisation (Wu & He, 2018) over [B, C, H, W] tensors.
//
// The paper's CIFAR-10 model is the GN-LeNet used by DecentralizePy: three
// 5x5 conv blocks each followed by GroupNorm. Including GN gives our
// make_cifar_cnn() the exact 89 834-parameter count reported in Table 1.
// GN (rather than BatchNorm) matters in decentralized learning because it
// carries no cross-batch running statistics that would leak between nodes.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace skiptrain::nn {

class GroupNorm final : public ParamLayer {
 public:
  /// `channels` must be divisible by `num_groups`.
  GroupNorm(std::size_t num_groups, std::size_t channels, float eps = 1e-5f);

  std::string name() const override;
  Shape output_shape(const Shape& input_shape) const override;
  void forward(const Tensor& input, Tensor& output) override;
  void backward(const Tensor& input, const Tensor& grad_output,
                Tensor& grad_input) override;

  std::unique_ptr<Layer> clone() const override;

 private:
  std::size_t groups_;
  std::size_t channels_;
  float eps_;
  // ParamLayer::params_ holds gamma[C] then beta[C].
  // Cached statistics from the last forward (per batch x group).
  std::vector<float> mean_;
  std::vector<float> inv_std_;
};

}  // namespace skiptrain::nn
