#include "nn/optimizer.hpp"

namespace skiptrain::nn {

SgdOptimizer::SgdOptimizer(SgdOptions options) : options_(options) {}

void SgdOptimizer::step(Sequential& model) {
  const float lr = options_.learning_rate;
  const float wd = options_.weight_decay;
  const float mu = options_.momentum;

  if (mu != 0.0f && velocity_.size() != model.num_parameters()) {
    velocity_.assign(model.num_parameters(), 0.0f);
  }

  std::size_t offset = 0;
  auto params = model.parameter_spans();
  auto grads = model.gradient_spans();
  for (std::size_t s = 0; s < params.size(); ++s) {
    auto p = params[s];
    auto g = grads[s];
    for (std::size_t i = 0; i < p.size(); ++i) {
      float grad = g[i] + wd * p[i];
      if (mu != 0.0f) {
        float& v = velocity_[offset + i];
        v = mu * v + grad;
        grad = v;
      }
      p[i] -= lr * grad;
    }
    offset += p.size();
  }
}

void SgdOptimizer::reset_state() { velocity_.clear(); }

}  // namespace skiptrain::nn
