#include "nn/linear.hpp"

#include <stdexcept>

#include "tensor/ops.hpp"

namespace skiptrain::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features)
    : ParamLayer(in_features * out_features + out_features),
      in_(in_features),
      out_(out_features) {}

std::string Linear::name() const {
  return "Linear(" + std::to_string(in_) + "->" + std::to_string(out_) + ")";
}

Shape Linear::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 2 || input_shape[1] != in_) {
    throw std::invalid_argument("Linear: expected input [B, " +
                                std::to_string(in_) + "], got " +
                                tensor::shape_to_string(input_shape));
  }
  return {input_shape[0], out_};
}

void Linear::forward(const Tensor& input, Tensor& output) {
  const std::size_t batch = input.dim(0);
  const std::span<const float> w{params_.data(), in_ * out_};
  const std::span<const float> b{params_.data() + in_ * out_, out_};
  // y[B, out] = x[B, in] * W[out, in]^T
  tensor::gemm_nt(batch, in_, out_, input.data(), w, output.data());
  for (std::size_t i = 0; i < batch; ++i) {
    float* row = output.raw() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) row[j] += b[j];
  }
}

void Linear::backward(const Tensor& input, const Tensor& grad_output,
                      Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  const std::span<const float> w{params_.data(), in_ * out_};
  std::span<float> grad_w{grads_.data(), in_ * out_};
  std::span<float> grad_b{grads_.data() + in_ * out_, out_};

  // dW[out, in] += dY[B, out]^T * X[B, in]
  tensor::gemm_tn(out_, batch, in_, grad_output.data(), input.data(), grad_w,
                  /*beta=*/1.0f);
  // db += column sums of dY
  for (std::size_t i = 0; i < batch; ++i) {
    const float* row = grad_output.raw() + i * out_;
    for (std::size_t j = 0; j < out_; ++j) grad_b[j] += row[j];
  }
  // dX[B, in] = dY[B, out] * W[out, in]
  tensor::gemm_nn(batch, out_, in_, grad_output.data(), w, grad_input.data());
}

std::unique_ptr<Layer> Linear::clone() const {
  auto copy = std::make_unique<Linear>(in_, out_);
  copy->params_ = params_;
  return copy;
}

}  // namespace skiptrain::nn
