#include "nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/loss.hpp"

namespace skiptrain::nn {

namespace {

double loss_at(Sequential& model, const tensor::Tensor& input,
               std::span<const std::int32_t> labels) {
  const tensor::Tensor& logits = model.forward(input);
  return softmax_cross_entropy_eval(logits, labels).loss;
}

}  // namespace

GradCheckResult gradient_check(Sequential& model, const tensor::Tensor& input,
                               std::span<const std::int32_t> labels,
                               double eps, std::size_t max_params,
                               double abs_tol, double rel_tol) {
  const std::size_t n = model.num_parameters();
  std::vector<float> params(n);
  model.get_parameters(params);

  // Analytic gradients.
  model.zero_grad();
  const tensor::Tensor& logits = model.forward(input);
  tensor::Tensor grad_logits(logits.shape());
  softmax_cross_entropy(logits, labels, grad_logits);
  model.backward(input, grad_logits);
  std::vector<float> analytic(n);
  model.get_gradients(analytic);

  const std::size_t stride =
      (max_params == 0 || max_params >= n) ? 1 : std::max<std::size_t>(1, n / max_params);

  GradCheckResult result;
  for (std::size_t i = 0; i < n; i += stride) {
    const float original = params[i];

    params[i] = original + static_cast<float>(eps);
    model.set_parameters(params);
    const double loss_plus = loss_at(model, input, labels);

    params[i] = original - static_cast<float>(eps);
    model.set_parameters(params);
    const double loss_minus = loss_at(model, input, labels);

    params[i] = original;

    const double numeric = (loss_plus - loss_minus) / (2.0 * eps);
    const double abs_err = std::abs(numeric - static_cast<double>(analytic[i]));
    const double denom =
        std::max({std::abs(numeric), std::abs(static_cast<double>(analytic[i])),
                  1e-8});
    const double rel_err = abs_err / denom;
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, rel_err);
    if (abs_err > abs_tol && rel_err > rel_tol) ++result.failures;
    ++result.checked;
  }
  model.set_parameters(params);
  return result;
}

}  // namespace skiptrain::nn
