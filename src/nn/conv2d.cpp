#include "nn/conv2d.hpp"

#include <cassert>
#include <stdexcept>

namespace skiptrain::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t stride,
               std::size_t padding)
    : ParamLayer(out_channels * in_channels * kernel_size * kernel_size +
                 out_channels),
      in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel_size),
      stride_(stride),
      pad_(padding) {
  if (stride_ == 0) throw std::invalid_argument("Conv2d: stride must be > 0");
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ", k=" + std::to_string(k_) + ", s=" + std::to_string(stride_) +
         ", p=" + std::to_string(pad_) + ")";
}

std::size_t Conv2d::spatial_out(std::size_t in) const {
  const std::size_t padded = in + 2 * pad_;
  if (padded < k_) {
    throw std::invalid_argument("Conv2d: input smaller than kernel");
  }
  return (padded - k_) / stride_ + 1;
}

Shape Conv2d::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 4 || input_shape[1] != in_c_) {
    throw std::invalid_argument("Conv2d: expected input [B, " +
                                std::to_string(in_c_) + ", H, W], got " +
                                tensor::shape_to_string(input_shape));
  }
  return {input_shape[0], out_c_, spatial_out(input_shape[2]),
          spatial_out(input_shape[3])};
}

void Conv2d::forward(const Tensor& input, Tensor& output) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = spatial_out(h);
  const std::size_t ow = spatial_out(w);
  const float* weights = params_.data();
  const float* bias = params_.data() + out_c_ * in_c_ * k_ * k_;

  const auto in = input.data();
  const auto out = output.data();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      float* out_plane = out.data() + ((b * out_c_ + oc) * oh) * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = bias[oc];
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* in_plane = in.data() + ((b * in_c_ + ic) * h) * w;
            const float* kernel =
                weights + ((oc * in_c_ + ic) * k_) * k_;
            for (std::size_t ky = 0; ky < k_; ++ky) {
              // Input coordinates with padding offset; skip out-of-bounds
              // (zero padding contributes nothing).
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += kernel[ky * k_ + kx] *
                       in_plane[static_cast<std::size_t>(iy) * w +
                                static_cast<std::size_t>(ix)];
              }
            }
          }
          out_plane[oy * ow + ox] = acc;
        }
      }
    }
  }
}

void Conv2d::backward(const Tensor& input, const Tensor& grad_output,
                      Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = spatial_out(h);
  const std::size_t ow = spatial_out(w);
  const float* weights = params_.data();
  float* grad_w = grads_.data();
  float* grad_b = grads_.data() + out_c_ * in_c_ * k_ * k_;

  grad_input.zero();
  const auto in = input.data();
  const auto gout = grad_output.data();
  const auto gin = grad_input.data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* gout_plane = gout.data() + ((b * out_c_ + oc) * oh) * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = gout_plane[oy * ow + ox];
          if (g == 0.0f) continue;
          grad_b[oc] += g;
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* in_plane = in.data() + ((b * in_c_ + ic) * h) * w;
            float* gin_plane = gin.data() + ((b * in_c_ + ic) * h) * w;
            const float* kernel = weights + ((oc * in_c_ + ic) * k_) * k_;
            float* gkernel = grad_w + ((oc * in_c_ + ic) * k_) * k_;
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                const std::size_t idx = static_cast<std::size_t>(iy) * w +
                                        static_cast<std::size_t>(ix);
                gkernel[ky * k_ + kx] += g * in_plane[idx];
                gin_plane[idx] += g * kernel[ky * k_ + kx];
              }
            }
          }
        }
      }
    }
  }
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::make_unique<Conv2d>(in_c_, out_c_, k_, stride_, pad_);
  copy->params_ = params_;
  return copy;
}

}  // namespace skiptrain::nn
