#include "nn/conv2d.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "obs/registry.hpp"
#include "tensor/ops.hpp"

namespace skiptrain::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel_size, std::size_t stride,
               std::size_t padding)
    : ParamLayer(out_channels * in_channels * kernel_size * kernel_size +
                 out_channels),
      in_c_(in_channels),
      out_c_(out_channels),
      k_(kernel_size),
      stride_(stride),
      pad_(padding) {
  if (stride_ == 0) throw std::invalid_argument("Conv2d: stride must be > 0");
}

std::string Conv2d::name() const {
  return "Conv2d(" + std::to_string(in_c_) + "->" + std::to_string(out_c_) +
         ", k=" + std::to_string(k_) + ", s=" + std::to_string(stride_) +
         ", p=" + std::to_string(pad_) + ")";
}

std::size_t Conv2d::spatial_out(std::size_t in) const {
  const std::size_t padded = in + 2 * pad_;
  if (padded < k_) {
    throw std::invalid_argument("Conv2d: input smaller than kernel");
  }
  return (padded - k_) / stride_ + 1;
}

ConvGeometry Conv2d::geometry(std::size_t h, std::size_t w) const {
  ConvGeometry g;
  g.in_c = in_c_;
  g.h = h;
  g.w = w;
  g.k = k_;
  g.stride = stride_;
  g.pad = pad_;
  g.oh = spatial_out(h);
  g.ow = spatial_out(w);
  return g;
}

Shape Conv2d::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 4 || input_shape[1] != in_c_) {
    throw std::invalid_argument("Conv2d: expected input [B, " +
                                std::to_string(in_c_) + ", H, W], got " +
                                tensor::shape_to_string(input_shape));
  }
  return {input_shape[0], out_c_, spatial_out(input_shape[2]),
          spatial_out(input_shape[3])};
}

void Conv2d::forward(const Tensor& input, Tensor& output) {
  static const obs::Counter calls = obs::counter("conv.fwd_calls");
  calls.add(1);
  if (algo_ == Conv2dAlgo::kDirect) {
    forward_direct(input, output);
  } else {
    forward_im2col(input, output);
  }
}

void Conv2d::backward(const Tensor& input, const Tensor& grad_output,
                      Tensor& grad_input) {
  static const obs::Counter calls = obs::counter("conv.bwd_calls");
  calls.add(1);
  if (algo_ == Conv2dAlgo::kDirect) {
    backward_direct(input, grad_output, grad_input);
  } else {
    backward_im2col(input, grad_output, grad_input);
  }
}

// ---------------------------------------------------------------------------
// im2col + GEMM path
// ---------------------------------------------------------------------------

void Conv2d::forward_im2col(const Tensor& input, Tensor& output) {
  const std::size_t batch = input.dim(0);
  const ConvGeometry g = geometry(input.dim(2), input.dim(3));
  const std::size_t patch = g.patch();
  const std::size_t ohw = g.out_hw();
  const std::size_t in_sz = in_c_ * g.h * g.w;
  const std::size_t out_sz = out_c_ * ohw;
  // A 1x1/stride-1/no-pad conv's patch matrix IS the input plane.
  const bool pointwise = k_ == 1 && stride_ == 1 && pad_ == 0;
  if (!pointwise) col_.resize(patch * ohw);

  const std::span<const float> weights{params_.data(), out_c_ * patch};
  const float* bias = params_.data() + out_c_ * patch;
  const auto in = input.data();
  const auto out = output.data();
  for (std::size_t b = 0; b < batch; ++b) {
    const float* image = in.data() + b * in_sz;
    const float* col = image;
    if (!pointwise) {
      im2col_kmajor(g, image, col_.data());
      col = col_.data();
    }
    float* out_plane = out.data() + b * out_sz;
    // acc starts at the bias (the direct loop's first term), then the
    // GEMM accumulates the patch dimension in (ic, ky, kx) order.
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      std::fill(out_plane + oc * ohw, out_plane + (oc + 1) * ohw, bias[oc]);
    }
    tensor::gemm_nn(out_c_, patch, ohw, weights,
                    std::span<const float>{col, patch * ohw},
                    std::span<float>{out_plane, out_sz}, /*beta=*/1.0f);
  }
}

namespace {

/// Input-gradient kernel: the direct loop nest with the bounds hoisted
/// into clipped (ky, kx) ranges — the same surviving iterations in the
/// same order, so it is bitwise identical to the seed loop by
/// construction.
void backward_input_image(const ConvGeometry& g, std::size_t out_c,
                          const float* __restrict__ gout_plane,
                          const float* __restrict__ weights,
                          float* __restrict__ gin_image) {
  const std::size_t kk = g.k * g.k;
  const std::size_t patch = g.in_c * kk;
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    const float* __restrict__ gp = gout_plane + oc * g.out_hw();
    const float* __restrict__ wk = weights + oc * patch;
    for (std::size_t oy = 0; oy < g.oh; ++oy) {
      const std::ptrdiff_t iy0 = static_cast<std::ptrdiff_t>(oy * g.stride) -
                                 static_cast<std::ptrdiff_t>(g.pad);
      const KernelRange yr = clipped_kernel_range(g.k, g.h, iy0);
      const std::size_t ky_lo = yr.lo;
      const std::size_t ky_hi = yr.hi;
      if (ky_lo >= ky_hi) continue;
      for (std::size_t ox = 0; ox < g.ow; ++ox) {
        const float gval = gp[oy * g.ow + ox];
        if (gval == 0.0f) continue;
        const std::ptrdiff_t ix0 = static_cast<std::ptrdiff_t>(ox * g.stride) -
                                   static_cast<std::ptrdiff_t>(g.pad);
        const KernelRange xr = clipped_kernel_range(g.k, g.w, ix0);
        const std::size_t kx_lo = xr.lo;
        const std::size_t kx_hi = xr.hi;
        if (kx_lo >= kx_hi) continue;
        for (std::size_t ic = 0; ic < g.in_c; ++ic) {
          float* __restrict__ gin_plane = gin_image + ic * g.h * g.w;
          const float* __restrict__ w_ic = wk + ic * kk;
          for (std::size_t ky = ky_lo; ky < ky_hi; ++ky) {
            const float* __restrict__ wrow = w_ic + ky * g.k;
            float* __restrict__ grow =
                gin_plane +
                static_cast<std::size_t>(iy0 + static_cast<std::ptrdiff_t>(ky)) *
                    g.w +
                static_cast<std::size_t>(ix0 +
                                         static_cast<std::ptrdiff_t>(kx_lo));
            const float* __restrict__ wseg = wrow + kx_lo;
            const std::size_t span = kx_hi - kx_lo;
            for (std::size_t t = 0; t < span; ++t) grow[t] += gval * wseg[t];
          }
        }
      }
    }
  }
}

}  // namespace

void Conv2d::backward_im2col(const Tensor& input, const Tensor& grad_output,
                             Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  const ConvGeometry g = geometry(input.dim(2), input.dim(3));
  const std::size_t patch = g.patch();
  const std::size_t ohw = g.out_hw();
  const std::size_t in_sz = in_c_ * g.h * g.w;
  const std::size_t out_sz = out_c_ * ohw;

  const std::span<const float> weights{params_.data(), out_c_ * patch};
  std::span<float> grad_w{grads_.data(), out_c_ * patch};
  float* grad_b = grads_.data() + out_c_ * patch;

  grad_input.zero();
  colr_.resize(ohw * patch);
  gout_t_.resize(ohw * out_c_);

  const auto in = input.data();
  const auto gout = grad_output.data();
  const auto gin = grad_input.data();

  for (std::size_t b = 0; b < batch; ++b) {
    const float* image = in.data() + b * in_sz;
    const float* gout_plane = gout.data() + b * out_sz;
    float* gin_image = gin.data() + b * in_sz;

    // Bias gradient: the direct loop's (oc, oy, ox) order and g == 0 skip.
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* __restrict__ gp = gout_plane + oc * ohw;
      float acc_ref = grad_b[oc];
      for (std::size_t pos = 0; pos < ohw; ++pos) {
        const float gval = gp[pos];
        if (gval == 0.0f) continue;
        acc_ref += gval;
      }
      grad_b[oc] = acc_ref;
    }

    // Weight gradient: dW[oc][κ] += Σ_pos g[oc][pos] * colr[pos][κ].
    // gemm_tn accumulates the shared (position) dimension outermost and
    // ascending, and its skip-zero branch is exactly the direct loop's
    // g == 0 skip.
    transpose(out_c_, ohw, gout_plane, gout_t_.data());
    im2row_posmajor(g, image, colr_.data());
    tensor::gemm_tn(out_c_, ohw, patch,
                    std::span<const float>{gout_t_.data(), ohw * out_c_},
                    std::span<const float>{colr_.data(), ohw * patch}, grad_w,
                    /*beta=*/1.0f);

    backward_input_image(g, out_c_, gout_plane, weights.data(), gin_image);
  }
}

// ---------------------------------------------------------------------------
// Direct (seed) path — the verification reference.
// ---------------------------------------------------------------------------

void Conv2d::forward_direct(const Tensor& input, Tensor& output) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = spatial_out(h);
  const std::size_t ow = spatial_out(w);
  const float* weights = params_.data();
  const float* bias = params_.data() + out_c_ * in_c_ * k_ * k_;

  const auto in = input.data();
  const auto out = output.data();
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      float* out_plane = out.data() + ((b * out_c_ + oc) * oh) * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          float acc = bias[oc];
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* in_plane = in.data() + ((b * in_c_ + ic) * h) * w;
            const float* kernel =
                weights + ((oc * in_c_ + ic) * k_) * k_;
            for (std::size_t ky = 0; ky < k_; ++ky) {
              // Input coordinates with padding offset; skip out-of-bounds
              // (zero padding contributes nothing).
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                acc += kernel[ky * k_ + kx] *
                       in_plane[static_cast<std::size_t>(iy) * w +
                                static_cast<std::size_t>(ix)];
              }
            }
          }
          out_plane[oy * ow + ox] = acc;
        }
      }
    }
  }
}

void Conv2d::backward_direct(const Tensor& input, const Tensor& grad_output,
                             Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = spatial_out(h);
  const std::size_t ow = spatial_out(w);
  const float* weights = params_.data();
  float* grad_w = grads_.data();
  float* grad_b = grads_.data() + out_c_ * in_c_ * k_ * k_;

  grad_input.zero();
  const auto in = input.data();
  const auto gout = grad_output.data();
  const auto gin = grad_input.data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t oc = 0; oc < out_c_; ++oc) {
      const float* gout_plane = gout.data() + ((b * out_c_ + oc) * oh) * ow;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          const float g = gout_plane[oy * ow + ox];
          if (g == 0.0f) continue;
          grad_b[oc] += g;
          for (std::size_t ic = 0; ic < in_c_; ++ic) {
            const float* in_plane = in.data() + ((b * in_c_ + ic) * h) * w;
            float* gin_plane = gin.data() + ((b * in_c_ + ic) * h) * w;
            const float* kernel = weights + ((oc * in_c_ + ic) * k_) * k_;
            float* gkernel = grad_w + ((oc * in_c_ + ic) * k_) * k_;
            for (std::size_t ky = 0; ky < k_; ++ky) {
              const std::ptrdiff_t iy =
                  static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
                  static_cast<std::ptrdiff_t>(pad_);
              if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
              for (std::size_t kx = 0; kx < k_; ++kx) {
                const std::ptrdiff_t ix =
                    static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                    static_cast<std::ptrdiff_t>(pad_);
                if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
                const std::size_t idx = static_cast<std::size_t>(iy) * w +
                                        static_cast<std::size_t>(ix);
                gkernel[ky * k_ + kx] += g * in_plane[idx];
                gin_plane[idx] += g * kernel[ky * k_ + kx];
              }
            }
          }
        }
      }
    }
  }
}

std::unique_ptr<Layer> Conv2d::clone() const {
  auto copy = std::make_unique<Conv2d>(in_c_, out_c_, k_, stride_, pad_);
  copy->params_ = params_;
  copy->algo_ = algo_;
  return copy;
}

}  // namespace skiptrain::nn
