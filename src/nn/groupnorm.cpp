#include "nn/groupnorm.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace skiptrain::nn {

GroupNorm::GroupNorm(std::size_t num_groups, std::size_t channels, float eps)
    : ParamLayer(2 * channels),
      groups_(num_groups),
      channels_(channels),
      eps_(eps) {
  if (num_groups == 0 || channels % num_groups != 0) {
    throw std::invalid_argument(
        "GroupNorm: channels must be divisible by num_groups");
  }
  // gamma = 1, beta = 0 (identity transform at init).
  for (std::size_t c = 0; c < channels_; ++c) params_[c] = 1.0f;
}

std::string GroupNorm::name() const {
  return "GroupNorm(groups=" + std::to_string(groups_) +
         ", channels=" + std::to_string(channels_) + ")";
}

Shape GroupNorm::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 4 || input_shape[1] != channels_) {
    throw std::invalid_argument("GroupNorm: expected [B, " +
                                std::to_string(channels_) + ", H, W], got " +
                                tensor::shape_to_string(input_shape));
  }
  return input_shape;
}

void GroupNorm::forward(const Tensor& input, Tensor& output) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t spatial = h * w;
  const std::size_t chans_per_group = channels_ / groups_;
  const std::size_t group_size = chans_per_group * spatial;

  mean_.resize(batch * groups_);
  inv_std_.resize(batch * groups_);

  const float* gamma = params_.data();
  const float* beta = params_.data() + channels_;
  const auto in = input.data();
  const auto out = output.data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t g = 0; g < groups_; ++g) {
      const std::size_t base = (b * channels_ + g * chans_per_group) * spatial;
      double sum = 0.0, sum_sq = 0.0;
      for (std::size_t i = 0; i < group_size; ++i) {
        const double v = in[base + i];
        sum += v;
        sum_sq += v * v;
      }
      const double n = static_cast<double>(group_size);
      const double mu = sum / n;
      const double var = std::max(0.0, sum_sq / n - mu * mu);
      const float inv_std =
          1.0f / std::sqrt(static_cast<float>(var) + eps_);
      mean_[b * groups_ + g] = static_cast<float>(mu);
      inv_std_[b * groups_ + g] = inv_std;

      for (std::size_t cg = 0; cg < chans_per_group; ++cg) {
        const std::size_t c = g * chans_per_group + cg;
        const float scale = gamma[c] * inv_std;
        const float shift =
            beta[c] - gamma[c] * static_cast<float>(mu) * inv_std;
        const std::size_t plane = (b * channels_ + c) * spatial;
        for (std::size_t i = 0; i < spatial; ++i) {
          out[plane + i] = scale * in[plane + i] + shift;
        }
      }
    }
  }
}

void GroupNorm::backward(const Tensor& input, const Tensor& grad_output,
                         Tensor& grad_input) {
  const std::size_t batch = input.dim(0);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t spatial = h * w;
  const std::size_t chans_per_group = channels_ / groups_;
  const std::size_t group_size = chans_per_group * spatial;
  assert(mean_.size() == batch * groups_);

  const float* gamma = params_.data();
  float* grad_gamma = grads_.data();
  float* grad_beta = grads_.data() + channels_;
  const auto in = input.data();
  const auto gout = grad_output.data();
  const auto gin = grad_input.data();

  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t g = 0; g < groups_; ++g) {
      const float mu = mean_[b * groups_ + g];
      const float inv_std = inv_std_[b * groups_ + g];
      const double n = static_cast<double>(group_size);

      // First pass: accumulate the two group-level reductions of the
      // normalisation backward formula plus the affine-parameter grads.
      double sum_dxhat = 0.0;
      double sum_dxhat_xhat = 0.0;
      for (std::size_t cg = 0; cg < chans_per_group; ++cg) {
        const std::size_t c = g * chans_per_group + cg;
        const std::size_t plane = (b * channels_ + c) * spatial;
        double dgamma = 0.0, dbeta = 0.0;
        for (std::size_t i = 0; i < spatial; ++i) {
          const float xhat = (in[plane + i] - mu) * inv_std;
          const float dy = gout[plane + i];
          const float dxhat = dy * gamma[c];
          sum_dxhat += dxhat;
          sum_dxhat_xhat += static_cast<double>(dxhat) * xhat;
          dgamma += static_cast<double>(dy) * xhat;
          dbeta += dy;
        }
        grad_gamma[c] += static_cast<float>(dgamma);
        grad_beta[c] += static_cast<float>(dbeta);
      }

      // Second pass: dx = inv_std * (dxhat - mean(dxhat) - xhat*mean(dxhat*xhat)).
      const float mean_dxhat = static_cast<float>(sum_dxhat / n);
      const float mean_dxhat_xhat = static_cast<float>(sum_dxhat_xhat / n);
      for (std::size_t cg = 0; cg < chans_per_group; ++cg) {
        const std::size_t c = g * chans_per_group + cg;
        const std::size_t plane = (b * channels_ + c) * spatial;
        for (std::size_t i = 0; i < spatial; ++i) {
          const float xhat = (in[plane + i] - mu) * inv_std;
          const float dxhat = gout[plane + i] * gamma[c];
          gin[plane + i] =
              inv_std * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat);
        }
      }
    }
  }
}

std::unique_ptr<Layer> GroupNorm::clone() const {
  auto copy = std::make_unique<GroupNorm>(groups_, channels_, eps_);
  copy->params_ = params_;
  return copy;
}

}  // namespace skiptrain::nn
