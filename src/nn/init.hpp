// Weight initialisation. Deterministic given the Rng, so every node in a
// simulation can start from the identical model x^0 (as D-PSGD assumes).
#pragma once

#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace skiptrain::nn {

enum class InitScheme {
  kKaimingUniform,  // He et al., for ReLU networks
  kXavierUniform,   // Glorot & Bengio, for tanh networks
};

/// Initialises every Linear / Conv2d layer in `model`: weights from the
/// chosen scheme, biases to zero.
void initialize(Sequential& model, util::Rng& rng,
                InitScheme scheme = InitScheme::kKaimingUniform);

}  // namespace skiptrain::nn
