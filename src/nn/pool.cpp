#include "nn/pool.hpp"

#include <cassert>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace skiptrain::nn {

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  if (window_ == 0) throw std::invalid_argument("MaxPool2d: window must be > 0");
}

std::string MaxPool2d::name() const {
  return "MaxPool2d(" + std::to_string(window_) + ")";
}

Shape MaxPool2d::output_shape(const Shape& input_shape) const {
  if (input_shape.size() != 4) {
    throw std::invalid_argument("MaxPool2d: expected [B, C, H, W], got " +
                                tensor::shape_to_string(input_shape));
  }
  if (input_shape[2] < window_ || input_shape[3] < window_) {
    throw std::invalid_argument("MaxPool2d: input smaller than window");
  }
  return {input_shape[0], input_shape[1], input_shape[2] / window_,
          input_shape[3] / window_};
}

void MaxPool2d::forward(const Tensor& input, Tensor& output) {
  const std::size_t batch = input.dim(0);
  const std::size_t channels = input.dim(1);
  const std::size_t h = input.dim(2);
  const std::size_t w = input.dim(3);
  const std::size_t oh = h / window_;
  const std::size_t ow = w / window_;

  argmax_.resize(output.numel());
  const auto in = input.data();
  const auto out = output.data();
  std::size_t out_idx = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    for (std::size_t c = 0; c < channels; ++c) {
      const std::size_t plane = (b * channels + c) * h * w;
      for (std::size_t oy = 0; oy < oh; ++oy) {
        for (std::size_t ox = 0; ox < ow; ++ox) {
          std::size_t best_idx = plane + (oy * window_) * w + ox * window_;
          float best = in[best_idx];
          for (std::size_t ky = 0; ky < window_; ++ky) {
            for (std::size_t kx = 0; kx < window_; ++kx) {
              const std::size_t idx =
                  plane + (oy * window_ + ky) * w + (ox * window_ + kx);
              if (in[idx] > best) {
                best = in[idx];
                best_idx = idx;
              }
            }
          }
          out[out_idx] = best;
          argmax_[out_idx] = best_idx;
          ++out_idx;
        }
      }
    }
  }
}

void MaxPool2d::backward(const Tensor& input, const Tensor& grad_output,
                         Tensor& grad_input) {
  (void)input;
  assert(argmax_.size() == grad_output.numel());
  grad_input.zero();
  const auto gout = grad_output.data();
  const auto gin = grad_input.data();
  for (std::size_t i = 0; i < gout.size(); ++i) {
    gin[argmax_[i]] += gout[i];
  }
}

std::unique_ptr<Layer> MaxPool2d::clone() const {
  return std::make_unique<MaxPool2d>(window_);
}

Shape Flatten::output_shape(const Shape& input_shape) const {
  if (input_shape.empty()) {
    throw std::invalid_argument("Flatten: empty input shape");
  }
  std::size_t flat = 1;
  for (std::size_t i = 1; i < input_shape.size(); ++i) flat *= input_shape[i];
  return {input_shape[0], flat};
}

void Flatten::forward(const Tensor& input, Tensor& output) {
  tensor::copy(input.data(), output.data());
}

void Flatten::backward(const Tensor& input, const Tensor& grad_output,
                       Tensor& grad_input) {
  (void)input;
  tensor::copy(grad_output.data(), grad_input.data());
}

std::unique_ptr<Layer> Flatten::clone() const {
  return std::make_unique<Flatten>();
}

}  // namespace skiptrain::nn
