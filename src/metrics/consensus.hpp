// Consensus diagnostics: how far apart the node models are. Synchronization
// rounds shrink these quantities without spending training energy — the
// mechanism behind SkipTrain's accuracy gains (§3.1, Figure 4).
//
// The primary interface operates on plane rows (one contiguous [n × dim]
// matrix, zero-copy from RoundEngine::node_parameters()); the
// vector-of-vectors overloads remain for callers holding owned snapshots.
#pragma once

#include <span>
#include <vector>

#include "plane/plane.hpp"

namespace skiptrain::metrics {

/// Mean L2 distance of each node's parameter vector from the global
/// average parameter vector ("consensus distance").
[[nodiscard]] double consensus_distance(plane::ConstMatrixView node_params);
[[nodiscard]] double consensus_distance(
    std::span<const std::vector<float>> node_params);

/// Largest pairwise L2 distance between any two node models. O(n²·d); use
/// on small fleets or sampled subsets.
[[nodiscard]] double max_pairwise_distance(plane::ConstMatrixView node_params);
[[nodiscard]] double max_pairwise_distance(
    std::span<const std::vector<float>> node_params);

}  // namespace skiptrain::metrics
