#include "metrics/evaluator.hpp"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain::metrics {

Evaluator::Evaluator(const data::Dataset* dataset, std::size_t max_samples,
                     std::size_t batch_size)
    : dataset_(dataset), batch_size_(batch_size) {
  if (dataset_ == nullptr || dataset_->size() == 0) {
    throw std::invalid_argument("Evaluator: empty dataset");
  }
  samples_ = (max_samples == 0) ? dataset_->size()
                                : std::min(max_samples, dataset_->size());
}

EvalResult Evaluator::evaluate(nn::Sequential& model) const {
  const data::DatasetView view = data::DatasetView::whole(dataset_);
  tensor::Tensor batch;
  std::vector<std::int32_t> labels;

  double weighted_loss = 0.0;
  double weighted_acc = 0.0;
  std::size_t done = 0;
  while (done < samples_) {
    const std::size_t count = std::min(batch_size_, samples_ - done);
    view.fill_range(done, count, batch, labels);
    const tensor::Tensor& logits = model.forward(batch);
    const nn::LossResult result =
        nn::softmax_cross_entropy_eval(logits, labels);
    weighted_loss += result.loss * static_cast<double>(count);
    weighted_acc += result.accuracy * static_cast<double>(count);
    done += count;
  }
  return EvalResult{weighted_acc / static_cast<double>(samples_),
                    weighted_loss / static_cast<double>(samples_)};
}

namespace {

/// Arithmetic mean over rows supplied by any accessor i -> span<const float>.
template <typename RowFn>
std::vector<float> mean_of_rows(std::size_t rows, std::size_t dim,
                                RowFn row) {
  std::vector<float> mean(dim, 0.0f);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const float> params = row(r);
    for (std::size_t i = 0; i < dim; ++i) mean[i] += params[i];
  }
  const float inv = 1.0f / static_cast<float>(rows);
  for (auto& v : mean) v *= inv;
  return mean;
}

}  // namespace

EvalResult Evaluator::evaluate_average(
    const nn::Sequential& prototype,
    plane::ConstMatrixView node_params) const {
  if (node_params.empty()) {
    throw std::invalid_argument("evaluate_average: no node parameters");
  }
  const std::vector<float> mean =
      mean_of_rows(node_params.rows, node_params.dim,
                   [&](std::size_t i) { return node_params.row(i); });
  nn::Sequential averaged = prototype.clone();
  averaged.set_parameters(mean);
  return evaluate(averaged);
}

EvalResult Evaluator::evaluate_average(
    const nn::Sequential& prototype,
    std::span<const std::vector<float>> node_params) const {
  if (node_params.empty()) {
    throw std::invalid_argument("evaluate_average: no node parameters");
  }
  const std::size_t dim = node_params.front().size();
  for (const auto& params : node_params) {
    if (params.size() != dim) {
      throw std::invalid_argument("evaluate_average: ragged parameter list");
    }
  }
  const std::vector<float> mean =
      mean_of_rows(node_params.size(), dim, [&](std::size_t i) {
        return std::span<const float>(node_params[i]);
      });
  nn::Sequential averaged = prototype.clone();
  averaged.set_parameters(mean);
  return evaluate(averaged);
}

Evaluator::FleetResult Evaluator::evaluate_fleet(
    std::span<nn::Sequential* const> models) const {
  FleetResult result;
  result.per_node.assign(models.size(), 0.0);
  util::parallel_for(0, models.size(), [&](std::size_t i) {
    result.per_node[i] = evaluate(*models[i]).accuracy;
  });
  util::RunningStat stat;
  for (const double acc : result.per_node) stat.add(acc);
  result.accuracy = util::Summary{stat.count(), stat.mean(), stat.stddev(),
                                  stat.min(), stat.max()};
  return result;
}

}  // namespace skiptrain::metrics
