// Time-series recording for experiments: one record per evaluation point,
// exportable to CSV and renderable as the paper's accuracy-vs-round /
// accuracy-vs-energy series.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace skiptrain::metrics {

struct RoundRecord {
  std::size_t round = 0;
  bool training_round = false;    // coordinated round kind
  double mean_accuracy = 0.0;     // mean over nodes (test or val)
  double std_accuracy = 0.0;
  double mean_loss = 0.0;
  double allreduce_accuracy = 0.0;  // accuracy of the averaged model
  double train_energy_wh = 0.0;     // cumulative fleet training energy
  double comm_energy_wh = 0.0;      // cumulative fleet communication energy
  std::size_t nodes_trained = 0;    // how many nodes trained this round
  double consensus = 0.0;           // consensus distance at eval time
};

class Recorder {
 public:
  explicit Recorder(std::string experiment_name);

  void add(const RoundRecord& record);

  const std::string& name() const { return name_; }
  const std::vector<RoundRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  const RoundRecord& last() const { return records_.back(); }

  /// Best mean accuracy over the recorded series.
  double best_mean_accuracy() const;

  /// First record whose cumulative training energy reaches `budget_wh`
  /// (used for equal-energy comparisons as in Table 4); nullopt when the
  /// series never reaches the budget.
  std::optional<RoundRecord> record_at_energy(double budget_wh) const;

  /// Writes the series to `path` as CSV.
  void write_csv(const std::string& path) const;

  /// Compact console rendering: every k-th record as a table row.
  [[nodiscard]] std::string render_series(std::size_t stride = 1) const;

 private:
  std::string name_;
  std::vector<RoundRecord> records_;
};

}  // namespace skiptrain::metrics
