// Top-1 accuracy / loss evaluation of node models against the shared
// validation or test split (paper §4.2 "Metrics").
#pragma once

#include <span>
#include <vector>

#include "data/dataset.hpp"
#include "nn/sequential.hpp"
#include "plane/plane.hpp"
#include "util/stats.hpp"

namespace skiptrain::metrics {

struct EvalResult {
  double accuracy = 0.0;
  double loss = 0.0;
};

class Evaluator {
 public:
  /// Evaluates against `dataset` (not owned; must outlive the evaluator).
  /// `max_samples` limits the evaluation sweep (0 = use all samples);
  /// `batch_size` controls the forward-pass batching.
  explicit Evaluator(const data::Dataset* dataset, std::size_t max_samples = 0,
                     std::size_t batch_size = 256);

  /// Accuracy/loss of one model. Thread-safe wrt the dataset; the model is
  /// used mutably (forward activations) and must not be shared.
  EvalResult evaluate(nn::Sequential& model) const;

  /// Accuracy/loss of the model whose parameters are the arithmetic mean
  /// of `node_params` — the paper's "all-reduced model" metric (Fig. 1).
  /// `prototype` provides the architecture (cloned internally). The plane
  /// view form reads engine rows zero-copy; the vector form serves owned
  /// snapshots.
  EvalResult evaluate_average(const nn::Sequential& prototype,
                              plane::ConstMatrixView node_params) const;
  EvalResult evaluate_average(
      const nn::Sequential& prototype,
      std::span<const std::vector<float>> node_params) const;

  /// Per-node accuracies for a set of models, evaluated in parallel on the
  /// global thread pool. Returns mean/std summary plus raw accuracies.
  struct FleetResult {
    util::Summary accuracy;
    std::vector<double> per_node;
  };
  FleetResult evaluate_fleet(std::span<nn::Sequential* const> models) const;

  std::size_t samples_used() const { return samples_; }

 private:
  const data::Dataset* dataset_;
  std::size_t samples_;
  std::size_t batch_size_;
};

}  // namespace skiptrain::metrics
