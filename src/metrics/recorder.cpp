#include "metrics/recorder.hpp"

#include <algorithm>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace skiptrain::metrics {

Recorder::Recorder(std::string experiment_name)
    : name_(std::move(experiment_name)) {}

void Recorder::add(const RoundRecord& record) { records_.push_back(record); }

double Recorder::best_mean_accuracy() const {
  double best = 0.0;
  for (const auto& record : records_) {
    best = std::max(best, record.mean_accuracy);
  }
  return best;
}

std::optional<RoundRecord> Recorder::record_at_energy(double budget_wh) const {
  for (const auto& record : records_) {
    if (record.train_energy_wh >= budget_wh) return record;
  }
  return std::nullopt;
}

void Recorder::write_csv(const std::string& path) const {
  util::CsvWriter csv(path,
                      {"round", "training_round", "mean_accuracy",
                       "std_accuracy", "mean_loss", "allreduce_accuracy",
                       "train_energy_wh", "comm_energy_wh", "nodes_trained",
                       "consensus"});
  for (const auto& r : records_) {
    csv.write_row(std::vector<double>{
        static_cast<double>(r.round), r.training_round ? 1.0 : 0.0,
        r.mean_accuracy, r.std_accuracy, r.mean_loss, r.allreduce_accuracy,
        r.train_energy_wh, r.comm_energy_wh,
        static_cast<double>(r.nodes_trained), r.consensus});
  }
}

std::string Recorder::render_series(std::size_t stride) const {
  util::TablePrinter table({"round", "kind", "acc mean%", "acc std%",
                            "train Wh", "comm Wh", "trained"});
  for (std::size_t i = 0; i < records_.size(); ++i) {
    if (stride > 1 && i % stride != 0 && i + 1 != records_.size()) continue;
    const auto& r = records_[i];
    table.add_row({std::to_string(r.round), r.training_round ? "train" : "sync",
                   util::fixed(100.0 * r.mean_accuracy, 2),
                   util::fixed(100.0 * r.std_accuracy, 2),
                   util::fixed(r.train_energy_wh, 2),
                   util::fixed(r.comm_energy_wh, 3),
                   std::to_string(r.nodes_trained)});
  }
  return name_ + "\n" + table.render();
}

}  // namespace skiptrain::metrics
