#include "metrics/consensus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace skiptrain::metrics {

namespace {

/// Shared implementation over any row accessor i -> span<const float>.
template <typename RowFn>
double consensus_impl(std::size_t rows, std::size_t dim, RowFn row) {
  if (rows == 0) return 0.0;
  std::vector<double> mean(dim, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const float> params = row(r);
    for (std::size_t i = 0; i < dim; ++i) {
      mean[i] += static_cast<double>(params[i]);
    }
  }
  const double inv = 1.0 / static_cast<double>(rows);
  for (auto& v : mean) v *= inv;

  double total = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const std::span<const float> params = row(r);
    double sq = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = static_cast<double>(params[i]) - mean[i];
      sq += d * d;
    }
    total += std::sqrt(sq);
  }
  return total * inv;
}

template <typename RowFn>
double max_pairwise_impl(std::size_t rows, std::size_t dim, RowFn row) {
  double worst = 0.0;
  for (std::size_t a = 0; a < rows; ++a) {
    const std::span<const float> pa = row(a);
    for (std::size_t b = a + 1; b < rows; ++b) {
      const std::span<const float> pb = row(b);
      double sq = 0.0;
      for (std::size_t i = 0; i < dim; ++i) {
        const double d =
            static_cast<double>(pa[i]) - static_cast<double>(pb[i]);
        sq += d * d;
      }
      worst = std::max(worst, std::sqrt(sq));
    }
  }
  return worst;
}

void check_not_ragged(std::span<const std::vector<float>> node_params,
                      const char* what) {
  if (node_params.empty()) return;
  const std::size_t dim = node_params.front().size();
  for (const auto& params : node_params) {
    if (params.size() != dim) {
      throw std::invalid_argument(std::string(what) + ": ragged parameters");
    }
  }
}

}  // namespace

double consensus_distance(plane::ConstMatrixView node_params) {
  return consensus_impl(node_params.rows, node_params.dim,
                        [&](std::size_t i) { return node_params.row(i); });
}

double consensus_distance(std::span<const std::vector<float>> node_params) {
  check_not_ragged(node_params, "consensus_distance");
  const std::size_t dim =
      node_params.empty() ? 0 : node_params.front().size();
  return consensus_impl(node_params.size(), dim, [&](std::size_t i) {
    return std::span<const float>(node_params[i]);
  });
}

double max_pairwise_distance(plane::ConstMatrixView node_params) {
  return max_pairwise_impl(node_params.rows, node_params.dim,
                           [&](std::size_t i) { return node_params.row(i); });
}

double max_pairwise_distance(std::span<const std::vector<float>> node_params) {
  check_not_ragged(node_params, "max_pairwise_distance");
  const std::size_t dim =
      node_params.empty() ? 0 : node_params.front().size();
  return max_pairwise_impl(node_params.size(), dim, [&](std::size_t i) {
    return std::span<const float>(node_params[i]);
  });
}

}  // namespace skiptrain::metrics
