#include "metrics/consensus.hpp"

#include <cmath>
#include <stdexcept>

namespace skiptrain::metrics {

double consensus_distance(std::span<const std::vector<float>> node_params) {
  if (node_params.empty()) return 0.0;
  const std::size_t dim = node_params.front().size();
  std::vector<double> mean(dim, 0.0);
  for (const auto& params : node_params) {
    if (params.size() != dim) {
      throw std::invalid_argument("consensus_distance: ragged parameters");
    }
    for (std::size_t i = 0; i < dim; ++i) {
      mean[i] += static_cast<double>(params[i]);
    }
  }
  const double inv = 1.0 / static_cast<double>(node_params.size());
  for (auto& v : mean) v *= inv;

  double total = 0.0;
  for (const auto& params : node_params) {
    double sq = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = static_cast<double>(params[i]) - mean[i];
      sq += d * d;
    }
    total += std::sqrt(sq);
  }
  return total * inv;
}

double max_pairwise_distance(std::span<const std::vector<float>> node_params) {
  double worst = 0.0;
  for (std::size_t a = 0; a < node_params.size(); ++a) {
    for (std::size_t b = a + 1; b < node_params.size(); ++b) {
      double sq = 0.0;
      for (std::size_t i = 0; i < node_params[a].size(); ++i) {
        const double d = static_cast<double>(node_params[a][i]) -
                         static_cast<double>(node_params[b][i]);
        sq += d * d;
      }
      worst = std::max(worst, std::sqrt(sq));
    }
  }
  return worst;
}

}  // namespace skiptrain::metrics
