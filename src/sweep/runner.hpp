// SweepRunner: expands a SweepGrid and executes its trials concurrently.
//
// Parallelism model: trial-level parallelism on a util::ThreadPool, layered
// over the engine's node-level parallel_for. When the trial workers
// saturate the machine, each trial runs under
// ThreadPool::ScopedForceSerial, so a trial's inner loops stay on its
// worker (the nested-serial policy, extended across pools) — N workers run
// N whole trials concurrently instead of fighting over node-level tasks.
// When the grid is smaller than the machine, node-level parallelism stays
// enabled so surplus cores are used. With threads == 1 the trials run
// inline on the caller with full node-level parallelism — the schedule of
// the old hand-rolled bench loops.
//
// Determinism: trials are pure functions of their TrialSpec (per-node RNG
// streams, counter-based scheduler draws, index-ordered reductions), the
// dataset cache shares one immutable build per DataConfig, and the result
// sink orders rows by trial index — so the summary CSV is byte-identical
// at any worker count.
//
// Failures: a throwing trial is caught, recorded as a failed row with its
// error text, and counted in SweepReport::failures. It never tears down
// the sweep and is never silently dropped.
#pragma once

#include <string>
#include <vector>

#include "obs/phase.hpp"
#include "sweep/dataset_cache.hpp"
#include "sweep/grid.hpp"
#include "sweep/result_sink.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain::sweep {

struct SweepOptions {
  /// Concurrent trials. 0 = one per hardware thread; 1 = run inline with
  /// node-level parallelism enabled inside the single trial.
  std::size_t threads = 0;

  /// Print a one-line progress note per finished trial to stderr.
  bool verbose = false;

  /// Crash-resumable sweeps (ckpt/trial_store). When set, every finished
  /// trial's result is persisted to `<checkpoint_dir>/trial_<i>.result`
  /// (atomically, plus a manifest line), and trials additionally write
  /// in-flight fleet images every `checkpoint_every` rounds. With
  /// `resume`, completed trials are loaded instead of re-run and
  /// in-flight trials restart from their last image — the summary CSV
  /// comes out byte-identical to an uninterrupted sweep.
  std::string checkpoint_dir{};
  std::size_t checkpoint_every = 0;
  bool resume = false;

  /// In-flight fleet-image generations each trial retains (0/1 = single
  /// image). A resume falls back to the newest generation that validates,
  /// so one corrupt/torn image costs at most checkpoint_every rounds.
  std::size_t keep_generations = 1;
};

struct SweepReport {
  std::string name;
  std::vector<TrialResult> trials;  // grid-expansion (trial-index) order
  std::size_t failures = 0;
  std::size_t resumed_trials = 0;  // loaded from checkpoint, not re-run
  double wall_seconds = 0.0;

  /// Aggregate runtime telemetry over every fresh-run trial (resumed
  /// trials contribute only their store-load time). Observational only —
  /// exported by sweep::write_telemetry_json, never part of the CSV.
  obs::TrialTelemetry telemetry;

  /// Trial-level worker-pool stats (threads > 1 path; zero when trials
  /// ran inline on the caller). Busy time is tracked only while
  /// obs::enabled().
  util::ThreadPool::PoolStats trial_pool{};

  bool all_ok() const { return failures == 0; }

  /// Writes the summary CSV (ResultSink schema; no wall-clock columns).
  void write_csv(const std::string& path) const;

  /// Aligned console table of all trials.
  [[nodiscard]] std::string render_table() const;

  /// First trial matching `predicate`, or nullptr.
  template <typename Predicate>
  const TrialResult* find(Predicate predicate) const {
    for (const TrialResult& trial : trials) {
      if (predicate(trial)) return &trial;
    }
    return nullptr;
  }

  /// First trial of the (dataset, degree, algorithm) cell, or nullptr —
  /// the lookup every figure/table bench does per report cell.
  const TrialResult* find_trial(const std::string& dataset,
                                std::size_t degree,
                                sim::Algorithm algorithm) const;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Expands and runs the grid; blocks until every trial has finished.
  SweepReport run(const SweepGrid& grid);

  /// The shared dataset cache (persists across run() calls, so chained
  /// sweeps over the same data reuse the builds).
  DatasetCache& cache() { return cache_; }

 private:
  /// Runs (or, under --resume, loads) one trial. `resumed` is set when
  /// the result came from the trial store instead of a fresh run.
  TrialResult run_trial(const TrialSpec& spec, bool& resumed);

  SweepOptions options_;
  DatasetCache cache_;
};

}  // namespace skiptrain::sweep
