// Per-sweep runtime telemetry export (telemetry.json).
//
// write_telemetry_json serializes everything a finished SweepReport knows
// about HOW the sweep ran — per-phase wall-time breakdown, exact codec
// wire bytes (total and by codec), checkpoint IO, worker-pool
// utilization, peak RSS, and a dump of the process-wide obs registry —
// into one JSON document next to the summary CSV. Strictly observational:
// the CSV bytes never depend on whether this file is written, and the
// schema carries only runtime facts, never simulation results.
//
// Schema (all times in seconds, all sizes in bytes):
//   {
//     "sweep": <grid name>, "wall_seconds": w,
//     "trials": n, "failures": f, "resumed_trials": r,
//     "peak_rss_bytes": rss,                     // 0 when unavailable
//     "trial_pool":  {workers, busy_seconds, tasks_executed, utilization},
//     "global_pool": {workers, busy_seconds, tasks_executed, utilization},
//     "phases": {"train": {"seconds": s, "calls": c}, ...},
//     "phase_total_seconds": sum over phases,
//     "wire_bytes": total, "wire_bytes_by_codec": {"identity": b, ...},
//     "rounds": total rounds executed across fresh trials,
//     "counters": {name: value, ...},
//     "gauges":   {name: {"value": v, "max": m}, ...},
//     "histograms": {name: {count, sum, max, mean, p50, p99}, ...},
//     "trials_detail": [{index, dataset, algorithm, codec, ok,
//                        wall_seconds, rounds, wire_bytes,
//                        phases: {...}}, ...]
//   }
#pragma once

#include <string>

#include "sweep/runner.hpp"

namespace skiptrain::sweep {

/// "fig3_sweep.csv" -> "fig3_sweep.telemetry.json" (the ".csv" suffix is
/// replaced when present, otherwise ".telemetry.json" is appended).
[[nodiscard]] std::string default_telemetry_path(const std::string& csv_path);

/// Writes the report's runtime telemetry to `path` (atomically, via
/// ckpt::atomic_write). Captures the CURRENT obs registry snapshot and
/// global-pool stats, so call it right after the sweep finishes. Throws
/// std::runtime_error when the file cannot be written.
void write_telemetry_json(const std::string& path, const SweepReport& report);

}  // namespace skiptrain::sweep
