// Declarative parameter grids for the sweep subsystem.
//
// A SweepGrid names the axes an experiment varies (algorithm, Γ schedule,
// topology degree, node count, dataset, compression k, replicate seeds) and
// expands their cross product into a deterministic, index-ordered list of
// TrialSpecs. Empty axes inherit the single value from `base`/`data`, so a
// grid only spells out what it actually sweeps:
//
//   sweep::SweepGrid grid;
//   grid.base.total_rounds = 280;
//   grid.degrees = {6, 8, 10};
//   grid.gamma_syncs = {1, 2, 3, 4};
//   grid.gamma_trains = {1, 2, 3, 4};
//   auto report = sweep::SweepRunner().run(grid);   // 48 trials
//
// Expansion nests, outer to inner: datasets, node_counts, seeds,
// algorithms, degrees, gamma_syncs, gamma_trains, sparse_ks, codecs,
// scenarios, topologies, faults. The trial index is the row order of
// every downstream CSV, independent of which worker finishes first.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "energy/device.hpp"
#include "quant/codec.hpp"
#include "sim/runner.hpp"

namespace skiptrain::sweep {

/// Everything that identifies a dataset build (and therefore a cache
/// entry): workload family, partition size, and the generator seed, which
/// also seeds the shared model initialisation.
struct DataConfig {
  std::string dataset = "cifar";      // "cifar" | "femnist"
  std::size_t nodes = 64;
  std::size_t samples_per_node = 60;  // mean per node for femnist
  std::size_t test_pool = 1200;       // split 50/50 into validation/test
  std::uint64_t seed = 42;

  bool operator==(const DataConfig&) const = default;

  /// Stable string form; doubles as the dataset-cache key.
  [[nodiscard]] std::string key() const;
};

/// Maps "cifar"/"femnist" to the energy workload. Throws on other names.
[[nodiscard]] energy::Workload workload_for(const std::string& dataset);

/// One fully-resolved trial: a dataset build plus the run options.
struct TrialSpec {
  std::size_t index = 0;
  DataConfig data;
  sim::RunOptions options;
};

struct SweepGrid {
  std::string name = "sweep";

  /// Defaults for every knob a trial does not sweep.
  sim::RunOptions base;
  DataConfig data;

  // Axes. An empty axis contributes the single value from base/data.
  std::vector<std::string> datasets;
  std::vector<std::size_t> node_counts;
  std::vector<std::uint64_t> seeds;  // replicate seeds (run + data)
  std::vector<sim::Algorithm> algorithms;
  std::vector<std::size_t> degrees;
  std::vector<std::size_t> gamma_syncs;
  std::vector<std::size_t> gamma_trains;
  std::vector<std::size_t> sparse_ks;
  std::vector<quant::Codec> codecs;  // exchange wire formats
  // Named energy-harvesting/churn scenarios (scenario::make_config
  // tokens: "none", "solar", "churn", "trace:<path>").
  std::vector<std::string> scenarios;
  // Gossip-graph representations (graph::TopologySpec tokens: "dense",
  // "kregular:<k>", "csr:<path>").
  std::vector<std::string> topologies;
  // Fault-plan specs (fault::make_plan tokens: "none",
  // "drop:0.05,corrupt:0.01,crash:0.004", ...).
  std::vector<std::string> faults;

  /// When set, each trial's budget_scale becomes total_rounds divided by
  /// the workload's paper horizon, so per-device budgets bind at the same
  /// proportion of a scaled run as in the paper (what every bench harness
  /// did by hand via options_from_flags).
  bool scale_budgets_to_paper = false;

  /// Sweep-session checkpoint settings from config files (`checkpoint-dir`
  /// / `checkpoint-every` / `resume` keys) — not grid axes; they map onto
  /// SweepOptions (CLI flags override them in sweep_main).
  std::string checkpoint_dir{};
  std::size_t checkpoint_every = 0;
  bool resume = false;
  /// Per-trial fleet-image generations to retain (`keep-generations` key);
  /// a resume falls back to the newest generation that validates.
  std::size_t keep_generations = 1;

  /// Applied to each expanded trial (before budget scaling, so it may
  /// adjust total_rounds); lets callers couple axes that a cross product
  /// cannot express (e.g. the tuned (Γtrain, Γsync) pair per topology
  /// degree). Must be a pure function of the spec for the sweep to stay
  /// deterministic.
  std::function<void(TrialSpec&)> finalize;

  [[nodiscard]] std::size_t trial_count() const;

  /// Expands the cross product in deterministic nesting order.
  [[nodiscard]] std::vector<TrialSpec> expand() const;
};

}  // namespace skiptrain::sweep
