// Thread-safe, order-preserving collection of sweep trial results.
//
// Workers record results as trials finish (any order); the sink slots each
// one at its trial index, so the final rows — and therefore the CSV and
// the rendered table — are in grid-expansion order regardless of worker
// count or completion interleaving. Failures are first-class rows, never
// swallowed: a failed trial carries its error text and is counted.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "sim/runner.hpp"
#include "sweep/grid.hpp"

namespace skiptrain::sweep {

enum class TrialStatus { kOk, kFailed };

struct TrialResult {
  TrialSpec spec;
  TrialStatus status = TrialStatus::kOk;
  std::string error;            // what() of the trial's exception
  sim::ExperimentResult result; // valid when status == kOk
  double wall_seconds = 0.0;    // per-trial runtime (not written to CSV)

  bool ok() const { return status == TrialStatus::kOk; }
};

class ResultSink {
 public:
  explicit ResultSink(std::size_t expected_trials);

  /// Slots `result` at result.spec.index. Thread-safe.
  void record(TrialResult result);

  std::size_t recorded() const;
  std::size_t failures() const;

  /// Rows in trial-index order. Only meaningful once every expected trial
  /// has been recorded (the runner guarantees this before reading).
  std::vector<TrialResult> take_rows();

  /// Summary-CSV schema shared by the sink and SweepReport. Deliberately
  /// excludes wall-clock so the bytes are reproducible run-to-run. The
  /// codec, scenario, topology, and faults columns exist only when
  /// requested: write_summary_csv includes each iff some row uses a
  /// non-identity codec / a non-"none" scenario / a non-dense topology /
  /// a non-"none" fault plan, so grids that never touch those axes keep
  /// their pre-existing bytes exactly. The scenario flag also adds an
  /// availability column (fraction of node-rounds the fleet was up); the
  /// faults flag also adds a delivery_rate column (fraction of attempted
  /// deliveries that arrived intact).
  static const std::vector<std::string>& csv_header(
      bool include_codec = false, bool include_scenario = false,
      bool include_topology = false, bool include_faults = false);
  static std::vector<std::string> csv_row(const TrialResult& row,
                                          bool include_codec = false,
                                          bool include_scenario = false,
                                          bool include_topology = false,
                                          bool include_faults = false);

 private:
  mutable std::mutex mutex_;
  std::vector<TrialResult> rows_;
  std::vector<char> present_;
  std::size_t recorded_ = 0;
  std::size_t failures_ = 0;
};

/// Writes rows (trial-index order) to `path` using the sink schema.
void write_summary_csv(const std::string& path,
                       const std::vector<TrialResult>& rows);

/// Renders the rows as an aligned console table.
[[nodiscard]] std::string render_summary_table(
    const std::vector<TrialResult>& rows);

}  // namespace skiptrain::sweep
