#include "sweep/config.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "fault/fault.hpp"
#include "graph/sparse.hpp"
#include "quant/codec.hpp"
#include "scenario/scenario.hpp"

namespace skiptrain::sweep {

std::pair<std::size_t, std::size_t> tuned_gammas(std::size_t degree) {
  if (degree <= 6) return {4, 4};
  if (degree <= 8) return {3, 3};
  return {4, 2};
}

sim::Algorithm parse_algorithm(const std::string& name) {
  if (name == "dpsgd") return sim::Algorithm::kDpsgd;
  if (name == "dpsgd-allreduce") return sim::Algorithm::kDpsgdAllReduce;
  if (name == "skiptrain") return sim::Algorithm::kSkipTrain;
  if (name == "skiptrain-constrained") {
    return sim::Algorithm::kSkipTrainConstrained;
  }
  if (name == "greedy") return sim::Algorithm::kGreedy;
  if (name == "skiptrain-harvest") return sim::Algorithm::kSkipTrainHarvest;
  if (name == "deal") return sim::Algorithm::kDealDecremental;
  throw std::invalid_argument(
      "parse_algorithm: unknown algorithm '" + name +
      "' (expected dpsgd|dpsgd-allreduce|skiptrain|skiptrain-constrained|"
      "greedy|skiptrain-harvest|deal)");
}

const char* algorithm_token(sim::Algorithm algorithm) {
  switch (algorithm) {
    case sim::Algorithm::kDpsgd:
      return "dpsgd";
    case sim::Algorithm::kDpsgdAllReduce:
      return "dpsgd-allreduce";
    case sim::Algorithm::kSkipTrain:
      return "skiptrain";
    case sim::Algorithm::kSkipTrainConstrained:
      return "skiptrain-constrained";
    case sim::Algorithm::kGreedy:
      return "greedy";
    case sim::Algorithm::kSkipTrainHarvest:
      return "skiptrain-harvest";
    case sim::Algorithm::kDealDecremental:
      return "deal";
  }
  return "?";
}

namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

bool all_digits(const std::string& text) {
  return !text.empty() &&
         std::all_of(text.begin(), text.end(), [](char c) {
           return std::isdigit(static_cast<unsigned char>(c)) != 0;
         });
}

std::uint64_t parse_uint(const std::string& text, const std::string& key) {
  // Digits only — std::stoull would silently wrap "-1" to 2^64-1.
  if (!all_digits(text)) {
    throw std::invalid_argument("sweep config: key '" + key +
                                "' expects a non-negative integer, got '" +
                                text + "'");
  }
  try {
    return static_cast<std::uint64_t>(std::stoull(text));
  } catch (const std::exception&) {
    throw std::invalid_argument("sweep config: key '" + key +
                                "' expects a non-negative integer, got '" +
                                text + "'");
  }
}

bool parse_bool(const std::string& text, const std::string& key) {
  if (text == "1" || text == "true" || text == "yes" || text == "on") {
    return true;
  }
  if (text == "0" || text == "false" || text == "no" || text == "off") {
    return false;
  }
  throw std::invalid_argument("sweep config: key '" + key +
                              "' expects a boolean, got '" + text + "'");
}

template <typename T>
std::vector<T> parse_uint_list(const std::string& text,
                               const std::string& key) {
  std::vector<T> values;
  for (const std::string& token : split_list(text)) {
    values.push_back(static_cast<T>(parse_uint(token, key)));
  }
  return values;
}

/// Fault-plan specs are comma-structured themselves (drop:P,corrupt:P),
/// so the faults axis separates its values with ';' instead of ','.
std::vector<std::string> split_semicolon_list(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t sep = text.find(';', start);
    const std::string raw =
        trim(sep == std::string::npos ? text.substr(start)
                                      : text.substr(start, sep - start));
    if (!raw.empty()) tokens.push_back(raw);
    if (sep == std::string::npos) break;
    start = sep + 1;
  }
  return tokens;
}

std::vector<std::string> dataset_axis(const std::string& value) {
  if (value == "both") return {"cifar", "femnist"};
  std::vector<std::string> datasets = split_list(value);
  for (const std::string& dataset : datasets) {
    (void)workload_for(dataset);  // validates the name
  }
  return datasets;
}

std::vector<std::size_t> gamma_range(std::size_t gamma_max) {
  std::vector<std::size_t> gammas(std::max<std::size_t>(gamma_max, 1));
  std::iota(gammas.begin(), gammas.end(), std::size_t{1});
  return gammas;
}

/// Resolves the scalar PresetParams knobs common to every preset.
SweepGrid preset_base(const PresetParams& params, std::size_t default_nodes,
                      std::size_t default_rounds) {
  SweepGrid grid;
  grid.data.nodes = params.full ? 256
                    : params.nodes != 0 ? params.nodes
                                        : default_nodes;
  grid.data.seed = params.seed;
  grid.base.total_rounds =
      params.rounds != 0 ? params.rounds : default_rounds;
  grid.base.local_steps = params.local_steps;
  grid.base.batch_size = params.batch;
  grid.base.learning_rate = static_cast<float>(params.learning_rate);
  grid.base.eval_max_samples = params.eval_samples;
  grid.base.seed = params.seed;
  // Budgets bind at the same proportion of a scaled run as in the paper;
  // the hand-rolled harnesses did this via options_from_flags.
  grid.scale_budgets_to_paper = true;
  return grid;
}

/// At --full scale the horizon is the workload's paper horizon (T = 1000
/// for CIFAR-10, 3000 for FEMNIST), which the cross product cannot vary
/// per dataset — so it is applied per trial.
void apply_paper_horizon(TrialSpec& spec) {
  spec.options.total_rounds =
      energy::workload_spec(spec.options.workload).total_rounds;
}

bool uses_gammas(sim::Algorithm algorithm) {
  return algorithm == sim::Algorithm::kSkipTrain ||
         algorithm == sim::Algorithm::kSkipTrainConstrained;
}

void apply_tuned_gammas(TrialSpec& spec) {
  if (!uses_gammas(spec.options.algorithm)) return;
  const auto [gamma_train, gamma_sync] = tuned_gammas(spec.options.degree);
  spec.options.gamma_train = gamma_train;
  spec.options.gamma_sync = gamma_sync;
}

}  // namespace

SweepGrid make_preset(const std::string& name, const PresetParams& params) {
  const bool full = params.full;
  const std::size_t eval_every = params.eval_every;  // 0 = preset cadence
  if (name == "fig3") {
    SweepGrid grid = preset_base(params, /*nodes=*/32, /*rounds=*/280);
    grid.name = "fig3";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "cifar" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrain};
    grid.degrees = {6, 8, 10};
    grid.gamma_syncs = gamma_range(params.gamma_max);
    grid.gamma_trains = gamma_range(params.gamma_max);
    grid.base.eval_on_validation = true;  // the paper tunes on validation
    grid.finalize = [full, eval_every](TrialSpec& spec) {
      if (full) apply_paper_horizon(spec);
      spec.options.eval_every =
          eval_every != 0 ? eval_every
                          : spec.options.total_rounds;  // endpoint only
    };
    return grid;
  }
  if (name == "fig5") {
    SweepGrid grid = preset_base(params, /*nodes=*/64, /*rounds=*/200);
    grid.name = "fig5";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "both" : params.dataset);
    grid.algorithms = {sim::Algorithm::kDpsgd, sim::Algorithm::kSkipTrain};
    grid.degrees = {6, 8, 10};
    grid.finalize = [full, eval_every](TrialSpec& spec) {
      if (full) apply_paper_horizon(spec);
      apply_tuned_gammas(spec);
      spec.options.eval_every =
          eval_every != 0
              ? eval_every
              : std::max<std::size_t>(spec.options.total_rounds / 10, 1);
    };
    return grid;
  }
  if (name == "fig6") {
    SweepGrid grid = preset_base(params, /*nodes=*/64, /*rounds=*/200);
    grid.name = "fig6";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "cifar" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrainConstrained,
                       sim::Algorithm::kGreedy, sim::Algorithm::kDpsgd};
    grid.degrees = {6, 8, 10};
    grid.finalize = [full, eval_every](TrialSpec& spec) {
      if (full) apply_paper_horizon(spec);
      apply_tuned_gammas(spec);
      spec.options.eval_every =
          eval_every != 0
              ? eval_every
              : std::max<std::size_t>(spec.options.total_rounds / 12, 1);
    };
    return grid;
  }
  if (name == "table3") {
    SweepGrid grid = preset_base(params, /*nodes=*/64, /*rounds=*/200);
    grid.name = "table3";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "both" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrain, sim::Algorithm::kDpsgd};
    grid.degrees = {6, 8, 10};
    grid.finalize = [full, eval_every](TrialSpec& spec) {
      if (full) apply_paper_horizon(spec);
      apply_tuned_gammas(spec);
      spec.options.eval_every =
          eval_every != 0 ? eval_every
                          : spec.options.total_rounds;  // endpoint only
    };
    return grid;
  }
  if (name == "quant") {
    // Codec × Γ grid (the quantized-exchange tuning sweep): does a cheaper
    // wire format change which (Γtrain, Γsync) schedule wins, and what
    // does each codec cost in accuracy at the tuned schedule?
    SweepGrid grid = preset_base(params, /*nodes=*/32, /*rounds=*/160);
    grid.name = "quant";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "cifar" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrain};
    grid.degrees = {6};
    grid.gamma_syncs = gamma_range(params.gamma_max);
    grid.gamma_trains = gamma_range(params.gamma_max);
    grid.codecs = quant::all_codecs();
    grid.finalize = [full, eval_every](TrialSpec& spec) {
      if (full) apply_paper_horizon(spec);
      spec.options.eval_every =
          eval_every != 0 ? eval_every
                          : spec.options.total_rounds;  // endpoint only
    };
    return grid;
  }
  if (name == "smartphone") {
    SweepGrid grid = preset_base(params, /*nodes=*/64, /*rounds=*/160);
    grid.name = "smartphone";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "cifar" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrainConstrained,
                       sim::Algorithm::kGreedy, sim::Algorithm::kDpsgd};
    grid.degrees = {6};
    grid.gamma_trains = {4};
    grid.gamma_syncs = {4};
    grid.base.eval_every = eval_every != 0 ? eval_every : 32;
    if (full) grid.finalize = apply_paper_horizon;
    return grid;
  }
  if (name == "solar_sensor_fleet") {
    // Harvest-aware frontier: does riding the diurnal harvest wave beat a
    // fixed Γ-schedule when batteries are finite — and what does the
    // always-powered paper setting lose once the sun sets?
    SweepGrid grid = preset_base(params, /*nodes=*/32, /*rounds=*/96);
    grid.name = "solar_sensor_fleet";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "cifar" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrain,
                       sim::Algorithm::kSkipTrainHarvest,
                       sim::Algorithm::kDpsgd};
    grid.degrees = {6};
    grid.gamma_trains = {4};
    grid.gamma_syncs = {4};
    grid.scenarios = {"none", "solar"};
    grid.base.eval_every = eval_every != 0 ? eval_every : 24;
    if (full) grid.finalize = apply_paper_horizon;
    return grid;
  }
  if (name == "large_fleet") {
    // Scale-out smoke: a 10k-node fleet on the implicit k-regular topology
    // exercises the row-sharded gossip path end to end (O(n·k) topology
    // memory, sparse comm billing) at a size the dense adjacency could
    // never reach. The workload knobs are deliberately tiny — the point is
    // the n, not the learning curve.
    SweepGrid grid = preset_base(params, /*nodes=*/10000, /*rounds=*/4);
    grid.name = "large_fleet";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "cifar" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrain};
    grid.degrees = {6};
    grid.gamma_trains = {2};
    grid.gamma_syncs = {2};
    grid.topologies = {"kregular:6"};
    grid.base.local_steps = 1;
    grid.base.batch_size = 4;
    grid.data.samples_per_node = 8;
    grid.data.test_pool = 400;
    grid.base.eval_max_samples = 64;
    grid.finalize = [eval_every](TrialSpec& spec) {
      spec.options.eval_every =
          eval_every != 0 ? eval_every
                          : spec.options.total_rounds;  // endpoint only
    };
    return grid;
  }
  if (name == "churning_phone_fleet") {
    // Churn stress case: tight batteries and heavy weather force frequent
    // mid-run dropout/re-entry. Compares budget-aware participation
    // policies under identical churn.
    SweepGrid grid = preset_base(params, /*nodes=*/32, /*rounds=*/96);
    grid.name = "churning_phone_fleet";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "cifar" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrainConstrained,
                       sim::Algorithm::kDealDecremental,
                       sim::Algorithm::kGreedy};
    grid.degrees = {6};
    grid.gamma_trains = {4};
    grid.gamma_syncs = {4};
    grid.scenarios = {"churn"};
    grid.base.eval_every = eval_every != 0 ? eval_every : 24;
    if (full) grid.finalize = apply_paper_horizon;
    return grid;
  }
  if (name == "chaotic_fleet") {
    // Robustness stress case: the churn fleet with the full fault menu on
    // top — lossy links, CRC-rejected corruption, duplicate deliveries,
    // crash-restarts, and checkpoint-write failures — against the same
    // configuration with faults off. The chaos is seed-derived, so every
    // trial stays bit-identical across thread counts and kill/resume.
    SweepGrid grid = preset_base(params, /*nodes=*/32, /*rounds=*/96);
    grid.name = "chaotic_fleet";
    grid.datasets =
        dataset_axis(params.dataset.empty() ? "cifar" : params.dataset);
    grid.algorithms = {sim::Algorithm::kSkipTrain,
                       sim::Algorithm::kSkipTrainConstrained};
    grid.degrees = {6};
    grid.gamma_trains = {4};
    grid.gamma_syncs = {4};
    grid.scenarios = {"churn"};
    grid.faults = {"none",
                   "drop:0.05,corrupt:0.01,dup:0.02,crash:0.004,io:0.1"};
    grid.keep_generations = 3;
    grid.base.eval_every = eval_every != 0 ? eval_every : 24;
    if (full) grid.finalize = apply_paper_horizon;
    return grid;
  }
  throw std::invalid_argument(
      "make_preset: unknown preset '" + name +
      "' (known: fig3 fig5 fig6 table3 quant smartphone solar_sensor_fleet "
      "churning_phone_fleet chaotic_fleet large_fleet)");
}

const std::vector<std::string>& preset_names() {
  static const std::vector<std::string> kNames = {
      "fig3",  "fig5",       "fig6",
      "table3", "quant",      "smartphone",
      "solar_sensor_fleet",   "churning_phone_fleet",
      "chaotic_fleet",        "large_fleet"};
  return kNames;
}

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string raw =
        trim(comma == std::string::npos ? text.substr(start)
                                        : text.substr(start, comma - start));
    if (!raw.empty()) {
      const std::size_t dots = raw.find("..");
      bool expanded = false;
      if (dots != std::string::npos && dots > 0 &&
          dots + 2 < raw.size()) {
        const std::string lo_text = trim(raw.substr(0, dots));
        const std::string hi_text = trim(raw.substr(dots + 2));
        const bool numeric = all_digits(lo_text) && all_digits(hi_text);
        if (numeric) {
          const std::uint64_t lo = parse_uint(lo_text, "range");
          const std::uint64_t hi = parse_uint(hi_text, "range");
          if (lo > hi) {
            throw std::invalid_argument("sweep config: descending range '" +
                                        raw + "'");
          }
          for (std::uint64_t v = lo; v <= hi; ++v) {
            tokens.push_back(std::to_string(v));
          }
          expanded = true;
        }
      }
      if (!expanded) tokens.push_back(raw);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return tokens;
}

SweepGrid grid_from_kv(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  SweepGrid grid;
  bool tuned = false;
  for (const auto& [key, value] : pairs) {
    if (key == "name") {
      grid.name = value;
    } else if (key == "dataset" || key == "datasets") {
      grid.datasets = dataset_axis(value);
    } else if (key == "nodes") {
      grid.node_counts = parse_uint_list<std::size_t>(value, key);
    } else if (key == "seeds" || key == "seed") {
      grid.seeds = parse_uint_list<std::uint64_t>(value, key);
    } else if (key == "algorithms" || key == "algorithm") {
      grid.algorithms.clear();
      for (const std::string& token : split_list(value)) {
        grid.algorithms.push_back(parse_algorithm(token));
      }
    } else if (key == "degrees" || key == "degree") {
      grid.degrees = parse_uint_list<std::size_t>(value, key);
    } else if (key == "gamma-train" || key == "gamma-trains") {
      grid.gamma_trains = parse_uint_list<std::size_t>(value, key);
    } else if (key == "gamma-sync" || key == "gamma-syncs") {
      grid.gamma_syncs = parse_uint_list<std::size_t>(value, key);
    } else if (key == "sparse-k" || key == "sparse-ks") {
      grid.sparse_ks = parse_uint_list<std::size_t>(value, key);
    } else if (key == "codec" || key == "codecs") {
      grid.codecs.clear();
      for (const std::string& token : split_list(value)) {
        grid.codecs.push_back(quant::parse_codec(token));
      }
    } else if (key == "scenario" || key == "scenarios") {
      grid.scenarios.clear();
      for (const std::string& token : split_list(value)) {
        (void)scenario::make_config(token);  // validates the name
        grid.scenarios.push_back(token);
      }
    } else if (key == "topology" || key == "topologies") {
      grid.topologies.clear();
      for (const std::string& token : split_list(value)) {
        (void)graph::TopologySpec::parse(token);  // validates the token
        grid.topologies.push_back(token);
      }
    } else if (key == "fault" || key == "faults") {
      // ';'-separated axis: faults = none;drop:0.05,corrupt:0.01
      grid.faults.clear();
      for (const std::string& token : split_semicolon_list(value)) {
        fault::make_plan(token).validate();  // validates the spec
        grid.faults.push_back(token);
      }
    } else if (key == "keep-generations" || key == "keep_generations") {
      grid.keep_generations =
          static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "rounds") {
      grid.base.total_rounds =
          static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "local-steps") {
      grid.base.local_steps =
          static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "batch") {
      grid.base.batch_size = static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "lr") {
      try {
        grid.base.learning_rate = std::stof(value);
      } catch (const std::exception&) {
        throw std::invalid_argument("sweep config: key 'lr' expects a "
                                    "number, got '" + value + "'");
      }
    } else if (key == "eval-every") {
      grid.base.eval_every = static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "eval-samples") {
      grid.base.eval_max_samples =
          static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "samples-per-node") {
      grid.data.samples_per_node =
          static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "test-pool") {
      grid.data.test_pool = static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "eval-on-validation") {
      grid.base.eval_on_validation = parse_bool(value, key);
    } else if (key == "track-consensus") {
      grid.base.track_consensus = parse_bool(value, key);
    } else if (key == "evaluate-allreduce") {
      grid.base.evaluate_allreduce = parse_bool(value, key);
    } else if (key == "scale-budgets") {
      grid.scale_budgets_to_paper = parse_bool(value, key);
    } else if (key == "checkpoint-dir" || key == "checkpoint_dir") {
      grid.checkpoint_dir = value;
    } else if (key == "checkpoint-every" || key == "checkpoint_every") {
      grid.checkpoint_every = static_cast<std::size_t>(parse_uint(value, key));
    } else if (key == "resume") {
      grid.resume = parse_bool(value, key);
    } else if (key == "tuned-gammas") {
      tuned = parse_bool(value, key);
    } else {
      throw std::invalid_argument("sweep config: unknown key '" + key + "'");
    }
  }
  if (tuned) grid.finalize = apply_tuned_gammas;
  return grid;
}

SweepGrid load_grid_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("load_grid_file: cannot open '" + path + "'");
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.erase(comment);
    const std::string text = trim(line);
    if (text.empty()) continue;
    const std::size_t equals = text.find('=');
    if (equals == std::string::npos) {
      throw std::runtime_error("load_grid_file: " + path + ":" +
                               std::to_string(line_number) +
                               ": expected 'key = value'");
    }
    pairs.emplace_back(trim(text.substr(0, equals)),
                       trim(text.substr(equals + 1)));
  }
  return grid_from_kv(pairs);
}

}  // namespace skiptrain::sweep
