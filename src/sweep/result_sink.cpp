#include "sweep/result_sink.hpp"

#include <stdexcept>

#include "quant/codec.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace skiptrain::sweep {

ResultSink::ResultSink(std::size_t expected_trials)
    : rows_(expected_trials), present_(expected_trials, 0) {}

void ResultSink::record(TrialResult result) {
  std::lock_guard lock(mutex_);
  const std::size_t index = result.spec.index;
  if (index >= rows_.size()) {
    throw std::out_of_range("ResultSink::record: trial index " +
                            std::to_string(index) + " >= expected " +
                            std::to_string(rows_.size()));
  }
  if (present_[index]) {
    throw std::logic_error("ResultSink::record: duplicate trial index " +
                           std::to_string(index));
  }
  present_[index] = 1;
  ++recorded_;
  if (!result.ok()) ++failures_;
  rows_[index] = std::move(result);
}

std::size_t ResultSink::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::size_t ResultSink::failures() const {
  std::lock_guard lock(mutex_);
  return failures_;
}

std::vector<TrialResult> ResultSink::take_rows() {
  std::lock_guard lock(mutex_);
  // A slot can only be empty if its worker died before record() (e.g. the
  // task threw past run_trial's catch); surface that as a failure rather
  // than a default-constructed "ok" row.
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!present_[i]) {
      rows_[i].spec.index = i;
      rows_[i].status = TrialStatus::kFailed;
      rows_[i].error = "trial result missing (worker aborted before record)";
      ++failures_;
    }
  }
  return std::move(rows_);
}

const std::vector<std::string>& ResultSink::csv_header(bool include_codec) {
  static const std::vector<std::string> kHeader = {
      "trial",        "dataset",     "nodes",        "algorithm",
      "degree",       "gamma_train", "gamma_sync",   "sparse_k",
      "seed",         "rounds",      "status",       "final_accuracy",
      "std_accuracy", "best_accuracy", "train_energy_wh",
      "comm_energy_wh", "fleet_budget_wh", "training_rounds",
      "final_consensus", "error"};
  static const std::vector<std::string> kHeaderWithCodec = [] {
    std::vector<std::string> header = kHeader;
    header.insert(header.begin() + 8, "codec");  // after sparse_k
    return header;
  }();
  return include_codec ? kHeaderWithCodec : kHeader;
}

std::vector<std::string> ResultSink::csv_row(const TrialResult& row,
                                             bool include_codec) {
  const TrialSpec& spec = row.spec;
  std::vector<std::string> cells;
  cells.reserve(csv_header(include_codec).size());
  cells.push_back(std::to_string(spec.index));
  cells.push_back(spec.data.dataset);
  cells.push_back(std::to_string(spec.data.nodes));
  cells.push_back(sim::algorithm_name(spec.options.algorithm));
  cells.push_back(std::to_string(spec.options.degree));
  cells.push_back(std::to_string(spec.options.gamma_train));
  cells.push_back(std::to_string(spec.options.gamma_sync));
  cells.push_back(std::to_string(spec.options.sparse_exchange_k));
  if (include_codec) {
    cells.push_back(quant::codec_token(spec.options.exchange_codec));
  }
  cells.push_back(std::to_string(spec.options.seed));
  cells.push_back(std::to_string(spec.options.total_rounds));
  cells.push_back(row.ok() ? "ok" : "failed");
  if (row.ok()) {
    cells.push_back(util::format_double(row.result.final_mean_accuracy));
    cells.push_back(util::format_double(row.result.final_std_accuracy));
    cells.push_back(util::format_double(row.result.best_mean_accuracy));
    cells.push_back(util::format_double(row.result.total_training_wh));
    cells.push_back(util::format_double(row.result.total_comm_wh));
    cells.push_back(util::format_double(row.result.fleet_budget_wh));
    cells.push_back(std::to_string(row.result.coordinated_training_rounds));
    // Populated only when the grid tracks consensus.
    cells.push_back(row.spec.options.track_consensus &&
                            !row.result.recorder.empty()
                        ? util::format_double(
                              row.result.recorder.last().consensus)
                        : "");
    cells.push_back("");
  } else {
    for (int i = 0; i < 8; ++i) cells.push_back("");
    cells.push_back(row.error);
  }
  return cells;
}

void write_summary_csv(const std::string& path,
                       const std::vector<TrialResult>& rows) {
  // The codec column appears only when a trial actually exercises a
  // non-identity codec — a pure function of the rows, so the bytes stay
  // deterministic AND pre-quantization grids keep their exact schema.
  bool include_codec = false;
  for (const TrialResult& row : rows) {
    if (row.spec.options.exchange_codec != quant::Codec::kIdentity) {
      include_codec = true;
      break;
    }
  }
  util::CsvWriter csv(path, ResultSink::csv_header(include_codec));
  for (const TrialResult& row : rows) {
    csv.write_row(ResultSink::csv_row(row, include_codec));
  }
}

std::string render_summary_table(const std::vector<TrialResult>& rows) {
  util::TablePrinter table({"trial", "dataset", "algorithm", "deg", "Γt",
                            "Γs", "seed", "status", "acc%", "train Wh"});
  for (const TrialResult& row : rows) {
    const TrialSpec& spec = row.spec;
    table.add_row({std::to_string(spec.index), spec.data.dataset,
                   sim::algorithm_name(spec.options.algorithm),
                   std::to_string(spec.options.degree),
                   std::to_string(spec.options.gamma_train),
                   std::to_string(spec.options.gamma_sync),
                   std::to_string(spec.options.seed),
                   row.ok() ? "ok" : "FAILED",
                   row.ok()
                       ? util::fixed(100.0 * row.result.final_mean_accuracy, 2)
                       : "-",
                   row.ok() ? util::fixed(row.result.total_training_wh, 2)
                            : row.error});
  }
  return table.render();
}

}  // namespace skiptrain::sweep
