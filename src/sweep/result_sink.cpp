#include "sweep/result_sink.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/sparse.hpp"
#include "quant/codec.hpp"
#include "scenario/scenario.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace skiptrain::sweep {

ResultSink::ResultSink(std::size_t expected_trials)
    : rows_(expected_trials), present_(expected_trials, 0) {}

void ResultSink::record(TrialResult result) {
  std::lock_guard lock(mutex_);
  const std::size_t index = result.spec.index;
  if (index >= rows_.size()) {
    throw std::out_of_range("ResultSink::record: trial index " +
                            std::to_string(index) + " >= expected " +
                            std::to_string(rows_.size()));
  }
  if (present_[index]) {
    throw std::logic_error("ResultSink::record: duplicate trial index " +
                           std::to_string(index));
  }
  present_[index] = 1;
  ++recorded_;
  if (!result.ok()) ++failures_;
  rows_[index] = std::move(result);
}

std::size_t ResultSink::recorded() const {
  std::lock_guard lock(mutex_);
  return recorded_;
}

std::size_t ResultSink::failures() const {
  std::lock_guard lock(mutex_);
  return failures_;
}

std::vector<TrialResult> ResultSink::take_rows() {
  std::lock_guard lock(mutex_);
  // A slot can only be empty if its worker died before record() (e.g. the
  // task threw past run_trial's catch); surface that as a failure rather
  // than a default-constructed "ok" row.
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    if (!present_[i]) {
      rows_[i].spec.index = i;
      rows_[i].status = TrialStatus::kFailed;
      rows_[i].error = "trial result missing (worker aborted before record)";
      ++failures_;
    }
  }
  return std::move(rows_);
}

const std::vector<std::string>& ResultSink::csv_header(
    bool include_codec, bool include_scenario, bool include_topology,
    bool include_faults) {
  static const auto make = [](bool codec, bool scenario, bool topology,
                              bool faults) {
    std::vector<std::string> header = {
        "trial",        "dataset",     "nodes",        "algorithm",
        "degree",       "gamma_train", "gamma_sync",   "sparse_k",
        "seed",         "rounds",      "status",       "final_accuracy",
        "std_accuracy", "best_accuracy", "train_energy_wh",
        "comm_energy_wh", "fleet_budget_wh", "training_rounds",
        "final_consensus", "error"};
    // Value columns slot in just before final_consensus, anchored by name
    // so the optional columns can never collide on a fixed index; the
    // resulting order is training_rounds, [availability], [delivery_rate].
    const auto value_insert = [&header](const char* name) {
      header.insert(std::find(header.begin(), header.end(),
                              std::string("final_consensus")),
                    name);
    };
    if (scenario) value_insert("availability");
    if (faults) value_insert("delivery_rate");
    // Spec-side inserts all land at index 8 (right after sparse_k) and run
    // innermost-axis-first, so the columns come out ..., sparse_k,
    // topology, [codec], scenario, faults, seed, ...
    if (faults) header.insert(header.begin() + 8, "faults");
    if (scenario) header.insert(header.begin() + 8, "scenario");
    if (codec) header.insert(header.begin() + 8, "codec");
    if (topology) header.insert(header.begin() + 8, "topology");
    return header;
  };
  static const std::vector<std::string> kCombos[2][2][2][2] = {
      {{{make(false, false, false, false), make(false, false, false, true)},
        {make(false, false, true, false), make(false, false, true, true)}},
       {{make(false, true, false, false), make(false, true, false, true)},
        {make(false, true, true, false), make(false, true, true, true)}}},
      {{{make(true, false, false, false), make(true, false, false, true)},
        {make(true, false, true, false), make(true, false, true, true)}},
       {{make(true, true, false, false), make(true, true, false, true)},
        {make(true, true, true, false), make(true, true, true, true)}}}};
  return kCombos[include_codec ? 1 : 0][include_scenario ? 1 : 0]
                [include_topology ? 1 : 0][include_faults ? 1 : 0];
}

std::vector<std::string> ResultSink::csv_row(const TrialResult& row,
                                             bool include_codec,
                                             bool include_scenario,
                                             bool include_topology,
                                             bool include_faults) {
  const TrialSpec& spec = row.spec;
  std::vector<std::string> cells;
  cells.reserve(csv_header(include_codec, include_scenario, include_topology,
                           include_faults)
                    .size());
  cells.push_back(std::to_string(spec.index));
  cells.push_back(spec.data.dataset);
  cells.push_back(std::to_string(spec.data.nodes));
  cells.push_back(sim::algorithm_name(spec.options.algorithm));
  cells.push_back(std::to_string(spec.options.degree));
  cells.push_back(std::to_string(spec.options.gamma_train));
  cells.push_back(std::to_string(spec.options.gamma_sync));
  cells.push_back(std::to_string(spec.options.sparse_exchange_k));
  if (include_topology) {
    cells.push_back(graph::topology_token(spec.options.topology));
  }
  if (include_codec) {
    cells.push_back(quant::codec_token(spec.options.exchange_codec));
  }
  if (include_scenario) {
    cells.push_back(scenario::scenario_token(spec.options.scenario));
  }
  if (include_faults) {
    cells.push_back(spec.options.faults.empty() ? "none" : spec.options.faults);
  }
  cells.push_back(std::to_string(spec.options.seed));
  cells.push_back(std::to_string(spec.options.total_rounds));
  cells.push_back(row.ok() ? "ok" : "failed");
  if (row.ok()) {
    cells.push_back(util::format_double(row.result.final_mean_accuracy));
    cells.push_back(util::format_double(row.result.final_std_accuracy));
    cells.push_back(util::format_double(row.result.best_mean_accuracy));
    cells.push_back(util::format_double(row.result.total_training_wh));
    cells.push_back(util::format_double(row.result.total_comm_wh));
    cells.push_back(util::format_double(row.result.fleet_budget_wh));
    cells.push_back(std::to_string(row.result.coordinated_training_rounds));
    if (include_scenario) {
      cells.push_back(util::format_double(row.result.mean_availability));
    }
    if (include_faults) {
      cells.push_back(util::format_double(row.result.delivery_rate));
    }
    // Populated only when the grid tracks consensus.
    cells.push_back(row.spec.options.track_consensus &&
                            !row.result.recorder.empty()
                        ? util::format_double(
                              row.result.recorder.last().consensus)
                        : "");
    cells.push_back("");
  } else {
    const int value_columns =
        8 + (include_scenario ? 1 : 0) + (include_faults ? 1 : 0);
    for (int i = 0; i < value_columns; ++i) cells.push_back("");
    cells.push_back(row.error);
  }
  return cells;
}

void write_summary_csv(const std::string& path,
                       const std::vector<TrialResult>& rows) {
  // The codec, scenario, and topology columns appear only when some trial
  // actually exercises them — pure functions of the rows, so the bytes
  // stay deterministic AND pre-existing grids keep their exact schema.
  bool include_codec = false;
  bool include_scenario = false;
  bool include_topology = false;
  bool include_faults = false;
  for (const TrialResult& row : rows) {
    if (row.spec.options.exchange_codec != quant::Codec::kIdentity) {
      include_codec = true;
    }
    if (scenario::scenario_token(row.spec.options.scenario) != "none") {
      include_scenario = true;
    }
    if (graph::topology_token(row.spec.options.topology) != "dense") {
      include_topology = true;
    }
    if (!row.spec.options.faults.empty() &&
        row.spec.options.faults != "none") {
      include_faults = true;
    }
  }
  util::CsvWriter csv(path,
                      ResultSink::csv_header(include_codec, include_scenario,
                                             include_topology,
                                             include_faults));
  for (const TrialResult& row : rows) {
    csv.write_row(ResultSink::csv_row(row, include_codec, include_scenario,
                                      include_topology, include_faults));
  }
}

std::string render_summary_table(const std::vector<TrialResult>& rows) {
  util::TablePrinter table({"trial", "dataset", "algorithm", "deg", "Γt",
                            "Γs", "seed", "status", "acc%", "train Wh"});
  for (const TrialResult& row : rows) {
    const TrialSpec& spec = row.spec;
    table.add_row({std::to_string(spec.index), spec.data.dataset,
                   sim::algorithm_name(spec.options.algorithm),
                   std::to_string(spec.options.degree),
                   std::to_string(spec.options.gamma_train),
                   std::to_string(spec.options.gamma_sync),
                   std::to_string(spec.options.seed),
                   row.ok() ? "ok" : "FAILED",
                   row.ok()
                       ? util::fixed(100.0 * row.result.final_mean_accuracy, 2)
                       : "-",
                   row.ok() ? util::fixed(row.result.total_training_wh, 2)
                            : row.error});
  }
  return table.render();
}

}  // namespace skiptrain::sweep
