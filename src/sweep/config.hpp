// Grid construction without writing a binary: named paper presets and a
// key=value config-file format, both producing SweepGrids for SweepRunner.
//
// Config files are line-oriented `key = value` pairs; '#' starts a
// comment. List-valued keys take comma lists and inclusive integer ranges
// ("degrees = 6,8,10", "gamma-train = 1..4"). Example:
//
//   # γ grid on the 8-regular topology, 3 replicate seeds
//   name        = gamma8
//   dataset     = cifar
//   nodes       = 32
//   rounds      = 280
//   algorithms  = skiptrain
//   degrees     = 8
//   gamma-train = 1..4
//   gamma-sync  = 1..4
//   seeds       = 42,43,44
//   codecs      = identity,int8   # exchange wire formats (quant/codec.hpp)
//   scenarios   = none,solar      # harvest/churn settings (scenario/)
//   topologies  = dense,kregular:6  # gossip graphs (graph/sparse.hpp)
//   checkpoint-dir   = ckpt/      # crash-resumable sweep (ckpt/trial_store)
//   checkpoint-every = 25         # in-flight fleet image cadence (rounds)
//   resume           = true       # skip completed trials on rerun
//
// The presets are the single source of truth for the grids behind the
// paper's figure/table harnesses; the bench binaries call make_preset with
// their flag values, and bench/sweep_main exposes the same grids by name.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sweep/grid.hpp"

namespace skiptrain::sweep {

/// Tuned (Γtrain, Γsync) per topology degree from the paper's §4.3 grid
/// search: 6-regular -> (4,4); 8-regular -> (3,3); 10-regular -> (4,2).
[[nodiscard]] std::pair<std::size_t, std::size_t> tuned_gammas(
    std::size_t degree);

/// Parses "dpsgd" | "dpsgd-allreduce" | "skiptrain" |
/// "skiptrain-constrained" | "greedy" | "skiptrain-harvest" | "deal".
/// Throws on anything else.
[[nodiscard]] sim::Algorithm parse_algorithm(const std::string& name);

/// Inverse of parse_algorithm (the config-file token, not the display
/// name from sim::algorithm_name).
[[nodiscard]] const char* algorithm_token(sim::Algorithm algorithm);

/// Shared scalar knobs of the paper presets; defaults mirror the bench
/// harnesses' common flags. 0 / empty means "use the preset's default".
struct PresetParams {
  std::size_t nodes = 0;
  std::size_t rounds = 0;
  std::size_t local_steps = 10;
  std::size_t batch = 16;
  double learning_rate = 0.1;
  std::size_t eval_every = 0;  // 0 = the preset's cadence
  std::size_t eval_samples = 600;
  std::uint64_t seed = 42;
  std::string dataset;        // "" = preset default; "both" allowed
  std::size_t gamma_max = 4;  // fig3's Γ range
  bool full = false;          // paper scale: 256 nodes, paper horizon
};

/// Builds the grid behind a paper harness: "fig3" (γ grid), "fig5"
/// (SkipTrain vs D-PSGD trade-off), "fig6" (energy-constrained
/// comparison), "table3" (energy + accuracy summary), "quant" (exchange
/// codec × γ grid), "smartphone" (the §4.6 example fleet),
/// "solar_sensor_fleet" (harvest-aware vs fixed schedules under a solar
/// scenario), "churning_phone_fleet" (participation policies under
/// battery churn), or "large_fleet" (10k-node implicit k-regular
/// scale-out smoke). Throws std::invalid_argument on unknown names.
[[nodiscard]] SweepGrid make_preset(const std::string& name,
                                    const PresetParams& params = {});

[[nodiscard]] const std::vector<std::string>& preset_names();

/// Builds a grid from parsed key=value pairs. Unknown keys throw.
[[nodiscard]] SweepGrid grid_from_kv(
    const std::vector<std::pair<std::string, std::string>>& pairs);

/// Reads a config file (format above) and builds its grid.
[[nodiscard]] SweepGrid load_grid_file(const std::string& path);

/// Splits a comma list, expanding inclusive "lo..hi" integer ranges.
[[nodiscard]] std::vector<std::string> split_list(const std::string& text);

}  // namespace skiptrain::sweep
