#include "sweep/dataset_cache.hpp"

#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "util/rng.hpp"

namespace skiptrain::sweep {

std::shared_ptr<const SharedWorkload> build_workload(
    const DataConfig& config) {
  auto workload = std::make_shared<SharedWorkload>();
  workload->workload = workload_for(config.dataset);
  if (workload->workload == energy::Workload::kCifar10) {
    data::CifarSynConfig data_config;
    data_config.nodes = config.nodes;
    data_config.samples_per_node = config.samples_per_node;
    data_config.test_pool = config.test_pool;
    data_config.seed = config.seed;
    workload->data = data::make_cifar_synthetic(data_config);
    workload->prototype =
        nn::make_compact_cifar_model(data_config.feature_dim);
  } else {
    data::FemnistSynConfig data_config;
    data_config.nodes = config.nodes;
    data_config.mean_samples_per_node = config.samples_per_node;
    data_config.test_pool = config.test_pool;
    data_config.seed = config.seed;
    workload->data = data::make_femnist_synthetic(data_config);
    workload->prototype =
        nn::make_compact_femnist_model(data_config.feature_dim);
  }
  util::Rng rng(config.seed);
  nn::initialize(workload->prototype, rng);
  return workload;
}

std::shared_ptr<const SharedWorkload> DatasetCache::get(
    const DataConfig& config) {
  const std::string key = config.key();
  std::promise<std::shared_ptr<const SharedWorkload>> promise;
  Entry entry;
  bool is_builder = false;
  {
    std::lock_guard lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
      entry = promise.get_future().share();
      entries_.emplace(key, entry);
      is_builder = true;
    } else {
      entry = it->second;
    }
  }
  if (!is_builder) {
    // Wait outside the lock; rethrows a concurrent builder's failure.
    return entry.get();
  }
  // Build outside the lock; requests for other keys proceed concurrently.
  try {
    auto workload = build_workload(config);
    promise.set_value(workload);
    return workload;
  } catch (...) {
    promise.set_exception(std::current_exception());
    // Only a failed builder erases, and inserts only happen when the key
    // is absent, so this entry is still ours — drop it so a later call
    // can retry the build.
    std::lock_guard lock(mutex_);
    entries_.erase(key);
    throw;
  }
}

std::size_t DatasetCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace skiptrain::sweep
