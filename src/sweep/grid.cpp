#include "sweep/grid.hpp"

#include <stdexcept>

namespace skiptrain::sweep {

std::string DataConfig::key() const {
  return dataset + "/n" + std::to_string(nodes) + "/s" +
         std::to_string(samples_per_node) + "/t" + std::to_string(test_pool) +
         "/seed" + std::to_string(seed);
}

energy::Workload workload_for(const std::string& dataset) {
  if (dataset == "cifar") return energy::Workload::kCifar10;
  if (dataset == "femnist") return energy::Workload::kFemnist;
  throw std::invalid_argument("workload_for: unknown dataset '" + dataset +
                              "' (expected cifar|femnist)");
}

namespace {

/// An axis with no explicit values contributes its single default.
template <typename T>
std::vector<T> axis_or(const std::vector<T>& axis, T fallback) {
  if (!axis.empty()) return axis;
  return {fallback};
}

}  // namespace

std::size_t SweepGrid::trial_count() const {
  std::size_t count = 1;
  const auto mul = [&count](std::size_t axis_size) {
    count *= axis_size == 0 ? 1 : axis_size;
  };
  mul(datasets.size());
  mul(node_counts.size());
  mul(seeds.size());
  mul(algorithms.size());
  mul(degrees.size());
  mul(gamma_syncs.size());
  mul(gamma_trains.size());
  mul(sparse_ks.size());
  mul(codecs.size());
  mul(scenarios.size());
  mul(topologies.size());
  mul(faults.size());
  return count;
}

std::vector<TrialSpec> SweepGrid::expand() const {
  const auto dataset_axis = axis_or(datasets, data.dataset);
  const auto node_axis = axis_or(node_counts, data.nodes);
  const auto seed_axis = axis_or(seeds, base.seed);
  const auto algorithm_axis = axis_or(algorithms, base.algorithm);
  const auto degree_axis = axis_or(degrees, base.degree);
  const auto gamma_sync_axis = axis_or(gamma_syncs, base.gamma_sync);
  const auto gamma_train_axis = axis_or(gamma_trains, base.gamma_train);
  const auto sparse_axis = axis_or(sparse_ks, base.sparse_exchange_k);
  const auto codec_axis = axis_or(codecs, base.exchange_codec);
  const auto scenario_axis = axis_or(scenarios, base.scenario);
  const auto topology_axis = axis_or(topologies, base.topology);
  const auto fault_axis = axis_or(faults, base.faults);

  std::vector<TrialSpec> trials;
  trials.reserve(trial_count());
  for (const auto& dataset : dataset_axis) {
    const energy::Workload workload = workload_for(dataset);
    for (const std::size_t nodes : node_axis) {
      for (const std::uint64_t seed : seed_axis) {
        for (const sim::Algorithm algorithm : algorithm_axis) {
          for (const std::size_t degree : degree_axis) {
            for (const std::size_t gamma_sync : gamma_sync_axis) {
              for (const std::size_t gamma_train : gamma_train_axis) {
                for (const std::size_t sparse_k : sparse_axis) {
                  for (const quant::Codec codec : codec_axis) {
                    for (const std::string& scenario : scenario_axis) {
                      for (const std::string& topology : topology_axis) {
                        for (const std::string& fault_spec : fault_axis) {
                          TrialSpec spec;
                          spec.index = trials.size();
                          spec.data = data;
                          spec.data.dataset = dataset;
                          spec.data.nodes = nodes;
                          spec.data.seed = seed;
                          spec.options = base;
                          spec.options.workload = workload;
                          spec.options.seed = seed;
                          spec.options.algorithm = algorithm;
                          spec.options.degree = degree;
                          spec.options.gamma_sync = gamma_sync;
                          spec.options.gamma_train = gamma_train;
                          spec.options.sparse_exchange_k = sparse_k;
                          spec.options.exchange_codec = codec;
                          spec.options.scenario = scenario;
                          spec.options.topology = topology;
                          spec.options.faults = fault_spec;
                          if (finalize) finalize(spec);
                          if (scale_budgets_to_paper) {
                            spec.options.budget_scale =
                                static_cast<double>(
                                    spec.options.total_rounds) /
                                static_cast<double>(energy::workload_spec(
                                                        workload)
                                                        .total_rounds);
                          }
                          trials.push_back(std::move(spec));
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
  return trials;
}

}  // namespace skiptrain::sweep
