#include "sweep/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <exception>
#include <optional>
#include <thread>

#include "util/thread_pool.hpp"

namespace skiptrain::sweep {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

void SweepReport::write_csv(const std::string& path) const {
  write_summary_csv(path, trials);
}

std::string SweepReport::render_table() const {
  return render_summary_table(trials);
}

const TrialResult* SweepReport::find_trial(const std::string& dataset,
                                           std::size_t degree,
                                           sim::Algorithm algorithm) const {
  return find([&](const TrialResult& trial) {
    return trial.spec.data.dataset == dataset &&
           trial.spec.options.degree == degree &&
           trial.spec.options.algorithm == algorithm;
  });
}

SweepRunner::SweepRunner(SweepOptions options) : options_(options) {}

TrialResult SweepRunner::run_trial(const TrialSpec& spec) {
  const auto start = std::chrono::steady_clock::now();
  TrialResult trial;
  trial.spec = spec;
  try {
    const std::shared_ptr<const SharedWorkload> workload =
        cache_.get(spec.data);
    trial.result = sim::run_experiment(workload->data, workload->prototype,
                                       spec.options);
  } catch (const std::exception& e) {
    trial.status = TrialStatus::kFailed;
    trial.error = e.what();
  } catch (...) {
    trial.status = TrialStatus::kFailed;
    trial.error = "unknown exception";
  }
  trial.wall_seconds = seconds_since(start);
  if (options_.verbose) {
    std::fprintf(stderr, "[sweep] trial %zu/%s %s (%.2fs)%s%s\n", spec.index,
                 spec.data.dataset.c_str(),
                 sim::algorithm_name(spec.options.algorithm),
                 trial.wall_seconds, trial.ok() ? "" : " FAILED: ",
                 trial.ok() ? "" : trial.error.c_str());
  }
  return trial;
}

SweepReport SweepRunner::run(const SweepGrid& grid) {
  const auto start = std::chrono::steady_clock::now();
  const std::vector<TrialSpec> trials = grid.expand();
  ResultSink sink(trials.size());

  if (options_.threads == 1) {
    // Inline execution: the single trial in flight keeps the engine's
    // node-level parallelism.
    for (const TrialSpec& spec : trials) {
      sink.record(run_trial(spec));
    }
  } else {
    const std::size_t hardware =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    // Never more workers than trials (this also tames a nonsense request
    // like size_t(-1) from a mis-cast negative CLI value).
    const std::size_t requested =
        options_.threads != 0 ? options_.threads : hardware;
    const std::size_t workers =
        std::min(requested, std::max<std::size_t>(trials.size(), 1));
    // Pin each trial's node-level loops to its worker only when trial
    // parallelism already saturates the machine; a small grid on a big
    // machine keeps node-level parallelism so surplus cores stay busy.
    const bool pin_serial = workers >= hardware;
    util::ThreadPool pool(workers);
    for (const TrialSpec& spec : trials) {
      pool.submit([this, &sink, spec, pin_serial] {
        std::optional<util::ThreadPool::ScopedForceSerial> serial_scope;
        if (pin_serial) serial_scope.emplace();
        sink.record(run_trial(spec));
      });
    }
    pool.wait_idle();
  }

  SweepReport report;
  report.name = grid.name;
  report.trials = sink.take_rows();  // also flags any missing slots
  report.failures = sink.failures();
  report.wall_seconds = seconds_since(start);
  return report;
}

}  // namespace skiptrain::sweep
