#include "sweep/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <optional>
#include <thread>
#include <utility>

#include "ckpt/fleet_image.hpp"
#include "ckpt/trial_store.hpp"
#include "obs/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain::sweep {

void SweepReport::write_csv(const std::string& path) const {
  write_summary_csv(path, trials);
}

std::string SweepReport::render_table() const {
  return render_summary_table(trials);
}

const TrialResult* SweepReport::find_trial(const std::string& dataset,
                                           std::size_t degree,
                                           sim::Algorithm algorithm) const {
  return find([&](const TrialResult& trial) {
    return trial.spec.data.dataset == dataset &&
           trial.spec.options.degree == degree &&
           trial.spec.options.algorithm == algorithm;
  });
}

SweepRunner::SweepRunner(SweepOptions options) : options_(std::move(options)) {}

TrialResult SweepRunner::run_trial(const TrialSpec& spec, bool& resumed) {
  const obs::StopWatch watch;
  TrialResult trial;
  trial.spec = spec;
  resumed = false;

  const bool checkpointing = !options_.checkpoint_dir.empty();
  const std::string base =
      checkpointing ? ckpt::trial_file_base(options_.checkpoint_dir,
                                            spec.index)
                    : std::string();
  if (checkpointing && options_.resume) {
    TrialResult stored;
    // Only SUCCESSFUL persisted results short-circuit the trial: a stored
    // failure is retried instead, so transient errors (memory pressure,
    // I/O hiccups) self-heal on resume while deterministic failures just
    // reproduce the same failed row.
    const ckpt::TrialLoadStatus status =
        ckpt::load_trial_result_status(spec, base + ".result", stored);
    if (status == ckpt::TrialLoadStatus::kLoaded && stored.ok()) {
      trial = std::move(stored);
      resumed = true;
      trial.wall_seconds = watch.seconds();
      if (options_.verbose) {
        std::fprintf(stderr, "[sweep] trial %zu/%s %s resumed from %s\n",
                     spec.index, spec.data.dataset.c_str(),
                     sim::algorithm_name(spec.options.algorithm),
                     (base + ".result").c_str());
      }
      return trial;
    }
    if (status == ckpt::TrialLoadStatus::kCorrupt) {
      // Quarantine, don't abort: keep the damaged entry for post-mortems
      // under `<path>.bad` (clobbering any previous quarantine) and
      // recompute the trial. A bit-flipped or torn store file must never
      // kill a 10,000-trial resume.
      std::error_code ec;
      std::filesystem::rename(base + ".result", base + ".result.bad", ec);
      std::fprintf(stderr,
                   "[sweep] trial %zu: corrupt result %s quarantined to "
                   "%s.bad; recomputing\n",
                   spec.index, (base + ".result").c_str(),
                   (base + ".result").c_str());
    }
  }

  try {
    // Bill the dataset fetch (a build on cache miss, a ref-bump on hit) to
    // the trial's setup phase so per-phase times account for the whole
    // trial wall-clock, not just run_experiment's interior.
    const std::uint64_t fetch_start = obs::now_ns();
    const std::shared_ptr<const SharedWorkload> workload =
        cache_.get(spec.data);
    const std::uint64_t fetch_ns = obs::now_ns() - fetch_start;
    if (checkpointing) {
      // In-flight images let --resume re-enter this trial mid-run after
      // a crash; the spec the sink/CSV see stays untouched.
      TrialSpec augmented = spec;
      augmented.options.checkpoint_path = base + ".ckpt";
      augmented.options.checkpoint_every = options_.checkpoint_every;
      augmented.options.resume = options_.resume;
      augmented.options.keep_generations = options_.keep_generations;
      // Stamped into every image and validated on resume, so an edited
      // grid can never resume a stale in-flight image for this slot.
      augmented.options.checkpoint_fingerprint =
          ckpt::trial_fingerprint(spec);
      trial.result = sim::run_experiment(workload->data, workload->prototype,
                                         augmented.options);
    } else {
      trial.result = sim::run_experiment(workload->data, workload->prototype,
                                         spec.options);
    }
    trial.result.telemetry.phases.add(obs::Phase::kSetup, fetch_ns);
  } catch (const std::exception& e) {
    trial.status = TrialStatus::kFailed;
    trial.error = e.what();
  } catch (...) {
    trial.status = TrialStatus::kFailed;
    trial.error = "unknown exception";
  }
  trial.wall_seconds = watch.seconds();
  if (checkpointing) {
    // Persistence failures (full disk, permissions) must not tear down
    // the sweep: the in-memory result is intact and still reaches the
    // summary CSV — only this trial's resumability is lost.
    try {
      ckpt::write_trial_result(trial, base + ".result");
      ckpt::append_manifest(options_.checkpoint_dir, spec.index, trial.ok());
      // Images (all retained generations) are no longer needed.
      ckpt::remove_generations(base + ".ckpt", options_.keep_generations);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[sweep] trial %zu: cannot persist result: %s\n",
                   spec.index, e.what());
    }
  }
  if (options_.verbose) {
    std::fprintf(stderr, "[sweep] trial %zu/%s %s (%.2fs)%s%s\n", spec.index,
                 spec.data.dataset.c_str(),
                 sim::algorithm_name(spec.options.algorithm),
                 trial.wall_seconds, trial.ok() ? "" : " FAILED: ",
                 trial.ok() ? "" : trial.error.c_str());
  }
  return trial;
}

SweepReport SweepRunner::run(const SweepGrid& grid) {
  const obs::StopWatch watch;
  const std::vector<TrialSpec> trials = grid.expand();
  ResultSink sink(trials.size());
  if (!options_.checkpoint_dir.empty()) {
    std::filesystem::create_directories(options_.checkpoint_dir);
  }
  std::atomic<std::size_t> resumed_trials{0};
  util::ThreadPool::PoolStats trial_pool_stats{};
  const auto record_one = [&](const TrialSpec& spec) {
    bool resumed = false;
    TrialResult trial = run_trial(spec, resumed);
    if (resumed) resumed_trials.fetch_add(1, std::memory_order_relaxed);
    sink.record(std::move(trial));
  };

  if (options_.threads == 1) {
    // Inline execution: the single trial in flight keeps the engine's
    // node-level parallelism.
    for (const TrialSpec& spec : trials) {
      record_one(spec);
    }
  } else {
    const std::size_t hardware =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
    // Never more workers than trials (this also tames a nonsense request
    // like size_t(-1) from a mis-cast negative CLI value).
    const std::size_t requested =
        options_.threads != 0 ? options_.threads : hardware;
    const std::size_t workers =
        std::min(requested, std::max<std::size_t>(trials.size(), 1));
    // Pin each trial's node-level loops to its worker only when trial
    // parallelism already saturates the machine; a small grid on a big
    // machine keeps node-level parallelism so surplus cores stay busy.
    const bool pin_serial = workers >= hardware;
    util::ThreadPool pool(workers);
    for (const TrialSpec& spec : trials) {
      pool.submit([&record_one, spec, pin_serial] {
        std::optional<util::ThreadPool::ScopedForceSerial> serial_scope;
        if (pin_serial) serial_scope.emplace();
        record_one(spec);
      });
    }
    pool.wait_idle();
    trial_pool_stats = pool.stats();
  }

  SweepReport report;
  report.name = grid.name;
  report.trials = sink.take_rows();  // also flags any missing slots
  report.failures = sink.failures();
  report.resumed_trials = resumed_trials.load(std::memory_order_relaxed);
  report.wall_seconds = watch.seconds();
  report.trial_pool = trial_pool_stats;
  for (const TrialResult& trial : report.trials) {
    if (trial.ok()) report.telemetry.merge(trial.result.telemetry);
  }
  return report;
}

}  // namespace skiptrain::sweep
