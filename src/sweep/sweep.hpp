// Umbrella header for the sweep subsystem: declarative parameter grids
// (grid.hpp), shared dataset caching (dataset_cache.hpp), thread-safe
// ordered result collection (result_sink.hpp), the concurrent trial
// executor (runner.hpp), config-file/preset construction (config.hpp),
// and runtime-telemetry export (telemetry.hpp).
//
//   sweep::SweepGrid grid = sweep::make_preset("fig3");
//   sweep::SweepReport report = sweep::SweepRunner({.threads = 4}).run(grid);
//   report.write_csv("fig3_sweep.csv");
#pragma once

#include "sweep/config.hpp"
#include "sweep/dataset_cache.hpp"
#include "sweep/grid.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/runner.hpp"
#include "sweep/telemetry.hpp"
