#include "sweep/telemetry.hpp"

#include <cstdio>
#include <map>
#include <ostream>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "ckpt/io.hpp"
#include "obs/registry.hpp"

namespace skiptrain::sweep {

namespace {

/// JSON string escape for metric/grid names (quotes, backslashes, and
/// control characters; everything else passes through verbatim).
std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Fixed-notation double with enough digits for sub-microsecond times;
/// JSON has no Inf/NaN, so degenerate values collapse to 0.
std::string json_double(double value) {
  if (!(value == value) || value > 1e300 || value < -1e300) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

/// Peak resident set size in bytes, 0 when the platform offers no getrusage.
std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

void write_pool(std::ostream& out, const char* key,
                const util::ThreadPool::PoolStats& pool,
                double wall_seconds) {
  const double busy = static_cast<double>(pool.busy_ns) * 1e-9;
  const double capacity = wall_seconds * static_cast<double>(pool.workers);
  const double utilization = capacity > 0.0 ? busy / capacity : 0.0;
  out << "  \"" << key << "\": {\"workers\": " << pool.workers
      << ", \"busy_seconds\": " << json_double(busy)
      << ", \"tasks_executed\": " << pool.tasks_executed
      << ", \"utilization\": " << json_double(utilization) << "},\n";
}

void write_phases(std::ostream& out, const obs::PhaseStats& phases,
                  const char* indent) {
  out << "{";
  bool first = true;
  for (std::size_t p = 0; p < obs::kPhaseCount; ++p) {
    if (phases.calls[p] == 0) continue;
    if (!first) out << ",";
    out << "\n" << indent << "  \""
        << obs::phase_name(static_cast<obs::Phase>(p))
        << "\": {\"seconds\": " << json_double(phases.seconds[p])
        << ", \"calls\": " << phases.calls[p] << "}";
    first = false;
  }
  if (!first) out << "\n" << indent;
  out << "}";
}

}  // namespace

std::string default_telemetry_path(const std::string& csv_path) {
  constexpr std::string_view kCsv = ".csv";
  if (csv_path.size() > kCsv.size() &&
      csv_path.compare(csv_path.size() - kCsv.size(), kCsv.size(), kCsv) ==
          0) {
    return csv_path.substr(0, csv_path.size() - kCsv.size()) +
           ".telemetry.json";
  }
  return csv_path + ".telemetry.json";
}

void write_telemetry_json(const std::string& path,
                          const SweepReport& report) {
  const obs::Snapshot snap = obs::snapshot();
  const util::ThreadPool::PoolStats global_pool =
      util::ThreadPool::global().stats();
  // Exact wire bytes grouped by each trial's codec (a sweep may mix them).
  std::map<std::string, std::uint64_t> wire_by_codec;
  for (const TrialResult& trial : report.trials) {
    if (!trial.ok() || trial.result.telemetry.wire_bytes == 0) continue;
    wire_by_codec[quant::codec_name(trial.spec.options.exchange_codec)] +=
        trial.result.telemetry.wire_bytes;
  }

  ckpt::atomic_write(path, [&](std::ostream& out) {
    out << "{\n";
    out << "  \"sweep\": \"" << json_escape(report.name) << "\",\n";
    out << "  \"wall_seconds\": " << json_double(report.wall_seconds)
        << ",\n";
    out << "  \"trials\": " << report.trials.size() << ",\n";
    out << "  \"failures\": " << report.failures << ",\n";
    out << "  \"resumed_trials\": " << report.resumed_trials << ",\n";
    out << "  \"peak_rss_bytes\": " << peak_rss_bytes() << ",\n";
    write_pool(out, "trial_pool", report.trial_pool, report.wall_seconds);
    write_pool(out, "global_pool", global_pool, report.wall_seconds);

    out << "  \"phases\": ";
    write_phases(out, report.telemetry.phases, "  ");
    out << ",\n";
    out << "  \"phase_total_seconds\": "
        << json_double(report.telemetry.phases.total_seconds()) << ",\n";
    out << "  \"wire_bytes\": " << report.telemetry.wire_bytes << ",\n";
    out << "  \"wire_bytes_by_codec\": {";
    bool first = true;
    for (const auto& [codec, bytes] : wire_by_codec) {
      if (!first) out << ", ";
      out << "\"" << codec << "\": " << bytes;
      first = false;
    }
    out << "},\n";
    out << "  \"rounds\": " << report.telemetry.rounds << ",\n";

    out << "  \"counters\": {";
    first = true;
    for (const obs::CounterValue& c : snap.counters) {
      if (!first) out << ",";
      out << "\n    \"" << json_escape(c.name) << "\": " << c.value;
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"gauges\": {";
    first = true;
    for (const obs::GaugeValue& g : snap.gauges) {
      if (!first) out << ",";
      out << "\n    \"" << json_escape(g.name) << "\": {\"value\": "
          << g.value << ", \"max\": " << g.max << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"histograms\": {";
    first = true;
    for (const obs::HistogramValue& h : snap.histograms) {
      if (!first) out << ",";
      out << "\n    \"" << json_escape(h.name) << "\": {\"count\": "
          << h.count << ", \"sum\": " << h.sum << ", \"max\": " << h.max
          << ", \"mean\": " << json_double(h.mean())
          << ", \"p50\": " << h.quantile_upper_bound(0.50)
          << ", \"p99\": " << h.quantile_upper_bound(0.99) << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "},\n";

    out << "  \"trials_detail\": [";
    first = true;
    for (const TrialResult& trial : report.trials) {
      if (!first) out << ",";
      out << "\n    {\"index\": " << trial.spec.index << ", \"dataset\": \""
          << json_escape(trial.spec.data.dataset) << "\", \"algorithm\": \""
          << json_escape(sim::algorithm_name(trial.spec.options.algorithm))
          << "\", \"codec\": \""
          << quant::codec_name(trial.spec.options.exchange_codec)
          << "\", \"ok\": " << (trial.ok() ? "true" : "false")
          << ", \"wall_seconds\": " << json_double(trial.wall_seconds)
          << ", \"rounds\": " << trial.result.telemetry.rounds
          << ", \"wire_bytes\": " << trial.result.telemetry.wire_bytes
          << ", \"phases\": ";
      write_phases(out, trial.result.telemetry.phases, "    ");
      out << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "]\n";
    out << "}\n";
  });
}

}  // namespace skiptrain::sweep
