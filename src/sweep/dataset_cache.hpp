// Shared immutable dataset/model cache for the sweep runner.
//
// A parameter grid typically holds the dataset fixed while sweeping the
// algorithm side, so trials must not rebuild (or worse, replicate) the
// federated partition per trial. The cache keys on DataConfig and hands
// out shared_ptr<const SharedWorkload>; concurrent requests for the same
// key block on a single build (std::shared_future), every later request
// is a lock-and-lookup.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "data/dataset.hpp"
#include "energy/device.hpp"
#include "nn/sequential.hpp"
#include "sweep/grid.hpp"

namespace skiptrain::sweep {

/// One dataset build plus the matching initialised prototype model.
/// Immutable after construction; safe to share across trial threads
/// (the engine clones the prototype per node and only reads the data).
struct SharedWorkload {
  data::FederatedData data;
  nn::Sequential prototype;
  energy::Workload workload = energy::Workload::kCifar10;
};

/// Builds a workload directly (no caching): synthetic dataset per
/// DataConfig plus a compact model initialised from config.seed. This is
/// the one place the repo maps a DataConfig onto the data/nn factories.
[[nodiscard]] std::shared_ptr<const SharedWorkload> build_workload(
    const DataConfig& config);

class DatasetCache {
 public:
  /// Returns the cached workload for `config`, building it on first use.
  /// Thread-safe; a build failure is rethrown to every waiter and not
  /// cached, so a later call can retry.
  std::shared_ptr<const SharedWorkload> get(const DataConfig& config);

  /// Number of distinct workloads built so far.
  std::size_t size() const;

 private:
  using Entry = std::shared_future<std::shared_ptr<const SharedWorkload>>;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace skiptrain::sweep
