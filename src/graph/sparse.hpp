// Implicit and CSR-backed sparse topologies for large-fleet gossip.
//
// The dense Topology/MixingMatrix pair stores per-node adjacency vectors —
// fine at the paper's n=256, pure overhead at n=100k+. This layer keeps
// topology memory at O(n·k) flat storage and, for k-regular graphs,
// replaces materialized adjacency entirely with counter-based sampling:
//
//   ImplicitKRegular  seed-derived circulant k-regular graph; any node's
//                     neighbor list is recomputed on demand from (n, k,
//                     seed) — O(k) state per *query*, O(k) state total.
//   CsrGraph          row_ptr/cols flat CSR for arbitrary sparse graphs,
//                     loadable from a hostile-input-hardened text format.
//   SparseMixing      Metropolis–Hastings weights over either, stored as
//                     one flat entry array (no per-node vectors).
//   MixingRef         non-owning dense-or-sparse dispatch handle, so the
//                     engines keep a single aggregation call site.
//
// Bit-identity contract: SparseMixing weights are accumulated in exactly
// the order MixingMatrix::metropolis_hastings uses on the materialized
// topology (ascending neighbor, float accumulation), and the sharded
// kernel below reproduces the blocked kernel's per-element op sequence —
// so sparse runs are byte-comparable against the dense oracle at small n.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "graph/mixing.hpp"
#include "graph/topology.hpp"
#include "tensor/ops.hpp"

namespace skiptrain::graph {

/// Parsed `topology=` axis value: dense | kregular:<k> | csr:<path>.
struct TopologySpec {
  enum class Kind { kDense, kKRegular, kCsr };

  Kind kind = Kind::kDense;
  std::size_t k = 0;     ///< kregular degree
  std::string path;      ///< csr file path

  /// Parses a sweep-axis token; throws std::invalid_argument on anything
  /// else. "" and "dense" both mean the dense random-regular default.
  static TopologySpec parse(const std::string& token);

  /// Canonical token ("dense", "kregular:6", "csr:<path>").
  std::string token() const;
};

/// Canonical token for a raw topology option string ("" → "dense").
std::string topology_token(const std::string& raw);

/// Seed-derived circulant k-regular graph: node i's neighbors are
/// {(i ± o) mod n} over a set of distinct ring offsets (offset 1 always
/// included, so the graph contains a Hamiltonian ring and is connected),
/// plus the antipodal offset n/2 when k is odd (requires n even). No
/// adjacency is ever materialized — neighbors_into() recomputes a row in
/// O(k) from the offset table, which is the entire topology state.
class ImplicitKRegular {
 public:
  /// Requires n >= 3, 2 <= k < n, and n even when k is odd. Throws
  /// std::invalid_argument when no such circulant exists.
  ImplicitKRegular(std::size_t n, std::size_t k, std::uint64_t seed);

  std::size_t num_nodes() const { return n_; }
  std::size_t degree() const { return k_; }
  std::uint64_t seed() const { return seed_; }
  std::span<const std::size_t> offsets() const { return offsets_; }

  /// Writes node's k neighbors in ascending order into out (size == k).
  void neighbors_into(std::size_t node, std::span<std::size_t> out) const;

  /// Explicit Topology with identical adjacency — the bitwise-equivalence
  /// oracle for tests and the bridge into AsyncGossipEngine, which takes a
  /// Topology (O(n·k), so still cheap at async-relevant fleet sizes).
  Topology materialize() const;

  /// Stable identity of (n, k, seed) — everything the graph is derived
  /// from — for checkpoint-image compatibility checks.
  std::uint64_t config_hash() const;

 private:
  std::size_t n_ = 0;
  std::size_t k_ = 0;
  std::uint64_t seed_ = 0;
  std::vector<std::size_t> offsets_;  ///< ascending ring offsets (excl. half)
  bool has_half_ = false;             ///< antipodal n/2 offset active (odd k)
};

/// Flat CSR adjacency (row_ptr[n+1] + cols[nnz]) for arbitrary sparse
/// graphs — O(n + nnz) with no per-node allocations.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Flattens an explicit Topology (test oracle path).
  static CsrGraph from_topology(const Topology& topology);

  /// Loads the text format below; every structural violation throws
  /// std::runtime_error with file:line context (mirrors the harvest-trace
  /// loader hardening):
  ///
  ///   skiptrain-csr v1
  ///   nodes <n>
  ///   <deg> <c1> ... <cdeg>     one line per node, columns strictly
  ///                             ascending, no self-loops, symmetric,
  ///                             connected
  static CsrGraph load_file(const std::string& path);
  static CsrGraph parse(std::istream& in, const std::string& name);

  std::size_t num_nodes() const {
    return row_ptr_.empty() ? 0 : row_ptr_.size() - 1;
  }
  std::size_t num_entries() const { return cols_.size(); }  ///< directed
  std::size_t degree(std::size_t node) const {
    return row_ptr_[node + 1] - row_ptr_[node];
  }
  std::span<const std::uint32_t> neighbors(std::size_t node) const {
    return {cols_.data() + row_ptr_[node], degree(node)};
  }

  bool is_connected() const;

  Topology materialize() const;

  /// Content hash over the full adjacency for checkpoint identity.
  std::uint64_t content_hash() const;

 private:
  std::vector<std::uint64_t> row_ptr_;
  std::vector<std::uint32_t> cols_;
};

/// Metropolis–Hastings mixing weights over a sparse topology, stored as
/// one flat entry array indexed by a row_ptr — the O(n·k) counterpart of
/// MixingMatrix (which keeps n separate neighbor vectors).
class SparseMixing {
 public:
  using Entry = MixingMatrix::Entry;

  SparseMixing() = default;

  static SparseMixing metropolis_hastings(const ImplicitKRegular& graph);
  static SparseMixing metropolis_hastings(const CsrGraph& graph);

  std::size_t num_nodes() const { return self_weight_.size(); }
  std::size_t degree(std::size_t node) const {
    return row_ptr_[node + 1] - row_ptr_[node];
  }
  float self_weight(std::size_t node) const { return self_weight_[node]; }
  std::span<const Entry> neighbor_weights(std::size_t node) const {
    return {entries_.data() + row_ptr_[node], degree(node)};
  }

 private:
  std::vector<std::size_t> row_ptr_;
  std::vector<Entry> entries_;
  std::vector<float> self_weight_;
};

/// Non-owning handle over either mixing representation. The engines hold
/// one of these, so every aggregation call site reads identically
/// (`mixing_.self_weight(i)`, `mixing_.neighbor_weights(i)`) regardless
/// of which backing store the topology axis selected. Implicit
/// construction from either concrete type keeps existing MixingMatrix
/// call sites source-compatible; the referenced mixing must outlive the
/// handle (same lifetime contract as the references it replaces).
struct MixingRef {
  const MixingMatrix* dense = nullptr;
  const SparseMixing* sparse = nullptr;

  MixingRef() = default;
  MixingRef(const MixingMatrix& m) : dense(&m) {}  // NOLINT(runtime/explicit)
  MixingRef(const SparseMixing& m) : sparse(&m) {}  // NOLINT(runtime/explicit)

  bool is_sparse() const { return sparse != nullptr; }
  std::size_t num_nodes() const {
    return sparse != nullptr ? sparse->num_nodes() : dense->num_nodes();
  }
  float self_weight(std::size_t node) const {
    return sparse != nullptr ? sparse->self_weight(node)
                             : dense->self_weight(node);
  }
  std::span<const MixingMatrix::Entry> neighbor_weights(
      std::size_t node) const {
    return sparse != nullptr ? sparse->neighbor_weights(node)
                             : dense->neighbor_weights(node);
  }
  std::size_t degree(std::size_t node) const {
    return neighbor_weights(node).size();
  }
};

/// Canonical single-row gossip reduction: out = W_ii·x_i + Σ_j W_ij·x_j
/// with the exact 3-/2-term op grouping of apply_mixing_blocked (same add
/// order ⇒ bitwise-identical floats). `half_row(j)` returns node j's
/// pre-mix row as std::span<const float>; both sharded kernels (flat plane
/// and ShardedPlane) call this one template so the grouping can never
/// drift between them.
template <typename HalfRow>
inline void mix_row(const MixingRef& mixing, std::size_t node,
                    HalfRow&& half_row, std::span<float> out) {
  const auto nbrs = mixing.neighbor_weights(node);
  const float self_w = mixing.self_weight(node);
  std::size_t e = 0;
  if (nbrs.size() >= 2) {
    tensor::weighted_sum3(self_w, half_row(node), nbrs[0].weight,
                          half_row(nbrs[0].neighbor), nbrs[1].weight,
                          half_row(nbrs[1].neighbor), out);
    e = 2;
  } else {
    tensor::scaled_copy(self_w, half_row(node), out);
  }
  for (; e + 2 <= nbrs.size(); e += 2) {
    tensor::axpy2(nbrs[e].weight, half_row(nbrs[e].neighbor),
                  nbrs[e + 1].weight, half_row(nbrs[e + 1].neighbor), out);
  }
  if (e < nbrs.size()) {
    tensor::axpy(nbrs[e].weight, half_row(nbrs[e].neighbor), out);
  }
}

/// Row-sharded gossip kernel: partitions NODES (not columns) into
/// contiguous shards farmed out to the thread pool with shard-affine
/// scheduling — one worker owns a shard's rows end to end, so large-n
/// fleets parallelize even when dim is small (the column-blocked kernel
/// degenerates to 1–2 blocks at n=100k, dim=1k). Each row is reduced with
/// the exact op grouping of apply_mixing_blocked; since every op is
/// elementwise, the result is bitwise identical to the blocked kernel at
/// any shard size or thread count. `shard_rows` = 0 picks a shard that
/// balances pool occupancy against per-shard working-set size.
void apply_mixing_sharded(const MixingRef& mixing,
                          std::span<const float> x_half,
                          std::span<float> x_current, std::size_t dim,
                          std::size_t shard_rows = 0);

}  // namespace skiptrain::graph
