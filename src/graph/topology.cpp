#include "graph/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>

namespace skiptrain::graph {

Topology::Topology(std::size_t num_nodes) : adjacency_(num_nodes) {}

void Topology::add_edge(std::size_t a, std::size_t b) {
  if (a >= num_nodes() || b >= num_nodes()) {
    throw std::invalid_argument("Topology::add_edge: node out of range");
  }
  if (a == b) {
    throw std::invalid_argument("Topology::add_edge: self-loop");
  }
  if (has_edge(a, b)) {
    throw std::invalid_argument("Topology::add_edge: duplicate edge");
  }
  auto& list_a = adjacency_[a];
  auto& list_b = adjacency_[b];
  list_a.insert(std::lower_bound(list_a.begin(), list_a.end(), b), b);
  list_b.insert(std::lower_bound(list_b.begin(), list_b.end(), a), a);
  ++num_edges_;
}

bool Topology::has_edge(std::size_t a, std::size_t b) const {
  const auto& list = adjacency_[a];
  return std::binary_search(list.begin(), list.end(), b);
}

std::size_t Topology::degree(std::size_t node) const {
  return adjacency_[node].size();
}

const std::vector<std::size_t>& Topology::neighbors(std::size_t node) const {
  return adjacency_[node];
}

std::size_t Topology::max_degree() const {
  std::size_t best = 0;
  for (const auto& list : adjacency_) best = std::max(best, list.size());
  return best;
}

bool Topology::is_regular() const {
  if (adjacency_.empty()) return true;
  const std::size_t d = adjacency_[0].size();
  return std::all_of(adjacency_.begin(), adjacency_.end(),
                     [d](const auto& list) { return list.size() == d; });
}

bool Topology::is_connected() const {
  if (num_nodes() == 0) return true;
  std::vector<bool> visited(num_nodes(), false);
  std::queue<std::size_t> frontier;
  frontier.push(0);
  visited[0] = true;
  std::size_t reached = 1;
  while (!frontier.empty()) {
    const std::size_t node = frontier.front();
    frontier.pop();
    for (const std::size_t next : adjacency_[node]) {
      if (!visited[next]) {
        visited[next] = true;
        ++reached;
        frontier.push(next);
      }
    }
  }
  return reached == num_nodes();
}

std::size_t Topology::diameter() const {
  if (num_nodes() < 2) return 0;
  std::size_t best = 0;
  std::vector<std::size_t> dist(num_nodes());
  for (std::size_t source = 0; source < num_nodes(); ++source) {
    std::fill(dist.begin(), dist.end(), std::numeric_limits<std::size_t>::max());
    std::queue<std::size_t> frontier;
    frontier.push(source);
    dist[source] = 0;
    while (!frontier.empty()) {
      const std::size_t node = frontier.front();
      frontier.pop();
      for (const std::size_t next : adjacency_[node]) {
        if (dist[next] == std::numeric_limits<std::size_t>::max()) {
          dist[next] = dist[node] + 1;
          frontier.push(next);
        }
      }
    }
    for (const std::size_t d : dist) {
      if (d == std::numeric_limits<std::size_t>::max()) {
        return std::numeric_limits<std::size_t>::max();  // disconnected
      }
      best = std::max(best, d);
    }
  }
  return best;
}

std::string Topology::describe() const {
  std::ostringstream out;
  out << "Topology(n=" << num_nodes() << ", edges=" << num_edges();
  if (is_regular() && num_nodes() > 0) {
    out << ", " << degree(0) << "-regular";
  }
  out << ", connected=" << (is_connected() ? "yes" : "no") << ")";
  return out.str();
}

Topology make_ring(std::size_t n) {
  if (n < 3) throw std::invalid_argument("make_ring: need n >= 3");
  Topology topo(n);
  for (std::size_t i = 0; i < n; ++i) topo.add_edge(i, (i + 1) % n);
  return topo;
}

Topology make_fully_connected(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_fully_connected: need n >= 2");
  Topology topo(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) topo.add_edge(i, j);
  }
  return topo;
}

Topology make_circulant(std::size_t n, std::size_t degree) {
  if (degree >= n) {
    throw std::invalid_argument("make_circulant: degree must be < n");
  }
  if (degree % 2 == 1 && n % 2 == 1) {
    throw std::invalid_argument(
        "make_circulant: odd degree requires an even node count");
  }
  Topology topo(n);
  for (std::size_t offset = 1; offset <= degree / 2; ++offset) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i + offset) % n;
      if (!topo.has_edge(i, j)) topo.add_edge(i, j);
    }
  }
  if (degree % 2 == 1) {
    for (std::size_t i = 0; i < n / 2; ++i) {
      topo.add_edge(i, i + n / 2);
    }
  }
  return topo;
}

Topology make_random_regular(std::size_t n, std::size_t degree,
                             util::Rng& rng) {
  if (degree >= n) {
    throw std::invalid_argument("make_random_regular: degree must be < n");
  }
  if ((n * degree) % 2 != 0) {
    throw std::invalid_argument("make_random_regular: n*degree must be even");
  }
  // Double-edge-swap randomization: start from the deterministic circulant
  // (always d-regular and connected) and run the degree-preserving swap
  // Markov chain — pick edges (a,b), (c,d), replace with (a,c), (b,d) when
  // the result stays simple. Unlike whole-graph rejection of the pairing
  // model (whose success probability decays like exp(-(d-1)/2 - (d-1)²/4)
  // and is ~1e-4 already at d = 6), every proposal here is cheap and the
  // chain provably mixes to the uniform distribution over d-regular simple
  // graphs. A final connectivity check re-runs the chain if a swap
  // disconnected the graph (rare for d >= 3).
  constexpr int kMaxRestarts = 50;
  for (int restart = 0; restart < kMaxRestarts; ++restart) {
    Topology base = make_circulant(n, degree);
    std::vector<std::pair<std::size_t, std::size_t>> edges;
    edges.reserve(base.num_edges());
    std::set<std::pair<std::size_t, std::size_t>> edge_set;
    for (std::size_t a = 0; a < n; ++a) {
      for (const std::size_t b : base.neighbors(a)) {
        if (a < b) {
          edges.emplace_back(a, b);
          edge_set.emplace(a, b);
        }
      }
    }
    const auto has = [&](std::size_t a, std::size_t b) {
      if (a > b) std::swap(a, b);
      return edge_set.contains({a, b});
    };

    const std::size_t target_swaps = 20 * edges.size();
    std::size_t performed = 0;
    std::size_t proposals = 0;
    const std::size_t max_proposals = 200 * edges.size();
    while (performed < target_swaps && proposals < max_proposals) {
      ++proposals;
      const std::size_t i =
          static_cast<std::size_t>(rng.uniform_int(edges.size()));
      const std::size_t j =
          static_cast<std::size_t>(rng.uniform_int(edges.size()));
      if (i == j) continue;
      auto [a, b] = edges[i];
      auto [c, d] = edges[j];
      // Two orientations; pick one uniformly: (a,c)+(b,d) or (a,d)+(b,c).
      if (rng.bernoulli(0.5)) std::swap(c, d);
      if (a == c || a == d || b == c || b == d) continue;
      if (has(a, c) || has(b, d)) continue;

      edge_set.erase({std::min(edges[i].first, edges[i].second),
                      std::max(edges[i].first, edges[i].second)});
      edge_set.erase({std::min(edges[j].first, edges[j].second),
                      std::max(edges[j].first, edges[j].second)});
      edges[i] = {std::min(a, c), std::max(a, c)};
      edges[j] = {std::min(b, d), std::max(b, d)};
      edge_set.insert(edges[i]);
      edge_set.insert(edges[j]);
      ++performed;
    }

    Topology topo(n);
    for (const auto& [a, b] : edges) topo.add_edge(a, b);
    if (topo.is_connected()) return topo;
  }
  // Unreachable in practice for connected-after-swaps d >= 2 graphs; keep
  // the deterministic construction as a last resort.
  return make_circulant(n, degree);
}

Topology make_erdos_renyi(std::size_t n, double p, util::Rng& rng) {
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("make_erdos_renyi: p must be in [0,1]");
  }
  Topology topo(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(p)) topo.add_edge(i, j);
    }
  }
  return topo;
}

Topology make_star(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_star: need n >= 2");
  Topology topo(n);
  for (std::size_t i = 1; i < n; ++i) topo.add_edge(0, i);
  return topo;
}

}  // namespace skiptrain::graph
