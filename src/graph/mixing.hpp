// Mixing (gossip) matrices for decentralized averaging.
//
// The aggregation step of D-PSGD / SkipTrain is x_i ← Σ_j W_ji x_j with W
// symmetric and doubly stochastic (Lian et al. 2017). Following the paper,
// W is built from Metropolis–Hastings weights (Xiao & Boyd 2004):
//
//   W_ij = 1 / (max(deg(i), deg(j)) + 1)          for (i,j) ∈ E
//   W_ii = 1 − Σ_{j≠i} W_ij
//
// Stored sparsely (per-node neighbor weight lists) since the simulator only
// ever multiplies by W row-wise.
#pragma once

#include <span>
#include <vector>

#include "graph/topology.hpp"

namespace skiptrain::graph {

class MixingMatrix {
 public:
  struct Entry {
    std::size_t neighbor;
    float weight;
  };

  MixingMatrix() = default;

  /// Builds Metropolis–Hastings weights from the topology.
  static MixingMatrix metropolis_hastings(const Topology& topology);

  /// Uniform global averaging: W = (1/n) 11^T. This is the matrix the
  /// paper's all-reduce baseline (Figure 1) effectively applies.
  static MixingMatrix all_reduce(std::size_t n);

  std::size_t num_nodes() const { return self_weight_.size(); }

  float self_weight(std::size_t node) const { return self_weight_[node]; }
  std::span<const Entry> neighbor_weights(std::size_t node) const;

  /// Weight between two nodes; 0 when not adjacent (and i != j).
  float weight(std::size_t i, std::size_t j) const;

  /// Materialises the dense n x n matrix (test/diagnostic use only).
  std::vector<double> dense() const;

  /// max_i |Σ_j W_ij − 1| over rows and columns; 0 for a perfectly doubly
  /// stochastic matrix.
  double stochasticity_error() const;

  /// max_{ij} |W_ij − W_ji|.
  double symmetry_error() const;

  /// Second-largest eigenvalue modulus λ2 of W, estimated by power
  /// iteration on the space orthogonal to the all-ones vector. The
  /// spectral gap 1 − λ2 governs gossip mixing speed: larger degree ⇒
  /// larger gap ⇒ fewer synchronization rounds needed, which is exactly
  /// the Γsync trend the paper observes in Figure 3.
  double second_eigenvalue(std::size_t iterations = 200) const;

  double spectral_gap(std::size_t iterations = 200) const {
    return 1.0 - second_eigenvalue(iterations);
  }

 private:
  std::vector<float> self_weight_;
  std::vector<std::vector<Entry>> neighbors_;
};

/// Blocked gossip aggregation kernel — the hot loop of a simulated round:
///
///   x_current[i,:] = W_ii · x_half[i,:] + Σ_j W_ij · x_half[j,:]
///
/// `x_half` and `x_current` are row-major [n × dim] parameter planes that
/// must not alias. The parameter dimension is tiled into column blocks of
/// `block_floats` (0 = pick a tile so all n row-slices of one block stay
/// cache-resident), and the blocks are farmed out to the thread pool —
/// each column block of x_half is then streamed from DRAM once per round
/// instead of deg(i)+1 times. Per block the per-node update dispatches to
/// tensor::copy/scale/axpy in neighbor order, so the result is bitwise
/// identical to the naive per-row loop at any thread count or block size.
void apply_mixing_blocked(const MixingMatrix& mixing,
                          std::span<const float> x_half,
                          std::span<float> x_current, std::size_t dim,
                          std::size_t block_floats = 0);

}  // namespace skiptrain::graph
