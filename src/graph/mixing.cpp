#include "graph/mixing.hpp"

#include <algorithm>
#include <cmath>

namespace skiptrain::graph {

MixingMatrix MixingMatrix::metropolis_hastings(const Topology& topology) {
  const std::size_t n = topology.num_nodes();
  MixingMatrix mix;
  mix.self_weight_.resize(n);
  mix.neighbors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    float off_diagonal = 0.0f;
    auto& entries = mix.neighbors_[i];
    entries.reserve(topology.degree(i));
    for (const std::size_t j : topology.neighbors(i)) {
      const auto denom = static_cast<float>(
          std::max(topology.degree(i), topology.degree(j)) + 1);
      const float w = 1.0f / denom;
      entries.push_back(Entry{j, w});
      off_diagonal += w;
    }
    mix.self_weight_[i] = 1.0f - off_diagonal;
  }
  return mix;
}

MixingMatrix MixingMatrix::all_reduce(std::size_t n) {
  MixingMatrix mix;
  const float w = 1.0f / static_cast<float>(n);
  mix.self_weight_.assign(n, w);
  mix.neighbors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& entries = mix.neighbors_[i];
    entries.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) entries.push_back(Entry{j, w});
    }
  }
  return mix;
}

std::span<const MixingMatrix::Entry> MixingMatrix::neighbor_weights(
    std::size_t node) const {
  return neighbors_[node];
}

float MixingMatrix::weight(std::size_t i, std::size_t j) const {
  if (i == j) return self_weight_[i];
  for (const Entry& entry : neighbors_[i]) {
    if (entry.neighbor == j) return entry.weight;
  }
  return 0.0f;
}

std::vector<double> MixingMatrix::dense() const {
  const std::size_t n = num_nodes();
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    matrix[i * n + i] = static_cast<double>(self_weight_[i]);
    for (const Entry& entry : neighbors_[i]) {
      matrix[i * n + entry.neighbor] = static_cast<double>(entry.weight);
    }
  }
  return matrix;
}

double MixingMatrix::stochasticity_error() const {
  const std::size_t n = num_nodes();
  std::vector<double> col_sum(n, 0.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = static_cast<double>(self_weight_[i]);
    col_sum[i] += static_cast<double>(self_weight_[i]);
    for (const Entry& entry : neighbors_[i]) {
      row_sum += static_cast<double>(entry.weight);
      col_sum[entry.neighbor] += static_cast<double>(entry.weight);
    }
    worst = std::max(worst, std::abs(row_sum - 1.0));
  }
  for (const double c : col_sum) worst = std::max(worst, std::abs(c - 1.0));
  return worst;
}

double MixingMatrix::symmetry_error() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    for (const Entry& entry : neighbors_[i]) {
      worst = std::max(worst,
                       std::abs(static_cast<double>(entry.weight) -
                                static_cast<double>(weight(entry.neighbor, i))));
    }
  }
  return worst;
}

double MixingMatrix::second_eigenvalue(std::size_t iterations) const {
  const std::size_t n = num_nodes();
  if (n < 2) return 0.0;

  // Power iteration on the complement of span{1}: since W is symmetric
  // doubly stochastic, 1 is the top eigenvector with eigenvalue 1; after
  // deflating it, the iteration converges to |λ2|.
  std::vector<double> x(n), next(n);
  // Deterministic non-uniform start vector.
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<double>(i + 1) * 12.9898) * 43758.5453;
    x[i] -= std::floor(x[i]);
  }

  const auto deflate_and_normalize = [&](std::vector<double>& v) {
    double mean = 0.0;
    for (const double value : v) mean += value;
    mean /= static_cast<double>(n);
    double norm = 0.0;
    for (auto& value : v) {
      value -= mean;
      norm += value * value;
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (auto& value : v) value /= norm;
    }
    return norm;
  };

  deflate_and_normalize(x);
  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = static_cast<double>(self_weight_[i]) * x[i];
      for (const Entry& entry : neighbors_[i]) {
        acc += static_cast<double>(entry.weight) * x[entry.neighbor];
      }
      next[i] = acc;
    }
    lambda = deflate_and_normalize(next);
    std::swap(x, next);
  }
  return lambda;
}

}  // namespace skiptrain::graph
