#include "graph/mixing.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain::graph {

MixingMatrix MixingMatrix::metropolis_hastings(const Topology& topology) {
  const std::size_t n = topology.num_nodes();
  MixingMatrix mix;
  mix.self_weight_.resize(n);
  mix.neighbors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    float off_diagonal = 0.0f;
    auto& entries = mix.neighbors_[i];
    entries.reserve(topology.degree(i));
    for (const std::size_t j : topology.neighbors(i)) {
      const auto denom = static_cast<float>(
          std::max(topology.degree(i), topology.degree(j)) + 1);
      const float w = 1.0f / denom;
      entries.push_back(Entry{j, w});
      off_diagonal += w;
    }
    mix.self_weight_[i] = 1.0f - off_diagonal;
  }
  return mix;
}

MixingMatrix MixingMatrix::all_reduce(std::size_t n) {
  MixingMatrix mix;
  const float w = 1.0f / static_cast<float>(n);
  mix.self_weight_.assign(n, w);
  mix.neighbors_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& entries = mix.neighbors_[i];
    entries.reserve(n - 1);
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) entries.push_back(Entry{j, w});
    }
  }
  return mix;
}

std::span<const MixingMatrix::Entry> MixingMatrix::neighbor_weights(
    std::size_t node) const {
  return neighbors_[node];
}

float MixingMatrix::weight(std::size_t i, std::size_t j) const {
  if (i == j) return self_weight_[i];
  for (const Entry& entry : neighbors_[i]) {
    if (entry.neighbor == j) return entry.weight;
  }
  return 0.0f;
}

std::vector<double> MixingMatrix::dense() const {
  const std::size_t n = num_nodes();
  std::vector<double> matrix(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    matrix[i * n + i] = static_cast<double>(self_weight_[i]);
    for (const Entry& entry : neighbors_[i]) {
      matrix[i * n + entry.neighbor] = static_cast<double>(entry.weight);
    }
  }
  return matrix;
}

double MixingMatrix::stochasticity_error() const {
  const std::size_t n = num_nodes();
  std::vector<double> col_sum(n, 0.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = static_cast<double>(self_weight_[i]);
    col_sum[i] += static_cast<double>(self_weight_[i]);
    for (const Entry& entry : neighbors_[i]) {
      row_sum += static_cast<double>(entry.weight);
      col_sum[entry.neighbor] += static_cast<double>(entry.weight);
    }
    worst = std::max(worst, std::abs(row_sum - 1.0));
  }
  for (const double c : col_sum) worst = std::max(worst, std::abs(c - 1.0));
  return worst;
}

double MixingMatrix::symmetry_error() const {
  double worst = 0.0;
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    for (const Entry& entry : neighbors_[i]) {
      worst = std::max(worst,
                       std::abs(static_cast<double>(entry.weight) -
                                static_cast<double>(weight(entry.neighbor, i))));
    }
  }
  return worst;
}

double MixingMatrix::second_eigenvalue(std::size_t iterations) const {
  const std::size_t n = num_nodes();
  if (n < 2) return 0.0;

  // Power iteration on the complement of span{1}: since W is symmetric
  // doubly stochastic, 1 is the top eigenvector with eigenvalue 1; after
  // deflating it, the iteration converges to |λ2|.
  std::vector<double> x(n), next(n);
  // Deterministic non-uniform start vector.
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = std::sin(static_cast<double>(i + 1) * 12.9898) * 43758.5453;
    x[i] -= std::floor(x[i]);
  }

  const auto deflate_and_normalize = [&](std::vector<double>& v) {
    double mean = 0.0;
    for (const double value : v) mean += value;
    mean /= static_cast<double>(n);
    double norm = 0.0;
    for (auto& value : v) {
      value -= mean;
      norm += value * value;
    }
    norm = std::sqrt(norm);
    if (norm > 0.0) {
      for (auto& value : v) value /= norm;
    }
    return norm;
  };

  deflate_and_normalize(x);
  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < n; ++i) {
      double acc = static_cast<double>(self_weight_[i]) * x[i];
      for (const Entry& entry : neighbors_[i]) {
        acc += static_cast<double>(entry.weight) * x[entry.neighbor];
      }
      next[i] = acc;
    }
    lambda = deflate_and_normalize(next);
    std::swap(x, next);
  }
  return lambda;
}

namespace {

/// Column-block width such that one block of every row (n · block · 4
/// bytes) stays within ~512 KiB — the reuse window that lets each
/// neighbor-row slice be read from cache instead of DRAM.
std::size_t pick_block_floats(std::size_t nodes, std::size_t dim) {
  constexpr std::size_t kTargetBytes = 512u * 1024u;
  const std::size_t target =
      kTargetBytes / (sizeof(float) * std::max<std::size_t>(nodes, 1));
  // Floor the tile at 512 floats, but never exceed the row length (small
  // models get a single block).
  return std::min(std::max<std::size_t>(target, 512),
                  std::max<std::size_t>(dim, 1));
}

}  // namespace

void apply_mixing_blocked(const MixingMatrix& mixing,
                          std::span<const float> x_half,
                          std::span<float> x_current, std::size_t dim,
                          std::size_t block_floats) {
  const std::size_t n = mixing.num_nodes();
  if (x_half.size() != n * dim || x_current.size() != n * dim) {
    throw std::invalid_argument("apply_mixing_blocked: plane size mismatch");
  }
  if (n == 0 || dim == 0) return;
  const std::size_t block =
      block_floats != 0 ? block_floats : pick_block_floats(n, dim);
  const std::size_t num_blocks = (dim + block - 1) / block;
  // Threads own disjoint column blocks, so writes never overlap and every
  // (node, block) slice is computed by exactly one deterministic sequence
  // of float ops regardless of the worker count.
  util::parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t begin = b * block;
    const std::size_t len = std::min(block, dim - begin);
    const auto half_slice = [&](std::size_t node) {
      return x_half.subspan(node * dim + begin, len);
    };
    for (std::size_t i = 0; i < n; ++i) {
      const auto mine = half_slice(i);
      const auto out = x_current.subspan(i * dim + begin, len);
      const auto nbrs = mixing.neighbor_weights(i);
      const float self_w = mixing.self_weight(i);
      // Group the weighted row reduction into 3- and 2-term fused passes:
      // same add order as one scaled_copy + deg axpys (bitwise identical),
      // but out is written back once per group instead of once per term.
      std::size_t e = 0;
      if (nbrs.size() >= 2) {
        tensor::weighted_sum3(self_w, mine, nbrs[0].weight,
                              half_slice(nbrs[0].neighbor), nbrs[1].weight,
                              half_slice(nbrs[1].neighbor), out);
        e = 2;
      } else {
        tensor::scaled_copy(self_w, mine, out);
      }
      for (; e + 2 <= nbrs.size(); e += 2) {
        tensor::axpy2(nbrs[e].weight, half_slice(nbrs[e].neighbor),
                      nbrs[e + 1].weight, half_slice(nbrs[e + 1].neighbor),
                      out);
      }
      if (e < nbrs.size()) {
        tensor::axpy(nbrs[e].weight, half_slice(nbrs[e].neighbor), out);
      }
    }
  });
}

}  // namespace skiptrain::graph
