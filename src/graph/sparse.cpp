#include "graph/sparse.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain::graph {

// --- TopologySpec ----------------------------------------------------------

TopologySpec TopologySpec::parse(const std::string& token) {
  TopologySpec spec;
  if (token.empty() || token == "dense") return spec;
  const auto fail = [&] {
    throw std::invalid_argument("topology '" + token +
                                "': expected dense | kregular:<k> | "
                                "csr:<path>");
  };
  if (token.rfind("kregular:", 0) == 0) {
    const std::string arg = token.substr(9);
    if (arg.empty() || arg.size() > 7 ||
        arg.find_first_not_of("0123456789") != std::string::npos) {
      fail();
    }
    const unsigned long long k = std::stoull(arg);
    if (k < 2) {
      throw std::invalid_argument("topology '" + token +
                                  "': kregular degree must be >= 2");
    }
    spec.kind = Kind::kKRegular;
    spec.k = static_cast<std::size_t>(k);
    return spec;
  }
  if (token.rfind("csr:", 0) == 0) {
    spec.path = token.substr(4);
    if (spec.path.empty()) fail();
    spec.kind = Kind::kCsr;
    return spec;
  }
  fail();
  return spec;  // unreachable
}

std::string TopologySpec::token() const {
  switch (kind) {
    case Kind::kDense:
      return "dense";
    case Kind::kKRegular:
      return "kregular:" + std::to_string(k);
    case Kind::kCsr:
      return "csr:" + path;
  }
  return "dense";
}

std::string topology_token(const std::string& raw) {
  return raw.empty() ? "dense" : raw;
}

// --- ImplicitKRegular ------------------------------------------------------

ImplicitKRegular::ImplicitKRegular(std::size_t n, std::size_t k,
                                   std::uint64_t seed)
    : n_(n), k_(k), seed_(seed) {
  if (n < 3) throw std::invalid_argument("ImplicitKRegular: need n >= 3");
  if (k < 2 || k >= n) {
    throw std::invalid_argument("ImplicitKRegular: need 2 <= k < n");
  }
  if (k % 2 == 1) {
    if (n % 2 == 1) {
      throw std::invalid_argument(
          "ImplicitKRegular: odd degree requires even n");
    }
    has_half_ = true;
  }
  const std::size_t m = k / 2;
  const std::size_t max_off = n % 2 == 0 ? n / 2 - 1 : (n - 1) / 2;
  if (m > max_off) {
    throw std::invalid_argument("ImplicitKRegular: degree too large for n");
  }
  // Offset 1 is always present, so the graph contains the Hamiltonian ring
  // 0-1-...-n-1-0 and is connected for every seed; the remaining offsets
  // are a seed-derived distinct sample of [2, max_off].
  offsets_.reserve(m);
  offsets_.push_back(1);
  if (m > 1) {
    util::Rng rng(util::hash_combine(seed, 0x6b726567756c6172ULL));
    for (const std::size_t idx :
         rng.sample_without_replacement(max_off - 1, m - 1)) {
      offsets_.push_back(idx + 2);
    }
    std::sort(offsets_.begin(), offsets_.end());
  }
}

void ImplicitKRegular::neighbors_into(std::size_t node,
                                      std::span<std::size_t> out) const {
  if (out.size() != k_) {
    throw std::invalid_argument("ImplicitKRegular: neighbor buffer size");
  }
  std::size_t w = 0;
  for (const std::size_t o : offsets_) {
    out[w++] = (node + o) % n_;
    out[w++] = (node + n_ - o) % n_;
  }
  if (has_half_) out[w++] = (node + n_ / 2) % n_;
  // k is small; the sort keeps rows in the ascending order Topology's
  // sorted adjacency (and thus the dense MixingMatrix) produces.
  std::sort(out.begin(), out.end());
}

Topology ImplicitKRegular::materialize() const {
  Topology topology(n_);
  std::vector<std::size_t> buf(k_);
  for (std::size_t i = 0; i < n_; ++i) {
    neighbors_into(i, buf);
    for (const std::size_t j : buf) {
      // Every undirected edge shows up in both endpoint rows; add it once.
      if (i < j) topology.add_edge(i, j);
    }
  }
  return topology;
}

std::uint64_t ImplicitKRegular::config_hash() const {
  std::uint64_t h = util::hash_combine(0x6b726567756c6172ULL, n_);
  h = util::hash_combine(h, k_);
  h = util::hash_combine(h, seed_);
  return h;
}

// --- CsrGraph --------------------------------------------------------------

namespace {

[[noreturn]] void csr_fail(const std::string& name, std::size_t line,
                           const std::string& what) {
  throw std::runtime_error("csr file " + name + ":" + std::to_string(line) +
                           ": " + what);
}

bool next_line(std::istream& in, std::string& line, std::size_t& line_no) {
  if (!std::getline(in, line)) return false;
  ++line_no;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

/// Strict decimal parse: digits only, no sign, no overflow.
bool parse_u64(const std::string& token, std::uint64_t& out) {
  if (token.empty() || token.size() > 19 ||
      token.find_first_not_of("0123456789") != std::string::npos) {
    return false;
  }
  out = 0;
  for (const char c : token) {
    out = out * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return true;
}

}  // namespace

CsrGraph CsrGraph::from_topology(const Topology& topology) {
  const std::size_t n = topology.num_nodes();
  CsrGraph graph;
  graph.row_ptr_.reserve(n + 1);
  graph.cols_.reserve(2 * topology.num_edges());
  graph.row_ptr_.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::size_t j : topology.neighbors(i)) {
      graph.cols_.push_back(static_cast<std::uint32_t>(j));
    }
    graph.row_ptr_.push_back(graph.cols_.size());
  }
  return graph;
}

CsrGraph CsrGraph::load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("csr file " + path + ": cannot open");
  }
  return parse(in, path);
}

CsrGraph CsrGraph::parse(std::istream& in, const std::string& name) {
  std::string line;
  std::size_t line_no = 0;
  if (!next_line(in, line, line_no) || line != "skiptrain-csr v1") {
    csr_fail(name, 1, "bad magic, expected 'skiptrain-csr v1'");
  }
  if (!next_line(in, line, line_no)) {
    csr_fail(name, 2, "missing 'nodes <n>' line");
  }
  std::istringstream header(line);
  std::string key, token, extra;
  if (!(header >> key >> token) || key != "nodes" || (header >> extra)) {
    csr_fail(name, 2, "expected 'nodes <n>'");
  }
  std::uint64_t n64 = 0;
  if (!parse_u64(token, n64) || n64 == 0 || n64 > 100'000'000ULL) {
    csr_fail(name, 2, "node count out of range");
  }
  const std::size_t n = static_cast<std::size_t>(n64);

  CsrGraph graph;
  graph.row_ptr_.reserve(n + 1);
  graph.row_ptr_.push_back(0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!next_line(in, line, line_no)) {
      csr_fail(name, line_no + 1,
               "truncated: missing adjacency row for node " +
                   std::to_string(i));
    }
    std::istringstream row(line);
    if (!(row >> token)) csr_fail(name, line_no, "empty adjacency row");
    std::uint64_t deg = 0;
    if (!parse_u64(token, deg)) {
      csr_fail(name, line_no, "bad degree token '" + token + "'");
    }
    if (deg >= n) csr_fail(name, line_no, "degree exceeds n-1");
    std::uint64_t prev = 0;
    for (std::uint64_t e = 0; e < deg; ++e) {
      if (!(row >> token)) {
        csr_fail(name, line_no, "row has fewer columns than its degree");
      }
      std::uint64_t col = 0;
      if (!parse_u64(token, col)) {
        csr_fail(name, line_no, "bad column token '" + token + "'");
      }
      if (col >= n) csr_fail(name, line_no, "column out of range");
      if (col == i) csr_fail(name, line_no, "self-loop");
      if (e > 0 && col <= prev) {
        csr_fail(name, line_no, "columns must be strictly ascending");
      }
      prev = col;
      graph.cols_.push_back(static_cast<std::uint32_t>(col));
    }
    if (row >> token) {
      csr_fail(name, line_no, "trailing tokens after declared degree");
    }
    graph.row_ptr_.push_back(graph.cols_.size());
  }
  while (next_line(in, line, line_no)) {
    if (line.find_first_not_of(" \t") != std::string::npos) {
      csr_fail(name, line_no, "trailing content after last adjacency row");
    }
  }
  // Gossip weights assume an undirected graph: every (i, j) needs its
  // reverse entry.
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint32_t j : graph.neighbors(i)) {
      const auto back = graph.neighbors(j);
      if (!std::binary_search(back.begin(), back.end(),
                              static_cast<std::uint32_t>(i))) {
        csr_fail(name, i + 3,
                 "asymmetric edge (" + std::to_string(i) + ", " +
                     std::to_string(j) + ")");
      }
    }
  }
  if (!graph.is_connected()) {
    throw std::runtime_error("csr file " + name + ": graph is not connected");
  }
  return graph;
}

bool CsrGraph::is_connected() const {
  const std::size_t n = num_nodes();
  if (n < 2) return true;
  std::vector<char> seen(n, 0);
  std::vector<std::uint32_t> stack{0};
  seen[0] = 1;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::uint32_t i = stack.back();
    stack.pop_back();
    for (const std::uint32_t j : neighbors(i)) {
      if (!seen[j]) {
        seen[j] = 1;
        ++visited;
        stack.push_back(j);
      }
    }
  }
  return visited == n;
}

Topology CsrGraph::materialize() const {
  const std::size_t n = num_nodes();
  Topology topology(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (const std::uint32_t j : neighbors(i)) {
      if (i < j) topology.add_edge(i, j);
    }
  }
  return topology;
}

std::uint64_t CsrGraph::content_hash() const {
  std::uint64_t h = util::hash_combine(0x637372ULL, num_nodes());
  for (const std::uint64_t r : row_ptr_) h = util::hash_combine(h, r);
  for (const std::uint32_t c : cols_) h = util::hash_combine(h, c);
  return h;
}

// --- SparseMixing ----------------------------------------------------------

SparseMixing SparseMixing::metropolis_hastings(const ImplicitKRegular& graph) {
  const std::size_t n = graph.num_nodes();
  const std::size_t k = graph.degree();
  SparseMixing mix;
  mix.row_ptr_.resize(n + 1);
  mix.entries_.resize(n * k);
  mix.self_weight_.resize(n);
  // Every node has degree k, so all off-diagonal MH weights are equal; the
  // self weight is still accumulated in float neighbor order to match the
  // dense builder bit for bit.
  const float w = 1.0f / static_cast<float>(k + 1);
  std::vector<std::size_t> buf(k);
  for (std::size_t i = 0; i < n; ++i) {
    mix.row_ptr_[i] = i * k;
    graph.neighbors_into(i, buf);
    float off_diagonal = 0.0f;
    for (std::size_t e = 0; e < k; ++e) {
      mix.entries_[i * k + e] = Entry{buf[e], w};
      off_diagonal += w;
    }
    mix.self_weight_[i] = 1.0f - off_diagonal;
  }
  mix.row_ptr_[n] = n * k;
  return mix;
}

SparseMixing SparseMixing::metropolis_hastings(const CsrGraph& graph) {
  const std::size_t n = graph.num_nodes();
  SparseMixing mix;
  mix.row_ptr_.resize(n + 1);
  mix.entries_.reserve(graph.num_entries());
  mix.self_weight_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    mix.row_ptr_[i] = mix.entries_.size();
    float off_diagonal = 0.0f;
    for (const std::uint32_t j : graph.neighbors(i)) {
      const auto denom = static_cast<float>(
          std::max(graph.degree(i), graph.degree(j)) + 1);
      const float w = 1.0f / denom;
      mix.entries_.push_back(Entry{j, w});
      off_diagonal += w;
    }
    mix.self_weight_[i] = 1.0f - off_diagonal;
  }
  mix.row_ptr_[n] = mix.entries_.size();
  return mix;
}

// --- sharded kernel --------------------------------------------------------

void apply_mixing_sharded(const MixingRef& mixing,
                          std::span<const float> x_half,
                          std::span<float> x_current, std::size_t dim,
                          std::size_t shard_rows) {
  const std::size_t n = mixing.num_nodes();
  if (x_half.size() != n * dim || x_current.size() != n * dim) {
    throw std::invalid_argument("apply_mixing_sharded: plane size mismatch");
  }
  if (n == 0 || dim == 0) return;
  std::size_t shard = shard_rows;
  if (shard == 0) {
    const std::size_t workers =
        std::max<std::size_t>(util::ThreadPool::global().size(), 1);
    // ~8 shards per worker balances the pool without shrinking a shard's
    // contiguous row block below useful prefetch size.
    shard = std::max<std::size_t>(1, n / (8 * workers));
  }
  // Shard-affine scheduling: parallel_for_chunks hands each worker whole
  // contiguous [lo, hi) row ranges, so a shard's output rows are written
  // end to end by one thread (its staging stays shard-local). Every row's
  // float-op sequence is fixed and elementwise, so the output is bitwise
  // identical to apply_mixing_blocked at any shard size or thread count.
  util::ThreadPool::global().parallel_for_chunks(
      0, n,
      [&](std::size_t lo, std::size_t hi) {
        const auto half_row = [&](std::size_t node) {
          return std::span<const float>(x_half.subspan(node * dim, dim));
        };
        for (std::size_t i = lo; i < hi; ++i) {
          mix_row(mixing, i, half_row, x_current.subspan(i * dim, dim));
        }
      },
      shard);
}

}  // namespace skiptrain::graph
