// Communication topologies G = (V, E) for decentralized learning.
//
// The paper evaluates d-regular graphs with d ∈ {6, 8, 10} on 256 nodes;
// this module also provides ring / fully-connected / Erdős–Rényi / star
// generators for the ablation benches and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace skiptrain::graph {

/// Undirected simple graph stored as sorted adjacency lists.
class Topology {
 public:
  Topology() = default;
  explicit Topology(std::size_t num_nodes);

  std::size_t num_nodes() const { return adjacency_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  /// Adds the undirected edge (a, b). Duplicate edges and self-loops are
  /// rejected with std::invalid_argument.
  void add_edge(std::size_t a, std::size_t b);

  bool has_edge(std::size_t a, std::size_t b) const;
  std::size_t degree(std::size_t node) const;
  const std::vector<std::size_t>& neighbors(std::size_t node) const;

  /// Maximum degree across nodes (0 for empty graphs).
  std::size_t max_degree() const;

  /// True when every node has the same degree.
  bool is_regular() const;

  /// BFS connectivity test.
  bool is_connected() const;

  /// Graph diameter via BFS from every node; O(V·E). Returns 0 for graphs
  /// with < 2 nodes and SIZE_MAX for disconnected graphs.
  std::size_t diameter() const;

  std::string describe() const;

 private:
  std::vector<std::vector<std::size_t>> adjacency_;
  std::size_t num_edges_ = 0;
};

/// Cycle over n >= 3 nodes (2-regular).
[[nodiscard]] Topology make_ring(std::size_t n);

/// Complete graph over n >= 2 nodes ((n-1)-regular).
[[nodiscard]] Topology make_fully_connected(std::size_t n);

/// Deterministic circulant d-regular graph: node i connects to i ± 1..d/2
/// (and i + n/2 when d is odd, which requires n even). Always connected.
[[nodiscard]] Topology make_circulant(std::size_t n, std::size_t degree);

/// Random d-regular graph via the pairing (configuration) model with
/// rejection of self-loops/multi-edges, retried until simple and connected.
/// Requires n·d even and d < n. This matches the paper's "d-regular
/// topologies" on 256 nodes.
[[nodiscard]] Topology make_random_regular(std::size_t n, std::size_t degree,
                                           util::Rng& rng);

/// Erdős–Rényi G(n, p); not necessarily connected.
[[nodiscard]] Topology make_erdos_renyi(std::size_t n, double p,
                                        util::Rng& rng);

/// Star: node 0 is the hub (models the FL server topology for comparison).
[[nodiscard]] Topology make_star(std::size_t n);

}  // namespace skiptrain::graph
