#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "data/partition.hpp"

namespace skiptrain::data {

namespace {

/// Class prototypes: rows of a [classes, d] matrix with i.i.d. N(0, sep²/d·d)
/// entries scaled so the expected pairwise prototype distance equals
/// `separation * sqrt(2)` in noise-sigma units.
std::vector<float> make_prototypes(util::Rng& rng, std::size_t classes,
                                   std::size_t dim, double separation) {
  std::vector<float> prototypes(classes * dim);
  const float scale =
      static_cast<float>(separation / std::sqrt(static_cast<double>(dim)));
  rng.fill_normal(prototypes, 0.0f, 1.0f);
  for (auto& v : prototypes) v *= scale;
  return prototypes;
}

/// Writes prototype[c] + optional style + N(0,1) noise into `out`.
void emit_sample(util::Rng& rng, std::span<const float> prototypes,
                 std::size_t dim, std::size_t cls, const float* style,
                 float* out) {
  const float* proto = prototypes.data() + cls * dim;
  for (std::size_t i = 0; i < dim; ++i) {
    float v = proto[i] + static_cast<float>(rng.normal());
    if (style != nullptr) v += style[i];
    out[i] = v;
  }
}

void apply_label_noise(util::Rng& rng, std::vector<std::int32_t>& labels,
                       std::size_t classes, double fraction) {
  if (fraction <= 0.0) return;
  for (auto& label : labels) {
    if (rng.bernoulli(fraction)) {
      label = static_cast<std::int32_t>(rng.uniform_int(classes));
    }
  }
}

Dataset make_iid_pool(util::Rng& rng, std::span<const float> prototypes,
                      std::size_t count, std::size_t dim, std::size_t classes,
                      double style_sigma) {
  Dataset pool;
  pool.features = tensor::Tensor({count, dim});
  pool.labels.resize(count);
  pool.num_classes = classes;
  std::vector<float> style(dim);
  for (std::size_t i = 0; i < count; ++i) {
    const auto cls = static_cast<std::size_t>(rng.uniform_int(classes));
    const float* style_ptr = nullptr;
    if (style_sigma > 0.0) {
      // Each evaluation sample comes from a fresh "writer", matching the
      // IID test distribution the paper evaluates against.
      rng.fill_normal(style, 0.0f, static_cast<float>(style_sigma));
      style_ptr = style.data();
    }
    emit_sample(rng, prototypes, dim, cls, style_ptr,
                pool.features.raw() + i * dim);
    pool.labels[i] = static_cast<std::int32_t>(cls);
  }
  return pool;
}

}  // namespace

FederatedData make_cifar_synthetic(const CifarSynConfig& config) {
  util::Rng master(config.seed);
  util::Rng proto_rng = master.fork(1);
  util::Rng train_rng = master.fork(2);
  util::Rng partition_rng = master.fork(3);
  util::Rng eval_rng = master.fork(4);

  const std::vector<float> prototypes =
      make_prototypes(proto_rng, config.num_classes, config.feature_dim,
                      config.class_separation);

  FederatedData out;
  out.name = "cifar10-syn";

  // Training pool: balanced class counts (like CIFAR-10's 5000/class).
  const std::size_t n = config.nodes * config.samples_per_node;
  out.train.features = tensor::Tensor({n, config.feature_dim});
  out.train.labels.resize(n);
  out.train.num_classes = config.num_classes;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t cls = i % config.num_classes;
    emit_sample(train_rng, prototypes, config.feature_dim, cls, nullptr,
                out.train.features.raw() + i * config.feature_dim);
    out.train.labels[i] = static_cast<std::int32_t>(cls);
  }
  apply_label_noise(train_rng, out.train.labels, config.num_classes,
                    config.label_noise);

  out.node_indices = shard_partition(out.train.labels, config.nodes,
                                     config.shards_per_node, partition_rng);

  // Validation/test: the paper extracts the validation set as 50% of the
  // test set; the two remain disjoint.
  Dataset pool = make_iid_pool(eval_rng, prototypes, config.test_pool,
                               config.feature_dim, config.num_classes,
                               /*style_sigma=*/0.0);
  auto [validation, test] = split_dataset(pool, 0.5, eval_rng);
  out.validation = std::move(validation);
  out.test = std::move(test);
  return out;
}

FederatedData make_femnist_synthetic(const FemnistSynConfig& config) {
  util::Rng master(config.seed);
  util::Rng proto_rng = master.fork(11);
  util::Rng writer_rng = master.fork(12);
  util::Rng eval_rng = master.fork(13);

  const std::vector<float> prototypes =
      make_prototypes(proto_rng, config.num_classes, config.feature_dim,
                      config.class_separation);

  FederatedData out;
  out.name = "femnist-syn";
  out.train.num_classes = config.num_classes;

  // Per-writer sample counts: FEMNIST's top-256 writers have skewed sizes;
  // we draw from a clamped lognormal around the configured mean.
  std::vector<std::size_t> counts(config.nodes);
  std::size_t total = 0;
  for (auto& count : counts) {
    const double factor = std::exp(writer_rng.normal(0.0, 0.35));
    const double mean = static_cast<double>(config.mean_samples_per_node);
    count = static_cast<std::size_t>(
        std::clamp(mean * factor, mean * 0.5, mean * 2.0));
    total += count;
  }

  out.train.features = tensor::Tensor({total, config.feature_dim});
  out.train.labels.resize(total);
  out.node_indices.resize(config.nodes);

  std::vector<float> style(config.feature_dim);
  std::size_t cursor = 0;
  for (std::size_t node = 0; node < config.nodes; ++node) {
    util::Rng rng = writer_rng.fork(node);
    rng.fill_normal(style, 0.0f, static_cast<float>(config.writer_style_sigma));

    // Near-homogeneous class mixture: every writer covers most classes
    // (this is what keeps FEMNIST "mild" non-IID in the paper's Figure 7).
    const std::vector<double> mixture =
        dirichlet_weights(rng, config.class_mixture_alpha, config.num_classes);
    std::vector<double> cumulative(mixture.size());
    double acc = 0.0;
    for (std::size_t c = 0; c < mixture.size(); ++c) {
      acc += mixture[c];
      cumulative[c] = acc;
    }

    out.node_indices[node].reserve(counts[node]);
    for (std::size_t s = 0; s < counts[node]; ++s) {
      const double u = rng.uniform();
      const std::size_t cls = static_cast<std::size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), u) -
          cumulative.begin());
      const std::size_t clamped = std::min(cls, config.num_classes - 1);
      emit_sample(rng, prototypes, config.feature_dim, clamped, style.data(),
                  out.train.features.raw() + cursor * config.feature_dim);
      out.train.labels[cursor] = static_cast<std::int32_t>(clamped);
      out.node_indices[node].push_back(cursor);
      ++cursor;
    }
  }
  apply_label_noise(writer_rng, out.train.labels, config.num_classes,
                    config.label_noise);

  Dataset pool = make_iid_pool(eval_rng, prototypes, config.test_pool,
                               config.feature_dim, config.num_classes,
                               config.writer_style_sigma);
  auto [validation, test] = split_dataset(pool, 0.5, eval_rng);
  out.validation = std::move(validation);
  out.test = std::move(test);
  return out;
}

}  // namespace skiptrain::data
