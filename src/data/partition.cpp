#include "data/partition.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace skiptrain::data {

Partition shard_partition(std::span<const std::int32_t> labels,
                          std::size_t nodes, std::size_t shards_per_node,
                          util::Rng& rng) {
  if (nodes == 0 || shards_per_node == 0) {
    throw std::invalid_argument("shard_partition: nodes and shards must be > 0");
  }
  const std::size_t n = labels.size();
  const std::size_t num_shards = nodes * shards_per_node;
  if (n < num_shards) {
    throw std::invalid_argument("shard_partition: fewer samples than shards");
  }

  // Sort indices by label (stable so generator order breaks ties
  // deterministically).
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return labels[a] < labels[b];
                   });

  // Deal shards to nodes in random order.
  std::vector<std::size_t> shard_ids(num_shards);
  std::iota(shard_ids.begin(), shard_ids.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(shard_ids));

  const std::size_t shard_size = n / num_shards;
  Partition partition(nodes);
  for (std::size_t node = 0; node < nodes; ++node) {
    auto& assigned = partition[node];
    assigned.reserve(shards_per_node * shard_size);
    for (std::size_t s = 0; s < shards_per_node; ++s) {
      const std::size_t shard = shard_ids[node * shards_per_node + s];
      const std::size_t begin = shard * shard_size;
      // The final shard absorbs the remainder samples.
      const std::size_t end =
          (shard == num_shards - 1) ? n : begin + shard_size;
      for (std::size_t i = begin; i < end; ++i) {
        assigned.push_back(order[i]);
      }
    }
  }
  return partition;
}

Partition iid_partition(std::size_t num_samples, std::size_t nodes,
                        util::Rng& rng) {
  if (nodes == 0) throw std::invalid_argument("iid_partition: nodes == 0");
  std::vector<std::size_t> order(num_samples);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(std::span<std::size_t>(order));

  Partition partition(nodes);
  for (std::size_t i = 0; i < num_samples; ++i) {
    partition[i % nodes].push_back(order[i]);
  }
  return partition;
}

/// Draws from Gamma(alpha, 1) via Marsaglia-Tsang (alpha >= 1) with the
/// boost trick for alpha < 1; enough fidelity for partition sampling.
double sample_gamma(util::Rng& rng, double alpha) {
  if (alpha < 1.0) {
    const double u = std::max(rng.uniform(), 1e-12);
    return sample_gamma(rng, alpha + 1.0) * std::pow(u, 1.0 / alpha);
  }
  const double d = alpha - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = rng.normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = rng.uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (std::log(std::max(u, 1e-300)) <
        0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> dirichlet_weights(util::Rng& rng, double alpha,
                                      std::size_t n) {
  std::vector<double> weights(n);
  double total = 0.0;
  for (auto& w : weights) {
    w = sample_gamma(rng, alpha);
    total += w;
  }
  for (auto& w : weights) w /= total;
  return weights;
}

Partition dirichlet_partition(std::span<const std::int32_t> labels,
                              std::size_t nodes, double alpha,
                              util::Rng& rng) {
  if (nodes == 0) throw std::invalid_argument("dirichlet_partition: nodes == 0");
  if (alpha <= 0.0) {
    throw std::invalid_argument("dirichlet_partition: alpha must be > 0");
  }
  std::int32_t max_label = -1;
  for (const auto label : labels) max_label = std::max(max_label, label);
  const std::size_t classes = static_cast<std::size_t>(max_label) + 1;

  // Group sample indices per class, shuffled for random assignment order.
  std::vector<std::vector<std::size_t>> by_class(classes);
  for (std::size_t i = 0; i < labels.size(); ++i) {
    by_class[static_cast<std::size_t>(labels[i])].push_back(i);
  }

  Partition partition(nodes);
  for (std::size_t c = 0; c < classes; ++c) {
    auto& pool = by_class[c];
    rng.shuffle(std::span<std::size_t>(pool));

    // Dirichlet weights for this class across nodes.
    std::vector<double> weights(nodes);
    double total = 0.0;
    for (auto& w : weights) {
      w = sample_gamma(rng, alpha);
      total += w;
    }
    // Convert to cumulative sample counts.
    std::size_t assigned = 0;
    for (std::size_t node = 0; node < nodes; ++node) {
      const auto take = (node == nodes - 1)
                            ? pool.size() - assigned
                            : static_cast<std::size_t>(
                                  std::round(weights[node] / total *
                                             static_cast<double>(pool.size())));
      const std::size_t end = std::min(assigned + take, pool.size());
      for (std::size_t i = assigned; i < end; ++i) {
        partition[node].push_back(pool[i]);
      }
      assigned = end;
    }
  }
  return partition;
}

void validate_partition(const Partition& partition, std::size_t num_samples) {
  std::vector<bool> seen(num_samples, false);
  std::size_t total = 0;
  for (const auto& node : partition) {
    for (const std::size_t idx : node) {
      if (idx >= num_samples) {
        throw std::runtime_error("validate_partition: index out of range");
      }
      if (seen[idx]) {
        throw std::runtime_error("validate_partition: duplicate sample " +
                                 std::to_string(idx));
      }
      seen[idx] = true;
      ++total;
    }
  }
  if (total != num_samples) {
    throw std::runtime_error("validate_partition: " +
                             std::to_string(num_samples - total) +
                             " samples unassigned");
  }
}

}  // namespace skiptrain::data
