#include "data/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace skiptrain::data {

ClassCounts class_distribution(const FederatedData& data) {
  ClassCounts counts(data.num_nodes(),
                     std::vector<std::size_t>(data.train.num_classes, 0));
  for (std::size_t node = 0; node < data.num_nodes(); ++node) {
    for (const std::size_t idx : data.node_indices[node]) {
      ++counts[node][static_cast<std::size_t>(data.train.labels[idx])];
    }
  }
  return counts;
}

std::vector<std::size_t> distinct_classes_per_node(const ClassCounts& counts) {
  std::vector<std::size_t> distinct(counts.size(), 0);
  for (std::size_t node = 0; node < counts.size(); ++node) {
    for (const std::size_t c : counts[node]) {
      if (c > 0) ++distinct[node];
    }
  }
  return distinct;
}

double heterogeneity_index(const ClassCounts& counts) {
  if (counts.empty()) return 0.0;
  const std::size_t classes = counts[0].size();

  // Global label distribution.
  std::vector<double> global(classes, 0.0);
  double total = 0.0;
  for (const auto& node : counts) {
    for (std::size_t c = 0; c < classes; ++c) {
      global[c] += static_cast<double>(node[c]);
      total += static_cast<double>(node[c]);
    }
  }
  if (total == 0.0) return 0.0;
  for (auto& g : global) g /= total;

  double sum_tv = 0.0;
  std::size_t populated_nodes = 0;
  for (const auto& node : counts) {
    double node_total = 0.0;
    for (const std::size_t c : node) node_total += static_cast<double>(c);
    if (node_total == 0.0) continue;
    double tv = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      tv += std::abs(static_cast<double>(node[c]) / node_total - global[c]);
    }
    sum_tv += 0.5 * tv;
    ++populated_nodes;
  }
  return populated_nodes ? sum_tv / static_cast<double>(populated_nodes) : 0.0;
}

std::string render_distribution_plot(const ClassCounts& counts,
                                     std::size_t max_nodes) {
  if (counts.empty()) return "(empty partition)\n";
  const std::size_t nodes = std::min(max_nodes, counts.size());
  const std::size_t classes = counts[0].size();

  std::size_t max_count = 1;
  for (std::size_t node = 0; node < nodes; ++node) {
    for (const std::size_t c : counts[node]) max_count = std::max(max_count, c);
  }

  // Four size buckets mirror the paper's dot sizes.
  const auto glyph = [&](std::size_t count) -> char {
    if (count == 0) return ' ';
    const double frac =
        static_cast<double>(count) / static_cast<double>(max_count);
    if (frac > 0.66) return '#';
    if (frac > 0.33) return '@';
    if (frac > 0.10) return 'o';
    return '.';
  };

  std::ostringstream out;
  out << "class \\ node ";
  for (std::size_t node = 0; node < nodes; ++node) {
    out << node % 10;
  }
  out << '\n';
  for (std::size_t c = 0; c < classes; ++c) {
    out << (c < 10 ? " " : "") << c << "           ";
    for (std::size_t node = 0; node < nodes; ++node) {
      out << glyph(counts[node][c]);
    }
    out << '\n';
  }
  out << "legend: .=small o=medium @=large #=max (" << max_count
      << " samples)\n";
  return out.str();
}

}  // namespace skiptrain::data
