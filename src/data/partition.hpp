// Data partitioners mapping a training set onto n nodes.
//
// The paper uses two schemes:
//  * CIFAR-10: the 2-shard label-sorted partition of McMahan et al. —
//    samples are sorted by label, cut into 2n equal shards, and every node
//    receives two random shards, bounding it to at most 2 distinct labels
//    (strongly non-IID).
//  * FEMNIST: the natural by-writer partition (handled by the generator).
// IID and Dirichlet(α) partitioners are included for the extension benches.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace skiptrain::data {

using Partition = std::vector<std::vector<std::size_t>>;

/// Label-sorted shard partition (McMahan et al. 2017). Sorts sample indices
/// by label, slices them into `nodes * shards_per_node` contiguous shards,
/// and deals `shards_per_node` shards to each node uniformly at random.
/// With shards_per_node = 2 this is the paper's "2-shard non-IID" split.
Partition shard_partition(std::span<const std::int32_t> labels,
                          std::size_t nodes, std::size_t shards_per_node,
                          util::Rng& rng);

/// Uniform random equal-size split.
Partition iid_partition(std::size_t num_samples, std::size_t nodes,
                        util::Rng& rng);

/// Dirichlet(α) label-skew partition (Hsu et al. 2019): for every class, the
/// per-node sample proportions are drawn from Dir(α). Small α (≈0.1) is
/// highly heterogeneous; large α approaches IID.
Partition dirichlet_partition(std::span<const std::int32_t> labels,
                              std::size_t nodes, double alpha, util::Rng& rng);

/// Verifies a partition covers [0, num_samples) exactly once across nodes.
/// Throws std::runtime_error on overlap, omission, or out-of-range indices.
void validate_partition(const Partition& partition, std::size_t num_samples);

/// Gamma(alpha, 1) sampler (Marsaglia–Tsang), exposed for the Dirichlet
/// draws used by both dirichlet_partition and the FEMNIST writer mixtures.
double sample_gamma(util::Rng& rng, double alpha);

/// Normalized Dirichlet(alpha) weight vector of length n.
std::vector<double> dirichlet_weights(util::Rng& rng, double alpha,
                                      std::size_t n);

}  // namespace skiptrain::data
