#include "data/dataset.hpp"

#include <cassert>
#include <stdexcept>

namespace skiptrain::data {

tensor::Shape Dataset::sample_shape() const {
  tensor::Shape shape = features.shape();
  if (shape.empty()) return shape;
  shape.erase(shape.begin());
  return shape;
}

void Dataset::validate() const {
  if (features.rank() == 0 && size() != 0) {
    throw std::runtime_error("Dataset: features missing");
  }
  if (features.rank() > 0 && features.dim(0) != size()) {
    throw std::runtime_error("Dataset: feature/label count mismatch");
  }
  for (const std::int32_t label : labels) {
    if (label < 0 || static_cast<std::size_t>(label) >= num_classes) {
      throw std::runtime_error("Dataset: label out of range");
    }
  }
}

DatasetView::DatasetView(const Dataset* dataset,
                         std::vector<std::size_t> indices)
    : dataset_(dataset), indices_(std::move(indices)) {
  assert(dataset_ != nullptr);
#ifndef NDEBUG
  for (const std::size_t idx : indices_) assert(idx < dataset_->size());
#endif
}

DatasetView DatasetView::whole(const Dataset* dataset) {
  std::vector<std::size_t> all(dataset->size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  return DatasetView(dataset, std::move(all));
}

std::int32_t DatasetView::label(std::size_t i) const {
  assert(i < indices_.size());
  return dataset_->labels[indices_[i]];
}

std::span<const float> DatasetView::sample(std::size_t i) const {
  assert(i < indices_.size());
  const std::size_t d = dataset_->feature_dim();
  return std::span<const float>(dataset_->features.raw() + indices_[i] * d, d);
}

namespace {

tensor::Shape batch_shape(const Dataset& dataset, std::size_t batch) {
  tensor::Shape shape = dataset.features.shape();
  shape[0] = batch;
  return shape;
}

}  // namespace

void DatasetView::sample_batch(util::Rng& rng, std::size_t batch_size,
                               tensor::Tensor& features,
                               std::vector<std::int32_t>& labels) const {
  assert(!empty());
  const std::size_t d = dataset_->feature_dim();
  const tensor::Shape shape = batch_shape(*dataset_, batch_size);
  if (features.shape() != shape) features = tensor::Tensor(shape);
  labels.resize(batch_size);
  for (std::size_t b = 0; b < batch_size; ++b) {
    const std::size_t pick =
        static_cast<std::size_t>(rng.uniform_int(indices_.size()));
    const std::size_t src = indices_[pick];
    const float* sample_ptr = dataset_->features.raw() + src * d;
    std::copy(sample_ptr, sample_ptr + d, features.raw() + b * d);
    labels[b] = dataset_->labels[src];
  }
}

void DatasetView::fill_range(std::size_t start, std::size_t count,
                             tensor::Tensor& features,
                             std::vector<std::int32_t>& labels) const {
  assert(start + count <= size());
  const std::size_t d = dataset_->feature_dim();
  const tensor::Shape shape = batch_shape(*dataset_, count);
  if (features.shape() != shape) features = tensor::Tensor(shape);
  labels.resize(count);
  for (std::size_t b = 0; b < count; ++b) {
    const std::size_t src = indices_[start + b];
    const float* sample_ptr = dataset_->features.raw() + src * d;
    std::copy(sample_ptr, sample_ptr + d, features.raw() + b * d);
    labels[b] = dataset_->labels[src];
  }
}

std::vector<std::size_t> DatasetView::class_histogram() const {
  std::vector<std::size_t> histogram(dataset_->num_classes, 0);
  for (const std::size_t idx : indices_) {
    ++histogram[static_cast<std::size_t>(dataset_->labels[idx])];
  }
  return histogram;
}

DatasetView FederatedData::node_view(std::size_t node) const {
  assert(node < node_indices.size());
  return DatasetView(&train, node_indices[node]);
}

std::pair<Dataset, Dataset> split_dataset(const Dataset& pool,
                                          double first_fraction,
                                          util::Rng& rng) {
  const std::size_t n = pool.size();
  const auto first_count =
      static_cast<std::size_t>(first_fraction * static_cast<double>(n));
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  rng.shuffle(std::span<std::size_t>(order));

  const std::size_t d = pool.feature_dim();
  const auto build = [&](std::size_t begin, std::size_t end) {
    Dataset out;
    tensor::Shape shape = pool.features.shape();
    shape[0] = end - begin;
    out.features = tensor::Tensor(shape);
    out.labels.resize(end - begin);
    out.num_classes = pool.num_classes;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t src = order[i];
      const float* sample_ptr = pool.features.raw() + src * d;
      std::copy(sample_ptr, sample_ptr + d,
                out.features.raw() + (i - begin) * d);
      out.labels[i - begin] = pool.labels[src];
    }
    return out;
  };
  return {build(0, first_count), build(first_count, n)};
}

}  // namespace skiptrain::data
