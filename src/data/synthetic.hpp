// Synthetic stand-ins for the paper's CIFAR-10 and FEMNIST workloads.
//
// Rationale (see DESIGN.md §1): the accuracy phenomena SkipTrain is
// evaluated on are driven by the *partition statistics*, not by image
// content — §4.7 of the paper attributes the CIFAR/FEMNIST gap difference
// entirely to the 2-shard label skew vs. FEMNIST's homogeneous class
// coverage. Both generators therefore produce Gaussian-prototype
// classification tasks with exactly those partition statistics:
//
//  * CifarSynthetic: 10 classes, sorted-label 2-shard partition (≤ 2 labels
//    per node), IID validation/test pools.
//  * FemnistSynthetic: 62 classes, one "writer" per node with a private
//    style shift and a near-uniform class mixture; validation/test drawn
//    from fresh writers (IID across the population).
//
// Class difficulty is controlled by `class_separation` (distance between
// class prototypes in units of the noise sigma) and `label_noise`.
#pragma once

#include <cstddef>

#include "data/dataset.hpp"

namespace skiptrain::data {

struct CifarSynConfig {
  std::size_t nodes = 256;
  std::size_t samples_per_node = 200;  // ≈ 50000/256 in the real dataset
  std::size_t feature_dim = 64;
  std::size_t num_classes = 10;
  std::size_t shards_per_node = 2;   // the paper's 2-shard split
  std::size_t test_pool = 4000;      // split 50/50 into validation/test
  double class_separation = 2.2;     // prototype scale (noise sigma = 1)
  double label_noise = 0.04;         // fraction of uniformly flipped labels
  std::uint64_t seed = 42;
};

struct FemnistSynConfig {
  std::size_t nodes = 256;
  std::size_t mean_samples_per_node = 180;
  std::size_t feature_dim = 64;
  std::size_t num_classes = 62;
  double writer_style_sigma = 0.3;  // per-writer feature shift magnitude
  double class_mixture_alpha = 5.0; // Dirichlet over classes per writer
  std::size_t test_pool = 4000;
  // Calibrated so converged test accuracy lands in the paper's ~78-79%
  // band (62 well-separated classes, mild writer shift).
  double class_separation = 5.0;
  double label_noise = 0.02;
  std::uint64_t seed = 42;
};

/// Builds the synthetic CIFAR-10 workload with the 2-shard non-IID
/// partition. Deterministic in `config.seed`.
[[nodiscard]] FederatedData make_cifar_synthetic(const CifarSynConfig& config);

/// Builds the synthetic FEMNIST workload with the natural per-writer
/// partition. Deterministic in `config.seed`.
[[nodiscard]] FederatedData make_femnist_synthetic(
    const FemnistSynConfig& config);

}  // namespace skiptrain::data
