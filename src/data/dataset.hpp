// Dataset containers for the decentralized-learning workloads.
//
// A Dataset owns a dense [N, d...] feature tensor plus integer labels.
// A DatasetView is a non-owning index subset — each simulated node holds a
// view over the shared training set (its shard D_i), so 256 nodes do not
// replicate sample storage.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace skiptrain::data {

struct Dataset {
  tensor::Tensor features;           // [N, d...] row-major
  std::vector<std::int32_t> labels;  // size N
  std::size_t num_classes = 0;

  std::size_t size() const { return labels.size(); }
  /// Flattened feature count per sample.
  std::size_t feature_dim() const {
    return size() == 0 ? 0 : features.numel() / size();
  }
  /// Per-sample feature shape excluding the sample dimension.
  tensor::Shape sample_shape() const;

  /// Throws std::runtime_error when internal invariants are violated
  /// (size mismatch, label out of range).
  void validate() const;
};

/// Non-owning subset of a Dataset, identified by sample indices.
class DatasetView {
 public:
  DatasetView() = default;
  DatasetView(const Dataset* dataset, std::vector<std::size_t> indices);

  /// View over the full dataset.
  static DatasetView whole(const Dataset* dataset);

  std::size_t size() const { return indices_.size(); }
  bool empty() const { return indices_.empty(); }
  const Dataset& dataset() const { return *dataset_; }
  const std::vector<std::size_t>& indices() const { return indices_; }

  std::int32_t label(std::size_t i) const;
  std::span<const float> sample(std::size_t i) const;

  /// Assembles a mini-batch by sampling `batch_size` examples uniformly at
  /// random with replacement (the ξ_i ~ D_i draw of Algorithm 1, line 5).
  /// `features` is resized to [batch_size, d...]; labels likewise.
  void sample_batch(util::Rng& rng, std::size_t batch_size,
                    tensor::Tensor& features,
                    std::vector<std::int32_t>& labels) const;

  /// Copies the contiguous index range [start, start+count) into a batch —
  /// used by deterministic evaluation sweeps.
  void fill_range(std::size_t start, std::size_t count,
                  tensor::Tensor& features,
                  std::vector<std::int32_t>& labels) const;

  /// Histogram of labels within this view (size = num_classes).
  std::vector<std::size_t> class_histogram() const;

 private:
  const Dataset* dataset_ = nullptr;
  std::vector<std::size_t> indices_;
};

/// A complete federated workload: the shared training set, the per-node
/// index partition, and the validation/test splits (the paper carves the
/// validation set out of 50% of the test set; the two are disjoint).
struct FederatedData {
  std::string name;
  Dataset train;
  std::vector<std::vector<std::size_t>> node_indices;
  Dataset validation;
  Dataset test;

  std::size_t num_nodes() const { return node_indices.size(); }
  DatasetView node_view(std::size_t node) const;
};

/// Splits `pool` into two disjoint datasets by sampling `first_fraction`
/// of it (without replacement) into the first output.
std::pair<Dataset, Dataset> split_dataset(const Dataset& pool,
                                          double first_fraction,
                                          util::Rng& rng);

}  // namespace skiptrain::data
