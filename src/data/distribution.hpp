// Partition statistics: the quantities behind the paper's Figure 7 (class
// distribution dot plot) and the §4.7 heterogeneity discussion.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace skiptrain::data {

/// counts[node][class] = number of samples of `class` held by `node`.
using ClassCounts = std::vector<std::vector<std::size_t>>;

/// Computes the per-node class histogram of a federated workload.
[[nodiscard]] ClassCounts class_distribution(const FederatedData& data);

/// Number of classes with at least one sample, per node.
[[nodiscard]] std::vector<std::size_t> distinct_classes_per_node(
    const ClassCounts& counts);

/// Mean total-variation distance between each node's label distribution and
/// the global label distribution. 0 = perfectly IID; (the 2-shard CIFAR
/// split scores far higher than the FEMNIST writer split).
[[nodiscard]] double heterogeneity_index(const ClassCounts& counts);

/// Renders the Figure 7 dot plot as ASCII art: rows = classes, columns =
/// nodes, glyph size by sample count (" .o@#"). Limited to `max_nodes`
/// columns (the paper shows the first 10 nodes).
[[nodiscard]] std::string render_distribution_plot(const ClassCounts& counts,
                                                   std::size_t max_nodes = 10);

}  // namespace skiptrain::data
