#include "sim/node.hpp"

#include "nn/loss.hpp"

namespace skiptrain::sim {

Node::Node(std::size_t id, const nn::Sequential& prototype,
           data::DatasetView data, nn::SgdOptions sgd, std::uint64_t seed)
    : id_(id),
      model_(prototype.clone()),
      optimizer_(sgd),
      data_(std::move(data)),
      rng_(util::hash_combine(seed, 0x0de50000ULL + id)) {}

double Node::train_local(std::size_t local_steps, std::size_t batch_size) {
  double total_loss = 0.0;
  for (std::size_t step = 0; step < local_steps; ++step) {
    data_.sample_batch(rng_, batch_size, batch_features_, batch_labels_);
    model_.zero_grad();
    const tensor::Tensor& logits = model_.forward(batch_features_);
    if (grad_logits_.shape() != logits.shape()) {
      grad_logits_ = tensor::Tensor(logits.shape());
    }
    const nn::LossResult result =
        nn::softmax_cross_entropy(logits, batch_labels_, grad_logits_);
    model_.backward(batch_features_, grad_logits_);
    optimizer_.step(model_);
    total_loss += result.loss;
  }
  return local_steps > 0 ? total_loss / static_cast<double>(local_steps) : 0.0;
}

}  // namespace skiptrain::sim
