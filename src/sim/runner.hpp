// High-level experiment API: one call runs a full decentralized-learning
// experiment (dataset -> topology -> scheduler -> engine -> metrics) and
// returns the recorded series. This is the entry point the examples and
// bench harnesses build on.
#pragma once

#include <cstdint>
#include <string>

#include "core/scheduler.hpp"
#include "data/dataset.hpp"
#include "energy/device.hpp"
#include "metrics/recorder.hpp"
#include "nn/sequential.hpp"
#include "obs/phase.hpp"
#include "quant/codec.hpp"

namespace skiptrain::sim {

enum class Algorithm {
  kDpsgd,                 // Algorithm 1 baseline
  kDpsgdAllReduce,        // D-PSGD with global averaging (Figure 1 upper bound)
  kSkipTrain,             // §3.1
  kSkipTrainConstrained,  // §3.2
  kGreedy,                // §3.2 baseline
  kSkipTrainHarvest,      // harvest-aware: train probability rides daylight
  kDealDecremental,       // DEAL-style decremental participation
};

[[nodiscard]] const char* algorithm_name(Algorithm algorithm);

struct RunOptions {
  Algorithm algorithm = Algorithm::kSkipTrain;
  std::size_t gamma_train = 4;  // Γtrain (SkipTrain variants)
  std::size_t gamma_sync = 4;   // Γsync
  std::size_t total_rounds = 240;

  // Topology: random d-regular graph (the paper's setting).
  std::size_t degree = 6;

  // Topology axis (graph::TopologySpec): "" | "dense" keeps the paper's
  // materialized random d-regular graph above; "kregular:<k>" switches to
  // the implicit seed-derived k-regular circulant (O(k) topology state,
  // row-sharded aggregation — the large-fleet path); "csr:<path>" loads an
  // arbitrary sparse graph from a CSR file. Non-dense topologies bill
  // exchange energy at their actual per-node neighbor counts and are
  // incompatible with Algorithm::kDpsgdAllReduce.
  std::string topology{};

  // Local training (Table 1 analogues; defaults are the scaled config).
  std::size_t local_steps = 5;
  std::size_t batch_size = 32;
  float learning_rate = 0.1f;

  // Optional masked sparse exchange: k coordinates per round from a
  // round-shared random mask (0 = dense, the paper's setting).
  std::size_t sparse_exchange_k = 0;

  // Wire codec for exchanged rows (identity = float32, the paper's
  // setting). Selects both the engine's staging-boundary encode/decode and
  // the energy model's bytes-per-param (quant::comm_model_for), so the
  // billed wire volume always matches what the codec ships.
  quant::Codec exchange_codec = quant::Codec::kIdentity;

  // Energy model: which paper workload's traces/budgets to charge.
  energy::Workload workload = energy::Workload::kCifar10;

  // Named energy-harvesting/churn scenario (scenario::make_config):
  // "" | "none" (always powered), "solar", "churn", or "trace:<path>".
  // Enabled scenarios give every node a battery fed by the harvest
  // process; nodes brown out, freeze, and re-enter as charge allows.
  std::string scenario{};

  // Deterministic fault plan (fault::make_plan): "" | "none" keeps every
  // path lossless and bitwise identical to a fault-free build;
  // "drop:P,corrupt:P,dup:P,crash:P,io:P,..." injects seed-derived
  // per-link message loss/corruption/duplication, node crash-restarts,
  // and checkpoint-write failures. All draws are stateless functions of
  // (seed, round, src, dst), so faulted runs stay bit-identical across
  // thread counts and through kill/resume.
  std::string faults{};

  // Scales the canonical τ_i budgets (Table 2). Scaled-horizon experiments
  // should set this to total_rounds / paper_total_rounds so that budgets
  // bind at the same proportion of the run as in the paper.
  double budget_scale = 1.0;

  // Evaluation.
  std::size_t eval_every = 0;        // 0 = every Γtrain+Γsync rounds (paper)
  std::size_t eval_max_samples = 1000;  // cap eval sweep for speed (0 = all)
  bool eval_on_validation = false;   // default: test split
  bool evaluate_allreduce = false;   // also score the averaged model
  bool track_consensus = false;

  // Checkpointing (ckpt/fleet_image). When `checkpoint_path` is set and
  // `checkpoint_every` > 0, the run writes an experiment image (engine
  // state + recorder series) every checkpoint_every rounds, atomically.
  // With `resume`, an existing image at checkpoint_path is restored and
  // the run continues from its round — producing metrics byte-identical
  // to an uninterrupted run (the intermittent-fleet setting of §3.2
  // applied to the simulator itself). A resume with no image present is
  // simply a fresh run.
  std::string checkpoint_path{};
  std::size_t checkpoint_every = 0;
  bool resume = false;
  // Multi-generation image retention: keep the N most recent images
  // (checkpoint_path, .g1, .g2, ...). A resume falls back to the newest
  // generation that validates, so one corrupt/torn image costs at most
  // checkpoint_every rounds of recomputation. 0/1 = single image.
  std::size_t keep_generations = 1;
  // Opaque identity of THIS run's full configuration, stored in every
  // image and validated on resume: a stale image written under a
  // different configuration (e.g. an edited sweep grid) is ignored and
  // the run starts fresh instead of resuming wrong state. Sweeps pass
  // ckpt::trial_fingerprint; empty disables the check.
  std::string checkpoint_fingerprint{};

  std::uint64_t seed = 42;
};

struct ExperimentResult {
  metrics::Recorder recorder{"unnamed"};
  std::string algorithm;
  std::string dataset;
  std::size_t nodes = 0;
  std::size_t degree = 0;

  double final_mean_accuracy = 0.0;
  double final_std_accuracy = 0.0;
  double final_allreduce_accuracy = 0.0;
  double best_mean_accuracy = 0.0;

  double total_training_wh = 0.0;
  double total_comm_wh = 0.0;
  double fleet_budget_wh = 0.0;  // Σ τ_i · e_i (Table 4's ceiling)

  /// Coordinated training rounds actually scheduled (≤ total_rounds).
  std::size_t coordinated_training_rounds = 0;

  /// Scenario telemetry (the always-powered defaults when no scenario is
  /// active): fraction of node-rounds the fleet was up, node-rounds spent
  /// down, and total energy the harvest process delivered.
  double mean_availability = 1.0;
  std::size_t down_node_rounds = 0;
  double harvested_wh = 0.0;

  /// Fault telemetry (all zero / 1.0 when no fault plan is active):
  /// messages lost outright, frames rejected by the receiver's CRC
  /// check, duplicated deliveries absorbed idempotently, node-rounds
  /// spent in crash outages, and the fraction of attempted deliveries
  /// that arrived intact.
  std::size_t dropped_messages = 0;
  std::size_t corrupt_messages = 0;
  std::size_t duplicated_messages = 0;
  std::size_t crash_down_rounds = 0;
  double delivery_rate = 1.0;

  /// Final per-node test accuracies (index = node id); feeds the §5.1
  /// device-fairness analysis.
  std::vector<double> final_per_node_accuracy;

  /// Runtime telemetry for THIS process's execution of the trial: phase
  /// wall-time breakdown, exact wire bytes, rounds executed. Observational
  /// only — never serialized into trial-store results or checkpoint
  /// images, so a resumed trial reports only the work it re-ran (zero if
  /// served entirely from the store).
  obs::TrialTelemetry telemetry;
};

/// Runs one experiment. `prototype` is the initial model shared by all
/// nodes (initialise it before calling, e.g. with nn::initialize).
ExperimentResult run_experiment(const data::FederatedData& data,
                                const nn::Sequential& prototype,
                                const RunOptions& options);

}  // namespace skiptrain::sim
