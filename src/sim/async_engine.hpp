// Asynchronous SkipTrain — the extension the paper leaves as future work
// (§5.3: "asynchronous algorithms offer a more practical approach by
// relaxing the need for strict synchronization").
//
// Discrete-event semantics: each node runs its own activation loop on its
// own clock. On activation, a node
//   1. advances its LOCAL round counter and asks the RoundScheduler whether
//      this local round trains (SkipTrain's Γ-alternation applies per-node,
//      no global barrier);
//   2. trains for its device-specific duration (slow devices activate less
//      often — no straggler stalls the fleet), or performs a cheap
//      sync-only activation;
//   3. merges the freshest models its neighbors pushed since its last
//      activation (uniform average over {self} ∪ fresh senders);
//   4. pushes its merged model to every neighbor's mailbox;
//   5. schedules its next activation at now + duration.
//
// The event queue is processed serially with (time, node-id) ordering, so
// runs are exactly reproducible. Energy uses the same accountant as the
// synchronous engine.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "core/scheduler.hpp"
#include "data/dataset.hpp"
#include "energy/accountant.hpp"
#include "fault/fault.hpp"
#include "graph/topology.hpp"
#include "nn/sequential.hpp"
#include "obs/phase.hpp"
#include "plane/plane.hpp"
#include "quant/codec.hpp"
#include "scenario/scenario.hpp"
#include "sim/node.hpp"

namespace skiptrain::ckpt {
class ImageReader;
class ImageWriter;
}  // namespace skiptrain::ckpt

namespace skiptrain::sim {

namespace detail {
struct EngineIdentity;
}  // namespace detail

struct AsyncConfig {
  std::size_t local_steps = 5;
  std::size_t batch_size = 32;
  float learning_rate = 0.1f;
  std::uint64_t seed = 42;
  /// Duration of a sync-only activation relative to a training activation
  /// (communication + aggregation are fast; cf. the >200x energy ratio).
  double sync_duration_factor = 0.05;

  /// Wire format of pushed models (quant/codec.hpp). Non-identity codecs
  /// make every outbox push carry an encoded payload; neighbors merge the
  /// decoded image. Bill at the matching volume by building the
  /// accountant's CommModel via quant::comm_model_for(exchange_codec).
  quant::Codec exchange_codec = quant::Codec::kIdentity;

  /// Identity of a non-dense topology (ImplicitKRegular::config_hash or a
  /// CsrGraph content hash) — see EngineConfig::topology_hash. Sparse
  /// topologies reach the async engine as a materialized O(n·k) Topology
  /// (ImplicitKRegular/CsrGraph::materialize(), owned by the caller);
  /// total async memory stays O(n·dim) models/outbox + O(n·k) adjacency.
  /// 0 (the default) keeps pre-topology-axis images byte-compatible.
  std::uint64_t topology_hash = 0;

  /// Energy-harvesting/churn scenario (scenario/scenario.hpp). Disabled
  /// (the default) keeps the pre-scenario event loop byte-for-byte.
  /// Enabled, a node's battery steps on its LOCAL activation clock: a
  /// down node burns a dormant activation (no train/merge/push/billing)
  /// and polls again after dormant_wait_factor x its training duration,
  /// so its model freezes in place until harvest revives it.
  scenario::ScenarioConfig scenario{};

  /// Deterministic fault plan (fault/fault.hpp). Link faults are drawn at
  /// push time per directed (sender, neighbor) edge on the sender's LOCAL
  /// round: a dropped or CRC-rejected frame never flags the neighbor's
  /// mailbox slot (the merge simply sees no fresh delivery), and a
  /// duplicate lands in the already-flagged slot — absorbed by
  /// construction, so the engine is idempotent to duplicated deliveries.
  /// Crash faults burn dormant activations exactly like scenario churn.
  fault::FaultPlan faults{};
};

class AsyncGossipEngine {
 public:
  /// `train_seconds[i]` is node i's wall-clock duration for one training
  /// activation (derived from its device trace). References must outlive
  /// the engine.
  AsyncGossipEngine(const nn::Sequential& prototype,
                    const data::FederatedData& data,
                    const graph::Topology& topology,
                    const core::RoundScheduler& scheduler,
                    energy::EnergyAccountant accountant,
                    std::vector<double> train_seconds, AsyncConfig config);

  /// Processes events until the simulated clock passes `horizon_seconds`
  /// (cumulative across calls — run_until(10) then run_until(20) works).
  void run_until(double horizon_seconds);

  double now() const { return now_; }
  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t total_activations() const { return activations_; }
  std::size_t total_trainings() const { return trainings_; }
  std::size_t local_rounds(std::size_t node) const;

  nn::Sequential& model(std::size_t node) { return nodes_[node]->model(); }
  const energy::EnergyAccountant& accountant() const { return accountant_; }

  /// Battery/churn state when a scenario is enabled; nullptr otherwise.
  const scenario::FleetScenario* scenario() const { return scenario_.get(); }

  /// Lifetime fault telemetry (all zero without a fault plan);
  /// checkpointed and restored, like the sync engine's.
  const fault::FaultStats& fault_stats() const { return fault_stats_; }

  /// Per-phase wall time accumulated by activate() (observational only —
  /// never serialized, never fed back into scheduling). The event loop is
  /// serial, so accumulation is single-writer.
  const obs::PhaseStats& phase_stats() const { return phase_stats_; }

  /// Exact codec wire bytes pushed to outboxes so far (one encoded model
  /// per non-dormant activation).
  std::uint64_t wire_bytes_sent() const { return wire_bytes_; }

  /// Zero-copy view of every node's current model (row i = node i).
  plane::ConstMatrixView node_parameters() const { return models_.view(); }

  /// Serializes the engine's complete mutable state: the simulated clock,
  /// activation/training counters, per-node local round counters, the
  /// model and outbox arenas (row-arena-contiguous blobs), mailbox
  /// freshness flags, the pending event queue, accountant tallies, and
  /// per-node RNG/optimizer state. Part of the fleet-image format
  /// (ckpt/fleet_image; callers normally go through save_fleet_image).
  void save_state(ckpt::ImageWriter& writer) const;

  /// Restores state saved by save_state into an engine constructed with
  /// the SAME parameters. A restored engine continues its event loop
  /// bit-exactly: run_until(H) after restore at time h produces the same
  /// models as an uninterrupted run_until(H). Throws std::runtime_error
  /// when the image does not match this engine's construction — checked
  /// before anything mutates; but a file corrupted PAST its valid
  /// identity prefix can throw mid-restore, leaving this engine's state
  /// unspecified: discard and rebuild it after a restore failure.
  void restore_state(ckpt::ImageReader& reader);

 private:
  detail::EngineIdentity identity() const;

  struct Event {
    double time;
    std::size_t node;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return node > other.node;  // deterministic tie-break
    }
  };

  void activate(std::size_t node);

  const graph::Topology& topology_;
  const core::RoundScheduler& scheduler_;
  energy::EnergyAccountant accountant_;
  std::vector<double> train_seconds_;
  AsyncConfig config_;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::size_t> local_round_;

  // Node models live as rows of models_ (zero-copy merge/train); outbox_
  // is the compact staging pool — ONE row per sender holding its most
  // recently pushed model. A push is therefore a single row copy, and a
  // receiver's mailbox entry is just the sender's plane row index plus a
  // freshness flag: fresh_[receiver][slot] (slot order matches
  // topology_.neighbors(receiver)) marks unconsumed deliveries. This
  // replaces the former per-edge n·deg·dim mailbox copies with n·dim
  // staging storage.
  plane::RowArena models_;
  plane::RowArena outbox_;
  std::vector<std::vector<char>> fresh_;

  // Quantized pushes (non-identity codec only): a push encodes the model
  // into the wire payload and materializes its decode into the sender's
  // outbox row, so every receiver merges the identical decoded image
  // without re-running the codec. The event loop is serial and nothing
  // reads a payload after its decode, so ONE scratch buffer serves every
  // sender (per-sender payloads would hold ~n·dim dead wire bytes).
  std::unique_ptr<quant::RowCodec> codec_;
  quant::QuantizedRow wire_scratch_;

  // Fault-plan wire staging (link faults only): the identity fallback
  // codec packs float32 pushes into wire_scratch_ when no exchange codec
  // is configured, and frame_scratch_ holds the pushed payload's CRC32C
  // frame (the event loop is serial, so one buffer serves every sender).
  std::unique_ptr<quant::RowCodec> fault_codec_;
  std::vector<std::uint8_t> frame_scratch_;
  fault::FaultStats fault_stats_;

  // Scenario state (nullptr when config_.scenario is disabled). The event
  // loop is serial, so batteries step with no synchronization concerns.
  std::unique_ptr<scenario::FleetScenario> scenario_;

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  double now_ = 0.0;
  std::size_t activations_ = 0;
  std::size_t trainings_ = 0;

  // Telemetry (observational only; excluded from save_state/restore_state
  // so checkpoint images stay byte-identical with telemetry on or off).
  obs::PhaseStats phase_stats_;
  std::uint64_t wire_bytes_ = 0;
  std::size_t row_wire_bytes_ = 0;  // precomputed exact bytes per push
};

}  // namespace skiptrain::sim
