// The synchronous decentralized-learning round engine.
//
// Executes the skeleton shared by D-PSGD, SkipTrain, SkipTrain-constrained
// and Greedy (Algorithm 2 of the paper): per round t,
//
//   1. decide   — ask the RoundScheduler which nodes train (serial, cheap,
//                 and where all energy accounting happens so the
//                 accountant needs no locking);
//   2. train    — selected nodes run E local SGD steps in parallel,
//                 producing x_i^{t-1/2}; non-training nodes keep x_i^{t-1};
//   3. exchange — every node shares x^{t-1/2} with its neighbors
//                 (modelled as reading the peer's snapshot buffer);
//   4. aggregate— x_i^t = Σ_j W_ji x_j^{t-1/2}, double-buffered so reads
//                 and writes never alias.
//
// Determinism: per-node RNG streams + counter-based scheduler draws make
// the result independent of worker-thread interleaving.
#pragma once

#include <memory>
#include <span>

#include "core/compression.hpp"
#include "core/scheduler.hpp"
#include "data/dataset.hpp"
#include "energy/accountant.hpp"
#include "graph/mixing.hpp"
#include "nn/sequential.hpp"
#include "sim/node.hpp"

namespace skiptrain::sim {

struct EngineConfig {
  std::size_t local_steps = 5;   // E
  std::size_t batch_size = 32;   // |ξ|
  float learning_rate = 0.1f;    // η
  std::uint64_t seed = 42;

  /// When non-zero, each round exchanges only k coordinates selected by a
  /// round-shared random mask (core::shared_round_mask); receivers keep
  /// their own values elsewhere. 0 = dense exchange (the paper's setting).
  /// Communication energy is billed at the compressed wire volume (k/dim —
  /// the mask is derived from the shared seed, so no indices travel).
  std::size_t sparse_exchange_k = 0;
};

class RoundEngine {
 public:
  /// All reference parameters must outlive the engine. `prototype`
  /// supplies the shared initial model x⁰ (cloned per node).
  RoundEngine(const nn::Sequential& prototype, const data::FederatedData& data,
              const graph::MixingMatrix& mixing,
              const core::RoundScheduler& scheduler,
              energy::EnergyAccountant accountant, EngineConfig config);

  struct RoundOutcome {
    core::RoundKind kind = core::RoundKind::kTraining;
    std::size_t nodes_trained = 0;
    double mean_local_loss = 0.0;  // over nodes that trained
  };

  /// Executes one full round; `rounds_executed()` becomes t afterwards.
  RoundOutcome run_round();

  /// Convenience: runs `count` consecutive rounds.
  void run_rounds(std::size_t count);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t rounds_executed() const { return round_; }

  nn::Sequential& model(std::size_t node) { return nodes_[node]->model(); }
  std::span<std::unique_ptr<Node>> nodes() { return nodes_; }

  /// Snapshot of every node's current parameters x_i^t.
  const std::vector<std::vector<float>>& node_parameters() const {
    return params_current_;
  }

  const energy::EnergyAccountant& accountant() const { return accountant_; }
  const core::RoundScheduler& scheduler() const { return scheduler_; }

 private:
  void refresh_current_parameters();

  const graph::MixingMatrix& mixing_;
  const core::RoundScheduler& scheduler_;
  energy::EnergyAccountant accountant_;
  EngineConfig config_;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::size_t round_ = 0;

  // Double buffers: params_half_[i] = x_i^{t-1/2}, params_current_[i] = x_i^t.
  std::vector<std::vector<float>> params_half_;
  std::vector<std::vector<float>> params_current_;
  std::vector<std::uint32_t> round_mask_;  // sparse_exchange_k mode
  std::vector<char> train_flags_;
  std::vector<double> local_losses_;
};

}  // namespace skiptrain::sim
