// The synchronous decentralized-learning round engine.
//
// Executes the skeleton shared by D-PSGD, SkipTrain, SkipTrain-constrained
// and Greedy (Algorithm 2 of the paper): per round t,
//
//   1. decide   — ask the RoundScheduler which nodes train (serial, cheap,
//                 and where all energy accounting happens so the
//                 accountant needs no locking);
//   2. train    — selected nodes run E local SGD steps in parallel,
//                 producing x_i^{t-1/2}; non-training nodes keep x_i^{t-1};
//   3. exchange — every node shares x^{t-1/2} with its neighbors
//                 (modelled as reading the peer's plane row);
//   4. aggregate— x_i^t = Σ_j W_ji x_j^{t-1/2}, double-buffered so reads
//                 and writes never alias.
//
// Storage: all n models live as rows of one contiguous ParameterPlane and
// each node's nn::Sequential views its row directly, so training writes
// x^{t-1/2} in place and the aggregate phase is a single blocked
// plane-to-plane kernel (plane::apply_mixing) — no get_parameters /
// set_parameters copies anywhere in the per-round path. The sparse
// (masked) exchange instead stages the k masked coordinates of every row
// into a compact pool and updates rows in place, reading only staged
// pre-update values.
//
// Determinism: per-node RNG streams + counter-based scheduler draws +
// column-block-owned aggregation make the result independent of
// worker-thread interleaving.
#pragma once

#include <memory>
#include <span>

#include "core/compression.hpp"
#include "core/scheduler.hpp"
#include "data/dataset.hpp"
#include "energy/accountant.hpp"
#include "fault/fault.hpp"
#include "graph/mixing.hpp"
#include "graph/sparse.hpp"
#include "nn/sequential.hpp"
#include "obs/phase.hpp"
#include "plane/plane.hpp"
#include "quant/codec.hpp"
#include "scenario/scenario.hpp"
#include "sim/node.hpp"

namespace skiptrain::ckpt {
class ImageReader;
class ImageWriter;
}  // namespace skiptrain::ckpt

namespace skiptrain::sim {

namespace detail {
struct EngineIdentity;
}  // namespace detail

struct EngineConfig {
  std::size_t local_steps = 5;   // E
  std::size_t batch_size = 32;   // |ξ|
  float learning_rate = 0.1f;    // η
  std::uint64_t seed = 42;

  /// When non-zero, each round exchanges only k coordinates selected by a
  /// round-shared random mask (core::shared_round_mask); receivers keep
  /// their own values elsewhere. 0 = dense exchange (the paper's setting).
  /// Communication energy is billed at the compressed wire volume (k/dim —
  /// the mask is derived from the shared seed, so no indices travel).
  std::size_t sparse_exchange_k = 0;

  /// Wire format of exchanged rows (quant/codec.hpp). kIdentity keeps the
  /// float32 fast path bit-for-bit (no staging copy); other codecs
  /// encode each outgoing row and decode at the staging boundary, so
  /// receivers aggregate exactly what crossed the wire. Composes with
  /// sparse_exchange_k: the k masked values are what gets quantized.
  /// NOTE: the caller is responsible for billing at the matching wire
  /// volume by building the accountant's CommModel via
  /// quant::comm_model_for(exchange_codec).
  quant::Codec exchange_codec = quant::Codec::kIdentity;

  /// Identity of a non-dense topology (ImplicitKRegular::config_hash or a
  /// CsrGraph content hash). Folded into the checkpoint-image identity so
  /// a resume under a different gossip graph is refused; 0 (the dense
  /// default) keeps pre-topology-axis images byte-compatible.
  std::uint64_t topology_hash = 0;

  /// Energy-harvesting/churn scenario (scenario/scenario.hpp). Disabled
  /// (the default) keeps every pre-scenario code path — and its bytes —
  /// untouched. Enabled, each node pays its battery for training and
  /// exchange; a down node's model freezes in place and it is masked out
  /// of the aggregation until recharge. Rounds where every node is up
  /// still run the blocked fast-path kernels bit-identically.
  scenario::ScenarioConfig scenario{};

  /// Deterministic fault plan (fault/fault.hpp). Disabled (the default)
  /// keeps every pre-fault code path — and its bytes — untouched. With
  /// link faults, every exchanged row ships as a CRC32C-framed wire
  /// payload; drops and CRC-rejected corruptions degrade through the
  /// masked-aggregation difference form (lost neighbor mass reverts to
  /// self). With crash faults, seed-derived crash-restart outages mark
  /// nodes down exactly like scenario churn.
  fault::FaultPlan faults{};
};

class RoundEngine {
 public:
  /// All reference parameters must outlive the engine. `prototype`
  /// supplies the shared initial model x⁰ (cloned per node, then bound
  /// onto this engine's parameter plane). `mixing` converts implicitly
  /// from a MixingMatrix (dense) or a SparseMixing (kregular/csr
  /// topologies — aggregation then runs the row-sharded kernel); the
  /// referenced mixing must outlive the engine either way.
  RoundEngine(const nn::Sequential& prototype, const data::FederatedData& data,
              graph::MixingRef mixing, const core::RoundScheduler& scheduler,
              energy::EnergyAccountant accountant, EngineConfig config);

  struct RoundOutcome {
    core::RoundKind kind = core::RoundKind::kTraining;
    std::size_t nodes_trained = 0;
    double mean_local_loss = 0.0;  // over nodes that trained
  };

  /// Executes one full round; `rounds_executed()` becomes t afterwards.
  RoundOutcome run_round();

  /// Convenience: runs `count` consecutive rounds.
  void run_rounds(std::size_t count);

  std::size_t num_nodes() const { return nodes_.size(); }
  std::size_t rounds_executed() const { return round_; }

  nn::Sequential& model(std::size_t node) { return nodes_[node]->model(); }
  std::span<std::unique_ptr<Node>> nodes() { return nodes_; }

  /// Zero-copy view of every node's current parameters x_i^t: row i of the
  /// plane IS node i's model storage. Row spans are invalidated by the
  /// buffer flip inside the next dense run_round().
  plane::ConstMatrixView node_parameters() const {
    return plane_.current().view();
  }

  const plane::ParameterPlane& parameter_plane() const { return plane_; }

  const energy::EnergyAccountant& accountant() const { return accountant_; }
  const core::RoundScheduler& scheduler() const { return scheduler_; }

  /// Battery/churn state when a scenario is enabled; nullptr otherwise.
  const scenario::FleetScenario* scenario() const { return scenario_.get(); }

  /// Lifetime fault telemetry (all zero without a fault plan). Unlike
  /// phase_stats_, these ARE simulation state: delivery counts feed the
  /// summary CSV, so they are checkpointed and restored to keep resumed
  /// runs byte-identical.
  const fault::FaultStats& fault_stats() const { return fault_stats_; }

  /// Per-phase wall time accumulated by run_round (observational only —
  /// never serialized, never fed back into simulation decisions). Phases
  /// run on the trial's driving thread, so accumulation is single-writer.
  const obs::PhaseStats& phase_stats() const { return phase_stats_; }

  /// Exact codec wire bytes every up node shipped so far (dim- and
  /// k-aware, partial int8 blocks included). Deterministic: tallied in
  /// the serial phase-1 loop alongside the energy accounting.
  std::uint64_t wire_bytes_sent() const { return wire_bytes_; }

  /// Serializes the engine's complete mutable simulation state — round
  /// counter, the [n × dim] plane blob (row-arena-contiguous, one write),
  /// accountant tallies/budgets, and per-node RNG/optimizer state — plus
  /// the construction fingerprint (seed, codec, sparse k, scheduler name)
  /// used to validate restore_state. Part of the fleet-image format
  /// (ckpt/fleet_image; callers normally go through save_fleet_image).
  void save_state(ckpt::ImageWriter& writer) const;

  /// Restores state saved by save_state into an engine constructed with
  /// the SAME parameters (prototype, data, mixing, scheduler, accountant
  /// construction, config). Bit-identical resume guarantee: after a
  /// restore at round k, rounds k+1..T reproduce an uninterrupted run
  /// byte-for-byte at any thread count. Throws std::runtime_error when
  /// the image does not match this engine's construction — that check
  /// runs before anything mutates, but a file corrupted PAST its valid
  /// identity prefix can throw mid-restore, leaving this engine's state
  /// unspecified: discard and rebuild it after a restore failure (as
  /// sim::run_experiment does).
  void restore_state(ckpt::ImageReader& reader);

 private:
  detail::EngineIdentity identity() const;

  graph::MixingRef mixing_;
  const core::RoundScheduler& scheduler_;
  energy::EnergyAccountant accountant_;
  EngineConfig config_;

  // Double-buffered [n × dim] model storage; models view current() rows.
  plane::ParameterPlane plane_;
  // Compact [n × k] staging pool for the masked sparse exchange.
  plane::RowArena staged_;

  // Quantized-exchange staging (allocated only for non-identity codecs):
  // wire_rows_[i] is sender i's encoded payload; decoded_ (dense) or
  // staged_decoded_ (masked) holds its decode — the values every receiver
  // actually consumes.
  std::unique_ptr<quant::RowCodec> codec_;
  std::vector<quant::QuantizedRow> wire_rows_;
  plane::RowArena decoded_;
  plane::RowArena staged_decoded_;

  std::vector<std::unique_ptr<Node>> nodes_;
  std::size_t round_ = 0;

  std::vector<std::uint32_t> round_mask_;  // sparse_exchange_k mode
  std::vector<char> train_flags_;
  std::vector<double> local_losses_;

  // Scenario state (nullptr when config_.scenario is disabled).
  // alive_flags_[i] is node i's liveness THIS round, fixed serially in
  // phase 1 (including mid-round brownouts and fault-plan crash outages)
  // so the parallel phases read an immutable mask. Allocated when either
  // a scenario or a crash-fault schedule can take nodes down.
  std::unique_ptr<scenario::FleetScenario> scenario_;
  std::vector<char> alive_flags_;

  // Fault-plan wire staging (allocated only when link faults are active):
  // frames_[j] is sender j's CRC32C-framed payload this round;
  // fault_codec_ supplies the identity RowCodec when no exchange codec is
  // configured (framing needs a QuantizedRow either way). link_tally_ is
  // per-RECEIVER (disjoint parallel writes), folded into fault_stats_
  // serially at the end of each round.
  std::unique_ptr<quant::RowCodec> fault_codec_;
  std::vector<std::vector<std::uint8_t>> frames_;
  struct LinkTally {
    std::uint64_t attempted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t corrupt = 0;
    std::uint64_t duplicated = 0;
  };
  std::vector<LinkTally> link_tally_;
  fault::FaultStats fault_stats_;

  // Telemetry (observational only; excluded from save_state/restore_state
  // so checkpoint images stay byte-identical with telemetry on or off).
  obs::PhaseStats phase_stats_;
  std::uint64_t wire_bytes_ = 0;
  std::size_t row_wire_bytes_ = 0;  // precomputed exact bytes per exchange
};

}  // namespace skiptrain::sim
