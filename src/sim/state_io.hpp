// Internal helpers shared by RoundEngine::save_state/restore_state and
// AsyncGossipEngine::save_state/restore_state: the per-node and
// accountant sub-payloads of a fleet image are identical for both
// engines, so both serialize them through these functions.
//
// Not part of the public API — include only from engine implementation
// files. The file-level format (header, engine kind, probing) lives in
// ckpt/fleet_image.
#pragma once

#include <bit>
#include <stdexcept>
#include <string>

#include "ckpt/io.hpp"
#include "energy/accountant.hpp"
#include "quant/codec.hpp"
#include "sim/node.hpp"

namespace skiptrain::sim::detail {

/// The construction parameters an engine payload is only valid against —
/// EVERY config knob that influences future rounds, so a restore into a
/// differently-configured engine is rejected instead of silently
/// diverging. Serialized as the payload prefix (with the round counter)
/// by both engines — one byte layout, one validation path.
struct EngineIdentity {
  std::uint64_t nodes = 0;
  std::uint64_t dim = 0;
  std::uint64_t seed = 0;
  quant::Codec codec = quant::Codec::kIdentity;
  std::uint64_t sparse_k = 0;  // 0 for engines without a masked exchange
  std::uint64_t local_steps = 0;
  std::uint64_t batch_size = 0;
  std::uint32_t lr_bits = 0;  // bit pattern of the float learning rate
  /// Engine-specific extra (async: bit pattern of sync_duration_factor).
  std::uint64_t aux_bits = 0;
  std::string scheduler;
};

inline void write_identity(ckpt::ImageWriter& writer,
                           const EngineIdentity& identity,
                           std::uint64_t round) {
  writer.u64(identity.nodes);
  writer.u64(identity.dim);
  writer.u64(round);
  writer.u64(identity.seed);
  writer.u8(static_cast<std::uint8_t>(identity.codec));
  writer.u64(identity.sparse_k);
  writer.u64(identity.local_steps);
  writer.u64(identity.batch_size);
  writer.u32(identity.lr_bits);
  writer.u64(identity.aux_bits);
  writer.str(identity.scheduler);
}

/// Reads the payload prefix, throws std::runtime_error naming the FIRST
/// field that differs from `expected`, and returns the image's round
/// counter.
inline std::uint64_t read_validated_identity(
    ckpt::ImageReader& reader, const EngineIdentity& expected) {
  const auto mismatch = [](const char* field, const std::string& image,
                           const std::string& engine) {
    return std::runtime_error("fleet image: " + std::string(field) +
                              " mismatch (image " + image + ", engine " +
                              engine + ")");
  };
  const std::uint64_t nodes = reader.u64();
  const std::uint64_t dim = reader.u64();
  if (nodes != expected.nodes || dim != expected.dim) {
    throw mismatch("fleet shape",
                   std::to_string(nodes) + "x" + std::to_string(dim),
                   std::to_string(expected.nodes) + "x" +
                       std::to_string(expected.dim));
  }
  const std::uint64_t round = reader.u64();
  const std::uint64_t seed = reader.u64();
  if (seed != expected.seed) {
    throw mismatch("seed", std::to_string(seed),
                   std::to_string(expected.seed));
  }
  const auto codec = static_cast<quant::Codec>(reader.u8());
  if (codec != expected.codec) {
    throw mismatch("exchange codec",
                   std::to_string(static_cast<int>(codec)),
                   std::to_string(static_cast<int>(expected.codec)));
  }
  const std::uint64_t sparse_k = reader.u64();
  if (sparse_k != expected.sparse_k) {
    throw mismatch("sparse exchange k", std::to_string(sparse_k),
                   std::to_string(expected.sparse_k));
  }
  const std::uint64_t local_steps = reader.u64();
  if (local_steps != expected.local_steps) {
    throw mismatch("local steps", std::to_string(local_steps),
                   std::to_string(expected.local_steps));
  }
  const std::uint64_t batch_size = reader.u64();
  if (batch_size != expected.batch_size) {
    throw mismatch("batch size", std::to_string(batch_size),
                   std::to_string(expected.batch_size));
  }
  const std::uint32_t lr_bits = reader.u32();
  if (lr_bits != expected.lr_bits) {
    throw mismatch("learning rate",
                   std::to_string(std::bit_cast<float>(lr_bits)),
                   std::to_string(std::bit_cast<float>(expected.lr_bits)));
  }
  const std::uint64_t aux_bits = reader.u64();
  if (aux_bits != expected.aux_bits) {
    throw mismatch("engine parameter", std::to_string(aux_bits),
                   std::to_string(expected.aux_bits));
  }
  const std::string scheduler = reader.str();
  if (scheduler != expected.scheduler) {
    throw mismatch("scheduler", "'" + scheduler + "'",
                   "'" + expected.scheduler + "'");
  }
  return round;
}

inline void write_accountant(ckpt::ImageWriter& writer,
                             const energy::EnergyAccountant& accountant) {
  writer.u64(accountant.model_params());
  const energy::EnergyAccountant::State state = accountant.capture_state();
  writer.f64_vec(state.training_mwh);
  writer.f64_vec(state.comm_mwh);
  writer.u64_vec(state.training_rounds);
  writer.u64_vec(state.budget);
}

inline void read_accountant(ckpt::ImageReader& reader,
                            energy::EnergyAccountant& accountant) {
  const std::uint64_t model_params = reader.u64();
  if (model_params != accountant.model_params()) {
    throw std::runtime_error(
        "fleet image: billed model size mismatch (image " +
        std::to_string(model_params) + ", engine " +
        std::to_string(accountant.model_params()) + ")");
  }
  energy::EnergyAccountant::State state;
  state.training_mwh = reader.f64_vec();
  state.comm_mwh = reader.f64_vec();
  state.training_rounds = reader.u64_vec();
  state.budget = reader.u64_vec();
  try {
    accountant.restore_state(std::move(state));
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error(std::string("fleet image: ") + e.what());
  }
}

inline void write_node_state(ckpt::ImageWriter& writer, const Node& node) {
  const util::Rng::State rng = node.rng().state();
  for (const std::uint64_t word : rng.s) writer.u64(word);
  writer.f64(rng.cached_normal);
  writer.u8(rng.has_cached_normal ? 1 : 0);
  writer.f32_vec(node.optimizer().velocity());
}

inline void read_node_state(ckpt::ImageReader& reader, Node& node) {
  util::Rng::State rng;
  for (auto& word : rng.s) word = reader.u64();
  rng.cached_normal = reader.f64();
  rng.has_cached_normal = reader.u8() != 0;
  node.rng().set_state(rng);
  node.optimizer().set_velocity(reader.f32_vec());
}

}  // namespace skiptrain::sim::detail
