// Per-node simulation state: the private model replica, optimizer, local
// data shard and RNG stream. One instance per simulated device.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "nn/optimizer.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace skiptrain::sim {

class Node {
 public:
  /// `prototype` supplies architecture AND initial weights — every node
  /// starts from the same x⁰ as the D-PSGD analysis assumes.
  Node(std::size_t id, const nn::Sequential& prototype,
       data::DatasetView data, nn::SgdOptions sgd, std::uint64_t seed);

  std::size_t id() const { return id_; }
  nn::Sequential& model() { return model_; }
  const nn::Sequential& model() const { return model_; }
  data::DatasetView& data() { return data_; }

  /// Mutable simulation state beyond the model parameters (which live in
  /// the engine's plane): the batch-sampling RNG stream and the optimizer
  /// momentum buffer. Exposed so fleet checkpoints (ckpt/fleet_image) can
  /// capture and restore a node bit-exactly.
  util::Rng& rng() { return rng_; }
  const util::Rng& rng() const { return rng_; }
  nn::SgdOptimizer& optimizer() { return optimizer_; }
  const nn::SgdOptimizer& optimizer() const { return optimizer_; }

  /// Executes E steps of mini-batch SGD on the local shard (Algorithm 2,
  /// lines 8-10). Returns the mean training loss across the steps.
  double train_local(std::size_t local_steps, std::size_t batch_size);

 private:
  std::size_t id_;
  nn::Sequential model_;
  nn::SgdOptimizer optimizer_;
  data::DatasetView data_;
  util::Rng rng_;
  // Scratch buffers reused across rounds to avoid per-step allocation.
  tensor::Tensor batch_features_;
  std::vector<std::int32_t> batch_labels_;
  tensor::Tensor grad_logits_;
};

}  // namespace skiptrain::sim
