#include "sim/async_engine.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

#include "fault/frame.hpp"
#include "obs/registry.hpp"
#include "sim/state_io.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace skiptrain::sim {

AsyncGossipEngine::AsyncGossipEngine(const nn::Sequential& prototype,
                                     const data::FederatedData& data,
                                     const graph::Topology& topology,
                                     const core::RoundScheduler& scheduler,
                                     energy::EnergyAccountant accountant,
                                     std::vector<double> train_seconds,
                                     AsyncConfig config)
    : topology_(topology),
      scheduler_(scheduler),
      accountant_(std::move(accountant)),
      train_seconds_(std::move(train_seconds)),
      config_(config) {
  const std::size_t n = data.num_nodes();
  if (topology_.num_nodes() != n || train_seconds_.size() != n ||
      accountant_.num_nodes() != n) {
    throw std::invalid_argument("AsyncGossipEngine: size mismatch");
  }
  for (const double seconds : train_seconds_) {
    if (seconds <= 0.0) {
      throw std::invalid_argument(
          "AsyncGossipEngine: training durations must be positive");
    }
  }

  const nn::SgdOptions sgd{config_.learning_rate, 0.0f, 0.0f};
  const std::size_t dim = prototype.num_parameters();
  models_ = plane::RowArena(n, dim);
  outbox_ = plane::RowArena(n, dim);
  if (config_.exchange_codec != quant::Codec::kIdentity) {
    codec_ = quant::make_codec(config_.exchange_codec, config_.seed);
  }
  row_wire_bytes_ = quant::exact_row_wire_bytes(config_.exchange_codec, dim);
  config_.faults.validate();
  if (config_.faults.link_faults()) {
    if (codec_ == nullptr) {
      fault_codec_ = quant::make_codec(quant::Codec::kIdentity, config_.seed);
    }
    row_wire_bytes_ += fault::kFrameOverheadBytes;
  }
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, prototype, data.node_view(i),
                                            sgd, config_.seed));
    // The model trains and merges directly in its plane row.
    nodes_[i]->model().bind_parameter_arena(models_.row(i));
  }
  local_round_.assign(n, 0);

  if (config_.scenario.enabled) {
    std::vector<double> train_costs(n);
    for (std::size_t i = 0; i < n; ++i) {
      train_costs[i] = accountant_.training_cost_mwh(i);
    }
    scenario_ = std::make_unique<scenario::FleetScenario>(
        config_.scenario, n, config_.seed, std::move(train_costs));
  }

  fresh_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    fresh_[i].assign(topology_.degree(i), 0);
  }

  // Stagger first activations slightly by node id so identical-speed nodes
  // do not activate in lockstep (ε of their period).
  for (std::size_t i = 0; i < n; ++i) {
    const double jitter =
        train_seconds_[i] * 1e-3 * static_cast<double>(i % 97);
    queue_.push(Event{jitter, i});
  }
}

std::size_t AsyncGossipEngine::local_rounds(std::size_t node) const {
  assert(node < local_round_.size());
  return local_round_[node];
}

void AsyncGossipEngine::run_until(double horizon_seconds) {
  // Event-loop health: pending-event depth after each pop, and host wall
  // time per activation (simulated durations never enter either).
  static const obs::Gauge queue_depth = obs::gauge("async.queue_depth");
  static const obs::Histogram latency = obs::hist_ns("async.activate.ns");
  const bool record = obs::enabled();
  while (!queue_.empty() && queue_.top().time <= horizon_seconds) {
    const Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    if (!record) {
      activate(event.node);
      continue;
    }
    queue_depth.set(static_cast<std::int64_t>(queue_.size()));
    const std::uint64_t start_ns = obs::now_ns();
    activate(event.node);
    latency.record(obs::now_ns() - start_ns);
  }
  now_ = std::max(now_, horizon_seconds);
}

detail::EngineIdentity AsyncGossipEngine::identity() const {
  // Fold the scenario fingerprint and any non-dense topology identity into
  // the aux bits when active; both disabled keeps the original bytes.
  std::uint64_t aux =
      std::bit_cast<std::uint64_t>(config_.sync_duration_factor);
  if (scenario_ != nullptr) {
    aux = util::hash_combine(aux, scenario_->config_hash());
  }
  if (config_.topology_hash != 0) {
    aux = util::hash_combine(aux, config_.topology_hash);
  }
  if (config_.faults.enabled) {
    // Resuming under a different fault plan would silently change which
    // pushes get lost — refuse, like a scenario mismatch.
    aux = util::hash_combine(aux, config_.faults.config_hash());
  }
  return detail::EngineIdentity{nodes_.size(),
                                models_.dim(),
                                config_.seed,
                                config_.exchange_codec,
                                /*sparse_k=*/0,
                                config_.local_steps,
                                config_.batch_size,
                                std::bit_cast<std::uint32_t>(
                                    config_.learning_rate),
                                aux,
                                scheduler_.name()};
}

void AsyncGossipEngine::save_state(ckpt::ImageWriter& writer) const {
  detail::write_identity(writer, identity(), activations_);
  detail::write_accountant(writer, accountant_);
  writer.f64(now_);
  writer.u64(trainings_);
  writer.u64_vec(local_round_);
  // Fleet model rows and the per-sender outbox rows, each as one
  // contiguous blob.
  writer.f32_blob(models_.view().flat());
  writer.f32_blob(outbox_.view().flat());
  for (const auto& fresh : fresh_) {
    writer.u64(fresh.size());
    if (!fresh.empty()) writer.bytes(fresh.data(), fresh.size());
  }
  // Pending activations, drained from a copy of the queue in pop order
  // (ascending (time, node) — deterministic for a given engine state).
  auto queue = queue_;
  writer.u64(queue.size());
  while (!queue.empty()) {
    writer.f64(queue.top().time);
    writer.u64(queue.top().node);
    queue.pop();
  }
  for (const auto& node : nodes_) detail::write_node_state(writer, *node);
  // Scenario battery/churn state rides at the END of the payload — the
  // scenario-free image layout is unchanged, and the aux_bits identity
  // check guarantees reader and writer agree on this section's presence.
  if (scenario_ != nullptr) scenario_->save_state(writer);
  // Fault tallies are simulation state (the counts feed the summary CSV);
  // the draws themselves are stateless and need nothing here.
  if (config_.faults.enabled) {
    writer.u64(fault_stats_.attempted_deliveries);
    writer.u64(fault_stats_.dropped);
    writer.u64(fault_stats_.corrupt);
    writer.u64(fault_stats_.duplicated);
    writer.u64(fault_stats_.crash_down_rounds);
  }
}

void AsyncGossipEngine::restore_state(ckpt::ImageReader& reader) {
  const std::size_t n = nodes_.size();
  const std::uint64_t activations =
      detail::read_validated_identity(reader, identity());
  detail::read_accountant(reader, accountant_);
  const double now = reader.f64();
  const std::uint64_t trainings = reader.u64();
  std::vector<std::size_t> local_round = reader.u64_vec();
  if (local_round.size() != n) {
    throw std::runtime_error("fleet image: local round counter count " +
                             std::to_string(local_round.size()) +
                             " != node count " + std::to_string(n));
  }
  reader.f32_blob(models_.view().flat());
  reader.f32_blob(outbox_.view().flat());
  std::vector<std::vector<char>> fresh(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t slots = reader.u64();
    if (slots != topology_.degree(i)) {
      throw std::runtime_error(
          "fleet image: node " + std::to_string(i) + " has " +
          std::to_string(slots) + " mailbox slots, topology expects " +
          std::to_string(topology_.degree(i)));
    }
    fresh[i].resize(static_cast<std::size_t>(slots));
    if (slots != 0) reader.bytes(fresh[i].data(), fresh[i].size());
  }
  const std::uint64_t pending = reader.u64();
  if (pending > n) {
    // Every node has exactly one pending activation (pushed at
    // construction or at the end of its last activation).
    throw std::runtime_error("fleet image: " + std::to_string(pending) +
                             " pending events for " + std::to_string(n) +
                             " nodes");
  }
  decltype(queue_) queue;
  for (std::uint64_t i = 0; i < pending; ++i) {
    Event event{};
    event.time = reader.f64();
    event.node = static_cast<std::size_t>(reader.u64());
    if (event.node >= n) {
      throw std::runtime_error("fleet image: event for node " +
                               std::to_string(event.node) +
                               " out of range");
    }
    queue.push(event);
  }
  for (auto& node : nodes_) detail::read_node_state(reader, *node);
  if (scenario_ != nullptr) scenario_->restore_state(reader);
  if (config_.faults.enabled) {
    fault_stats_.attempted_deliveries = reader.u64();
    fault_stats_.dropped = reader.u64();
    fault_stats_.corrupt = reader.u64();
    fault_stats_.duplicated = reader.u64();
    fault_stats_.crash_down_rounds = reader.u64();
  }

  activations_ = static_cast<std::size_t>(activations);
  trainings_ = static_cast<std::size_t>(trainings);
  now_ = now;
  local_round_ = std::move(local_round);
  fresh_ = std::move(fresh);
  queue_ = std::move(queue);
}

void AsyncGossipEngine::activate(std::size_t node) {
  ++activations_;
  const std::size_t t = ++local_round_[node];

  // 0. Scenario: harvest arrives on the node's local clock, then churn
  // thresholds apply. A down node burns a dormant activation — no work,
  // no billing, model frozen in its row — and polls again later.
  if (scenario_ != nullptr) {
    const std::uint64_t phase_start = obs::now_ns();
    scenario_->step_node(node, t);
    const bool alive = scenario_->alive(node);
    obs::note_phase(phase_stats_, obs::Phase::kLiveness, phase_start);
    if (!alive) {
      queue_.push(Event{now_ + train_seconds_[node] *
                                   config_.scenario.dormant_wait_factor,
                        node});
      return;
    }
  }

  // Crash-restart outage drawn on the node's LOCAL round: burn a dormant
  // activation (no train/merge/push/billing, model frozen in its row) and
  // poll again after a full training period.
  if (config_.faults.crash_faults() &&
      fault::node_down(config_.faults, config_.seed, node, t)) {
    ++fault_stats_.crash_down_rounds;
    queue_.push(Event{now_ + train_seconds_[node], node});
    return;
  }

  // 1-2. Local training decision on the node's own round counter.
  bool trains =
      scheduler_.should_train(t, node, accountant_.remaining_budget(node));
  if (trains && scenario_ != nullptr &&
      !scenario_->try_spend(node, accountant_.training_cost_mwh(node))) {
    // Training brownout: the battery empties before the update — the
    // node dies on the spot and goes dormant without touching its model.
    queue_.push(Event{now_ + train_seconds_[node] *
                                 config_.scenario.dormant_wait_factor,
                      node});
    return;
  }
  if (trains) {
    accountant_.record_training(node);
    const std::uint64_t phase_start = obs::now_ns();
    nodes_[node]->train_local(config_.local_steps, config_.batch_size);
    obs::note_phase(phase_stats_, obs::Phase::kTrain, phase_start);
    ++trainings_;
  }

  // Radio brownout: the local update (if any) survives in the node's
  // row, but it neither merges nor pushes this activation.
  if (scenario_ != nullptr &&
      !scenario_->try_spend(node, accountant_.exchange_cost_mwh(node))) {
    queue_.push(Event{now_ + train_seconds_[node] *
                                 config_.scenario.dormant_wait_factor,
                      node});
    return;
  }

  // 3. Merge fresh neighbor models: uniform average over self + fresh,
  // computed in place on this node's plane row. A fresh delivery is read
  // straight from the sender's outbox row — no per-edge copies exist.
  std::uint64_t phase_start = obs::now_ns();
  const auto mine = models_.row(node);
  std::size_t contributors = 1;
  const auto& neighbors = topology_.neighbors(node);
  auto& fresh = fresh_[node];
  for (std::size_t s = 0; s < neighbors.size(); ++s) {
    if (!fresh[s]) continue;
    const auto theirs = outbox_.row(neighbors[s]);
    for (std::size_t k = 0; k < mine.size(); ++k) {
      mine[k] += theirs[k];
    }
    fresh[s] = 0;
    ++contributors;
  }
  if (contributors > 1) {
    const float inv = 1.0f / static_cast<float>(contributors);
    tensor::scale(mine, inv);
  }

  // 4. Push the merged model: ONE copy into this node's outbox row, then
  // flag the delivery at every neighbor (they read the row on merge).
  // With a codec, the outbox carries the encoded payload and the row
  // holds its decode — the staging-boundary image all receivers merge.
  accountant_.record_exchange(node);
  wire_bytes_ += row_wire_bytes_;
  {
    static const obs::Counter wire = obs::counter("wire.bytes");
    wire.add(row_wire_bytes_);
  }
  if (codec_ != nullptr) {
    // The event loop is serial, so the per-sender round id is stable: use
    // the node's local round as the dither stream.
    obs::note_phase(phase_stats_, obs::Phase::kGossip, phase_start);
    phase_start = obs::now_ns();
    codec_->begin_round(t);
    codec_->encode(mine, wire_scratch_);
    codec_->decode(wire_scratch_, outbox_.row(node));
    obs::note_phase(phase_stats_, obs::Phase::kEncode, phase_start);
    phase_start = obs::now_ns();
  } else {
    tensor::copy(mine, outbox_.row(node));
  }
  const bool link_active = config_.faults.link_faults();
  if (link_active) {
    // Frame the pushed payload once; every directed link draws its fate
    // against this frame. Without an exchange codec the identity fallback
    // packs the float32 row (decode is bit-exact, so receivers keep
    // merging the outbox row directly).
    if (codec_ == nullptr) {
      fault_codec_->begin_round(t);
      fault_codec_->encode(mine, wire_scratch_);
    }
    fault::encode_frame(wire_scratch_, frame_scratch_);
  }
  for (const std::size_t peer : neighbors) {
    // Find this node's slot at the peer (neighbor lists are sorted).
    const auto& peer_neighbors = topology_.neighbors(peer);
    const auto it = std::lower_bound(peer_neighbors.begin(),
                                     peer_neighbors.end(), node);
    const auto slot =
        static_cast<std::size_t>(it - peer_neighbors.begin());
    if (link_active) {
      ++fault_stats_.attempted_deliveries;
      const fault::LinkDraw draw =
          fault::link_draw(config_.faults, config_.seed, t, node, peer);
      if (draw.drop) {
        ++fault_stats_.dropped;
        continue;
      }
      // A duplicate lands in the mailbox slot the first copy already
      // flagged — absorbed by construction, only counted.
      if (draw.duplicate) ++fault_stats_.duplicated;
      if (draw.corrupt) {
        // In-flight bit flip on this receiver's copy; CRC32C detects
        // every single-bit error, so the check cannot pass — but the
        // receiver still runs it rather than assume.
        std::vector<std::uint8_t> tampered(frame_scratch_);
        fault::flip_bit(tampered,
                        fault::corrupt_bit_index(config_.seed, t, node, peer,
                                                 tampered.size()));
        if (!fault::verify_frame(tampered)) {
          ++fault_stats_.corrupt;
          continue;
        }
      }
    }
    fresh_[peer][slot] = 1;
  }
  obs::note_phase(phase_stats_, obs::Phase::kGossip, phase_start);

  // 5. Schedule the next activation.
  const double duration =
      trains ? train_seconds_[node]
             : train_seconds_[node] * config_.sync_duration_factor;
  queue_.push(Event{now_ + duration, node});
}

}  // namespace skiptrain::sim
