#include "sim/engine.hpp"

#include <stdexcept>

#include "util/thread_pool.hpp"

namespace skiptrain::sim {

RoundEngine::RoundEngine(const nn::Sequential& prototype,
                         const data::FederatedData& data,
                         const graph::MixingMatrix& mixing,
                         const core::RoundScheduler& scheduler,
                         energy::EnergyAccountant accountant,
                         EngineConfig config)
    : mixing_(mixing),
      scheduler_(scheduler),
      accountant_(std::move(accountant)),
      config_(config) {
  const std::size_t n = data.num_nodes();
  if (mixing_.num_nodes() != n) {
    throw std::invalid_argument("RoundEngine: mixing matrix size != nodes");
  }
  if (accountant_.num_nodes() != n) {
    throw std::invalid_argument("RoundEngine: accountant size != nodes");
  }

  const nn::SgdOptions sgd{config_.learning_rate, 0.0f, 0.0f};
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, prototype, data.node_view(i),
                                            sgd, config_.seed));
  }

  const std::size_t dim = prototype.num_parameters();
  params_half_.assign(n, std::vector<float>(dim));
  params_current_.assign(n, std::vector<float>(dim));
  train_flags_.assign(n, 0);
  local_losses_.assign(n, 0.0);
  refresh_current_parameters();
}

void RoundEngine::refresh_current_parameters() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    nodes_[i]->model().get_parameters(params_current_[i]);
  }
}

RoundEngine::RoundOutcome RoundEngine::run_round() {
  const std::size_t t = round_ + 1;  // Algorithm 2 numbers rounds from 1
  const std::size_t n = nodes_.size();

  // Phase 1 — decide + account (serial: the accountant is not locked).
  // Masked exchanges scale the billed model size by the wire fraction
  // k/dim (the mask is seed-derived, so only values travel).
  const std::size_t dim =
      params_half_.empty() ? 0 : params_half_.front().size();
  std::size_t wire_params = accountant_.model_params();
  if (config_.sparse_exchange_k != 0 && dim > 0) {
    const double fraction =
        static_cast<double>(std::min(config_.sparse_exchange_k, dim)) /
        static_cast<double>(dim);
    wire_params = static_cast<std::size_t>(
        fraction * static_cast<double>(wire_params));
  }
  RoundOutcome outcome;
  outcome.kind = scheduler_.round_kind(t);
  for (std::size_t i = 0; i < n; ++i) {
    const bool trains =
        scheduler_.should_train(t, i, accountant_.remaining_budget(i));
    train_flags_[i] = trains ? 1 : 0;
    if (trains) {
      accountant_.record_training(i);
      ++outcome.nodes_trained;
    }
    // Sharing happens every round; compressed exchanges bill fewer bytes.
    if (config_.sparse_exchange_k == 0) {
      accountant_.record_exchange(i);
    } else {
      accountant_.record_exchange(i, wire_params);
    }
  }

  // Phase 2 — local training, parallel over nodes. Writes x^{t-1/2}.
  util::parallel_for(0, n, [&](std::size_t i) {
    if (train_flags_[i]) {
      local_losses_[i] =
          nodes_[i]->train_local(config_.local_steps, config_.batch_size);
    }
    nodes_[i]->model().get_parameters(params_half_[i]);
  });

  // Phase 3+4 — exchange & aggregate. Reads touch only params_half_,
  // writes only params_current_.
  if (config_.sparse_exchange_k == 0) {
    // Dense: x_i^t = Σ_j W_ji x_j^{t-1/2}.
    util::parallel_for(0, n, [&](std::size_t i) {
      auto& out = params_current_[i];
      const auto& mine = params_half_[i];
      const float self_w = mixing_.self_weight(i);
      for (std::size_t k = 0; k < out.size(); ++k) out[k] = self_w * mine[k];
      for (const auto& entry : mixing_.neighbor_weights(i)) {
        const auto& theirs = params_half_[entry.neighbor];
        const float w = entry.weight;
        for (std::size_t k = 0; k < out.size(); ++k) out[k] += w * theirs[k];
      }
      nodes_[i]->model().set_parameters(out);
    });
  } else {
    // Sparse: all nodes exchange the same k random coordinates this round
    // (mask derived from the shared seed). Since W rows sum to 1:
    //   x_i^t = x_i^{t-1/2} + Σ_j W_ij Σ_{c ∈ mask_t} (x_j[c] - x_i[c]) e_c.
    round_mask_ = core::shared_round_mask(config_.seed, t, dim,
                                          config_.sparse_exchange_k);
    util::parallel_for(0, n, [&](std::size_t i) {
      auto& out = params_current_[i];
      const auto& mine = params_half_[i];
      std::copy(mine.begin(), mine.end(), out.begin());
      for (const auto& entry : mixing_.neighbor_weights(i)) {
        core::accumulate_masked_difference(
            round_mask_, params_half_[entry.neighbor], mine, out,
            entry.weight);
      }
      nodes_[i]->model().set_parameters(out);
    });
  }

  double loss_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (train_flags_[i]) loss_sum += local_losses_[i];
  }
  outcome.mean_local_loss =
      outcome.nodes_trained
          ? loss_sum / static_cast<double>(outcome.nodes_trained)
          : 0.0;

  ++round_;
  return outcome;
}

void RoundEngine::run_rounds(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) run_round();
}

}  // namespace skiptrain::sim
