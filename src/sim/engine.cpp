#include "sim/engine.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "fault/frame.hpp"
#include "obs/registry.hpp"
#include "sim/state_io.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain::sim {

RoundEngine::RoundEngine(const nn::Sequential& prototype,
                         const data::FederatedData& data,
                         graph::MixingRef mixing,
                         const core::RoundScheduler& scheduler,
                         energy::EnergyAccountant accountant,
                         EngineConfig config)
    : mixing_(mixing),
      scheduler_(scheduler),
      accountant_(std::move(accountant)),
      config_(config),
      plane_(data.num_nodes(), prototype.num_parameters()),
      staged_(data.num_nodes(),
              std::min(config.sparse_exchange_k, prototype.num_parameters())) {
  const std::size_t n = data.num_nodes();
  if (mixing_.num_nodes() != n) {
    throw std::invalid_argument("RoundEngine: mixing matrix size != nodes");
  }
  if (accountant_.num_nodes() != n) {
    throw std::invalid_argument("RoundEngine: accountant size != nodes");
  }

  if (config_.exchange_codec != quant::Codec::kIdentity) {
    codec_ = quant::make_codec(config_.exchange_codec, config_.seed);
    wire_rows_.resize(n);
    if (config_.sparse_exchange_k == 0) {
      decoded_ = plane::RowArena(n, plane_.dim());
    } else {
      staged_decoded_ = plane::RowArena(staged_.rows(), staged_.dim());
    }
  }

  const nn::SgdOptions sgd{config_.learning_rate, 0.0f, 0.0f};
  nodes_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.push_back(std::make_unique<Node>(i, prototype, data.node_view(i),
                                            sgd, config_.seed));
    // Migrate the clone's parameters onto its plane row: from here on the
    // model trains directly in plane storage.
    nodes_[i]->model().bind_parameter_arena(plane_.current().row(i));
  }
  train_flags_.assign(n, 0);
  local_losses_.assign(n, 0.0);

  // Exact per-exchange wire footprint of one row at the SIMULATED dim
  // (the energy bill stays on the paper's model size; this tally is what
  // the codec actually ships). Masked exchanges ship the k staged values.
  row_wire_bytes_ = quant::exact_row_wire_bytes(
      config_.exchange_codec,
      config_.sparse_exchange_k == 0 ? plane_.dim() : staged_.dim());

  config_.faults.validate();
  if (config_.faults.link_faults()) {
    // Framed exchanges: every row ships as a CRC32C frame. The identity
    // fallback codec exists only to pack float32 rows into QuantizedRow
    // form for framing — its decode is bit-exact, so receivers consume
    // the plane/staging rows directly and the no-codec values are
    // untouched.
    if (codec_ == nullptr) {
      fault_codec_ = quant::make_codec(quant::Codec::kIdentity, config_.seed);
      wire_rows_.resize(n);
    }
    frames_.resize(n);
    link_tally_.resize(n);
    row_wire_bytes_ += fault::kFrameOverheadBytes;
  }

  if (config_.scenario.enabled) {
    // Battery/harvest magnitudes scale from each node's own per-round
    // training energy, so one scenario config fits any workload.
    std::vector<double> train_costs(n);
    for (std::size_t i = 0; i < n; ++i) {
      train_costs[i] = accountant_.training_cost_mwh(i);
    }
    scenario_ = std::make_unique<scenario::FleetScenario>(
        config_.scenario, n, config_.seed, std::move(train_costs));
  }
  if (config_.scenario.enabled || config_.faults.crash_faults()) {
    alive_flags_.assign(n, 1);
  }
}

RoundEngine::RoundOutcome RoundEngine::run_round() {
  const std::size_t t = round_ + 1;  // Algorithm 2 numbers rounds from 1
  const std::size_t n = nodes_.size();

  // Phase 1 — decide + account (serial: the accountant is not locked).
  // Masked exchanges scale the billed model size by the wire fraction
  // k/dim (the mask is seed-derived, so only values travel).
  const std::size_t dim = plane_.dim();
  std::size_t wire_params = accountant_.model_params();
  if (config_.sparse_exchange_k != 0 && dim > 0) {
    const double fraction =
        static_cast<double>(std::min(config_.sparse_exchange_k, dim)) /
        static_cast<double>(dim);
    // llround, not a truncating cast: flooring would bill k=1 exchanges of
    // a small model at zero wire volume.
    wire_params = static_cast<std::size_t>(
        std::llround(fraction * static_cast<double>(wire_params)));
  }
  RoundOutcome outcome;
  outcome.kind = scheduler_.round_kind(t);
  // Scenario: deliver harvest and apply churn thresholds for round t, then
  // fix this round's liveness mask — serially, so the parallel phases read
  // an immutable snapshot and battery evolution is thread-count-free.
  bool any_down = false;
  const bool crash_active = config_.faults.crash_faults();
  const bool link_active = config_.faults.link_faults();
  const std::uint64_t wire_bytes_before = wire_bytes_;
  std::uint64_t phase_start = obs::now_ns();
  if (scenario_ != nullptr) scenario_->begin_round(t);
  for (std::size_t i = 0; i < n; ++i) {
    bool alive = scenario_ == nullptr || scenario_->alive(i);
    if (alive && crash_active &&
        fault::node_down(config_.faults, config_.seed, i, t)) {
      // Crash-restart outage: the node goes down before it can train or
      // key up its radio — no energy spent, model frozen in place, and
      // neighbors degrade through the masked aggregation below.
      alive = false;
      ++fault_stats_.crash_down_rounds;
    }
    bool trains =
        alive && scheduler_.should_train(t, i, accountant_.remaining_budget(i));
    if (trains && scenario_ != nullptr &&
        !scenario_->try_spend(i, accountant_.training_cost_mwh(i))) {
      // Training brownout: the battery empties before the local update —
      // the node dies on the spot, its model freezes for this round.
      trains = false;
      alive = false;
    }
    train_flags_[i] = trains ? 1 : 0;
    if (trains) {
      accountant_.record_training(i);
      ++outcome.nodes_trained;
    }
    if (alive && scenario_ != nullptr &&
        !scenario_->try_spend(
            i, config_.sparse_exchange_k == 0
                   ? accountant_.exchange_cost_mwh(i)
                   : accountant_.exchange_cost_mwh(i, wire_params))) {
      // Radio brownout: the local update (if any) survives in the node's
      // row, but it neither sends nor receives this round.
      alive = false;
    }
    if (!alive_flags_.empty()) {
      alive_flags_[i] = alive ? 1 : 0;
      if (!alive) any_down = true;
    }
    // Sharing happens every round a node is up; compressed exchanges bill
    // fewer bytes. Down nodes exchange nothing and are billed nothing.
    if (alive) {
      if (config_.sparse_exchange_k == 0) {
        accountant_.record_exchange(i);
      } else {
        accountant_.record_exchange(i, wire_params);
      }
      wire_bytes_ += row_wire_bytes_;
    }
  }
  {
    // Serial tally of the round's exact wire footprint (observational).
    static const obs::Counter wire = obs::counter("wire.bytes");
    wire.add(wire_bytes_ - wire_bytes_before);
  }
  obs::note_phase(phase_stats_, obs::Phase::kLiveness, phase_start);

  // Phase 2 — local training, parallel over nodes. Models view their
  // plane rows, so this writes x^{t-1/2} into current() in place;
  // non-training rows already hold x^{t-1}.
  phase_start = obs::now_ns();
  util::parallel_for(0, n, [&](std::size_t i) {
    if (train_flags_[i]) {
      local_losses_[i] =
          nodes_[i]->train_local(config_.local_steps, config_.batch_size);
    }
  });
  obs::note_phase(phase_stats_, obs::Phase::kTrain, phase_start);

  // Phase 3+4 — exchange & aggregate.
  if (config_.sparse_exchange_k == 0) {
    if (link_active) {
      // Lossy dense gossip: every row crosses the wire as a CRC32C frame
      // and every directed link draws its fate independently, so the
      // difference form runs unconditionally — per delivered frame,
      //   x_i^t += W_ij (x̂_j^{t-1/2} - x_i^{t-1/2}),
      // and a dropped or CRC-rejected frame simply contributes nothing
      // (its weight mass reverts to self, rows still sum to 1). The
      // framed payload is a lossless serialization of the encoded row,
      // so delivered values are read from the once-per-sender decode
      // (identity codec: the plane row itself) — bit-identical to
      // decoding the frame, without per-link decode work.
      phase_start = obs::now_ns();
      quant::RowCodec& enc = codec_ != nullptr ? *codec_ : *fault_codec_;
      enc.begin_round(t);
      const plane::ConstMatrixView current = plane_.current().view();
      util::parallel_for(0, n, [&](std::size_t j) {
        link_tally_[j] = LinkTally{};
        if (any_down && !alive_flags_[j]) return;
        enc.encode(current.row(j), wire_rows_[j]);
        if (codec_ != nullptr) codec_->decode(wire_rows_[j], decoded_.row(j));
        fault::encode_frame(wire_rows_[j], frames_[j]);
      });
      obs::note_phase(phase_stats_, obs::Phase::kEncode, phase_start);
      phase_start = obs::now_ns();
      util::parallel_for(0, n, [&](std::size_t i) {
        const auto mine = current.row(i);
        const auto out = plane_.back().row(i);
        tensor::copy(mine, out);
        if (any_down && !alive_flags_[i]) return;
        LinkTally& tally = link_tally_[i];
        for (const auto& entry : mixing_.neighbor_weights(i)) {
          const std::size_t j = entry.neighbor;
          if (any_down && !alive_flags_[j]) continue;
          ++tally.attempted;
          const fault::LinkDraw draw =
              fault::link_draw(config_.faults, config_.seed, t, j, i);
          if (draw.drop) {
            ++tally.dropped;
            continue;
          }
          if (draw.duplicate) ++tally.duplicated;  // absorbed: see below
          if (draw.corrupt) {
            // In-flight bit flip on this receiver's copy of the frame.
            // CRC32C detects every single-bit error, so the check cannot
            // pass — but the receiver still runs it rather than assume.
            std::vector<std::uint8_t> tampered(frames_[j]);
            fault::flip_bit(tampered,
                            fault::corrupt_bit_index(config_.seed, t, j, i,
                                                     tampered.size()));
            if (!fault::verify_frame(tampered)) {
              ++tally.corrupt;
              continue;
            }
          }
          // Duplicates deliver the identical round-t frame twice; the
          // receiver aggregates each (sender, round) image once, so the
          // second copy changes nothing and is only counted.
          const auto theirs =
              codec_ != nullptr ? decoded_.row(j) : current.row(j);
          const float w = entry.weight;
          for (std::size_t k = 0; k < out.size(); ++k) {
            out[k] += w * (theirs[k] - mine[k]);
          }
        }
      });
      plane_.flip();
    } else if (any_down) {
      // Churn-masked dense aggregation in difference form:
      //   x_i^t = x_i^{t-1/2} + Σ_{alive j ∈ N(i)} W_ij (x_j^{t-1/2} - x_i^{t-1/2})
      // A dead neighbor's weight mass reverts to x_i (lazy self-loop
      // renormalization, rows still sum to 1), a dead node's own row is
      // carried verbatim, and the self term is exact by construction —
      // codecs only ever supply NEIGHBOR images, so no post-hoc self
      // correction is needed. Writes go to back(), then one flip.
      if (codec_ != nullptr) {
        phase_start = obs::now_ns();
        codec_->begin_round(t);
        util::parallel_for(0, n, [&](std::size_t i) {
          if (!alive_flags_[i]) return;
          codec_->encode(plane_.current().row(i), wire_rows_[i]);
          codec_->decode(wire_rows_[i], decoded_.row(i));
        });
        obs::note_phase(phase_stats_, obs::Phase::kEncode, phase_start);
      }
      phase_start = obs::now_ns();
      const plane::ConstMatrixView current = plane_.current().view();
      util::parallel_for(0, n, [&](std::size_t i) {
        const auto mine = current.row(i);
        const auto out = plane_.back().row(i);
        tensor::copy(mine, out);
        if (!alive_flags_[i]) return;
        for (const auto& entry : mixing_.neighbor_weights(i)) {
          if (!alive_flags_[entry.neighbor]) continue;
          const auto theirs = codec_ != nullptr
                                  ? decoded_.row(entry.neighbor)
                                  : current.row(entry.neighbor);
          const float w = entry.weight;
          for (std::size_t k = 0; k < out.size(); ++k) {
            out[k] += w * (theirs[k] - mine[k]);
          }
        }
      });
      plane_.flip();
    } else if (codec_ == nullptr) {
      // Dense: one blocked kernel current() → back(), then flip; reads
      // touch only x^{t-1/2}, writes only x^t.
      phase_start = obs::now_ns();
      plane::apply_mixing(mixing_, plane_);
    } else {
      // Dense quantized: every row crosses the wire encoded, so receivers
      // mix the DECODED image x̂_j, not x_j. Encode+decode per sender
      // (parallel; codecs are stateless per row), then run the blocked
      // kernel over the decoded staging plane:
      //   x_i^t = W_ii x_i^{t-1/2} + Σ_{j≠i} W_ij x̂_j^{t-1/2}.
      phase_start = obs::now_ns();
      codec_->begin_round(t);
      util::parallel_for(0, n, [&](std::size_t i) {
        codec_->encode(plane_.current().row(i), wire_rows_[i]);
        codec_->decode(wire_rows_[i], decoded_.row(i));
      });
      obs::note_phase(phase_stats_, obs::Phase::kEncode, phase_start);
      phase_start = obs::now_ns();
      plane::apply_mixing_from(mixing_, decoded_.view(), plane_);
      // The kernel billed the self contribution at x̂_i, but a node's own
      // model never crosses the wire — restore the exact self term. After
      // the flip, back() still holds the pre-exchange x^{t-1/2}.
      const plane::ConstMatrixView exact = plane_.back().view();
      util::parallel_for(0, n, [&](std::size_t i) {
        const float self_w = mixing_.self_weight(i);
        const auto mine = exact.row(i);
        const auto approx = decoded_.row(i);
        const auto out = plane_.current().row(i);
        for (std::size_t k = 0; k < out.size(); ++k) {
          out[k] += self_w * (mine[k] - approx[k]);
        }
      });
    }
    // The flip moved x^t to the other buffer; repoint every model's layer
    // views at its new row (pointer swap, no copies).
    for (std::size_t i = 0; i < n; ++i) {
      nodes_[i]->model().attach_parameter_arena(plane_.current().row(i));
    }
    obs::note_phase(phase_stats_, obs::Phase::kGossip, phase_start);
  } else {
    // Sparse: all nodes exchange the same k random coordinates this round
    // (mask derived from the shared seed). Since W rows sum to 1:
    //   x_i^t = x_i^{t-1/2} + Σ_j W_ij Σ_{c ∈ mask_t} (x_j[c] - x_i[c]) e_c.
    // Stage the masked coordinates of every row, then update rows in place
    // — only k coordinates per node change, so no dense copy is needed.
    phase_start = obs::now_ns();
    round_mask_ = core::shared_round_mask(config_.seed, t, dim,
                                          config_.sparse_exchange_k);
    plane::gather_masked_rows(plane_.current().view(), round_mask_,
                              staged_.view());
    obs::note_phase(phase_stats_, obs::Phase::kGossip, phase_start);
    if (link_active) {
      // Lossy sparse gossip: the k staged values are framed per sender,
      // then each directed link draws drop/corrupt/dup exactly as in the
      // dense path; the staged difference form already skips absent
      // contributions, so a lost frame needs no special handling.
      phase_start = obs::now_ns();
      quant::RowCodec& enc = codec_ != nullptr ? *codec_ : *fault_codec_;
      enc.begin_round(t);
      util::parallel_for(0, n, [&](std::size_t j) {
        link_tally_[j] = LinkTally{};
        if (any_down && !alive_flags_[j]) return;
        enc.encode(staged_.row(j), wire_rows_[j]);
        if (codec_ != nullptr) {
          codec_->decode(wire_rows_[j], staged_decoded_.row(j));
        }
        fault::encode_frame(wire_rows_[j], frames_[j]);
      });
      obs::note_phase(phase_stats_, obs::Phase::kEncode, phase_start);
      phase_start = obs::now_ns();
      const plane::RowArena& theirs_pool =
          codec_ != nullptr ? staged_decoded_ : staged_;
      util::parallel_for(0, n, [&](std::size_t i) {
        if (any_down && !alive_flags_[i]) return;
        const auto row = plane_.current().row(i);
        const auto mine_staged = staged_.row(i);
        LinkTally& tally = link_tally_[i];
        for (const auto& entry : mixing_.neighbor_weights(i)) {
          const std::size_t j = entry.neighbor;
          if (any_down && !alive_flags_[j]) continue;
          ++tally.attempted;
          const fault::LinkDraw draw =
              fault::link_draw(config_.faults, config_.seed, t, j, i);
          if (draw.drop) {
            ++tally.dropped;
            continue;
          }
          if (draw.duplicate) ++tally.duplicated;
          if (draw.corrupt) {
            std::vector<std::uint8_t> tampered(frames_[j]);
            fault::flip_bit(tampered,
                            fault::corrupt_bit_index(config_.seed, t, j, i,
                                                     tampered.size()));
            if (!fault::verify_frame(tampered)) {
              ++tally.corrupt;
              continue;
            }
          }
          core::accumulate_staged_difference(round_mask_, theirs_pool.row(j),
                                             mine_staged, row, entry.weight);
        }
      });
      obs::note_phase(phase_stats_, obs::Phase::kGossip, phase_start);
    } else {
      if (codec_ != nullptr) {
        // Sparse+quant composition: the k masked values are what crosses
        // the wire, so they are what gets encoded. Receivers read the
        // decoded image of a neighbor's staged values but keep their OWN
        // values exact (a node never quantizes against itself).
        phase_start = obs::now_ns();
        codec_->begin_round(t);
        util::parallel_for(0, n, [&](std::size_t i) {
          if (any_down && !alive_flags_[i]) return;
          codec_->encode(staged_.row(i), wire_rows_[i]);
          codec_->decode(wire_rows_[i], staged_decoded_.row(i));
        });
        obs::note_phase(phase_stats_, obs::Phase::kEncode, phase_start);
      }
      phase_start = obs::now_ns();
      const plane::RowArena& theirs_pool =
          codec_ != nullptr ? staged_decoded_ : staged_;
      util::parallel_for(0, n, [&](std::size_t i) {
        // Churn mask: a down node neither sends nor receives, and dead
        // neighbors drop out of the sum — the difference form keeps the
        // row normalized (skipped mass stays on x_i) with no extra work.
        if (any_down && !alive_flags_[i]) return;
        const auto row = plane_.current().row(i);
        const auto mine_staged = staged_.row(i);
        for (const auto& entry : mixing_.neighbor_weights(i)) {
          if (any_down && !alive_flags_[entry.neighbor]) continue;
          core::accumulate_staged_difference(round_mask_,
                                             theirs_pool.row(entry.neighbor),
                                             mine_staged, row, entry.weight);
        }
      });
      obs::note_phase(phase_stats_, obs::Phase::kGossip, phase_start);
    }
  }

  if (link_active) {
    // Per-receiver tallies were written disjointly in parallel; fold them
    // into the lifetime stats serially so the totals are order-free.
    for (const LinkTally& tally : link_tally_) {
      fault_stats_.attempted_deliveries += tally.attempted;
      fault_stats_.dropped += tally.dropped;
      fault_stats_.corrupt += tally.corrupt;
      fault_stats_.duplicated += tally.duplicated;
    }
  }

  double loss_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (train_flags_[i]) loss_sum += local_losses_[i];
  }
  outcome.mean_local_loss =
      outcome.nodes_trained
          ? loss_sum / static_cast<double>(outcome.nodes_trained)
          : 0.0;

  ++round_;
  return outcome;
}

void RoundEngine::run_rounds(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) run_round();
}

/// Construction identity: restore refuses an image whose run setup
/// differs from this engine's (wrong seed/codec/schedule would silently
/// break the bit-identical resume contract).
detail::EngineIdentity RoundEngine::identity() const {
  // Scenario configuration is part of the identity: resuming a churn run
  // under a different battery/harvest model would silently diverge. So is
  // a non-dense topology (different gossip graph ⇒ different fixed point).
  // Both contribute 0 when inactive, keeping older images byte-compatible.
  std::uint64_t aux =
      scenario_ != nullptr ? scenario_->config_hash() : 0;
  if (config_.topology_hash != 0) {
    aux = util::hash_combine(aux, config_.topology_hash);
  }
  if (config_.faults.enabled) {
    // Same reasoning as the scenario: resuming under a different fault
    // plan would silently change which messages get lost.
    aux = util::hash_combine(aux, config_.faults.config_hash());
  }
  return detail::EngineIdentity{nodes_.size(),
                                plane_.dim(),
                                config_.seed,
                                config_.exchange_codec,
                                config_.sparse_exchange_k,
                                config_.local_steps,
                                config_.batch_size,
                                std::bit_cast<std::uint32_t>(
                                    config_.learning_rate),
                                aux,
                                scheduler_.name()};
}

void RoundEngine::save_state(ckpt::ImageWriter& writer) const {
  detail::write_identity(writer, identity(), round_);
  detail::write_accountant(writer, accountant_);
  // The whole fleet as ONE contiguous blob: row i of current() is node
  // i's x_i^t, and rows are arena-contiguous, so this is a single write
  // (and a single read into the arena on restore).
  writer.f32_blob(plane_.current().view().flat());
  for (const auto& node : nodes_) detail::write_node_state(writer, *node);
  // Scenario battery/churn state rides at the END of the payload, so the
  // scenario-free image layout (and probe_fleet_image's prefix reads) is
  // unchanged; the aux_bits identity check above guarantees a reader only
  // expects this section when the writer produced it.
  if (scenario_ != nullptr) scenario_->save_state(writer);
  // Fault tallies are simulation state (they feed the summary CSV), so a
  // resumed run must carry them forward; the draws themselves are
  // stateless and need nothing here. Gated on the plan (which is part of
  // the aux_bits identity), so fault-free images are unchanged.
  if (config_.faults.enabled) {
    writer.u64(fault_stats_.attempted_deliveries);
    writer.u64(fault_stats_.dropped);
    writer.u64(fault_stats_.corrupt);
    writer.u64(fault_stats_.duplicated);
    writer.u64(fault_stats_.crash_down_rounds);
  }
}

void RoundEngine::restore_state(ckpt::ImageReader& reader) {
  const std::uint64_t round =
      detail::read_validated_identity(reader, identity());
  detail::read_accountant(reader, accountant_);
  // One read straight into the live arena; models already view these rows.
  reader.f32_blob(plane_.current().view().flat());
  for (auto& node : nodes_) detail::read_node_state(reader, *node);
  if (scenario_ != nullptr) scenario_->restore_state(reader);
  if (config_.faults.enabled) {
    fault_stats_.attempted_deliveries = reader.u64();
    fault_stats_.dropped = reader.u64();
    fault_stats_.corrupt = reader.u64();
    fault_stats_.duplicated = reader.u64();
    fault_stats_.crash_down_rounds = reader.u64();
  }
  round_ = static_cast<std::size_t>(round);
}

}  // namespace skiptrain::sim
