#include "sim/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "ckpt/fleet_image.hpp"
#include "ckpt/io.hpp"
#include "energy/fleet.hpp"
#include "fault/fault.hpp"
#include "graph/sparse.hpp"
#include "graph/topology.hpp"
#include "metrics/consensus.hpp"
#include "metrics/evaluator.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace skiptrain::sim {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDpsgd:
      return "D-PSGD";
    case Algorithm::kDpsgdAllReduce:
      return "D-PSGD+AllReduce";
    case Algorithm::kSkipTrain:
      return "SkipTrain";
    case Algorithm::kSkipTrainConstrained:
      return "SkipTrain-constrained";
    case Algorithm::kGreedy:
      return "Greedy";
    case Algorithm::kSkipTrainHarvest:
      return "SkipTrain-harvest";
    case Algorithm::kDealDecremental:
      return "DEAL-decremental";
  }
  return "?";
}

namespace {

std::unique_ptr<core::RoundScheduler> make_scheduler(
    const RunOptions& options, const energy::Fleet& fleet,
    const scenario::ScenarioConfig& scenario_config) {
  switch (options.algorithm) {
    case Algorithm::kDpsgd:
    case Algorithm::kDpsgdAllReduce:
      return std::make_unique<core::DpsgdScheduler>();
    case Algorithm::kSkipTrain:
      return std::make_unique<core::SkipTrainScheduler>(options.gamma_train,
                                                        options.gamma_sync);
    case Algorithm::kSkipTrainConstrained: {
      std::vector<std::size_t> budgets(fleet.num_nodes());
      for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
        budgets[i] = fleet.budget_rounds(i);
      }
      return std::make_unique<core::SkipTrainConstrainedScheduler>(
          options.gamma_train, options.gamma_sync, options.total_rounds,
          std::move(budgets), options.seed);
    }
    case Algorithm::kGreedy:
      return std::make_unique<core::GreedyScheduler>();
    case Algorithm::kSkipTrainHarvest: {
      // Align the participation wave with the scenario's diurnal cycle
      // when one is active; otherwise assume the default solar period.
      const double period = scenario_config.enabled
                                ? scenario_config.period_rounds
                                : scenario::ScenarioConfig{}.period_rounds;
      return std::make_unique<core::HarvestAwareSkipTrainScheduler>(
          options.gamma_train, options.gamma_sync, period,
          /*participation_floor=*/0.15, options.seed);
    }
    case Algorithm::kDealDecremental: {
      std::vector<std::size_t> budgets(fleet.num_nodes());
      for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
        budgets[i] = fleet.budget_rounds(i);
      }
      return std::make_unique<core::DecrementalParticipationScheduler>(
          std::move(budgets), /*alpha=*/1.0, options.seed);
    }
  }
  throw std::invalid_argument("make_scheduler: unknown algorithm");
}

}  // namespace

ExperimentResult run_experiment(const data::FederatedData& data,
                                const nn::Sequential& prototype,
                                const RunOptions& options) {
  const std::size_t n = data.num_nodes();
  if (n == 0) throw std::invalid_argument("run_experiment: no nodes");
  const std::uint64_t setup_start = obs::now_ns();

  // --- Topology & mixing -------------------------------------------------
  // Dense (the default) keeps the paper's materialized random d-regular
  // graph and column-blocked aggregation; kregular/csr build an O(n·k)
  // SparseMixing and aggregate with the row-sharded kernel. Exchange
  // energy is billed from the ACTUAL per-node neighbor count either way.
  const graph::TopologySpec topo_spec =
      graph::TopologySpec::parse(options.topology);
  graph::Topology topology;
  graph::MixingMatrix mixing;
  graph::SparseMixing sparse_mixing;
  graph::MixingRef mixing_ref;
  std::vector<std::size_t> degrees(n);
  std::uint64_t topology_hash = 0;
  if (topo_spec.kind == graph::TopologySpec::Kind::kDense) {
    util::Rng topo_rng(util::hash_combine(options.seed, 0x70700000ULL));
    topology = graph::make_random_regular(n, options.degree, topo_rng);
    mixing = options.algorithm == Algorithm::kDpsgdAllReduce
                 ? graph::MixingMatrix::all_reduce(n)
                 : graph::MixingMatrix::metropolis_hastings(topology);
    mixing_ref = mixing;
    for (std::size_t i = 0; i < n; ++i) degrees[i] = topology.degree(i);
  } else {
    if (options.algorithm == Algorithm::kDpsgdAllReduce) {
      throw std::invalid_argument(
          "run_experiment: allreduce requires topology=dense");
    }
    if (topo_spec.kind == graph::TopologySpec::Kind::kKRegular) {
      const graph::ImplicitKRegular implicit(
          n, topo_spec.k, util::hash_combine(options.seed, 0x6b726700ULL));
      sparse_mixing = graph::SparseMixing::metropolis_hastings(implicit);
      topology_hash = implicit.config_hash();
    } else {
      const graph::CsrGraph csr = graph::CsrGraph::load_file(topo_spec.path);
      if (csr.num_nodes() != n) {
        throw std::invalid_argument(
            "run_experiment: csr topology has " +
            std::to_string(csr.num_nodes()) + " nodes, dataset has " +
            std::to_string(n));
      }
      sparse_mixing = graph::SparseMixing::metropolis_hastings(csr);
      topology_hash = util::hash_combine(0x637372ULL, csr.content_hash());
    }
    mixing_ref = sparse_mixing;
    for (std::size_t i = 0; i < n; ++i) degrees[i] = sparse_mixing.degree(i);
  }

  // --- Energy ------------------------------------------------------------
  // Training energies and budgets use the paper's canonical traces; comm
  // energy is charged on the paper's model size |x| so that the reported
  // Wh live on the paper's scale even for the compact simulation model.
  const energy::Fleet fleet =
      energy::Fleet::even(n, options.workload)
          .with_budget_scale(options.budget_scale);
  const energy::WorkloadSpec& spec = energy::workload_spec(options.workload);
  // The comm model bills at the codec's true wire bytes per parameter.
  energy::EnergyAccountant accountant(
      fleet, quant::comm_model_for(options.exchange_codec),
      spec.model_params, std::move(degrees));

  // --- Scheduler & engine -------------------------------------------------
  const scenario::ScenarioConfig scenario_config =
      scenario::make_config(options.scenario);
  const std::unique_ptr<core::RoundScheduler> scheduler =
      make_scheduler(options, fleet, scenario_config);
  EngineConfig engine_config;
  engine_config.local_steps = options.local_steps;
  engine_config.batch_size = options.batch_size;
  engine_config.learning_rate = options.learning_rate;
  engine_config.seed = options.seed;
  engine_config.sparse_exchange_k = options.sparse_exchange_k;
  engine_config.exchange_codec = options.exchange_codec;
  engine_config.scenario = scenario_config;
  engine_config.topology_hash = topology_hash;
  const fault::FaultPlan fault_plan = fault::make_plan(options.faults);
  engine_config.faults = fault_plan;
  // IO chaos applies to THIS run's checkpoint writes: atomic_write draws
  // per-attempt failures from (seed, path, attempt) and retries with
  // deterministic virtual-time backoff.
  const ckpt::IoFaultPolicy io_policy{fault_plan, options.seed};
  const ckpt::IoFaultPolicy* io_faults =
      fault_plan.io_faults() ? &io_policy : nullptr;
  // The engine lives in an optional so an aborted checkpoint restore can
  // rebuild it from scratch (restore mutates state section by section; a
  // file corrupted past the header could otherwise leave a half-restored
  // engine behind).
  std::optional<RoundEngine> engine_slot;
  const auto build_engine = [&] {
    energy::EnergyAccountant engine_accountant = accountant;
    engine_slot.emplace(prototype, data, mixing_ref, *scheduler,
                        std::move(engine_accountant), engine_config);
  };
  build_engine();

  ExperimentResult result;
  obs::note_phase(result.telemetry.phases, obs::Phase::kSetup, setup_start);
  result.coordinated_training_rounds = 0;
  std::vector<metrics::RoundRecord> restored_records;

  // --- Resume from a fleet image -----------------------------------------
  // The engine was constructed exactly as the checkpointed run's was
  // (everything is a pure function of `options` and the dataset), so
  // restoring its mutable state and the recorder series continues the
  // run bit-exactly: rounds k+1..T and the resulting CSVs are
  // byte-identical to the uninterrupted run. An UNUSABLE image never
  // resumes and never fails the run — it falls back to a fresh start:
  //   * stale fingerprint (edited configuration) or round counter past
  //     this run's horizon: detected before any engine state is touched
  //     (the probe is a cheap header read; restore validates the
  //     fingerprint ahead of the engine payload);
  //   * corrupt / truncated / version-mismatched image: the exception is
  //     swallowed and the engine rebuilt, so one bad file cannot poison
  //     the trial with a permanent failure row.
  // Generations are tried newest first (checkpoint_path, .g1, .g2, ...);
  // a corrupt or torn image costs at most checkpoint_every rounds — the
  // next older generation resumes the run instead of a full restart.
  std::size_t start_round = 0;
  const std::size_t keep_generations =
      std::max<std::size_t>(options.keep_generations, 1);
  if (options.resume && !options.checkpoint_path.empty()) {
    obs::PhaseScope restore_scope(result.telemetry.phases,
                                  obs::Phase::kCheckpoint);
    for (const std::string& candidate :
         ckpt::generation_paths(options.checkpoint_path, keep_generations)) {
      if (!std::filesystem::exists(candidate)) continue;
      try {
        const ckpt::FleetImageInfo info = ckpt::probe_fleet_image(candidate);
        ckpt::ExperimentState state;
        // Strict <: an image AT the horizon would skip the main loop and
        // its final-round evaluation entirely (empty per-node accuracies).
        // Normal crash images always sit below the horizon anyway — the
        // writer never checkpoints the final round.
        if (info.round < options.total_rounds &&
            ckpt::restore_experiment_image(*engine_slot, state, candidate,
                                           options.checkpoint_fingerprint)) {
          start_round = engine_slot->rounds_executed();
          restored_records = std::move(state.records);
          result.coordinated_training_rounds =
              static_cast<std::size_t>(state.coordinated_training_rounds);
        }
        // Either resumed, or the image is stale (edited configuration) /
        // past the horizon — older generations share its configuration,
        // so a fresh start beats walking further back.
        break;
      } catch (const std::exception& e) {
        std::fprintf(stderr,
                     "run_experiment: ignoring unusable checkpoint %s (%s); "
                     "trying previous generation\n",
                     candidate.c_str(), e.what());
        start_round = 0;
        restored_records.clear();
        result.coordinated_training_rounds = 0;
        build_engine();
      }
    }
  }
  RoundEngine& engine = *engine_slot;

  // --- Evaluation --------------------------------------------------------
  const data::Dataset* eval_split =
      options.eval_on_validation ? &data.validation : &data.test;
  metrics::Evaluator evaluator(eval_split, options.eval_max_samples);
  std::vector<nn::Sequential*> model_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) model_ptrs[i] = &engine.model(i);

  const std::size_t eval_every =
      options.eval_every != 0
          ? options.eval_every
          : (options.algorithm == Algorithm::kSkipTrain ||
             options.algorithm == Algorithm::kSkipTrainConstrained
                 ? options.gamma_train + options.gamma_sync
                 : 8);

  result.algorithm = scheduler->name();
  result.dataset = data.name;
  result.nodes = n;
  result.degree = options.degree;
  result.fleet_budget_wh = fleet.total_budget_wh();
  result.recorder = metrics::Recorder(std::string(algorithm_name(
                                          options.algorithm)) +
                                      " on " + data.name);
  for (const metrics::RoundRecord& record : restored_records) {
    result.recorder.add(record);
  }

  std::vector<double> last_per_node;
  const auto evaluate_now = [&](std::size_t round, core::RoundKind kind,
                                std::size_t trained) {
    obs::PhaseScope eval_scope(result.telemetry.phases, obs::Phase::kEval);
    metrics::RoundRecord record;
    record.round = round;
    record.training_round = (kind == core::RoundKind::kTraining);
    const auto fleet_eval = evaluator.evaluate_fleet(model_ptrs);
    record.mean_accuracy = fleet_eval.accuracy.mean;
    record.std_accuracy = fleet_eval.accuracy.stddev;
    last_per_node = fleet_eval.per_node;
    if (options.evaluate_allreduce) {
      record.allreduce_accuracy =
          evaluator.evaluate_average(prototype, engine.node_parameters())
              .accuracy;
    }
    if (options.track_consensus) {
      record.consensus = metrics::consensus_distance(engine.node_parameters());
    }
    record.train_energy_wh = engine.accountant().total_training_wh();
    record.comm_energy_wh = engine.accountant().total_comm_wh();
    record.nodes_trained = trained;
    result.recorder.add(record);
  };

  // --- Main loop (Algorithm 2's for t = 1..T) ------------------------------
  for (std::size_t t = start_round + 1; t <= options.total_rounds; ++t) {
    const RoundEngine::RoundOutcome outcome = engine.run_round();
    if (outcome.kind == core::RoundKind::kTraining) {
      ++result.coordinated_training_rounds;
    }
    if (t % eval_every == 0 || t == options.total_rounds) {
      evaluate_now(t, outcome.kind, outcome.nodes_trained);
    }
    // Checkpoint after the round's evaluation so the image carries every
    // recorder row up to round t. The final round is never checkpointed —
    // the caller persists the finished result instead.
    if (!options.checkpoint_path.empty() && options.checkpoint_every != 0 &&
        t % options.checkpoint_every == 0 && t < options.total_rounds) {
      obs::PhaseScope ckpt_scope(result.telemetry.phases,
                                 obs::Phase::kCheckpoint);
      const ckpt::ExperimentState state{
          result.recorder.records(),
          static_cast<std::uint64_t>(result.coordinated_training_rounds),
          options.checkpoint_fingerprint};
      // Vacate the newest slot first (path -> .g1 -> .g2 ...) so a torn
      // write can only cost the image being written, never an older one.
      ckpt::rotate_generations(options.checkpoint_path, keep_generations);
      ckpt::save_experiment_image(engine, state, options.checkpoint_path,
                                  io_faults);
    }
  }

  const metrics::RoundRecord& last = result.recorder.last();
  result.final_mean_accuracy = last.mean_accuracy;
  result.final_std_accuracy = last.std_accuracy;
  result.final_allreduce_accuracy = last.allreduce_accuracy;
  result.best_mean_accuracy = result.recorder.best_mean_accuracy();
  result.total_training_wh = engine.accountant().total_training_wh();
  result.total_comm_wh = engine.accountant().total_comm_wh();
  if (const scenario::FleetScenario* scn = engine.scenario()) {
    result.mean_availability = scn->mean_availability();
    result.down_node_rounds = scn->down_steps_total();
    result.harvested_wh = scn->harvested_mwh_total() / 1000.0;
  }
  {
    const fault::FaultStats& fs = engine.fault_stats();
    result.dropped_messages = static_cast<std::size_t>(fs.dropped);
    result.corrupt_messages = static_cast<std::size_t>(fs.corrupt);
    result.duplicated_messages = static_cast<std::size_t>(fs.duplicated);
    result.crash_down_rounds = static_cast<std::size_t>(fs.crash_down_rounds);
    if (fs.attempted_deliveries != 0) {
      result.delivery_rate =
          static_cast<double>(fs.attempted_deliveries - fs.dropped -
                              fs.corrupt) /
          static_cast<double>(fs.attempted_deliveries);
    }
  }
  result.final_per_node_accuracy = std::move(last_per_node);
  // Fold the engine's per-round phase times into the trial's telemetry.
  // rounds counts only the rounds THIS process executed (resume skips the
  // restored prefix), matching the phase times, which are also fresh-only.
  result.telemetry.phases.merge(engine.phase_stats());
  result.telemetry.wire_bytes = engine.wire_bytes_sent();
  result.telemetry.rounds = engine.rounds_executed() - start_round;
  return result;
}

}  // namespace skiptrain::sim
