#include "sim/runner.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "energy/fleet.hpp"
#include "graph/topology.hpp"
#include "metrics/consensus.hpp"
#include "metrics/evaluator.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace skiptrain::sim {

const char* algorithm_name(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kDpsgd:
      return "D-PSGD";
    case Algorithm::kDpsgdAllReduce:
      return "D-PSGD+AllReduce";
    case Algorithm::kSkipTrain:
      return "SkipTrain";
    case Algorithm::kSkipTrainConstrained:
      return "SkipTrain-constrained";
    case Algorithm::kGreedy:
      return "Greedy";
  }
  return "?";
}

namespace {

std::unique_ptr<core::RoundScheduler> make_scheduler(
    const RunOptions& options, const energy::Fleet& fleet) {
  switch (options.algorithm) {
    case Algorithm::kDpsgd:
    case Algorithm::kDpsgdAllReduce:
      return std::make_unique<core::DpsgdScheduler>();
    case Algorithm::kSkipTrain:
      return std::make_unique<core::SkipTrainScheduler>(options.gamma_train,
                                                        options.gamma_sync);
    case Algorithm::kSkipTrainConstrained: {
      std::vector<std::size_t> budgets(fleet.num_nodes());
      for (std::size_t i = 0; i < fleet.num_nodes(); ++i) {
        budgets[i] = fleet.budget_rounds(i);
      }
      return std::make_unique<core::SkipTrainConstrainedScheduler>(
          options.gamma_train, options.gamma_sync, options.total_rounds,
          std::move(budgets), options.seed);
    }
    case Algorithm::kGreedy:
      return std::make_unique<core::GreedyScheduler>();
  }
  throw std::invalid_argument("make_scheduler: unknown algorithm");
}

}  // namespace

ExperimentResult run_experiment(const data::FederatedData& data,
                                const nn::Sequential& prototype,
                                const RunOptions& options) {
  const std::size_t n = data.num_nodes();
  if (n == 0) throw std::invalid_argument("run_experiment: no nodes");

  // --- Topology & mixing -------------------------------------------------
  util::Rng topo_rng(util::hash_combine(options.seed, 0x70700000ULL));
  const graph::Topology topology =
      graph::make_random_regular(n, options.degree, topo_rng);
  const graph::MixingMatrix mixing =
      options.algorithm == Algorithm::kDpsgdAllReduce
          ? graph::MixingMatrix::all_reduce(n)
          : graph::MixingMatrix::metropolis_hastings(topology);

  // --- Energy ------------------------------------------------------------
  // Training energies and budgets use the paper's canonical traces; comm
  // energy is charged on the paper's model size |x| so that the reported
  // Wh live on the paper's scale even for the compact simulation model.
  const energy::Fleet fleet =
      energy::Fleet::even(n, options.workload)
          .with_budget_scale(options.budget_scale);
  const energy::WorkloadSpec& spec = energy::workload_spec(options.workload);
  std::vector<std::size_t> degrees(n);
  for (std::size_t i = 0; i < n; ++i) degrees[i] = topology.degree(i);
  // The comm model bills at the codec's true wire bytes per parameter.
  energy::EnergyAccountant accountant(
      fleet, quant::comm_model_for(options.exchange_codec),
      spec.model_params, std::move(degrees));

  // --- Scheduler & engine -------------------------------------------------
  const std::unique_ptr<core::RoundScheduler> scheduler =
      make_scheduler(options, fleet);
  EngineConfig engine_config;
  engine_config.local_steps = options.local_steps;
  engine_config.batch_size = options.batch_size;
  engine_config.learning_rate = options.learning_rate;
  engine_config.seed = options.seed;
  engine_config.sparse_exchange_k = options.sparse_exchange_k;
  engine_config.exchange_codec = options.exchange_codec;
  RoundEngine engine(prototype, data, mixing, *scheduler,
                     std::move(accountant), engine_config);

  // --- Evaluation --------------------------------------------------------
  const data::Dataset* eval_split =
      options.eval_on_validation ? &data.validation : &data.test;
  metrics::Evaluator evaluator(eval_split, options.eval_max_samples);
  std::vector<nn::Sequential*> model_ptrs(n);
  for (std::size_t i = 0; i < n; ++i) model_ptrs[i] = &engine.model(i);

  const std::size_t eval_every =
      options.eval_every != 0
          ? options.eval_every
          : (options.algorithm == Algorithm::kSkipTrain ||
             options.algorithm == Algorithm::kSkipTrainConstrained
                 ? options.gamma_train + options.gamma_sync
                 : 8);

  ExperimentResult result;
  result.algorithm = scheduler->name();
  result.dataset = data.name;
  result.nodes = n;
  result.degree = options.degree;
  result.fleet_budget_wh = fleet.total_budget_wh();
  result.recorder = metrics::Recorder(std::string(algorithm_name(
                                          options.algorithm)) +
                                      " on " + data.name);

  std::vector<double> last_per_node;
  const auto evaluate_now = [&](std::size_t round, core::RoundKind kind,
                                std::size_t trained) {
    metrics::RoundRecord record;
    record.round = round;
    record.training_round = (kind == core::RoundKind::kTraining);
    const auto fleet_eval = evaluator.evaluate_fleet(model_ptrs);
    record.mean_accuracy = fleet_eval.accuracy.mean;
    record.std_accuracy = fleet_eval.accuracy.stddev;
    last_per_node = fleet_eval.per_node;
    if (options.evaluate_allreduce) {
      record.allreduce_accuracy =
          evaluator.evaluate_average(prototype, engine.node_parameters())
              .accuracy;
    }
    if (options.track_consensus) {
      record.consensus = metrics::consensus_distance(engine.node_parameters());
    }
    record.train_energy_wh = engine.accountant().total_training_wh();
    record.comm_energy_wh = engine.accountant().total_comm_wh();
    record.nodes_trained = trained;
    result.recorder.add(record);
  };

  // --- Main loop (Algorithm 2's for t = 1..T) ------------------------------
  for (std::size_t t = 1; t <= options.total_rounds; ++t) {
    const RoundEngine::RoundOutcome outcome = engine.run_round();
    if (outcome.kind == core::RoundKind::kTraining) {
      ++result.coordinated_training_rounds;
    }
    if (t % eval_every == 0 || t == options.total_rounds) {
      evaluate_now(t, outcome.kind, outcome.nodes_trained);
    }
  }

  const metrics::RoundRecord& last = result.recorder.last();
  result.final_mean_accuracy = last.mean_accuracy;
  result.final_std_accuracy = last.std_accuracy;
  result.final_allreduce_accuracy = last.allreduce_accuracy;
  result.best_mean_accuracy = result.recorder.best_mean_accuracy();
  result.total_training_wh = engine.accountant().total_training_wh();
  result.total_comm_wh = engine.accountant().total_comm_wh();
  result.final_per_node_accuracy = std::move(last_per_node);
  return result;
}

}  // namespace skiptrain::sim
