#include "plane/sharded.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace skiptrain::plane {

ShardedPlane::ShardedPlane(std::size_t nodes, std::size_t dim,
                           std::size_t shard_rows,
                           util::AlignedArena::Touch touch)
    : nodes_(nodes), dim_(dim), shard_rows_(shard_rows) {
  if (nodes == 0 || dim == 0) {
    throw std::invalid_argument("ShardedPlane: empty plane");
  }
  if (shard_rows_ == 0) {
    // One shard buffer ≈ one 2 MiB huge page (and at least one row).
    shard_rows_ = std::max<std::size_t>(
        1, util::AlignedArena::kHugeThreshold / (dim * sizeof(float)));
  }
  shard_rows_ = std::min(shard_rows_, nodes_);
  const std::size_t num_shards = (nodes_ + shard_rows_ - 1) / shard_rows_;
  shards_.resize(num_shards);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t rows = rows_in_shard(s);
    shards_[s].buffers[0] =
        util::AlignedArena(rows * dim_ * sizeof(float), touch);
    shards_[s].buffers[1] =
        util::AlignedArena(rows * dim_ * sizeof(float), touch);
    shards_[s].scratch = util::AlignedArena(dim_ * sizeof(float));
  }
}

std::size_t ShardedPlane::rows_in_shard(std::size_t shard) const {
  const std::size_t begin = shard_begin(shard);
  return std::min(shard_rows_, nodes_ - begin);
}

std::span<float> ShardedPlane::row_in(std::size_t which,
                                      std::size_t node) const {
  const std::size_t shard = node / shard_rows_;
  const std::size_t local = node - shard * shard_rows_;
  return {shards_[shard].buffers[which].floats() + local * dim_, dim_};
}

std::span<float> ShardedPlane::shard_scratch(std::size_t shard) {
  return {shards_[shard].scratch.floats(), dim_};
}

void apply_mixing_sharded(const graph::MixingRef& mixing,
                          ShardedPlane& plane) {
  if (mixing.num_nodes() != plane.nodes()) {
    throw std::invalid_argument(
        "plane::apply_mixing_sharded: node count mismatch");
  }
  OBS_SPAN("gossip.sharded");
  static const obs::Counter mixed = obs::counter("gossip.rows_mixed");
  mixed.add(plane.nodes());
  const ShardedPlane& source = plane;
  const auto half_row = [&source](std::size_t node) {
    return source.current_row(node);
  };
  util::parallel_for(0, plane.num_shards(), [&](std::size_t s) {
    const std::size_t begin = plane.shard_begin(s);
    const std::size_t end = begin + plane.rows_in_shard(s);
    for (std::size_t i = begin; i < end; ++i) {
      graph::mix_row(mixing, i, half_row, plane.back_row(i));
    }
  });
  plane.flip();
}

}  // namespace skiptrain::plane
