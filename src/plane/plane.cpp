#include "plane/plane.hpp"

#include <stdexcept>

#include "core/compression.hpp"
#include "graph/mixing.hpp"
#include "graph/sparse.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace skiptrain::plane {

namespace {

/// Telemetry tap for every mixing kernel below: rows pushed through the
/// gossip aggregation. Observational only.
void note_rows_mixed(std::size_t rows) {
  static const obs::Counter mixed = obs::counter("gossip.rows_mixed");
  mixed.add(rows);
}

}  // namespace

void gather_masked_rows(ConstMatrixView source,
                        std::span<const std::uint32_t> mask,
                        MatrixView staged) {
  if (staged.rows != source.rows || staged.dim != mask.size()) {
    throw std::invalid_argument("gather_masked_rows: shape mismatch");
  }
  for (std::size_t i = 0; i < source.rows; ++i) {
    core::gather_masked(mask, source.row(i), staged.row(i));
  }
}

void apply_mixing(const graph::MixingMatrix& mixing, ParameterPlane& plane,
                  std::size_t block_floats) {
  apply_mixing_from(mixing, plane.current().view(), plane, block_floats);
}

void apply_mixing_from(const graph::MixingMatrix& mixing,
                       ConstMatrixView source, ParameterPlane& plane,
                       std::size_t block_floats) {
  if (mixing.num_nodes() != plane.nodes()) {
    throw std::invalid_argument("plane::apply_mixing: node count mismatch");
  }
  if (source.rows != plane.nodes() || source.dim != plane.dim()) {
    throw std::invalid_argument("plane::apply_mixing_from: source shape");
  }
  OBS_SPAN("gossip.apply_mixing");
  note_rows_mixed(source.rows);
  graph::apply_mixing_blocked(mixing, source.flat(),
                              plane.back().view().flat(), plane.dim(),
                              block_floats);
  plane.flip();
}

void apply_mixing(const graph::MixingRef& mixing, ParameterPlane& plane,
                  std::size_t block_floats) {
  apply_mixing_from(mixing, plane.current().view(), plane, block_floats);
}

void apply_mixing_from(const graph::MixingRef& mixing, ConstMatrixView source,
                       ParameterPlane& plane, std::size_t block_floats) {
  if (!mixing.is_sparse()) {
    apply_mixing_from(*mixing.dense, source, plane, block_floats);
    return;
  }
  if (mixing.num_nodes() != plane.nodes()) {
    throw std::invalid_argument("plane::apply_mixing: node count mismatch");
  }
  if (source.rows != plane.nodes() || source.dim != plane.dim()) {
    throw std::invalid_argument("plane::apply_mixing_from: source shape");
  }
  OBS_SPAN("gossip.apply_mixing");
  note_rows_mixed(source.rows);
  graph::apply_mixing_sharded(mixing, source.flat(),
                              plane.back().view().flat(), plane.dim(),
                              block_floats);
  plane.flip();
}

}  // namespace skiptrain::plane
