// Contiguous model storage for a simulated fleet.
//
// Every node's flat parameter vector is one row of a row-major [n × dim]
// matrix, so the exchange/aggregate step — the part of a decentralized
// round the paper's cost model cares about — runs as dense linear algebra
// over one allocation instead of n scattered per-layer vectors. Node
// models (nn::Sequential) bind their layer views directly onto plane rows
// (see Sequential::bind_parameter_arena), which removes every
// get_parameters/set_parameters copy from the per-round path.
//
// ParameterPlane double-buffers two such matrices: training writes
// x^{t-1/2} into the current buffer in place, the gossip kernel writes
// x^t into the back buffer, and flip() swaps the roles — aggregation
// never copies a parameter it does not mix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "util/arena.hpp"

namespace skiptrain::graph {
class MixingMatrix;
struct MixingRef;
}

namespace skiptrain::plane {

/// Non-owning view of a row-major [rows × dim] float matrix.
struct ConstMatrixView {
  const float* data = nullptr;
  std::size_t rows = 0;
  std::size_t dim = 0;

  std::span<const float> row(std::size_t i) const { return {data + i * dim, dim}; }
  std::span<const float> operator[](std::size_t i) const { return row(i); }
  std::span<const float> flat() const { return {data, rows * dim}; }
  std::size_t size() const { return rows; }
  bool empty() const { return rows == 0; }
};

/// Mutable counterpart of ConstMatrixView.
struct MatrixView {
  float* data = nullptr;
  std::size_t rows = 0;
  std::size_t dim = 0;

  std::span<float> row(std::size_t i) const { return {data + i * dim, dim}; }
  std::span<float> operator[](std::size_t i) const { return row(i); }
  std::span<float> flat() const { return {data, rows * dim}; }
  std::size_t size() const { return rows; }
  bool empty() const { return rows == 0; }

  operator ConstMatrixView() const { return {data, rows, dim}; }
};

/// One owned [rows × dim] matrix whose rows serve as parameter arenas
/// (model rows, async outboxes, compact staging pools). Rows never
/// reallocate after construction, so bound layer views stay valid for the
/// arena's lifetime. Storage sits on a util::AlignedArena: row 0 starts on
/// a 64-byte boundary, large planes are huge-page backed, and contents are
/// zero-initialized (matching the std::vector semantics this replaced).
/// Move-only, like the arena underneath.
class RowArena {
 public:
  RowArena() = default;
  RowArena(std::size_t rows, std::size_t dim,
           util::AlignedArena::Touch touch = util::AlignedArena::Touch::kNone)
      : rows_(rows), dim_(dim), arena_(rows * dim * sizeof(float), touch) {}

  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return dim_; }

  std::span<float> row(std::size_t i) {
    return {arena_.floats() + i * dim_, dim_};
  }
  std::span<const float> row(std::size_t i) const {
    return {arena_.floats() + i * dim_, dim_};
  }

  MatrixView view() { return {arena_.floats(), rows_, dim_}; }
  ConstMatrixView view() const { return {arena_.floats(), rows_, dim_}; }

 private:
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  util::AlignedArena arena_;
};

/// Double-buffered fleet storage: current() holds the newest parameters,
/// back() receives the next aggregation result, flip() swaps the roles.
class ParameterPlane {
 public:
  ParameterPlane() = default;
  ParameterPlane(std::size_t nodes, std::size_t dim)
      : buffers_{RowArena(nodes, dim), RowArena(nodes, dim)} {}

  std::size_t nodes() const { return buffers_[0].rows(); }
  std::size_t dim() const { return buffers_[0].dim(); }

  RowArena& current() { return buffers_[cur_]; }
  const RowArena& current() const { return buffers_[cur_]; }
  RowArena& back() { return buffers_[1 - cur_]; }
  const RowArena& back() const { return buffers_[1 - cur_]; }

  void flip() { cur_ = 1 - cur_; }

 private:
  RowArena buffers_[2];
  std::size_t cur_ = 0;
};

/// Gathers the `mask` coordinates of every row of `source` into the
/// compact [rows × mask.size()] matrix `staged` — the staging step of the
/// sparse (masked) exchange, which lets receivers update in place while
/// reading only k pre-update values per neighbor.
void gather_masked_rows(ConstMatrixView source,
                        std::span<const std::uint32_t> mask,
                        MatrixView staged);

/// One gossip round over the plane: runs the blocked sparse-row kernel
/// (graph::apply_mixing_blocked) current() → back(), then flips, so
/// current() holds x_i^t = Σ_j W_ji x_j^{t-1/2} afterwards. Models bound
/// to the previous current() rows must be re-attached by the caller.
/// `block_floats` = 0 picks a cache-resident tile automatically.
void apply_mixing(const graph::MixingMatrix& mixing, ParameterPlane& plane,
                  std::size_t block_floats = 0);

/// Same gossip round, but the kernel reads an EXTERNAL [n × dim] source —
/// the staging-boundary seam for quantized exchanges: the engine decodes
/// every wire payload into a staging arena and mixes from there, so the
/// aggregation consumes exactly what crossed the (simulated) wire while
/// the plane keeps its float32 layout. back() receives Σ_j W_ji source_j,
/// then the buffers flip; current() still holds the pre-round rows
/// afterwards in back() (callers that need the exact pre-exchange values,
/// e.g. for the self-weight correction, read them there).
void apply_mixing_from(const graph::MixingMatrix& mixing,
                       ConstMatrixView source, ParameterPlane& plane,
                       std::size_t block_floats = 0);

/// MixingRef dispatch of the two entry points above: a dense handle runs
/// the column-blocked kernel (byte-identical to the overloads taking a
/// MixingMatrix), a sparse handle runs the row-sharded kernel
/// (graph::apply_mixing_sharded) — the large-fleet path where column
/// blocking runs out of parallelism. `block_floats` is forwarded as the
/// block/shard size of whichever kernel runs (0 = automatic).
void apply_mixing(const graph::MixingRef& mixing, ParameterPlane& plane,
                  std::size_t block_floats = 0);
void apply_mixing_from(const graph::MixingRef& mixing, ConstMatrixView source,
                       ParameterPlane& plane, std::size_t block_floats = 0);

}  // namespace skiptrain::plane
