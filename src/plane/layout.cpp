#include "plane/layout.hpp"

#include <stdexcept>
#include <string>

#include "nn/sequential.hpp"

namespace skiptrain::plane {

ParameterLayout ParameterLayout::of(const nn::Sequential& model) {
  ParameterLayout layout;
  std::size_t offset = 0;
  for (std::size_t i = 0; i < model.num_layers(); ++i) {
    const std::size_t extent = model.layer(i).parameter_count();
    if (extent != 0) {
      layout.blocks_.push_back(Block{i, offset, extent});
    }
    offset += extent;
  }
  layout.dim_ = offset;
  return layout;
}

const ParameterLayout::Block& ParameterLayout::block_of_layer(
    std::size_t layer) const {
  for (const Block& block : blocks_) {
    if (block.layer == layer) return block;
  }
  throw std::out_of_range("ParameterLayout: layer " + std::to_string(layer) +
                          " has no parameter block");
}

}  // namespace skiptrain::plane
