// Row-sharded, double-buffered fleet storage for huge fleets.
//
// A single flat ParameterPlane is one allocation; fine until the fleet
// outgrows one memory controller. ShardedPlane splits the [n × dim] plane
// into contiguous row shards, each shard owning its own pair of
// util::AlignedArena buffers (huge-page backed, 64-byte aligned) plus a
// shard-local scratch row — so the gossip hot loop writes only its own
// shard's back buffer and stages only in its own shard's scratch; the only
// cross-shard traffic is the inherent neighbor-row reads of gossip itself.
// With Touch::kInterleave each shard's pages are first-touched in parallel
// across the pool workers, spreading a large plane over the sockets that
// will stream it.
//
// The engines keep using the flat ParameterPlane (its single contiguous
// blob is the checkpoint-image layout); ShardedPlane is the substrate for
// the large-fleet bench rows and for future shard-per-process modes.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/sparse.hpp"
#include "util/arena.hpp"

namespace skiptrain::plane {

class ShardedPlane {
 public:
  /// `shard_rows` = 0 sizes shards so one buffer is ~one 2 MiB huge page.
  ShardedPlane(std::size_t nodes, std::size_t dim, std::size_t shard_rows = 0,
               util::AlignedArena::Touch touch =
                   util::AlignedArena::Touch::kInterleave);

  std::size_t nodes() const { return nodes_; }
  std::size_t dim() const { return dim_; }
  std::size_t shard_rows() const { return shard_rows_; }
  std::size_t num_shards() const { return shards_.size(); }
  std::size_t shard_of(std::size_t node) const { return node / shard_rows_; }
  std::size_t shard_begin(std::size_t shard) const {
    return shard * shard_rows_;
  }
  std::size_t rows_in_shard(std::size_t shard) const;

  std::span<float> current_row(std::size_t node) {
    return row_in(cur_, node);
  }
  std::span<const float> current_row(std::size_t node) const {
    return row_in(cur_, node);
  }
  std::span<float> back_row(std::size_t node) {
    return row_in(1 - cur_, node);
  }

  /// One dim-float staging row owned by the shard — codec/gather staging
  /// that never leaves the shard's own pages.
  std::span<float> shard_scratch(std::size_t shard);

  void flip() { cur_ = 1 - cur_; }

 private:
  struct Shard {
    util::AlignedArena buffers[2];
    util::AlignedArena scratch;
  };

  std::span<float> row_in(std::size_t which, std::size_t node) const;

  std::size_t nodes_ = 0;
  std::size_t dim_ = 0;
  std::size_t shard_rows_ = 0;
  std::size_t cur_ = 0;
  std::vector<Shard> shards_;
};

/// One gossip round over the sharded plane: every shard's rows are reduced
/// by its own pool task (shard-affine: one worker streams one shard's
/// output end to end), reading neighbor rows across shards, then the
/// buffers flip. Row reductions use graph::mix_row, so the result is
/// bitwise identical to the flat blocked/sharded kernels on the same
/// mixing weights.
void apply_mixing_sharded(const graph::MixingRef& mixing, ShardedPlane& plane);

}  // namespace skiptrain::plane
