// ParameterLayout: the map from a model's layers to blocks of the flat
// parameter arena. A Sequential lays its parameters out contiguously in
// layer order (weights first, then bias, within each layer); this type
// records where each parameterized layer's block starts and how long it
// is, so plane consumers (serialization, sharding, quantized rows) can
// address sub-model regions of a plane row without asking the layers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace skiptrain::nn {
class Sequential;
}

namespace skiptrain::plane {

class ParameterLayout {
 public:
  struct Block {
    std::size_t layer;   // index into Sequential::layer()
    std::size_t offset;  // first float of this layer's block in the arena
    std::size_t extent;  // parameter count of the layer
  };

  ParameterLayout() = default;

  /// Builds the layout of `model`'s current architecture. Parameter-free
  /// layers (ReLU, pooling, ...) contribute no block.
  static ParameterLayout of(const nn::Sequential& model);

  /// Total parameter count (== Sequential::num_parameters()).
  std::size_t dim() const { return dim_; }

  std::span<const Block> blocks() const { return blocks_; }

  /// Block of layer index `layer`; throws std::out_of_range when that
  /// layer has no parameters (or does not exist).
  const Block& block_of_layer(std::size_t layer) const;

  /// Slice of `row` (a flat arena of size dim()) holding `block`'s values.
  template <typename T>
  static std::span<T> slice(std::span<T> row, const Block& block) {
    return row.subspan(block.offset, block.extent);
  }

 private:
  std::vector<Block> blocks_;
  std::size_t dim_ = 0;
};

}  // namespace skiptrain::plane
