// CSV harvest/availability traces for the scenario engine.
//
// Real deployments publish per-device energy logs (solar irradiance,
// RF-harvest, duty-cycle availability); a HarvestTrace loads such a log
// and replays it per node. The format is a plain CSV:
//
//   time,node,harvest_mwh[,available]
//   0,0,1.25,1
//   0,1,0.80,1
//   1,0,1.10,0
//
// * `time` — sample timestamps; strictly increasing per node (any
//   monotone unit: rounds, seconds, ...). Only the ORDER is used: sample
//   k of node i's series applies to that node's k-th scenario step.
// * `node` — series id. Ids must cover 0..K-1 with no gaps; a fleet
//   larger than K maps node i onto series i mod K, and a series shorter
//   than the run wraps cyclically.
// * `harvest_mwh` — energy harvested since the previous sample. Finite
//   and non-negative.
// * `available` — optional 0/1 duty-cycle flag; a 0 forces the node down
//   for that step regardless of charge (defaults to 1).
//
// Loading mirrors the ckpt IO hardening: empty files, non-monotonic
// timestamps, NaN/negative harvest values, malformed rows, and binary
// trailing bytes are all rejected with errors naming the offending line —
// a truncated or corrupted trace must never silently drive a simulation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace skiptrain::scenario {

class HarvestTrace {
 public:
  struct Sample {
    double time = 0.0;
    double harvest_mwh = 0.0;
    bool available = true;
  };

  /// Parses the CSV format above from a stream; `what` names the source
  /// in error messages. Throws std::runtime_error on any hostile input.
  static HarvestTrace parse_csv(std::istream& in, const std::string& what);

  /// Opens and parses `path`. Throws std::runtime_error when the file is
  /// missing or malformed.
  static HarvestTrace load_csv(const std::string& path);

  /// Number of per-node series (the trace's K distinct node ids).
  std::size_t num_series() const { return series_.size(); }

  /// Samples in node i's series (nodes wrap: i mod num_series()).
  std::size_t series_length(std::size_t node) const;

  /// Harvest delivered to `node` at its step `t` (1-based, matching round
  /// numbering); series wrap cyclically past their length.
  double harvest_mwh(std::size_t node, std::size_t t) const;

  /// Duty-cycle availability of `node` at step `t` (same indexing).
  bool available(std::size_t node, std::size_t t) const;

  /// Content fingerprint over every sample; feeds the scenario config
  /// hash so checkpoint identities distinguish different trace files.
  std::uint64_t content_hash() const;

 private:
  const Sample& sample(std::size_t node, std::size_t t) const;

  std::vector<std::vector<Sample>> series_;
};

}  // namespace skiptrain::scenario
