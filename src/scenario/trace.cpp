#include "scenario/trace.hpp"

#include <bit>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace skiptrain::scenario {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t line,
                       const std::string& message) {
  throw std::runtime_error("harvest trace " + what + ":" +
                           std::to_string(line) + ": " + message);
}

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r");
  return text.substr(begin, end - begin + 1);
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t start = 0;
  while (true) {
    const std::size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(trim(line.substr(start)));
      return fields;
    }
    fields.push_back(trim(line.substr(start, comma - start)));
    start = comma + 1;
  }
}

double parse_double(const std::string& text, const std::string& what,
                    std::size_t line, const char* field) {
  if (text.empty()) {
    fail(what, line, std::string("empty ") + field + " field");
  }
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) {
    fail(what, line,
         std::string("malformed ") + field + " value '" + text + "'");
  }
  return value;
}

// A node id field must be a plain non-negative integer; strtod would
// accept "1e3" or "2.5" here.
std::size_t parse_node_id(const std::string& text, const std::string& what,
                          std::size_t line) {
  if (text.empty()) fail(what, line, "empty node field");
  for (const char c : text) {
    if (c < '0' || c > '9') {
      fail(what, line, "malformed node id '" + text + "'");
    }
  }
  // A ceiling far above any plausible fleet; a corrupt field must not
  // drive a multi-gigabyte series allocation below.
  constexpr std::size_t kMaxNodeId = 1u << 20;
  const unsigned long long value = std::strtoull(text.c_str(), nullptr, 10);
  if (value >= kMaxNodeId) {
    fail(what, line, "node id " + text + " exceeds the supported maximum " +
                         std::to_string(kMaxNodeId - 1));
  }
  return static_cast<std::size_t>(value);
}

}  // namespace

HarvestTrace HarvestTrace::parse_csv(std::istream& in,
                                     const std::string& what) {
  HarvestTrace trace;
  std::string line;
  std::size_t line_number = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_number;
    // Binary garbage (e.g. a trace truncated and re-appended by a crashed
    // writer) shows up as embedded NULs; CSV text never contains them.
    if (line.find('\0') != std::string::npos) {
      fail(what, line_number, "binary bytes in CSV trace");
    }
    const std::string text = trim(line);
    if (text.empty()) {
      fail(what, line_number, "blank line inside trace");
    }
    if (!saw_header) {
      saw_header = true;
      if (text.rfind("time", 0) != 0) {
        fail(what, line_number,
             "expected header 'time,node,harvest_mwh[,available]', got '" +
                 text + "'");
      }
      continue;
    }
    const std::vector<std::string> fields = split_fields(text);
    if (fields.size() != 3 && fields.size() != 4) {
      fail(what, line_number,
           "expected 3 or 4 fields, got " + std::to_string(fields.size()));
    }
    Sample sample;
    sample.time = parse_double(fields[0], what, line_number, "time");
    const std::size_t node = parse_node_id(fields[1], what, line_number);
    sample.harvest_mwh =
        parse_double(fields[2], what, line_number, "harvest_mwh");
    if (!std::isfinite(sample.time)) {
      fail(what, line_number, "non-finite timestamp");
    }
    if (!std::isfinite(sample.harvest_mwh)) {
      fail(what, line_number, "non-finite harvest value");
    }
    if (sample.harvest_mwh < 0.0) {
      fail(what, line_number,
           "negative harvest value " + fields[2] +
               " (harvested energy cannot be negative)");
    }
    if (fields.size() == 4) {
      if (fields[3] == "0") {
        sample.available = false;
      } else if (fields[3] == "1") {
        sample.available = true;
      } else {
        fail(what, line_number,
             "availability flag must be 0 or 1, got '" + fields[3] + "'");
      }
    }
    if (node >= trace.series_.size()) trace.series_.resize(node + 1);
    auto& series = trace.series_[node];
    if (!series.empty() && sample.time <= series.back().time) {
      fail(what, line_number,
           "non-monotonic timestamp " + fields[0] + " for node " +
               std::to_string(node) + " (previous sample at " +
               std::to_string(series.back().time) + ")");
    }
    series.push_back(sample);
  }
  if (in.bad()) {
    throw std::runtime_error("harvest trace " + what + ": read error");
  }
  if (trace.series_.empty()) {
    throw std::runtime_error("harvest trace " + what +
                             ": contains no samples");
  }
  for (std::size_t i = 0; i < trace.series_.size(); ++i) {
    if (trace.series_[i].empty()) {
      throw std::runtime_error(
          "harvest trace " + what + ": node ids must cover 0.." +
          std::to_string(trace.series_.size() - 1) + " with no gaps (node " +
          std::to_string(i) + " has no samples)");
    }
  }
  return trace;
}

HarvestTrace HarvestTrace::load_csv(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("harvest trace: cannot open '" + path + "'");
  }
  return parse_csv(in, path);
}

std::size_t HarvestTrace::series_length(std::size_t node) const {
  assert(!series_.empty());
  return series_[node % series_.size()].size();
}

const HarvestTrace::Sample& HarvestTrace::sample(std::size_t node,
                                                 std::size_t t) const {
  assert(!series_.empty());
  assert(t >= 1);
  const auto& series = series_[node % series_.size()];
  return series[(t - 1) % series.size()];
}

double HarvestTrace::harvest_mwh(std::size_t node, std::size_t t) const {
  return sample(node, t).harvest_mwh;
}

bool HarvestTrace::available(std::size_t node, std::size_t t) const {
  return sample(node, t).available;
}

std::uint64_t HarvestTrace::content_hash() const {
  std::uint64_t hash = util::hash_combine(0x7261636548727673ULL,  // "svrHcar"
                                          series_.size());
  for (const auto& series : series_) {
    hash = util::hash_combine(hash, series.size());
    for (const Sample& sample : series) {
      hash = util::hash_combine(
          hash, std::bit_cast<std::uint64_t>(sample.time));
      hash = util::hash_combine(
          hash, std::bit_cast<std::uint64_t>(sample.harvest_mwh));
      hash = util::hash_combine(hash, sample.available ? 1u : 0u);
    }
  }
  return hash;
}

}  // namespace skiptrain::scenario
