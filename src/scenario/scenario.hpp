// Trace-driven heterogeneity & energy-harvesting scenarios.
//
// The paper's intermittent-training setting assumes nodes always have
// energy when the schedule says "train". This layer drops that
// assumption: each node carries a battery that charges from a harvest
// process (synthetic solar/diurnal, or a CSV trace of a real deployment)
// and pays for every training and exchange it performs. A node whose
// charge falls below the dropout threshold goes DOWN — its model freezes
// in place (the checkpointable per-node state the ckpt layer already
// serializes) and it neither trains, sends, nor receives — until harvest
// lifts the charge back over the re-entry threshold (hysteresis, so a
// node hovering at the threshold does not flap every round).
//
// Determinism contract (same as the schedulers): every stochastic draw —
// per-node panel efficiency, per-(node, round) weather — comes from
// util::stateless_uniform keyed on (seed, node, t), so harvest is a pure
// function of (config, seed, node, t). Battery evolution is sequential
// per node in round order. Simulations with scenarios therefore stay
// byte-identical across thread counts and bit-identical across
// kill/resume (FleetScenario state rides inside the engine's fleet
// image).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/trace.hpp"

namespace skiptrain::ckpt {
class ImageReader;
class ImageWriter;
}  // namespace skiptrain::ckpt

namespace skiptrain::scenario {

enum class HarvestKind : std::uint8_t {
  kNone = 0,   // battery only: drains, never recharges
  kSolar = 1,  // synthetic diurnal generator (clipped sine x weather noise)
  kTrace = 2,  // replay a HarvestTrace (CSV)
};

/// Value-type description of a scenario. Battery and harvest magnitudes
/// are expressed in units of each node's OWN per-round training energy,
/// so one config scales across workloads and heterogeneous fleets.
struct ScenarioConfig {
  bool enabled = false;
  HarvestKind harvest = HarvestKind::kSolar;

  // Battery (per-round training-energy units).
  double battery_rounds = 24.0;  // capacity
  double initial_soc = 1.0;      // starting state of charge in [0, 1]
  double dropout_soc = 0.02;     // below -> node goes down
  double reentry_soc = 0.25;     // back above -> node re-enters

  // Synthetic solar harvest (kSolar): mean harvest per round over a full
  // diurnal cycle, the cycle length, multiplicative weather noise
  // amplitude, and the per-node panel efficiency spread.
  double harvest_rounds_mean = 0.6;
  double period_rounds = 24.0;
  double weather_noise = 0.5;
  double panel_spread = 0.5;

  // Trace replay (kTrace). trace_scale multiplies the trace's raw
  // harvest_mwh values (traces carry absolute energies; the battery is
  // still sized in training-round units).
  std::shared_ptr<const HarvestTrace> trace;
  std::string trace_path;  // provenance, for tokens/errors only
  double trace_scale = 1.0;

  // Async engine: a down node polls its battery again after this fraction
  // of its training duration.
  double dormant_wait_factor = 1.0;

  /// 64-bit fingerprint over every field (including trace content).
  /// Stored in checkpoint identities so an image written under one
  /// scenario can never resume into another.
  [[nodiscard]] std::uint64_t config_hash() const;

  /// Throws std::invalid_argument on malformed configs (thresholds
  /// outside [0,1], reentry < dropout, kTrace without a trace, ...).
  void validate() const;
};

/// Named scenarios for sweep axes and config files:
///   "" | "none"     — disabled (the paper's always-powered setting)
///   "solar"         — solar-harvesting sensor fleet; generous batteries,
///                     nodes brown out at night and re-enter by day
///   "churn"         — tight batteries + heavy weather: frequent mid-run
///                     dropout/re-entry (the phone-fleet stress case)
///   "trace:<path>"  — replay the CSV harvest trace at <path>
/// Throws std::invalid_argument on unknown names (and propagates trace
/// load errors).
[[nodiscard]] ScenarioConfig make_config(const std::string& name);

/// The canonical token for CSV columns / fingerprints ("" -> "none").
[[nodiscard]] std::string scenario_token(const std::string& name);

/// Runtime battery/churn state of a fleet under a ScenarioConfig.
/// Engines drive it with begin_round (sync: every node steps) or
/// step_node (async: one node per activation), gate work on alive(), and
/// pay for work through try_spend().
class FleetScenario {
 public:
  /// `train_round_mwh[i]` is node i's per-round training energy — the
  /// unit the config's battery/harvest magnitudes scale from.
  FleetScenario(const ScenarioConfig& config, std::size_t num_nodes,
                std::uint64_t seed, std::vector<double> train_round_mwh);

  std::size_t num_nodes() const { return charge_mwh_.size(); }

  /// Advances every node to round t (harvest arrives, churn thresholds
  /// apply). Synchronous engines call this once at the top of round t.
  void begin_round(std::size_t t);

  /// Advances one node to its local step t (async activation path).
  void step_node(std::size_t node, std::size_t t);

  bool alive(std::size_t node) const { return down_[node] == 0; }

  /// Spends `mwh` from the node's battery. Insufficient charge is a
  /// brownout: the battery drains to zero, the node goes down, and the
  /// call returns false — the caller must abandon the work it was about
  /// to bill.
  bool try_spend(std::size_t node, double mwh);

  double charge_mwh(std::size_t node) const { return charge_mwh_[node]; }
  double capacity_mwh(std::size_t node) const { return capacity_mwh_[node]; }

  /// Pure harvest sample for (node, t) under this config — no state read
  /// or written; exposed for benches and tests.
  double harvest_sample_mwh(std::size_t node, std::size_t t) const;

  // Availability telemetry (counted at step granularity).
  std::size_t steps_total() const { return steps_total_; }
  std::size_t down_steps_total() const { return down_steps_total_; }
  std::size_t brownouts_total() const { return brownouts_total_; }
  double harvested_mwh_total() const { return harvested_mwh_total_; }
  /// 1 - down-steps / steps (1.0 before any step).
  double mean_availability() const;

  std::uint64_t config_hash() const { return config_hash_; }

  /// Serializes the complete mutable state (charges, down flags,
  /// telemetry counters) — construction parameters are identity, not
  /// state, and must match at restore time (enforced upstream via
  /// config_hash in the engine identity).
  void save_state(ckpt::ImageWriter& writer) const;
  void restore_state(ckpt::ImageReader& reader);

 private:
  ScenarioConfig config_;
  std::uint64_t seed_ = 0;
  std::uint64_t config_hash_ = 0;

  // Per-node constants derived at construction.
  std::vector<double> capacity_mwh_;
  std::vector<double> harvest_unit_mwh_;  // mean per-round harvest

  // Mutable state (everything save_state captures).
  std::vector<double> charge_mwh_;
  std::vector<char> down_;
  std::size_t steps_total_ = 0;
  std::size_t down_steps_total_ = 0;
  std::size_t brownouts_total_ = 0;
  double harvested_mwh_total_ = 0.0;
};

}  // namespace skiptrain::scenario
