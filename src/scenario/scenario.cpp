#include "scenario/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "ckpt/io.hpp"
#include "util/rng.hpp"

namespace skiptrain::scenario {

namespace {

// Sub-seed purposes for the scenario's stateless draws, disjoint from the
// engine/scheduler purposes by construction (hash_combine with unique
// tags).
constexpr std::uint64_t kPanelPurpose = 0x50414e454c5f3031ULL;    // "PANEL_01"
constexpr std::uint64_t kWeatherPurpose = 0x5745415448455230ULL;  // "WEATHER0"

std::uint64_t f64_bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

}  // namespace

void ScenarioConfig::validate() const {
  if (!enabled) return;
  const auto in_unit = [](double v) { return v >= 0.0 && v <= 1.0; };
  if (battery_rounds <= 0.0 || !std::isfinite(battery_rounds)) {
    throw std::invalid_argument("scenario: battery_rounds must be positive");
  }
  if (!in_unit(initial_soc) || !in_unit(dropout_soc) || !in_unit(reentry_soc)) {
    throw std::invalid_argument(
        "scenario: state-of-charge thresholds must lie in [0, 1]");
  }
  if (reentry_soc < dropout_soc) {
    throw std::invalid_argument(
        "scenario: reentry_soc must be >= dropout_soc (hysteresis)");
  }
  if (harvest == HarvestKind::kSolar) {
    if (harvest_rounds_mean < 0.0 || !std::isfinite(harvest_rounds_mean)) {
      throw std::invalid_argument(
          "scenario: harvest_rounds_mean must be non-negative");
    }
    if (period_rounds <= 0.0 || !std::isfinite(period_rounds)) {
      throw std::invalid_argument(
          "scenario: period_rounds must be positive");
    }
    if (weather_noise < 0.0 || panel_spread < 0.0 || panel_spread >= 1.0) {
      throw std::invalid_argument(
          "scenario: weather_noise must be >= 0 and panel_spread in [0, 1)");
    }
  }
  if (harvest == HarvestKind::kTrace) {
    if (trace == nullptr) {
      throw std::invalid_argument("scenario: trace replay without a trace");
    }
    if (trace_scale < 0.0 || !std::isfinite(trace_scale)) {
      throw std::invalid_argument(
          "scenario: trace_scale must be non-negative");
    }
  }
  if (dormant_wait_factor <= 0.0 || !std::isfinite(dormant_wait_factor)) {
    throw std::invalid_argument(
        "scenario: dormant_wait_factor must be positive");
  }
}

std::uint64_t ScenarioConfig::config_hash() const {
  if (!enabled) return 0;
  std::uint64_t hash = util::hash_combine(0x5343454e41524930ULL,  // "SCENARI0"
                                          static_cast<std::uint64_t>(harvest));
  for (const double value :
       {battery_rounds, initial_soc, dropout_soc, reentry_soc,
        harvest_rounds_mean, period_rounds, weather_noise, panel_spread,
        trace_scale, dormant_wait_factor}) {
    hash = util::hash_combine(hash, f64_bits(value));
  }
  if (trace != nullptr) {
    hash = util::hash_combine(hash, trace->content_hash());
  }
  return hash;
}

ScenarioConfig make_config(const std::string& name) {
  ScenarioConfig config;
  if (name.empty() || name == "none") {
    return config;  // enabled = false
  }
  config.enabled = true;
  if (name == "solar") {
    // Defaults already model the solar sensor fleet: day-long battery,
    // diurnal harvest that sustains SkipTrain's duty cycle by day but
    // browns weak-panel nodes out at night.
    return config;
  }
  if (name == "churn") {
    // Tight batteries under heavy weather: nodes start half-charged,
    // brown out within a few training rounds, and re-enter on a fast
    // harvest cycle — the churning-phone-fleet stress case.
    config.battery_rounds = 6.0;
    config.initial_soc = 0.6;
    config.dropout_soc = 0.1;
    config.reentry_soc = 0.5;
    config.harvest_rounds_mean = 0.45;
    config.period_rounds = 16.0;
    config.weather_noise = 0.8;
    config.panel_spread = 0.6;
    return config;
  }
  constexpr const char* kTracePrefix = "trace:";
  if (name.rfind(kTracePrefix, 0) == 0) {
    const std::string path = name.substr(std::string(kTracePrefix).size());
    if (path.empty()) {
      throw std::invalid_argument(
          "scenario: 'trace:' needs a CSV path (trace:<path>)");
    }
    config.harvest = HarvestKind::kTrace;
    config.trace =
        std::make_shared<const HarvestTrace>(HarvestTrace::load_csv(path));
    config.trace_path = path;
    return config;
  }
  throw std::invalid_argument("scenario: unknown scenario '" + name +
                              "' (expected none|solar|churn|trace:<path>)");
}

std::string scenario_token(const std::string& name) {
  return name.empty() ? "none" : name;
}

FleetScenario::FleetScenario(const ScenarioConfig& config,
                             std::size_t num_nodes, std::uint64_t seed,
                             std::vector<double> train_round_mwh)
    : config_(config), seed_(seed), config_hash_(config.config_hash()) {
  config_.validate();
  if (!config_.enabled) {
    throw std::invalid_argument(
        "FleetScenario: constructed from a disabled config");
  }
  if (train_round_mwh.size() != num_nodes) {
    throw std::invalid_argument(
        "FleetScenario: training-energy list size != nodes");
  }
  capacity_mwh_.resize(num_nodes);
  harvest_unit_mwh_.resize(num_nodes);
  charge_mwh_.resize(num_nodes);
  down_.assign(num_nodes, 0);
  const std::uint64_t panel_seed = util::hash_combine(seed_, kPanelPurpose);
  for (std::size_t i = 0; i < num_nodes; ++i) {
    const double unit = train_round_mwh[i];
    if (unit <= 0.0 || !std::isfinite(unit)) {
      throw std::invalid_argument(
          "FleetScenario: per-round training energy must be positive");
    }
    capacity_mwh_[i] = config_.battery_rounds * unit;
    charge_mwh_[i] = config_.initial_soc * capacity_mwh_[i];
    // Per-node panel efficiency in [1 - spread, 1 + spread]: a fixed,
    // seed-derived heterogeneity axis (weak panels churn first).
    const double u = util::stateless_uniform(panel_seed, i, 0);
    const double efficiency =
        1.0 + config_.panel_spread * (2.0 * u - 1.0);
    harvest_unit_mwh_[i] = config_.harvest_rounds_mean * unit * efficiency;
  }
}

double FleetScenario::harvest_sample_mwh(std::size_t node,
                                         std::size_t t) const {
  switch (config_.harvest) {
    case HarvestKind::kNone:
      return 0.0;
    case HarvestKind::kTrace:
      return config_.trace->harvest_mwh(node, t) * config_.trace_scale;
    case HarvestKind::kSolar:
      break;
  }
  // Clipped diurnal sine: day is the positive half of the cycle; the
  // factor pi normalizes E[max(0, sin)] = 1/pi so harvest_unit is the
  // true per-round mean. Weather multiplies in counter-based noise — a
  // pure function of (seed, node, t), so thread count and resume point
  // can never change the sky.
  const double phase = 2.0 * std::numbers::pi *
                       (static_cast<double>(t - 1) / config_.period_rounds);
  const double daylight = std::max(0.0, std::sin(phase));
  const double u =
      util::stateless_uniform(util::hash_combine(seed_, kWeatherPurpose),
                              node, t);
  const double weather =
      std::max(0.0, 1.0 + config_.weather_noise * (2.0 * u - 1.0));
  return harvest_unit_mwh_[node] * std::numbers::pi * daylight * weather;
}

void FleetScenario::step_node(std::size_t node, std::size_t t) {
  const double harvest = harvest_sample_mwh(node, t);
  const double stored =
      std::min(capacity_mwh_[node] - charge_mwh_[node], harvest);
  charge_mwh_[node] += stored;
  harvested_mwh_total_ += stored;

  const bool duty_ok = config_.harvest != HarvestKind::kTrace ||
                       config_.trace->available(node, t);
  const double capacity = capacity_mwh_[node];
  if (down_[node]) {
    // Hysteresis: re-enter only once charge clears the HIGHER threshold
    // (and the duty cycle allows it), so a node at the boundary does not
    // flap in and out every round.
    if (duty_ok && charge_mwh_[node] >= config_.reentry_soc * capacity) {
      down_[node] = 0;
    }
  } else {
    if (!duty_ok || charge_mwh_[node] < config_.dropout_soc * capacity) {
      down_[node] = 1;
    }
  }
  ++steps_total_;
  if (down_[node]) ++down_steps_total_;
}

void FleetScenario::begin_round(std::size_t t) {
  for (std::size_t i = 0; i < num_nodes(); ++i) step_node(i, t);
}

bool FleetScenario::try_spend(std::size_t node, double mwh) {
  if (charge_mwh_[node] >= mwh) {
    charge_mwh_[node] -= mwh;
    return true;
  }
  // Brownout: the battery empties mid-work and the node dies on the spot
  // (its model freezes; re-entry is step_node's hysteresis check).
  charge_mwh_[node] = 0.0;
  down_[node] = 1;
  ++brownouts_total_;
  return false;
}

double FleetScenario::mean_availability() const {
  if (steps_total_ == 0) return 1.0;
  return 1.0 - static_cast<double>(down_steps_total_) /
                   static_cast<double>(steps_total_);
}

void FleetScenario::save_state(ckpt::ImageWriter& writer) const {
  writer.f64_vec(charge_mwh_);
  writer.u64(down_.size());
  if (!down_.empty()) writer.bytes(down_.data(), down_.size());
  writer.u64(steps_total_);
  writer.u64(down_steps_total_);
  writer.u64(brownouts_total_);
  writer.f64(harvested_mwh_total_);
}

void FleetScenario::restore_state(ckpt::ImageReader& reader) {
  const std::size_t n = num_nodes();
  std::vector<double> charge = reader.f64_vec();
  if (charge.size() != n) {
    throw std::runtime_error("fleet image: scenario charge vector size " +
                             std::to_string(charge.size()) + " != nodes " +
                             std::to_string(n));
  }
  const std::uint64_t flags = reader.u64();
  if (flags != n) {
    throw std::runtime_error("fleet image: scenario down-flag count " +
                             std::to_string(flags) + " != nodes " +
                             std::to_string(n));
  }
  std::vector<char> down(n);
  if (n != 0) reader.bytes(down.data(), down.size());
  for (const char flag : down) {
    if (flag != 0 && flag != 1) {
      throw std::runtime_error("fleet image: scenario down flag not 0/1");
    }
  }
  const std::uint64_t steps = reader.u64();
  const std::uint64_t down_steps = reader.u64();
  const std::uint64_t brownouts = reader.u64();
  const double harvested = reader.f64();

  charge_mwh_ = std::move(charge);
  down_ = std::move(down);
  steps_total_ = static_cast<std::size_t>(steps);
  down_steps_total_ = static_cast<std::size_t>(down_steps);
  brownouts_total_ = static_cast<std::size_t>(brownouts);
  harvested_mwh_total_ = harvested;
}

}  // namespace skiptrain::scenario
