// 64-byte-aligned, huge-page-backed allocation arena.
//
// Fleet-scale planes are large flat float buffers whose hot loops are
// bandwidth-bound streaming kernels. std::vector gives neither the cache
// -line alignment the vectorized kernels want nor any control over page
// size or page placement. AlignedArena is the one allocation primitive
// underneath all of them:
//
//   - every allocation starts on a 64-byte boundary (cache line / widest
//     SIMD lane), so row 0 of a plane or pack buffer is always aligned;
//   - allocations of >= 2 MiB are mmap'd and advised MADV_HUGEPAGE, which
//     cuts TLB pressure on the [n x dim] gossip planes (an n=100k, dim=1k
//     plane is ~400 MB — ~100k 4 KiB TLB entries vs ~200 huge pages);
//   - contents are zero-initialized (fresh mmap pages arrive zeroed; the
//     small-allocation fallback memsets), matching the std::vector
//     semantics the planes were built on;
//   - the first-touch policy is explicit: Touch::kSequential faults pages
//     in from the constructing thread (node-local on a NUMA box),
//     Touch::kInterleave faults 2 MiB chunks in parallel across the pool
//     workers so a shared plane's pages spread over the sockets that will
//     stream it.
//
// The arena is move-only and grow-only: ensure() reallocates (discarding
// contents) only when the requested size exceeds the current capacity —
// the thread-local GEMM pack scratch pattern.
#pragma once

#include <cstddef>

namespace skiptrain::util {

class AlignedArena {
 public:
  /// First-touch policy applied when pages are (re)allocated.
  enum class Touch {
    kNone,        ///< lazy: pages fault in wherever they are first used
    kSequential,  ///< constructing thread touches every page up front
    kInterleave,  ///< pool workers touch 2 MiB chunks in parallel
  };

  static constexpr std::size_t kAlignment = 64;
  /// mmap + MADV_HUGEPAGE threshold (also the interleave chunk size).
  static constexpr std::size_t kHugeThreshold = 2u * 1024u * 1024u;

  AlignedArena() = default;
  explicit AlignedArena(std::size_t bytes, Touch touch = Touch::kNone);
  ~AlignedArena();

  AlignedArena(AlignedArena&& other) noexcept;
  AlignedArena& operator=(AlignedArena&& other) noexcept;
  AlignedArena(const AlignedArena&) = delete;
  AlignedArena& operator=(const AlignedArena&) = delete;

  void* data() const { return ptr_; }
  float* floats() const { return static_cast<float*>(ptr_); }
  std::size_t size_bytes() const { return bytes_; }
  bool empty() const { return bytes_ == 0; }

  /// True when this allocation went through the mmap + MADV_HUGEPAGE path.
  bool huge_page_backed() const { return mapped_; }

  /// Grow-only capacity guarantee: reallocates (zeroed, contents
  /// DISCARDED) only when `bytes` exceeds the current size. The old block
  /// is released before the new one is mapped so peak footprint stays at
  /// one copy — scratch buffers, not containers.
  void ensure(std::size_t bytes);
  float* ensure_floats(std::size_t count) {
    ensure(count * sizeof(float));
    return floats();
  }

 private:
  void allocate(std::size_t bytes, Touch touch);
  void release() noexcept;

  void* ptr_ = nullptr;
  std::size_t bytes_ = 0;
  bool mapped_ = false;
  Touch touch_ = Touch::kNone;
};

}  // namespace skiptrain::util
