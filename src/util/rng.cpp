#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace skiptrain::util {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 mixer(seed);
  for (auto& word : s_) word = mixer.next();
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Combine current state with the stream id; forks of distinct ids from
  // the same parent are independent streams.
  const std::uint64_t base =
      hash_combine(s_[0] ^ rotl(s_[2], 17), hash_combine(s_[1], stream_id));
  return Rng(hash_combine(base, s_[3] + 0xd1b54a32d192ed03ULL));
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

float Rng::uniform_float() {
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  assert(n > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_int(span));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] avoids log(0).
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return radius * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

void Rng::fill_normal(std::span<float> out, float mean, float stddev) {
  for (auto& v : out)
    v = static_cast<float>(normal(static_cast<double>(mean),
                                  static_cast<double>(stddev)));
}

void Rng::fill_uniform(std::span<float> out, float lo, float hi) {
  for (auto& v : out) v = lo + (hi - lo) * uniform_float();
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  assert(k <= n);
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  // Partial Fisher–Yates: only the first k positions need to be finalized.
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + static_cast<std::size_t>(uniform_int(n - i));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(k);
  return indices;
}

bool Rng::bernoulli(double p) { return uniform() < p; }

Rng::State Rng::state() const {
  State state;
  for (std::size_t i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::set_state(const State& state) {
  for (std::size_t i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

double stateless_uniform(std::uint64_t seed, std::uint64_t a,
                         std::uint64_t b) {
  SplitMix64 mixer(hash_combine(hash_combine(seed, a), b));
  mixer.next();
  return static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
}

}  // namespace skiptrain::util
