// Minimal CSV emission for experiment outputs. Every bench harness can dump
// its series to a .csv next to the console rendering so results are easy to
// re-plot.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace skiptrain::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  /// Throws std::runtime_error when the file cannot be created.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  /// Appends one row; the cell count must match the header width.
  void write_row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with 6 significant digits.
  void write_row(const std::vector<double>& cells);

  const std::string& path() const { return path_; }
  std::size_t rows_written() const { return rows_; }

  /// Escapes a cell per RFC 4180 (quotes cells containing , " or newline).
  static std::string escape(std::string_view cell);

 private:
  std::ofstream out_;
  std::string path_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Formats a double compactly ("0.5", "1510.04", "6.5e-05").
[[nodiscard]] std::string format_double(double value, int precision = 6);

}  // namespace skiptrain::util
