// Deterministic random number generation for the SkipTrain simulator.
//
// Reproducibility contract: every stochastic decision in the system draws
// from an Rng that is derived *functionally* from (master seed, purpose,
// node id, round) rather than from shared mutable state. This makes every
// experiment bitwise reproducible regardless of the number of worker
// threads executing the simulation.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace skiptrain::util {

/// SplitMix64: used to expand a 64-bit seed into well-distributed state.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA'14). Passes BigCrush when used as a generator.
struct SplitMix64 {
  std::uint64_t state;

  explicit constexpr SplitMix64(std::uint64_t seed) : state(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

/// Mixes several 64-bit words into one; used to derive independent RNG
/// streams for (seed, node, round, purpose) tuples.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) {
  SplitMix64 mixer(a ^ (0x9e3779b97f4a7c15ULL + (b << 6) + (b >> 2)));
  mixer.next();
  return mixer.next() ^ b;
}

/// xoshiro256** 1.0 (Blackman & Vigna). Fast, small state, passes all
/// standard statistical batteries; the recommended general-purpose engine.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  /// Derives a statistically independent stream for a sub-purpose.
  /// Example: rng.fork(node_id).fork(round).
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const;

  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform float in [0, 1).
  float uniform_float();

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire's method
  /// (unbiased, no modulo in the common case).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second sample).
  double normal();

  /// Normal with given mean / stddev.
  double normal(double mean, double stddev);

  /// Fills `out` with i.i.d. N(mean, stddev) floats.
  void fill_normal(std::span<float> out, float mean, float stddev);

  /// Fills `out` with i.i.d. U[lo, hi) floats.
  void fill_uniform(std::span<float> out, float lo, float hi);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::span<T> values) {
    if (values.size() < 2) return;
    for (std::size_t i = values.size() - 1; i > 0; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i + 1));
      std::swap(values[i], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p);

  /// Complete serializable generator state: the 256-bit xoshiro state plus
  /// the Box–Muller normal cache. Capturing and restoring it makes the
  /// stream continue bit-exactly — the contract fleet checkpoints
  /// (ckpt/fleet_image) rely on for crash-resumable simulations.
  struct State {
    std::uint64_t s[4] = {0, 0, 0, 0};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  [[nodiscard]] State state() const;
  void set_state(const State& state);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stateless uniform draw in [0,1) determined entirely by the tuple
/// (seed, a, b). Used for per-(node, round) scheduling decisions so the
/// outcome never depends on thread interleaving or call order.
[[nodiscard]] double stateless_uniform(std::uint64_t seed, std::uint64_t a,
                                       std::uint64_t b);

}  // namespace skiptrain::util
