#include "util/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "obs/registry.hpp"
#include "obs/stopwatch.hpp"

namespace skiptrain::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  worker_ids_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
    worker_ids_.push_back(workers_.back().get_id());
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth = 0;
  {
    std::lock_guard lock(mutex_);
    tasks_.push(std::move(task));
    ++in_flight_;
    depth = tasks_.size();
  }
  task_available_.notify_one();
  if (obs::enabled()) {
    // High-water mark of the task queue across every pool — a saturated
    // queue (depth >> workers) signals trial- or node-level imbalance.
    static const obs::Gauge queue_depth = obs::gauge("pool.queue_depth");
    queue_depth.set(static_cast<std::int64_t>(depth));
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // A raw submit()ed task must not tear down the pool (or leak
    // in_flight_): log and keep serving. parallel_for chunks never reach
    // this — they capture their own first exception and rethrow it on
    // the calling thread.
    const std::uint64_t start_ns = obs::enabled() ? obs::now_ns() : 0;
    try {
      task();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[thread_pool] task threw: %s\n", e.what());
    } catch (...) {
      std::fprintf(stderr, "[thread_pool] task threw a non-std exception\n");
    }
    if (start_ns != 0) {
      busy_ns_.fetch_add(obs::now_ns() - start_ns, std::memory_order_relaxed);
      tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard lock(mutex_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {
thread_local bool t_force_serial = false;
}  // namespace

ThreadPool::ScopedForceSerial::ScopedForceSerial() : previous_(t_force_serial) {
  t_force_serial = true;
}

ThreadPool::ScopedForceSerial::~ScopedForceSerial() {
  t_force_serial = previous_;
}

bool ThreadPool::force_serial_active() { return t_force_serial; }

bool ThreadPool::on_worker_thread() const {
  const auto self = std::this_thread::get_id();
  return std::find(worker_ids_.begin(), worker_ids_.end(), self) !=
         worker_ids_.end();
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  parallel_for_chunks(
      begin, end,
      [&fn](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn,
    std::size_t min_per_chunk) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  // Serial fallbacks: trivial ranges, or re-entrant calls from a worker.
  if (count == 1 || workers_.empty() || t_force_serial || on_worker_thread()) {
    fn(begin, end);
    return;
  }
  // Chunk so every chunk carries at least min_per_chunk indices (grain):
  // cheap bodies get fewer, larger chunks instead of paying per-chunk
  // queue dispatch.
  const std::size_t max_chunks =
      std::max<std::size_t>(1, count / std::max<std::size_t>(1, min_per_chunk));
  const std::size_t num_chunks =
      std::min({count, workers_.size(), max_chunks});
  const std::size_t base = count / num_chunks;
  const std::size_t remainder = count % num_chunks;

  // All completion state lives under done_mutex: the caller can only see
  // remaining == 0 after the last worker released the lock, so no worker
  // can touch these stack locals once the wait returns.
  std::size_t remaining = num_chunks;
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::exception_ptr first_error;

  std::size_t offset = begin;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::size_t len = base + (c < remainder ? 1 : 0);
    const std::size_t lo = offset;
    const std::size_t hi = offset + len;
    offset = hi;
    submit([&, lo, hi] {
      // The completion counter must reach zero even if a body throws, or
      // the caller waits forever; the first error is rethrown below.
      std::exception_ptr error;
      try {
        fn(lo, hi);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard lock(done_mutex);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  std::unique_lock lock(done_mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    // Runs once under the static-local guard, before any pool worker
    // exists; nothing mutates the environment concurrently.
    if (const char* env = std::getenv("SKIPTRAIN_THREADS")) {  // NOLINT(concurrency-mt-unsafe)
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return std::size_t{0};
  }());
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  ThreadPool::global().parallel_for(begin, end, fn, grain);
}

}  // namespace skiptrain::util
