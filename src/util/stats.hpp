// Streaming and batch statistics used by the metrics/energy subsystems.
#pragma once

#include <cstddef>
#include <limits>
#include <span>
#include <vector>

namespace skiptrain::util {

/// Numerically stable streaming mean/variance (Welford's algorithm) with
/// support for merging partial accumulators (Chan et al.), which lets the
/// evaluator accumulate per-thread and combine.
class RunningStat {
 public:
  void add(double x);

  /// Merges another accumulator into this one.
  void merge(const RunningStat& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Population variance (σ², divides by n). Returns 0 for n < 2.
  double variance() const;
  /// Sample variance (divides by n-1). Returns 0 for n < 2.
  double sample_variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// One-shot summary of a value span.
[[nodiscard]] Summary summarize(std::span<const double> values);
[[nodiscard]] Summary summarize(std::span<const float> values);

/// Linear-interpolated quantile (q in [0,1]) of an unsorted span.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Arithmetic mean of a span (0 for empty spans).
[[nodiscard]] double mean_of(std::span<const double> values);

}  // namespace skiptrain::util
