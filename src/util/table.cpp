#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace skiptrain::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::runtime_error("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& cells) {
    out << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
          << cells[c] << " |";
    }
    out << '\n';
  };

  emit_row(header_);
  out << '|';
  for (const std::size_t w : widths) {
    out << std::string(w + 2, '-') << '|';
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

std::string render_grid(const std::string& title,
                        const std::vector<std::string>& row_labels,
                        const std::vector<std::string>& col_labels,
                        const std::vector<std::vector<double>>& values,
                        int precision) {
  if (values.size() != row_labels.size()) {
    throw std::runtime_error("render_grid: row count mismatch");
  }
  std::ostringstream out;
  out << title << '\n';

  std::size_t label_width = 0;
  for (const auto& l : row_labels) label_width = std::max(label_width, l.size());

  std::size_t cell_width = 6;
  for (const auto& col : col_labels) cell_width = std::max(cell_width, col.size());
  for (const auto& row : values) {
    for (const double v : row) {
      cell_width = std::max(cell_width, fixed(v, precision).size());
    }
  }

  out << std::string(label_width + 2, ' ');
  for (const auto& col : col_labels) {
    out << std::right << std::setw(static_cast<int>(cell_width + 1)) << col;
  }
  out << '\n';

  for (std::size_t r = 0; r < values.size(); ++r) {
    if (values[r].size() != col_labels.size()) {
      throw std::runtime_error("render_grid: column count mismatch");
    }
    out << std::left << std::setw(static_cast<int>(label_width + 2))
        << row_labels[r];
    for (const double v : values[r]) {
      out << std::right << std::setw(static_cast<int>(cell_width + 1))
          << fixed(v, precision);
    }
    out << '\n';
  }
  return out.str();
}

std::string fixed(double value, int precision) {
  std::ostringstream stream;
  stream << std::fixed << std::setprecision(precision) << value;
  return stream.str();
}

}  // namespace skiptrain::util
