#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace skiptrain::util {

void RunningStat::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::sample_variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

namespace {

template <typename T>
Summary summarize_impl(std::span<const T> values) {
  RunningStat stat;
  for (const T v : values) stat.add(static_cast<double>(v));
  return Summary{stat.count(), stat.mean(), stat.stddev(), stat.min(),
                 stat.max()};
}

}  // namespace

Summary summarize(std::span<const double> values) {
  return summarize_impl(values);
}

Summary summarize(std::span<const float> values) {
  return summarize_impl(values);
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double mean_of(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double total = 0.0;
  for (const double v : values) total += v;
  return total / static_cast<double>(values.size());
}

}  // namespace skiptrain::util
