// A tiny declarative command-line parser for the bench/example binaries.
//
//   util::ArgParser args("fig5_tradeoff", "SkipTrain vs D-PSGD trade-off");
//   args.add_int("nodes", 256, "number of nodes");
//   args.add_flag("full", "run at full paper scale");
//   args.parse(argc, argv);           // exits(0) on --help
//   int nodes = args.get_int("nodes");
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace skiptrain::util {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses --name=value / --name value / --flag arguments. Unknown options
  /// or malformed values throw std::runtime_error. "--help" prints usage
  /// and exits(0).
  void parse(int argc, const char* const* argv);

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string value;  // textual representation, "0"/"1" for flags
    std::string default_value;
    std::string help;
  };

  const Option& find(const std::string& name, Kind kind) const;
  void add_option(const std::string& name, Kind kind,
                  const std::string& default_value, const std::string& help);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace skiptrain::util
