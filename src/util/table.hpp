// Console rendering for the bench harnesses: aligned tables (for the
// paper's Tables 1-4) and numeric grids (for the Figure 3 heatmaps).
#pragma once

#include <string>
#include <vector>

namespace skiptrain::util {

/// Builds a fixed-column text table and renders it with aligned separators:
///
///   | Algorithm | Dataset  | 6-regular | ... |
///   |-----------|----------|-----------|-----|
///   | SkipTrain | CIFAR-10 |    755.02 | ... |
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders the full table to a string (trailing newline included).
  [[nodiscard]] std::string render() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders a rows x cols numeric grid with row/column labels, mirroring the
/// layout of the paper's Figure 3 heatmaps. `title` is printed above.
/// Values are formatted with `precision` decimal digits.
[[nodiscard]] std::string render_grid(
    const std::string& title, const std::vector<std::string>& row_labels,
    const std::vector<std::string>& col_labels,
    const std::vector<std::vector<double>>& values, int precision = 1);

/// Formats a value as a fixed-precision string ("66.1").
[[nodiscard]] std::string fixed(double value, int precision = 2);

}  // namespace skiptrain::util
