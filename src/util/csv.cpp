#include "util/csv.hpp"

#include <sstream>
#include <stdexcept>

namespace skiptrain::util {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), path_(path), columns_(header.size()) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open " + path);
  }
  write_row(header);
  rows_ = 0;  // header does not count as a data row
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  if (cells.size() != columns_) {
    throw std::runtime_error("CsvWriter: row width " +
                             std::to_string(cells.size()) +
                             " != header width " + std::to_string(columns_));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

void CsvWriter::write_row(const std::vector<double>& cells) {
  std::vector<std::string> formatted;
  formatted.reserve(cells.size());
  for (const double v : cells) formatted.push_back(format_double(v));
  write_row(formatted);
}

std::string CsvWriter::escape(std::string_view cell) {
  // '\r' must trigger quoting too: RFC 4180 line breaks are CRLF, so an
  // unquoted carriage return splits the row for conforming parsers.
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(cell);
  std::string quoted = "\"";
  for (const char c : cell) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

std::string format_double(double value, int precision) {
  std::ostringstream stream;
  stream.precision(precision);
  stream << value;
  return stream.str();
}

}  // namespace skiptrain::util
