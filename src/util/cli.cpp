#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace skiptrain::util {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_option(const std::string& name, Kind kind,
                           const std::string& default_value,
                           const std::string& help) {
  if (options_.contains(name)) {
    throw std::runtime_error("ArgParser: duplicate option --" + name);
  }
  options_[name] = Option{kind, default_value, default_value, help};
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  add_option(name, Kind::kInt, std::to_string(default_value), help);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  std::ostringstream stream;
  stream << default_value;
  add_option(name, Kind::kDouble, stream.str(), help);
}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  add_option(name, Kind::kString, default_value, help);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  add_option(name, Kind::kFlag, "0", help);
}

void ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token == "--help" || token == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("ArgParser: unexpected argument '" + token +
                               "' (options start with --)");
    }
    token = token.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = token.find('='); eq != std::string::npos) {
      value = token.substr(eq + 1);
      token = token.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(token);
    if (it == options_.end()) {
      throw std::runtime_error("ArgParser: unknown option --" + token + "\n" +
                               usage());
    }
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      if (has_value) {
        throw std::runtime_error("ArgParser: flag --" + token +
                                 " does not take a value");
      }
      // Move-assign dodges GCC 12's -Wrestrict false positive on the
      // char*-assign path (PR105329) under -O2 inlining.
      opt.value = std::string("1");
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw std::runtime_error("ArgParser: option --" + token +
                                 " expects a value");
      }
      value = argv[++i];
    }
    // Validate numeric options eagerly so errors point at the bad flag.
    if (opt.kind == Kind::kInt) {
      char* end = nullptr;
      (void)std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        throw std::runtime_error("ArgParser: --" + token +
                                 " expects an integer, got '" + value + "'");
      }
    } else if (opt.kind == Kind::kDouble) {
      char* end = nullptr;
      (void)std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        throw std::runtime_error("ArgParser: --" + token +
                                 " expects a number, got '" + value + "'");
      }
    }
    opt.value = value;
  }
}

const ArgParser::Option& ArgParser::find(const std::string& name,
                                         Kind kind) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind) {
    throw std::runtime_error("ArgParser: no such option --" + name);
  }
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "1";
}

std::string ArgParser::usage() const {
  std::ostringstream out;
  out << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    out << "  --" << name;
    if (opt.kind != Kind::kFlag) out << "=<" << opt.default_value << ">";
    out << "\n      " << opt.help << "\n";
  }
  out << "  --help\n      show this message\n";
  return out.str();
}

}  // namespace skiptrain::util
