// A small fixed-size worker pool used to parallelise per-node work in the
// decentralized-learning simulator (local SGD steps, aggregation, accuracy
// evaluation). Work is submitted either as individual tasks or through
// parallel_for, which block-partitions an index range.
//
// Nested-parallelism policy: calling parallel_for from inside a worker
// thread executes the loop serially on the calling thread. This keeps call
// sites composable (an evaluator may be called both from main and from a
// worker) without risking deadlock on a bounded pool.
#pragma once

#include <atomic>
#include <concepts>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace skiptrain::util {

class ThreadPool {
 public:
  /// Creates `num_threads` workers. 0 means hardware_concurrency().
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  /// Runs fn(i) for i in [begin, end), partitioned into contiguous blocks
  /// across the workers, and blocks until completion. `grain` bounds the
  /// smallest block size (reduces scheduling overhead for cheap bodies).
  /// If a body throws, the remaining chunks still complete and the first
  /// exception is rethrown on the calling thread.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

  /// Templated overload: lambdas bind here instead of converting to
  /// std::function, so the body is invoked directly inside the chunk loop
  /// — type-erased dispatch happens once per CHUNK (the task queue),
  /// never per index. This is what the hot engine loops pay.
  template <typename Body>
    requires std::invocable<Body&, std::size_t>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t grain = 1) {
    parallel_for_chunks(
        begin, end,
        [&body](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        },
        grain);
  }

  /// Like parallel_for but hands each worker a [chunk_begin, chunk_end)
  /// range, letting the body amortise per-chunk setup. `min_per_chunk`
  /// bounds the smallest chunk (fewer, larger chunks for cheap bodies).
  void parallel_for_chunks(
      std::size_t begin, std::size_t end,
      const std::function<void(std::size_t, std::size_t)>& fn,
      std::size_t min_per_chunk = 1);

  /// True when the calling thread is one of this pool's workers.
  bool on_worker_thread() const;

  /// Cumulative worker utilization telemetry. Busy time is wall-clock
  /// spent inside task bodies, summed over workers; idle time is the
  /// complement of busy over each worker's lifetime. Tracked only while
  /// obs::enabled() (two clock reads per task — tasks are chunks, not
  /// indices); observational only, never read by scheduling decisions.
  struct PoolStats {
    std::size_t workers = 0;
    std::uint64_t busy_ns = 0;
    std::uint64_t tasks_executed = 0;
  };
  [[nodiscard]] PoolStats stats() const {
    return PoolStats{workers_.size(),
                     busy_ns_.load(std::memory_order_relaxed),
                     tasks_executed_.load(std::memory_order_relaxed)};
  }

  /// While an instance is alive, parallel_for / parallel_for_chunks on the
  /// calling thread run serially for EVERY pool, not just the one the
  /// thread belongs to. This extends the nested-serial policy across
  /// pools: the sweep runner executes whole trials on its workers and
  /// pins each trial's node-level loops to that worker. Nests correctly.
  class ScopedForceSerial {
   public:
    ScopedForceSerial();
    ~ScopedForceSerial();
    ScopedForceSerial(const ScopedForceSerial&) = delete;
    ScopedForceSerial& operator=(const ScopedForceSerial&) = delete;

   private:
    bool previous_;
  };

  /// True when the calling thread is inside a ScopedForceSerial scope.
  static bool force_serial_active();

  /// Process-wide pool sized from SKIPTRAIN_THREADS (if set) or the
  /// hardware concurrency. Constructed on first use.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::vector<std::thread::id> worker_ids_;
  std::queue<std::function<void()>> tasks_;
  mutable std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
  std::atomic<std::uint64_t> busy_ns_{0};
  std::atomic<std::uint64_t> tasks_executed_{0};
};

/// Convenience wrapper over ThreadPool::global().parallel_for.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 1);

/// Templated convenience wrapper: keeps call sites free of per-index
/// std::function dispatch (see ThreadPool::parallel_for).
template <typename Body>
  requires std::invocable<Body&, std::size_t>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1) {
  ThreadPool::global().parallel_for(begin, end, std::forward<Body>(body),
                                    grain);
}

}  // namespace skiptrain::util
