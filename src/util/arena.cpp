#include "util/arena.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

#ifdef __linux__
#include <sys/mman.h>
#endif

#include "util/thread_pool.hpp"

namespace skiptrain::util {

namespace {

std::size_t round_up(std::size_t bytes, std::size_t multiple) {
  return (bytes + multiple - 1) / multiple * multiple;
}

}  // namespace

AlignedArena::AlignedArena(std::size_t bytes, Touch touch) : touch_(touch) {
  allocate(bytes, touch);
}

AlignedArena::~AlignedArena() { release(); }

AlignedArena::AlignedArena(AlignedArena&& other) noexcept
    : ptr_(std::exchange(other.ptr_, nullptr)),
      bytes_(std::exchange(other.bytes_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      touch_(other.touch_) {}

AlignedArena& AlignedArena::operator=(AlignedArena&& other) noexcept {
  if (this != &other) {
    release();
    ptr_ = std::exchange(other.ptr_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    mapped_ = std::exchange(other.mapped_, false);
    touch_ = other.touch_;
  }
  return *this;
}

void AlignedArena::ensure(std::size_t bytes) {
  if (bytes <= bytes_) return;
  // Drop before realloc: scratch semantics, and peak RSS stays at one copy.
  release();
  allocate(bytes, touch_);
}

void AlignedArena::allocate(std::size_t bytes, Touch touch) {
  if (bytes == 0) return;
  const std::size_t rounded = round_up(bytes, kAlignment);
#ifdef __linux__
  if (rounded >= kHugeThreshold) {
    void* p = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (p != MAP_FAILED) {
      // Advisory only: kernels without THP simply ignore it.
      ::madvise(p, rounded, MADV_HUGEPAGE);
      ptr_ = p;
      bytes_ = rounded;
      mapped_ = true;
      // Anonymous mappings arrive zeroed; touching just places pages.
      if (touch == Touch::kSequential) {
        std::memset(ptr_, 0, rounded);
      } else if (touch == Touch::kInterleave) {
        // Chunked parallel first-touch: each worker faults its chunks in,
        // so on a first-touch NUMA policy the plane's pages spread across
        // the sockets whose workers will later stream them.
        const std::size_t chunks =
            (rounded + kHugeThreshold - 1) / kHugeThreshold;
        auto* base = static_cast<unsigned char*>(ptr_);
        parallel_for(0, chunks, [&](std::size_t c) {
          const std::size_t begin = c * kHugeThreshold;
          std::memset(base + begin, 0,
                      std::min(kHugeThreshold, rounded - begin));
        });
      }
      return;
    }
    // mmap failure falls through to the aligned_alloc path.
  }
#endif
  void* p = std::aligned_alloc(kAlignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  std::memset(p, 0, rounded);
  ptr_ = p;
  bytes_ = rounded;
  mapped_ = false;
}

void AlignedArena::release() noexcept {
  if (ptr_ == nullptr) return;
#ifdef __linux__
  if (mapped_) {
    ::munmap(ptr_, bytes_);
    ptr_ = nullptr;
    bytes_ = 0;
    mapped_ = false;
    return;
  }
#endif
  std::free(ptr_);
  ptr_ = nullptr;
  bytes_ = 0;
}

}  // namespace skiptrain::util
