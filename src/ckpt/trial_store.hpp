// Trial-granular sweep persistence: the piece that makes a killed
// 10,000-trial sweep resumable instead of a total loss.
//
// A checkpoint directory holds, per trial,
//
//   trial_<index>.result   the COMPLETED trial (status, metrics, full
//                          recorder series) — written atomically when the
//                          trial finishes; its presence is what lets
//                          `sweep_main --resume` skip the trial entirely
//                          and still emit a byte-identical summary CSV;
//   trial_<index>.ckpt     the in-flight fleet image (ckpt/fleet_image)
//                          the trial last wrote, from which a resumed
//                          sweep re-enters the trial mid-run;
//
// plus an append-only, human-readable `manifest.txt` of completed trials
// ("<index> <ok|failed>" per line). The result files are authoritative —
// the manifest is informational, so a torn final line after a crash
// cannot corrupt a resume.
//
// Every result file stores a fingerprint of the trial's complete
// configuration. load_trial_result() returns false on a missing,
// corrupt, or fingerprint-mismatched file (the trial simply reruns), so
// stale checkpoints from an edited grid can never leak wrong rows into a
// summary.
#pragma once

#include <cstdint>
#include <string>

#include "sweep/result_sink.hpp"

namespace skiptrain::ckpt {

// v2 added the scenario telemetry fields (availability, down node-rounds,
// harvested energy). Old v1 files fail the version check and rerun.
inline constexpr std::uint32_t kTrialResultVersion = 2;

/// `<dir>/trial_<zero-padded index>` — the base both per-trial file
/// names share.
[[nodiscard]] std::string trial_file_base(const std::string& dir,
                                          std::size_t index);

/// Stable textual identity of everything that determines a trial's
/// outcome (dataset build key + every run option). Two specs with equal
/// fingerprints produce bit-identical results.
[[nodiscard]] std::string trial_fingerprint(const sweep::TrialSpec& spec);

/// Atomically writes the completed trial to `path`.
void write_trial_result(const sweep::TrialResult& result,
                        const std::string& path);

/// Loads a completed trial saved by write_trial_result into `out`,
/// adopting `spec` as the result's spec. Returns false — without
/// modifying `out` — when the file is missing, unreadable, malformed, or
/// was written for a different trial configuration.
[[nodiscard]] bool load_trial_result(const sweep::TrialSpec& spec,
                                     const std::string& path,
                                     sweep::TrialResult& out);

/// Appends "<index> <ok|failed>" to `<dir>/manifest.txt`. Not
/// authoritative (see file comment); failures to append are ignored.
void append_manifest(const std::string& dir, std::size_t index, bool ok);

}  // namespace skiptrain::ckpt
