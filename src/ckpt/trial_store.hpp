// Trial-granular sweep persistence: the piece that makes a killed
// 10,000-trial sweep resumable instead of a total loss.
//
// A checkpoint directory holds, per trial,
//
//   trial_<index>.result   the COMPLETED trial (status, metrics, full
//                          recorder series) — written atomically when the
//                          trial finishes; its presence is what lets
//                          `sweep_main --resume` skip the trial entirely
//                          and still emit a byte-identical summary CSV;
//   trial_<index>.ckpt     the in-flight fleet image (ckpt/fleet_image)
//                          the trial last wrote, from which a resumed
//                          sweep re-enters the trial mid-run;
//
// plus an append-only, human-readable `manifest.txt` of completed trials
// ("<index> <ok|failed>" per line). The result files are authoritative —
// the manifest is informational, so a torn final line after a crash
// cannot corrupt a resume.
//
// Every result file stores a fingerprint of the trial's complete
// configuration. load_trial_result() returns false on a missing,
// corrupt, or fingerprint-mismatched file (the trial simply reruns), so
// stale checkpoints from an edited grid can never leak wrong rows into a
// summary.
#pragma once

#include <cstdint>
#include <string>

#include "sweep/result_sink.hpp"

namespace skiptrain::ckpt {

// v2 added the scenario telemetry fields (availability, down node-rounds,
// harvested energy). v3 added the fault telemetry fields (delivery
// counters), the fault-plan fingerprint token, and a trailing payload
// CRC32C. Old files fail the version check and rerun.
inline constexpr std::uint32_t kTrialResultVersion = 3;

/// `<dir>/trial_<zero-padded index>` — the base both per-trial file
/// names share.
[[nodiscard]] std::string trial_file_base(const std::string& dir,
                                          std::size_t index);

/// Stable textual identity of everything that determines a trial's
/// outcome (dataset build key + every run option). Two specs with equal
/// fingerprints produce bit-identical results.
[[nodiscard]] std::string trial_fingerprint(const sweep::TrialSpec& spec);

/// Atomically writes the completed trial to `path`.
void write_trial_result(const sweep::TrialResult& result,
                        const std::string& path);

/// Why a stored trial result could (or could not) be adopted. The
/// distinction drives the sweep runner's quarantine policy: kCorrupt
/// entries are renamed to `<path>.bad` and recomputed; kMissing/kStale
/// simply rerun.
enum class TrialLoadStatus {
  kLoaded,   // adopted into `out`
  kMissing,  // no file at `path`
  kStale,    // valid file, but for a different trial configuration
  kCorrupt,  // truncated, bit-flipped, or otherwise malformed
};

/// Loads a completed trial saved by write_trial_result into `out`,
/// adopting `spec` as the result's spec. `out` is modified only when the
/// returned status is kLoaded.
[[nodiscard]] TrialLoadStatus load_trial_result_status(
    const sweep::TrialSpec& spec, const std::string& path,
    sweep::TrialResult& out);

/// Boolean convenience wrapper: true iff kLoaded.
[[nodiscard]] bool load_trial_result(const sweep::TrialSpec& spec,
                                     const std::string& path,
                                     sweep::TrialResult& out);

/// Appends "<index> <ok|failed>" to `<dir>/manifest.txt`. Not
/// authoritative (see file comment); failures to append are ignored.
void append_manifest(const std::string& dir, std::size_t index, bool ok);

}  // namespace skiptrain::ckpt
