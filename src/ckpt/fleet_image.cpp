#include "ckpt/fleet_image.hpp"

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "ckpt/io.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/async_engine.hpp"
#include "sim/engine.hpp"

namespace skiptrain::ckpt {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'T', 'F'};

void write_experiment(ImageWriter& writer, const ExperimentState& state) {
  writer.u64(state.records.size());
  for (const metrics::RoundRecord& record : state.records) {
    write_round_record(writer, record);
  }
  writer.u64(state.coordinated_training_rounds);
}

ExperimentState read_experiment(ImageReader& reader) {
  ExperimentState state;
  const std::uint64_t count =
      reader.bounded_count(kRoundRecordWireBytes, "round record");
  state.records.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    state.records.push_back(read_round_record(reader));
  }
  state.coordinated_training_rounds = reader.u64();
  return state;
}

/// Writes header + kind/flag bytes + engine payload (+ experiment
/// section) atomically, each section sealed with its CRC32C.
template <typename Engine>
void save_image(const Engine& engine, EngineKind kind,
                const ExperimentState* experiment, const std::string& path,
                const IoFaultPolicy* io_faults = nullptr) {
  atomic_write(
      path,
      [&](std::ostream& out) {
        write_header(out, kMagic, kFleetImageVersion);
        ImageWriter writer(out);
        writer.u8(static_cast<std::uint8_t>(kind));
        writer.u8(experiment != nullptr ? 1 : 0);
        // The configuration fingerprint precedes the engine payload so a
        // resume can reject a stale image BEFORE mutating any engine
        // state.
        if (experiment != nullptr) writer.str(experiment->fingerprint);
        writer.section_crc();
        engine.save_state(writer);
        writer.section_crc();
        if (experiment != nullptr) {
          write_experiment(writer, *experiment);
          writer.section_crc();
        }
      },
      io_faults);
}

/// Opens + validates the file and hands a bounded reader positioned at
/// the engine payload to `body(reader, has_experiment, fingerprint)`;
/// rejects trailing bytes afterwards unless the body bails early by
/// returning false (e.g. a fingerprint mismatch that leaves the payload
/// unconsumed on purpose). Returns the body's verdict.
template <typename Body>
bool load_image(const std::string& path, EngineKind expected_kind,
                bool want_experiment, Body&& body) {
  OBS_SPAN("ckpt.load");
  static const obs::Counter files = obs::counter("ckpt.files_read");
  static const obs::Counter bytes = obs::counter("ckpt.bytes_read");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fleet image: cannot open " + path);
  const std::uint64_t payload_bytes = read_header(
      in, file_size_bytes(path), kMagic, kFleetImageVersion, path);
  ImageReader reader(in, payload_bytes);
  const auto kind = static_cast<EngineKind>(reader.u8());
  if (kind != expected_kind) {
    throw std::runtime_error("fleet image: " + path +
                             " holds a different engine kind");
  }
  const bool has_experiment = reader.u8() != 0;
  if (want_experiment && !has_experiment) {
    throw std::runtime_error("fleet image: " + path +
                             " has no experiment section");
  }
  const std::string fingerprint = has_experiment ? reader.str() : "";
  reader.check_section_crc(path + " prefix");
  if (!body(reader, has_experiment, fingerprint)) return false;
  reader.require_exhausted(path);
  files.add(1);
  bytes.add(payload_bytes + kHeaderBytes);
  return true;
}

}  // namespace

FleetImageInfo probe_fleet_image(std::istream& in, std::uint64_t file_bytes,
                                 const std::string& what) {
  const std::uint64_t payload_bytes =
      read_header(in, file_bytes, kMagic, kFleetImageVersion, what);
  ImageReader reader(in, payload_bytes);
  FleetImageInfo info;
  const std::uint8_t kind = reader.u8();
  if (kind > static_cast<std::uint8_t>(EngineKind::kAsyncGossip)) {
    throw std::runtime_error("fleet image: " + what +
                             " has unknown engine kind " +
                             std::to_string(kind));
  }
  info.engine = static_cast<EngineKind>(kind);
  info.has_experiment = reader.u8() != 0;
  if (info.has_experiment) (void)reader.str();  // configuration fingerprint
  // The prefix checksum makes the probe trustworthy on its own: a torn
  // or bit-flipped image is rejected here, before a resume decision is
  // based on its metadata.
  reader.check_section_crc(what + " prefix");
  info.nodes = reader.u64();
  info.dim = reader.u64();
  info.round = reader.u64();
  return info;
}

FleetImageInfo probe_fleet_image(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("fleet image: cannot open " + path);
  return probe_fleet_image(in, file_size_bytes(path), path);
}

void save_fleet_image(const sim::RoundEngine& engine,
                      const std::string& path) {
  save_image(engine, EngineKind::kRoundEngine, nullptr, path);
}

void restore_fleet_image(sim::RoundEngine& engine, const std::string& path) {
  (void)load_image(path, EngineKind::kRoundEngine, /*want_experiment=*/false,
                   [&](ImageReader& reader, bool has_experiment,
                       const std::string&) {
                     engine.restore_state(reader);
                     reader.check_section_crc(path + " engine payload");
                     // Engine-only restores of an experiment image are
                     // legal (e.g. post-mortem inspection); drain the
                     // section so the trailing-byte check still holds.
                     if (has_experiment) {
                       (void)read_experiment(reader);
                       reader.check_section_crc(path + " experiment");
                     }
                     return true;
                   });
}

void save_fleet_image(const sim::AsyncGossipEngine& engine,
                      const std::string& path) {
  save_image(engine, EngineKind::kAsyncGossip, nullptr, path);
}

void restore_fleet_image(sim::AsyncGossipEngine& engine,
                         const std::string& path) {
  (void)load_image(path, EngineKind::kAsyncGossip, /*want_experiment=*/false,
                   [&](ImageReader& reader, bool has_experiment,
                       const std::string&) {
                     engine.restore_state(reader);
                     reader.check_section_crc(path + " engine payload");
                     if (has_experiment) {
                       (void)read_experiment(reader);
                       reader.check_section_crc(path + " experiment");
                     }
                     return true;
                   });
}

void save_experiment_image(const sim::RoundEngine& engine,
                           const ExperimentState& experiment,
                           const std::string& path,
                           const IoFaultPolicy* io_faults) {
  save_image(engine, EngineKind::kRoundEngine, &experiment, path, io_faults);
}

bool restore_experiment_image(sim::RoundEngine& engine,
                              ExperimentState& experiment,
                              const std::string& path,
                              const std::string& expected_fingerprint) {
  return load_image(
      path, EngineKind::kRoundEngine, /*want_experiment=*/true,
      [&](ImageReader& reader, bool, const std::string& fingerprint) {
        // A stale image (edited configuration) is rejected here, BEFORE
        // any engine state is touched — the caller starts fresh.
        if (!expected_fingerprint.empty() &&
            fingerprint != expected_fingerprint) {
          return false;
        }
        engine.restore_state(reader);
        reader.check_section_crc(path + " engine payload");
        experiment = read_experiment(reader);
        reader.check_section_crc(path + " experiment");
        experiment.fingerprint = fingerprint;
        return true;
      });
}

void write_round_record(ImageWriter& writer,
                        const metrics::RoundRecord& record) {
  writer.u64(record.round);
  writer.u8(record.training_round ? 1 : 0);
  writer.f64(record.mean_accuracy);
  writer.f64(record.std_accuracy);
  writer.f64(record.mean_loss);
  writer.f64(record.allreduce_accuracy);
  writer.f64(record.train_energy_wh);
  writer.f64(record.comm_energy_wh);
  writer.u64(record.nodes_trained);
  writer.f64(record.consensus);
}

void rotate_generations(const std::string& path, std::size_t keep) {
  if (keep <= 1) return;
  std::error_code ec;
  if (!std::filesystem::exists(path, ec) || ec) return;
  // Oldest first: path.g{keep-2} -> path.g{keep-1}, ..., path -> path.g1.
  // Renames are best-effort (a missing intermediate generation is normal
  // early in a run); the newest image is the one whose loss would hurt,
  // and its slot is vacated last.
  for (std::size_t g = keep - 1; g >= 2; --g) {
    const std::string from = path + ".g" + std::to_string(g - 1);
    if (std::filesystem::exists(from, ec) && !ec) {
      std::filesystem::rename(from, path + ".g" + std::to_string(g), ec);
    }
  }
  std::filesystem::rename(path, path + ".g1", ec);
}

std::vector<std::string> generation_paths(const std::string& path,
                                          std::size_t keep) {
  std::vector<std::string> paths{path};
  for (std::size_t g = 1; g < keep; ++g) {
    paths.push_back(path + ".g" + std::to_string(g));
  }
  return paths;
}

void remove_generations(const std::string& path, std::size_t keep) {
  std::error_code ec;
  for (const std::string& candidate :
       generation_paths(path, keep == 0 ? 1 : keep)) {
    std::filesystem::remove(candidate, ec);
  }
}

metrics::RoundRecord read_round_record(ImageReader& reader) {
  metrics::RoundRecord record;
  record.round = static_cast<std::size_t>(reader.u64());
  record.training_round = reader.u8() != 0;
  record.mean_accuracy = reader.f64();
  record.std_accuracy = reader.f64();
  record.mean_loss = reader.f64();
  record.allreduce_accuracy = reader.f64();
  record.train_energy_wh = reader.f64();
  record.comm_energy_wh = reader.f64();
  record.nodes_trained = static_cast<std::size_t>(reader.u64());
  record.consensus = reader.f64();
  return record;
}

}  // namespace skiptrain::ckpt
