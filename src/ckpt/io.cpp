#include "ckpt/io.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace skiptrain::ckpt {

void ImageWriter::bytes(const void* data, std::size_t size) {
  out_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  if (!out_) throw std::runtime_error("ckpt: write failed");
  crc_ = fault::crc32c_update(crc_, data, size);
}

void ImageWriter::section_crc() {
  const std::uint32_t value = fault::crc32c_finish(crc_);
  out_.write(reinterpret_cast<const char*>(&value), sizeof(value));
  if (!out_) throw std::runtime_error("ckpt: write failed");
  crc_ = fault::kCrc32cInit;
}

void ImageWriter::str(const std::string& text) {
  u64(text.size());
  if (!text.empty()) bytes(text.data(), text.size());
}

void ImageWriter::f32_blob(std::span<const float> values) {
  if (!values.empty()) {
    bytes(values.data(), values.size() * sizeof(float));
  }
}

void ImageWriter::f32_vec(std::span<const float> values) {
  u64(values.size());
  f32_blob(values);
}

void ImageWriter::f64_vec(std::span<const double> values) {
  u64(values.size());
  if (!values.empty()) {
    bytes(values.data(), values.size() * sizeof(double));
  }
}

void ImageWriter::u64_vec(std::span<const std::size_t> values) {
  u64(values.size());
  for (const std::size_t value : values) {
    u64(static_cast<std::uint64_t>(value));
  }
}

void ImageReader::raw_bytes(void* data, std::size_t size) {
  if (size > remaining_) {
    throw std::runtime_error("ckpt: truncated image (need " +
                             std::to_string(size) + " bytes, " +
                             std::to_string(remaining_) + " remain)");
  }
  in_.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  if (in_.gcount() != static_cast<std::streamsize>(size)) {
    throw std::runtime_error("ckpt: truncated image (short read)");
  }
  remaining_ -= size;
}

void ImageReader::bytes(void* data, std::size_t size) {
  raw_bytes(data, size);
  crc_ = fault::crc32c_update(crc_, data, size);
}

void ImageReader::check_section_crc(const std::string& what) {
  const std::uint32_t expected = fault::crc32c_finish(crc_);
  std::uint32_t stored = 0;
  raw_bytes(&stored, sizeof(stored));
  if (stored != expected) {
    throw std::runtime_error("ckpt: " + what +
                             " section checksum mismatch (stored " +
                             std::to_string(stored) + ", computed " +
                             std::to_string(expected) + ")");
  }
  crc_ = fault::kCrc32cInit;
}

std::uint8_t ImageReader::u8() {
  std::uint8_t value = 0;
  bytes(&value, sizeof(value));
  return value;
}

std::uint32_t ImageReader::u32() {
  std::uint32_t value = 0;
  bytes(&value, sizeof(value));
  return value;
}

std::uint64_t ImageReader::u64() {
  std::uint64_t value = 0;
  bytes(&value, sizeof(value));
  return value;
}

double ImageReader::f64() {
  double value = 0.0;
  bytes(&value, sizeof(value));
  return value;
}

std::uint64_t ImageReader::bounded_count(std::size_t element_size,
                                         const char* context) {
  const std::uint64_t count = u64();
  // Divide, never multiply: `count * element_size` could overflow u64 on
  // a hostile prefix, `remaining_ / element_size` cannot.
  if (count > remaining_ / element_size) {
    throw std::runtime_error(std::string("ckpt: ") + context + " count " +
                             std::to_string(count) +
                             " exceeds remaining payload (" +
                             std::to_string(remaining_) + " bytes)");
  }
  return count;
}

std::string ImageReader::str(std::size_t max_bytes) {
  const std::uint64_t size = bounded_count(1, "string");
  if (size > max_bytes) {
    throw std::runtime_error("ckpt: string length " + std::to_string(size) +
                             " exceeds cap " + std::to_string(max_bytes));
  }
  std::string text(static_cast<std::size_t>(size), '\0');
  if (size != 0) bytes(text.data(), text.size());
  return text;
}

void ImageReader::f32_blob(std::span<float> out) {
  if (!out.empty()) bytes(out.data(), out.size() * sizeof(float));
}

std::vector<float> ImageReader::f32_vec() {
  const std::uint64_t count = bounded_count(sizeof(float), "f32 vector");
  std::vector<float> values(static_cast<std::size_t>(count));
  f32_blob(values);
  return values;
}

std::vector<double> ImageReader::f64_vec() {
  const std::uint64_t count = bounded_count(sizeof(double), "f64 vector");
  std::vector<double> values(static_cast<std::size_t>(count));
  if (!values.empty()) bytes(values.data(), values.size() * sizeof(double));
  return values;
}

std::vector<std::size_t> ImageReader::u64_vec() {
  const std::uint64_t count =
      bounded_count(sizeof(std::uint64_t), "u64 vector");
  std::vector<std::size_t> values(static_cast<std::size_t>(count));
  for (auto& value : values) value = static_cast<std::size_t>(u64());
  return values;
}

void ImageReader::require_exhausted(const std::string& what) const {
  if (remaining_ != 0) {
    throw std::runtime_error("ckpt: " + what + " has " +
                             std::to_string(remaining_) +
                             " trailing bytes after the payload");
  }
}

void write_header(std::ostream& out, const char magic[4],
                  std::uint32_t version) {
  ImageWriter writer(out);
  writer.bytes(magic, 4);
  writer.u32(version);
}

std::uint64_t read_header(std::istream& in, std::uint64_t file_bytes,
                          const char magic[4], std::uint32_t version,
                          const std::string& what) {
  if (file_bytes < kHeaderBytes) {
    throw std::runtime_error("ckpt: " + what +
                             " is smaller than an image header");
  }
  ImageReader reader(in, kHeaderBytes);
  char found[4] = {};
  reader.bytes(found, sizeof(found));
  if (std::memcmp(found, magic, 4) != 0) {
    throw std::runtime_error("ckpt: bad magic in " + what);
  }
  const std::uint32_t found_version = reader.u32();
  if (found_version != version) {
    throw std::runtime_error("ckpt: " + what + " has unsupported version " +
                             std::to_string(found_version) + " (expected " +
                             std::to_string(version) + ")");
  }
  return file_bytes - kHeaderBytes;
}

std::uint64_t file_size_bytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec) {
    throw std::runtime_error("ckpt: cannot stat " + path + ": " +
                             ec.message());
  }
  return static_cast<std::uint64_t>(size);
}

namespace {

std::uint64_t path_hash(const std::string& path) {
  std::uint64_t hash = 0x434b50545f504154ULL;  // "CKPT_PAT"
  for (const char c : path) {
    hash = util::hash_combine(hash, static_cast<unsigned char>(c));
  }
  return hash;
}

}  // namespace

void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& payload,
                  const IoFaultPolicy* io_faults) {
  OBS_SPAN("ckpt.write");
  static const obs::Counter files = obs::counter("ckpt.files_written");
  static const obs::Counter bytes = obs::counter("ckpt.bytes_written");
  static const obs::Histogram latency = obs::hist_ns("ckpt.write.ns");
  const obs::StopWatch watch;
  if (io_faults != nullptr && io_faults->plan.io_faults()) {
    static const obs::Counter injected = obs::counter("fault.io.injected");
    static const obs::Counter retries = obs::counter("fault.io.retries");
    const std::uint64_t site = path_hash(path);
    const std::uint64_t attempts = io_faults->plan.io_retries + 1;
    std::uint64_t attempt = 0;
    while (fault::io_attempt_fails(io_faults->plan, io_faults->seed, site,
                                   attempt)) {
      injected.add(1);
      ++attempt;
      if (attempt >= attempts) {
        throw std::runtime_error(
            "ckpt: injected IO failure persisted through " +
            std::to_string(attempts) + " attempts for " + path);
      }
      // Virtual-time backoff: the retry is accounted, never slept —
      // simulated rounds advance on their own clock, not the wall's.
      retries.add(1);
    }
  }
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ckpt: cannot open " + tmp);
    payload(out);
    out.flush();
    if (!out) throw std::runtime_error("ckpt: write failed for " + tmp);
    files.add(1);
    const auto written = out.tellp();
    if (written > 0) bytes.add(static_cast<std::uint64_t>(written));
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("ckpt: cannot rename " + tmp + " -> " + path +
                             ": " + ec.message());
  }
  latency.record(watch.ns());
}

}  // namespace skiptrain::ckpt
