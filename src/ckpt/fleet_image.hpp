// Versioned fleet images: one file = one entire simulation (ROADMAP:
// "serialize whole fleets as one contiguous plane image instead of
// per-model files").
//
// The paper's constrained setting (§3.2) is about fleets that stop and
// restart as energy allows; intermittent-learning systems treat
// persist/restore of training state as a first-class primitive. A fleet
// image makes the simulator itself restartable the same way: it captures
// everything mutable about an engine —
//
//   header     "SKTF" magic + format version
//   summary    engine kind, nodes, dim, round/activation counter
//   fingerprint config seed, exchange codec, sparse k, scheduler name
//   accountant per-node energy tallies, training counts, budgets
//   plane blob the [n × dim] parameter matrix, row-arena-contiguous, so
//              restore is ONE read into the existing RowArena with no
//              per-row copies (the storage-layout groundwork the
//              NUMA-sharding roadmap item builds on)
//   async extras outbox rows, mailbox freshness, pending event queue
//   node state per-node RNG stream + optimizer momentum buffer
//   experiment (optional) recorder series + experiment counters, so a
//              resumed sim::run_experiment emits byte-identical CSVs
//
// Bit-identical resume guarantee: restoring an image into an engine
// constructed with the same parameters and running the remaining rounds
// produces byte-identical metrics to an uninterrupted run, at any thread
// count. Mismatched construction (shape, seed, codec, scheduler) is
// rejected with std::runtime_error, as are truncated files, trailing
// garbage, and hostile length prefixes (see ckpt/io.hpp).
//
// Writes are atomic (tmp + rename): a crash mid-checkpoint leaves the
// previous image intact.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "ckpt/io.hpp"
#include "metrics/recorder.hpp"

namespace skiptrain::sim {
class AsyncGossipEngine;
class RoundEngine;
}  // namespace skiptrain::sim

namespace skiptrain::ckpt {

/// v2 added per-section CRC32C checksums (prefix / engine payload /
/// experiment section), so a torn or bit-flipped image is rejected by
/// checksum before a half-parsed payload can reach an engine.
inline constexpr std::uint32_t kFleetImageVersion = 2;

enum class EngineKind : std::uint8_t {
  kRoundEngine = 0,
  kAsyncGossip = 1,
};

/// Cheap metadata probe (header + summary only; the payload is not
/// deserialized or validated beyond the header).
struct FleetImageInfo {
  EngineKind engine = EngineKind::kRoundEngine;
  std::uint64_t nodes = 0;
  std::uint64_t dim = 0;
  /// rounds_executed (RoundEngine) or total_activations (async).
  std::uint64_t round = 0;
  bool has_experiment = false;
};

[[nodiscard]] FleetImageInfo probe_fleet_image(const std::string& path);

/// Stream-level probe over exactly `file_bytes` of image bytes; `what`
/// names the source in error messages. The path overload wraps this —
/// exposed separately so hostile-input harnesses (fuzzers, bit-flip
/// matrices) can drive the parser from memory.
[[nodiscard]] FleetImageInfo probe_fleet_image(std::istream& in,
                                               std::uint64_t file_bytes,
                                               const std::string& what);

/// Engine-only images (tests, examples, ad-hoc snapshots). The restore
/// functions throw std::runtime_error on any mismatch or corruption;
/// identity mismatches are detected before the engine is touched, but a
/// file corrupted past its identity prefix can fail mid-restore — after
/// a throw, treat the engine as unspecified and rebuild it.
void save_fleet_image(const sim::RoundEngine& engine,
                      const std::string& path);
void restore_fleet_image(sim::RoundEngine& engine, const std::string& path);
void save_fleet_image(const sim::AsyncGossipEngine& engine,
                      const std::string& path);
void restore_fleet_image(sim::AsyncGossipEngine& engine,
                         const std::string& path);

/// Experiment-level state carried alongside the engine payload so
/// sim::run_experiment can resume mid-trial with its recorder intact:
/// the resumed run's CSV is byte-identical to an uninterrupted one.
/// `fingerprint` is an opaque caller-supplied identity of the FULL run
/// configuration (sweeps pass ckpt::trial_fingerprint); it is stored
/// ahead of the engine payload so a stale image from an edited
/// configuration is rejected before any engine state is touched.
struct ExperimentState {
  std::vector<metrics::RoundRecord> records;
  std::uint64_t coordinated_training_rounds = 0;
  std::string fingerprint{};
};

/// `io_faults` (optional) enables deterministic write-failure injection
/// with bounded retry — see ckpt::IoFaultPolicy.
void save_experiment_image(const sim::RoundEngine& engine,
                           const ExperimentState& experiment,
                           const std::string& path,
                           const IoFaultPolicy* io_faults = nullptr);

/// Restores an experiment image. When `expected_fingerprint` is
/// non-empty and differs from the image's stored fingerprint, returns
/// false WITHOUT touching the engine (the caller starts fresh instead —
/// a stale in-flight image from an edited grid must never leak resumed
/// state into a run). Construction mismatches (shape, seed, codec,
/// scheduler) still throw std::runtime_error.
[[nodiscard]] bool restore_experiment_image(
    sim::RoundEngine& engine, ExperimentState& experiment,
    const std::string& path, const std::string& expected_fingerprint = "");

/// One recorder row on the wire — shared by the experiment section above
/// and the trial-result store (ckpt/trial_store). Every record occupies
/// exactly kRoundRecordWireBytes (2 u64, 1 u8, 7 f64), the element size
/// record-count prefixes are bounded against.
inline constexpr std::size_t kRoundRecordWireBytes =
    2 * sizeof(std::uint64_t) + 1 + 7 * sizeof(double);

void write_round_record(ImageWriter& writer,
                        const metrics::RoundRecord& record);
[[nodiscard]] metrics::RoundRecord read_round_record(ImageReader& reader);

// --- multi-generation retention --------------------------------------------
//
// With keep_generations = N > 1, each checkpoint keeps the N most recent
// images: `path` is the newest, `path.g1` the previous, up to
// `path.g{N-1}`. A resume walks newest -> oldest and restores from the
// first generation that validates, so one corrupt or torn image costs at
// most `checkpoint_every` rounds of recomputation, never the run.

/// Shifts existing generations one slot older (path -> path.g1 -> ...;
/// the oldest falls off). Call immediately before writing a new image at
/// `path`. No-op when keep <= 1 or `path` does not exist yet.
void rotate_generations(const std::string& path, std::size_t keep);

/// Candidate restore paths, newest first: path, path.g1, ...,
/// path.g{keep-1}. keep = 0 is treated as 1.
[[nodiscard]] std::vector<std::string> generation_paths(
    const std::string& path, std::size_t keep);

/// Best-effort removal of `path` and every `path.gN` sibling (sweep
/// cleanup after a trial's result is durably stored).
void remove_generations(const std::string& path, std::size_t keep);

}  // namespace skiptrain::ckpt
