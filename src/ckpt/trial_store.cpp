#include "ckpt/trial_store.hpp"

#include <cstdio>
#include <exception>
#include <fstream>
#include <stdexcept>

#include "ckpt/fleet_image.hpp"
#include "ckpt/io.hpp"
#include "fault/fault.hpp"
#include "graph/sparse.hpp"
#include "quant/codec.hpp"
#include "scenario/scenario.hpp"
#include "sweep/config.hpp"

namespace skiptrain::ckpt {

namespace {

constexpr char kMagic[4] = {'S', 'K', 'T', 'R'};

std::string hex_float(double value) {
  // %a round-trips exactly — the fingerprint must not depend on decimal
  // formatting precision.
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

}  // namespace

std::string trial_file_base(const std::string& dir, std::size_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "trial_%06zu", index);
  return dir + "/" + name;
}

std::string trial_fingerprint(const sweep::TrialSpec& spec) {
  const sim::RunOptions& o = spec.options;
  std::string fp = spec.data.key();
  fp += "|alg=" + std::string(sweep::algorithm_token(o.algorithm));
  fp += "|gt=" + std::to_string(o.gamma_train);
  fp += "|gs=" + std::to_string(o.gamma_sync);
  fp += "|T=" + std::to_string(o.total_rounds);
  fp += "|deg=" + std::to_string(o.degree);
  fp += "|E=" + std::to_string(o.local_steps);
  fp += "|b=" + std::to_string(o.batch_size);
  fp += "|lr=" + hex_float(o.learning_rate);
  fp += "|k=" + std::to_string(o.sparse_exchange_k);
  fp += "|codec=" + std::string(quant::codec_token(o.exchange_codec));
  fp += "|scn=" + scenario::scenario_token(o.scenario);
  fp += "|topo=" + graph::topology_token(o.topology);
  fp += "|flt=" + fault::fault_token(o.faults);
  fp += "|wl=" + std::to_string(static_cast<int>(o.workload));
  fp += "|bs=" + hex_float(o.budget_scale);
  fp += "|ee=" + std::to_string(o.eval_every);
  fp += "|es=" + std::to_string(o.eval_max_samples);
  fp += "|val=" + std::to_string(o.eval_on_validation ? 1 : 0);
  fp += "|ar=" + std::to_string(o.evaluate_allreduce ? 1 : 0);
  fp += "|cons=" + std::to_string(o.track_consensus ? 1 : 0);
  fp += "|seed=" + std::to_string(o.seed);
  return fp;
}

void write_trial_result(const sweep::TrialResult& result,
                        const std::string& path) {
  atomic_write(path, [&](std::ostream& out) {
    write_header(out, kMagic, kTrialResultVersion);
    ImageWriter writer(out);
    writer.u64(result.spec.index);
    writer.str(trial_fingerprint(result.spec));
    writer.u8(result.ok() ? 1 : 0);
    writer.str(result.error);
    const sim::ExperimentResult& r = result.result;
    writer.str(r.algorithm);
    writer.str(r.dataset);
    writer.u64(r.nodes);
    writer.u64(r.degree);
    writer.f64(r.final_mean_accuracy);
    writer.f64(r.final_std_accuracy);
    writer.f64(r.final_allreduce_accuracy);
    writer.f64(r.best_mean_accuracy);
    writer.f64(r.total_training_wh);
    writer.f64(r.total_comm_wh);
    writer.f64(r.fleet_budget_wh);
    writer.u64(r.coordinated_training_rounds);
    writer.f64(r.mean_availability);
    writer.u64(r.down_node_rounds);
    writer.f64(r.harvested_wh);
    writer.u64(r.dropped_messages);
    writer.u64(r.corrupt_messages);
    writer.u64(r.duplicated_messages);
    writer.u64(r.crash_down_rounds);
    writer.f64(r.delivery_rate);
    writer.f64_vec(r.final_per_node_accuracy);
    writer.str(r.recorder.name());
    writer.u64(r.recorder.records().size());
    for (const metrics::RoundRecord& record : r.recorder.records()) {
      write_round_record(writer, record);
    }
    writer.section_crc();
  });
}

TrialLoadStatus load_trial_result_status(const sweep::TrialSpec& spec,
                                         const std::string& path,
                                         sweep::TrialResult& out) {
  try {
    std::ifstream in(path, std::ios::binary);
    if (!in) return TrialLoadStatus::kMissing;
    const std::uint64_t payload_bytes = read_header(
        in, file_size_bytes(path), kMagic, kTrialResultVersion, path);
    ImageReader reader(in, payload_bytes);
    if (reader.u64() != spec.index) return TrialLoadStatus::kStale;
    if (reader.str() != trial_fingerprint(spec)) {
      return TrialLoadStatus::kStale;
    }

    sweep::TrialResult trial;
    trial.spec = spec;
    trial.status = reader.u8() != 0 ? sweep::TrialStatus::kOk
                                    : sweep::TrialStatus::kFailed;
    trial.error = reader.str();
    sim::ExperimentResult& r = trial.result;
    r.algorithm = reader.str();
    r.dataset = reader.str();
    r.nodes = static_cast<std::size_t>(reader.u64());
    r.degree = static_cast<std::size_t>(reader.u64());
    r.final_mean_accuracy = reader.f64();
    r.final_std_accuracy = reader.f64();
    r.final_allreduce_accuracy = reader.f64();
    r.best_mean_accuracy = reader.f64();
    r.total_training_wh = reader.f64();
    r.total_comm_wh = reader.f64();
    r.fleet_budget_wh = reader.f64();
    r.coordinated_training_rounds = static_cast<std::size_t>(reader.u64());
    r.mean_availability = reader.f64();
    r.down_node_rounds = static_cast<std::size_t>(reader.u64());
    r.harvested_wh = reader.f64();
    r.dropped_messages = static_cast<std::size_t>(reader.u64());
    r.corrupt_messages = static_cast<std::size_t>(reader.u64());
    r.duplicated_messages = static_cast<std::size_t>(reader.u64());
    r.crash_down_rounds = static_cast<std::size_t>(reader.u64());
    r.delivery_rate = reader.f64();
    r.final_per_node_accuracy = reader.f64_vec();
    r.recorder = metrics::Recorder(reader.str());
    const std::uint64_t records =
        reader.bounded_count(kRoundRecordWireBytes, "round record");
    for (std::uint64_t i = 0; i < records; ++i) {
      r.recorder.add(read_round_record(reader));
    }
    reader.check_section_crc(path);
    reader.require_exhausted(path);
    out = std::move(trial);
    return TrialLoadStatus::kLoaded;
  } catch (const std::exception&) {
    // Corrupt / truncated result files are not fatal: the caller
    // quarantines and reruns the trial.
    return TrialLoadStatus::kCorrupt;
  }
}

bool load_trial_result(const sweep::TrialSpec& spec, const std::string& path,
                       sweep::TrialResult& out) {
  return load_trial_result_status(spec, path, out) ==
         TrialLoadStatus::kLoaded;
}

void append_manifest(const std::string& dir, std::size_t index, bool ok) {
  std::ofstream manifest(dir + "/manifest.txt",
                         std::ios::app | std::ios::out);
  if (!manifest) return;
  manifest << index << ' ' << (ok ? "ok" : "failed") << '\n';
}

}  // namespace skiptrain::ckpt
