// Hardened binary checkpoint IO shared by every on-disk image format in
// the system (nn/serialize model checkpoints, ckpt/fleet_image fleet
// images, ckpt/trial_store sweep results).
//
// Two rules make the formats safe against truncated, corrupted, or
// hostile files:
//
//   1. Every read is bounded. An ImageReader is constructed with the
//      payload size (file size minus header) and refuses any read past
//      it. Length-prefixed vector reads validate the element count
//      against the REMAINING bytes before allocating, so a hostile count
//      can neither overflow `count * sizeof(T)` nor trigger a
//      multi-terabyte allocation.
//   2. Every byte is accounted for. require_exhausted() rejects files
//      with trailing garbage after the payload — a truncated-then-
//      concatenated or maliciously padded image never half-loads.
//
// Writes are crash-safe via atomic_write: the payload lands in
// `<path>.tmp` and is renamed over `path` only after a successful flush,
// so a process killed mid-checkpoint leaves the previous image intact.
//
// Integers and floats are stored in native (little-endian on every
// supported target) byte order; images are an on-disk cache for the
// machine that wrote them, not an interchange format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "fault/crc32c.hpp"
#include "fault/fault.hpp"

namespace skiptrain::ckpt {

/// Typed, size-checked writes onto a binary output stream. Throws
/// std::runtime_error when the underlying stream fails.
///
/// Every write feeds a running CRC32C; section_crc() emits the checksum
/// of everything written since the previous mark (the CRC bytes
/// themselves are excluded) and resets the accumulator — the hook behind
/// the per-section checksums of fleet images (v2+).
class ImageWriter {
 public:
  explicit ImageWriter(std::ostream& out) : out_(out) {}

  void bytes(const void* data, std::size_t size);

  void u8(std::uint8_t value) { bytes(&value, sizeof(value)); }
  void u32(std::uint32_t value) { bytes(&value, sizeof(value)); }
  void u64(std::uint64_t value) { bytes(&value, sizeof(value)); }
  void f64(double value) { bytes(&value, sizeof(value)); }

  /// u64 length prefix + raw bytes.
  void str(const std::string& text);

  /// Raw float32 blob with NO length prefix — the caller's format fixes
  /// the element count (e.g. the [n × dim] plane blob). One contiguous
  /// write, mirroring the one contiguous read on restore.
  void f32_blob(std::span<const float> values);

  /// u64 count + raw elements.
  void f32_vec(std::span<const float> values);
  void f64_vec(std::span<const double> values);
  void u64_vec(std::span<const std::size_t> values);

  /// Writes the CRC32C of every byte since the last mark (u32, excluded
  /// from the accumulation) and starts a new section.
  void section_crc();

 private:
  std::ostream& out_;
  std::uint32_t crc_ = fault::kCrc32cInit;
};

/// Typed, bounds-checked reads from a binary input stream holding exactly
/// `payload_bytes` of payload. All failures throw std::runtime_error.
class ImageReader {
 public:
  ImageReader(std::istream& in, std::uint64_t payload_bytes)
      : in_(in), remaining_(payload_bytes) {}

  void bytes(void* data, std::size_t size);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();

  /// Bounded counterpart of ImageWriter::str. `max_bytes` guards against
  /// absurd length prefixes independent of the remaining-byte bound.
  std::string str(std::size_t max_bytes = std::size_t{1} << 20);

  /// Fills `out` from a raw (unprefixed) float32 blob.
  void f32_blob(std::span<float> out);

  std::vector<float> f32_vec();
  std::vector<double> f64_vec();
  std::vector<std::size_t> u64_vec();

  std::uint64_t remaining() const { return remaining_; }

  /// Reads a u64 length prefix and validates it against the remaining
  /// payload BEFORE any allocation happens: `count * element_size` can
  /// neither overflow nor exceed what the file actually holds. Used by
  /// every vector read here and by callers looping over variable-size
  /// elements (pass the element's minimum serialized size).
  std::uint64_t bounded_count(std::size_t element_size,
                              const char* context);

  /// Rejects trailing bytes: every valid image consumes its payload
  /// exactly. `what` names the file/format for the error message.
  void require_exhausted(const std::string& what) const;

  /// Counterpart of ImageWriter::section_crc: reads the stored u32 (not
  /// fed to the accumulator), compares it against the CRC32C of every
  /// byte read since the last mark, throws std::runtime_error naming
  /// `what` on mismatch, and starts a new section.
  void check_section_crc(const std::string& what);

 private:
  /// Bounded read that bypasses the CRC accumulator (the stored CRC
  /// bytes themselves).
  void raw_bytes(void* data, std::size_t size);

  std::istream& in_;
  std::uint64_t remaining_;
  std::uint32_t crc_ = fault::kCrc32cInit;
};

/// 4-byte magic + u32 format version — the header every image format
/// shares (model checkpoints use "SKTN", fleet images "SKTF", trial
/// results "SKTR").
inline constexpr std::size_t kHeaderBytes = 4 + sizeof(std::uint32_t);

void write_header(std::ostream& out, const char magic[4],
                  std::uint32_t version);

/// Validates magic and version against the file's first kHeaderBytes and
/// returns the payload size (`file_bytes - kHeaderBytes`). `what` names
/// the file for error messages.
std::uint64_t read_header(std::istream& in, std::uint64_t file_bytes,
                          const char magic[4], std::uint32_t version,
                          const std::string& what);

/// Size of `path` in bytes; throws std::runtime_error when the file does
/// not exist or is not a regular file.
std::uint64_t file_size_bytes(const std::string& path);

/// Deterministic disk-IO chaos for atomic_write: when a fault plan with
/// io:P is active, each write attempt draws from the stateless stream
/// keyed on (seed, path hash, attempt). Failed attempts retry with
/// virtual-time backoff (counted, never slept — simulation time is not
/// wall time) up to plan.io_retries extra attempts before the failure
/// propagates as the same std::runtime_error a real full disk would.
struct IoFaultPolicy {
  fault::FaultPlan plan;      // io_fail_prob / io_retries are consulted
  std::uint64_t seed = 0;     // experiment seed
};

/// Writes `payload(out)` into `<path>.tmp`, flushes, then renames over
/// `path` — so an existing image survives a crash mid-write. With a
/// non-null `io_faults` policy, injected write failures are retried
/// deterministically as described on IoFaultPolicy.
void atomic_write(const std::string& path,
                  const std::function<void(std::ostream&)>& payload,
                  const IoFaultPolicy* io_faults = nullptr);

}  // namespace skiptrain::ckpt
