#include "fault/frame.hpp"

#include <cstring>

#include "fault/crc32c.hpp"

namespace skiptrain::fault {
namespace {

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
void append_vec(std::vector<std::uint8_t>& out, const std::vector<T>& values) {
  append_pod(out, static_cast<std::uint64_t>(values.size()));
  const auto* bytes = reinterpret_cast<const std::uint8_t*>(values.data());
  out.insert(out.end(), bytes, bytes + values.size() * sizeof(T));
}

/// Bounds-checked sequential reader over the payload span.
class PayloadReader {
 public:
  explicit PayloadReader(std::span<const std::uint8_t> payload)
      : payload_(payload) {}

  template <typename T>
  bool pod(T& out) {
    if (payload_.size() - pos_ < sizeof(T)) return false;
    std::memcpy(&out, payload_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  template <typename T>
  bool vec(std::vector<T>& out, std::size_t max_elems) {
    std::uint64_t count = 0;
    if (!pod(count)) return false;
    if (count > max_elems) return false;
    const std::size_t bytes = static_cast<std::size_t>(count) * sizeof(T);
    if (payload_.size() - pos_ < bytes) return false;
    out.resize(static_cast<std::size_t>(count));
    std::memcpy(out.data(), payload_.data() + pos_, bytes);
    pos_ += bytes;
    return true;
  }

  [[nodiscard]] bool exhausted() const { return pos_ == payload_.size(); }

 private:
  std::span<const std::uint8_t> payload_;
  std::size_t pos_ = 0;
};

}  // namespace

void encode_frame(const quant::QuantizedRow& row,
                  std::vector<std::uint8_t>& out) {
  out.clear();
  // Header placeholder; patched below once the payload size is known.
  out.resize(kFrameHeaderBytes);
  append_pod(out, static_cast<std::uint8_t>(row.codec));
  append_pod(out, static_cast<std::uint64_t>(row.round));
  append_pod(out, static_cast<std::uint64_t>(row.dim));
  append_vec(out, row.fp32);
  append_vec(out, row.half);
  append_vec(out, row.codes);
  append_vec(out, row.block_lo);
  append_vec(out, row.block_scale);

  const std::size_t payload_bytes = out.size() - kFrameHeaderBytes;
  const std::uint32_t crc =
      crc32c(out.data() + kFrameHeaderBytes, payload_bytes);
  std::uint32_t header[3] = {kFrameMagic,
                             static_cast<std::uint32_t>(payload_bytes), crc};
  std::memcpy(out.data(), header, sizeof(header));
}

bool verify_frame(std::span<const std::uint8_t> frame) {
  if (frame.size() < kFrameHeaderBytes) return false;
  std::uint32_t header[3];
  std::memcpy(header, frame.data(), sizeof(header));
  if (header[0] != kFrameMagic) return false;
  if (frame.size() - kFrameHeaderBytes != header[1]) return false;
  return crc32c(frame.data() + kFrameHeaderBytes, header[1]) == header[2];
}

bool decode_frame(std::span<const std::uint8_t> frame, std::size_t max_dim,
                  quant::QuantizedRow& out) {
  if (!verify_frame(frame)) return false;
  PayloadReader reader(frame.subspan(kFrameHeaderBytes));
  std::uint8_t codec = 0;
  std::uint64_t round = 0;
  std::uint64_t dim = 0;
  if (!reader.pod(codec) || !reader.pod(round) || !reader.pod(dim)) {
    return false;
  }
  if (codec > static_cast<std::uint8_t>(quant::Codec::kInt8Dithered)) {
    return false;
  }
  if (dim > max_dim) return false;
  out.codec = static_cast<quant::Codec>(codec);
  out.round = static_cast<std::size_t>(round);
  out.dim = static_cast<std::size_t>(dim);
  const std::size_t max_blocks =
      (static_cast<std::size_t>(dim) + quant::kInt8BlockValues - 1) /
      quant::kInt8BlockValues;
  if (!reader.vec(out.fp32, dim) || !reader.vec(out.half, dim) ||
      !reader.vec(out.codes, dim) || !reader.vec(out.block_lo, max_blocks) ||
      !reader.vec(out.block_scale, max_blocks)) {
    return false;
  }
  return reader.exhausted();
}

void flip_bit(std::span<std::uint8_t> frame, std::uint64_t bit_index) {
  if (frame.empty()) return;
  const std::uint64_t byte = bit_index / 8;
  if (byte >= frame.size()) return;
  frame[byte] ^= static_cast<std::uint8_t>(1U << (bit_index % 8));
}

}  // namespace skiptrain::fault
