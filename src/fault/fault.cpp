#include "fault/fault.hpp"

#include <bit>
#include <stdexcept>

#include "util/rng.hpp"

namespace skiptrain::fault {
namespace {

// Purpose tags for the stateless draw streams (ASCII mnemonics), so the
// fault streams are independent of every other consumer of the
// experiment seed (scenario, dither, topology, ...).
constexpr std::uint64_t kDropTag = 0x464c545f44524f50ULL;     // "FLT_DROP"
constexpr std::uint64_t kCorruptTag = 0x464c545f434f5252ULL;  // "FLT_CORR"
constexpr std::uint64_t kDupTag = 0x464c545f44555031ULL;      // "FLT_DUP1"
constexpr std::uint64_t kCrashTag = 0x464c545f43525348ULL;    // "FLT_CRSH"
constexpr std::uint64_t kIoTag = 0x464c545f494f4641ULL;       // "FLT_IOFA"
constexpr std::uint64_t kBitTag = 0x464c545f42495431ULL;      // "FLT_BIT1"

std::uint64_t f64_bits(double value) {
  return std::bit_cast<std::uint64_t>(value);
}

void require_prob(double value, const char* what) {
  if (!(value >= 0.0 && value <= 1.0)) {
    throw std::invalid_argument(std::string("faults: ") + what +
                                " must be a probability in [0, 1]");
  }
}

double parse_prob(const std::string& value, const std::string& kind) {
  std::size_t used = 0;
  double parsed = 0.0;
  try {
    parsed = std::stod(value, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (used != value.size() || value.empty()) {
    throw std::invalid_argument("faults: bad value '" + value + "' for '" +
                                kind + "' (expected a probability)");
  }
  return parsed;
}

std::uint64_t parse_count(const std::string& value, const std::string& kind) {
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw std::invalid_argument("faults: bad value '" + value + "' for '" +
                                kind + "' (expected a positive integer)");
  }
  return std::stoull(value);
}

/// Uniform [0,1) draw keyed on (seed ^ tag, a, b).
double draw(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
            std::uint64_t b) {
  return util::stateless_uniform(util::hash_combine(seed, tag), a, b);
}

}  // namespace

void FaultPlan::validate() const {
  require_prob(drop_prob, "drop");
  require_prob(corrupt_prob, "corrupt");
  require_prob(dup_prob, "dup");
  require_prob(crash_prob, "crash");
  require_prob(io_fail_prob, "io");
  if (crash_rounds == 0) {
    throw std::invalid_argument("faults: crash-rounds must be >= 1");
  }
  if (enabled && drop_prob == 0.0 && corrupt_prob == 0.0 && dup_prob == 0.0 &&
      crash_prob == 0.0 && io_fail_prob == 0.0) {
    throw std::invalid_argument(
        "faults: plan enables no fault (use 'none' to disable)");
  }
}

std::uint64_t FaultPlan::config_hash() const {
  if (!enabled) return 0;
  std::uint64_t hash = 0x4641554c54504c4eULL;  // "FAULTPLN"
  for (const double value : {drop_prob, corrupt_prob, dup_prob, crash_prob,
                             io_fail_prob}) {
    hash = util::hash_combine(hash, f64_bits(value));
  }
  hash = util::hash_combine(hash, crash_rounds);
  hash = util::hash_combine(hash, io_retries);
  return hash;
}

FaultPlan make_plan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") {
    return plan;  // enabled = false
  }
  plan.enabled = true;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) {
      throw std::invalid_argument("faults: empty token in '" + spec + "'");
    }
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 >= token.size()) {
      throw std::invalid_argument("faults: token '" + token +
                                  "' is not kind:value");
    }
    const std::string kind = token.substr(0, colon);
    const std::string value = token.substr(colon + 1);
    if (kind == "drop") {
      plan.drop_prob = parse_prob(value, kind);
    } else if (kind == "corrupt") {
      plan.corrupt_prob = parse_prob(value, kind);
    } else if (kind == "dup") {
      plan.dup_prob = parse_prob(value, kind);
    } else if (kind == "crash") {
      plan.crash_prob = parse_prob(value, kind);
    } else if (kind == "crash-rounds") {
      plan.crash_rounds = parse_count(value, kind);
    } else if (kind == "io") {
      plan.io_fail_prob = parse_prob(value, kind);
    } else if (kind == "io-retries") {
      plan.io_retries = parse_count(value, kind);
    } else {
      throw std::invalid_argument(
          "faults: unknown kind '" + kind +
          "' (expected drop|corrupt|dup|crash|crash-rounds|io|io-retries)");
    }
  }
  plan.validate();
  return plan;
}

std::string fault_token(const std::string& spec) {
  return spec.empty() ? "none" : spec;
}

LinkDraw link_draw(const FaultPlan& plan, std::uint64_t seed,
                   std::uint64_t round, std::uint64_t src, std::uint64_t dst) {
  LinkDraw result;
  if (!plan.link_faults()) return result;
  const std::uint64_t link = util::hash_combine(src, dst);
  if (plan.drop_prob > 0.0 &&
      draw(seed, kDropTag, round, link) < plan.drop_prob) {
    result.drop = true;
    return result;  // a lost message can be neither corrupted nor duplicated
  }
  if (plan.corrupt_prob > 0.0 &&
      draw(seed, kCorruptTag, round, link) < plan.corrupt_prob) {
    result.corrupt = true;
  }
  if (plan.dup_prob > 0.0 && draw(seed, kDupTag, round, link) < plan.dup_prob) {
    result.duplicate = true;
  }
  return result;
}

bool node_down(const FaultPlan& plan, std::uint64_t seed, std::uint64_t node,
               std::uint64_t round) {
  if (!plan.crash_faults()) return false;
  // Down at `round` iff a crash was drawn at any of the trailing
  // `crash_rounds` rounds. crash_rounds is small (single digits), so the
  // scan stays O(1) per (node, round) — and needs no checkpointed state.
  for (std::uint64_t back = 0; back < plan.crash_rounds && back <= round;
       ++back) {
    if (draw(seed, kCrashTag, node, round - back) < plan.crash_prob) {
      return true;
    }
  }
  return false;
}

bool io_attempt_fails(const FaultPlan& plan, std::uint64_t seed,
                      std::uint64_t path_hash, std::uint64_t attempt) {
  if (!plan.io_faults()) return false;
  return draw(seed, kIoTag, path_hash, attempt) < plan.io_fail_prob;
}

std::uint64_t corrupt_bit_index(std::uint64_t seed, std::uint64_t round,
                                std::uint64_t src, std::uint64_t dst,
                                std::uint64_t frame_bytes) {
  const std::uint64_t bits = frame_bytes * 8;
  if (bits == 0) return 0;
  const double u =
      draw(seed, kBitTag, round, util::hash_combine(src, dst));
  auto index = static_cast<std::uint64_t>(u * static_cast<double>(bits));
  return index >= bits ? bits - 1 : index;
}

}  // namespace skiptrain::fault
