// CRC32C-framed wire format for QuantizedRow exchanges.
//
// With a fault plan active, every row crossing the simulated wire is
// serialized into a frame:
//
//   [magic u32 "SKWF"] [payload_bytes u32] [crc32c u32] [payload]
//
// where the payload is the QuantizedRow's codec id, round, dim and the
// active codec family's storage vectors. Receivers verify the CRC (and
// every structural bound) before decoding; a frame whose check fails is
// treated as a dropped message, which is exactly how the engines degrade
// for explicit drops — lost neighbor mass reverts to self through the
// masked-aggregation difference form.
//
// Framing is deterministic (pure function of the row bytes), so framed
// exchanges stay bit-identical across thread counts; corruption is
// injected by flipping one seed-derived bit of a frame copy.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quant/codec.hpp"

namespace skiptrain::fault {

inline constexpr std::uint32_t kFrameMagic = 0x46574b53U;  // "SKWF" LE
inline constexpr std::size_t kFrameHeaderBytes = 3 * sizeof(std::uint32_t);

/// Fixed per-frame overhead on top of the codec's data bytes: the header
/// plus the payload's codec id, round, dim and the five vector length
/// prefixes (encode_frame's layout). Engines add this to their exact
/// per-row wire tally when framing is active.
inline constexpr std::size_t kFrameOverheadBytes =
    kFrameHeaderBytes + sizeof(std::uint8_t) + 7 * sizeof(std::uint64_t);

/// Serializes `row` into `out` (replacing its contents) with the framed
/// header above. Reuses out's capacity across calls.
void encode_frame(const quant::QuantizedRow& row,
                  std::vector<std::uint8_t>& out);

/// Verifies magic/length/CRC and deserializes into `out`. Returns false
/// (leaving `out` unspecified) on any mismatch — a corrupt frame must
/// never throw or over-allocate; `max_dim` bounds every size field.
[[nodiscard]] bool decode_frame(std::span<const std::uint8_t> frame,
                                std::size_t max_dim, quant::QuantizedRow& out);

/// Header + CRC check only (no deserialization).
[[nodiscard]] bool verify_frame(std::span<const std::uint8_t> frame);

/// Flips bit `bit_index` (frame-wide, 0-based) in place.
void flip_bit(std::span<std::uint8_t> frame, std::uint64_t bit_index);

}  // namespace skiptrain::fault
