// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the integrity
// check behind the fault layer's wire frames and the per-section
// checksums on fleet images.
//
// Portable table-driven implementation (slicing-by-4): no SSE4.2
// dependency, byte-order independent output, bit-identical on every
// platform the simulator builds on. The incremental form (`update`)
// lets ckpt::ImageWriter/ImageReader accumulate a running CRC across
// many small writes without buffering a section.
#pragma once

#include <cstddef>
#include <cstdint>

namespace skiptrain::fault {

/// Incremental CRC32C: feeds `bytes` into a running crc. Start from
/// `kCrc32cInit` and finish with `crc32c_finish` (or use crc32c()).
inline constexpr std::uint32_t kCrc32cInit = 0xffffffffU;

[[nodiscard]] std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                                          std::size_t bytes);

[[nodiscard]] inline constexpr std::uint32_t crc32c_finish(std::uint32_t crc) {
  return crc ^ 0xffffffffU;
}

/// One-shot CRC32C of a buffer.
[[nodiscard]] inline std::uint32_t crc32c(const void* data,
                                          std::size_t bytes) {
  return crc32c_finish(crc32c_update(kCrc32cInit, data, bytes));
}

}  // namespace skiptrain::fault
