// Deterministic fault-injection plans (ROADMAP: the always-on fleet
// service must "tolerate lost messages, corrupted payloads, and torn
// checkpoints" — this layer provides the seed-derived chaos that proves
// it).
//
// A FaultPlan is a value type parsed from a `faults=` spec — a comma
// list of `kind:value` tokens:
//
//   faults = drop:0.05,corrupt:0.01,dup:0.02,crash:0.004,crash-rounds:3,
//            io:0.2,io-retries:4
//
//   drop:P          per directed link per round, the message is lost
//   corrupt:P       per directed link per round, one wire-frame bit is
//                   flipped; the receiver's CRC32C check turns it into a
//                   drop (counted separately)
//   dup:P           per directed link per round, the message is
//                   delivered twice; receivers are idempotent
//   crash:P         per node per round, the node crash-restarts and
//                   stays down for `crash-rounds` rounds (skips training
//                   and gossip; neighbors degrade via masked aggregation)
//   crash-rounds:N  length of each crash outage (default 3, >= 1)
//   io:P            per checkpoint write attempt, the write fails;
//                   ckpt::atomic_write retries with deterministic
//                   virtual-time backoff up to `io-retries` times
//   io-retries:N    extra attempts after the first failure (default 4)
//
// "none" (or the empty string) disables everything and leaves every
// engine code path bitwise identical to a build without this layer.
//
// Determinism contract: every injected fault is a pure function of
// (experiment seed, round, src, dst) — drawn through counter-based
// stateless hashing, never through shared RNG state — so a fault plan
// produces bit-identical outcomes at any thread count and through
// kill/resume (no fault state needs checkpointing).
#pragma once

#include <cstdint>
#include <string>

namespace skiptrain::fault {

struct FaultPlan {
  bool enabled = false;

  double drop_prob = 0.0;     // per directed link per round
  double corrupt_prob = 0.0;  // per directed link per round
  double dup_prob = 0.0;      // per directed link per round

  double crash_prob = 0.0;          // per node per round
  std::uint64_t crash_rounds = 3;   // outage length per crash

  double io_fail_prob = 0.0;        // per checkpoint write attempt
  std::uint64_t io_retries = 4;     // extra attempts after first failure

  /// Any per-link fault active (drop/corrupt/dup)?
  [[nodiscard]] bool link_faults() const {
    return enabled &&
           (drop_prob > 0.0 || corrupt_prob > 0.0 || dup_prob > 0.0);
  }

  /// Crash-restart schedule active?
  [[nodiscard]] bool crash_faults() const {
    return enabled && crash_prob > 0.0;
  }

  /// Disk-IO fault schedule active?
  [[nodiscard]] bool io_faults() const {
    return enabled && io_fail_prob > 0.0;
  }

  /// Throws std::invalid_argument when any probability is outside [0, 1]
  /// or a count is zero.
  void validate() const;

  /// Content fingerprint folded into checkpoint identities and trial
  /// fingerprints. 0 when disabled, so fault-free images keep the layout
  /// they had before this subsystem existed.
  [[nodiscard]] std::uint64_t config_hash() const;
};

/// Lifetime delivery/outage telemetry an engine accumulates under a
/// fault plan (all zero without one). Unlike the engines' phase timing,
/// these ARE simulation state — the counts feed the summary CSV — so
/// engines checkpoint and restore them alongside model state.
struct FaultStats {
  std::uint64_t attempted_deliveries = 0;  // (receiver, alive sender) pairs
  std::uint64_t dropped = 0;               // lost in flight
  std::uint64_t corrupt = 0;               // rejected by CRC check
  std::uint64_t duplicated = 0;            // delivered twice, absorbed
  std::uint64_t crash_down_rounds = 0;     // node-rounds in crash outages
};

/// Parses the spec grammar above. "" and "none" yield a disabled plan.
/// Throws std::invalid_argument on unknown kinds or malformed values.
[[nodiscard]] FaultPlan make_plan(const std::string& spec);

/// Canonical display/CSV token for a spec ("" -> "none"; otherwise the
/// spec as given — specs are validated, not normalized).
[[nodiscard]] std::string fault_token(const std::string& spec);

// --- stateless draws -------------------------------------------------------
//
// All draws hash (experiment seed, purpose tag, coordinates) through
// util::hash_combine / util::stateless_uniform; no state, no ordering
// sensitivity.

/// Outcome of one directed link (src -> dst) in one round.
struct LinkDraw {
  bool drop = false;       // message lost in flight
  bool corrupt = false;    // one frame bit flipped in flight
  bool duplicate = false;  // delivered twice
};

[[nodiscard]] LinkDraw link_draw(const FaultPlan& plan, std::uint64_t seed,
                                 std::uint64_t round, std::uint64_t src,
                                 std::uint64_t dst);

/// True when `node` is inside a crash outage at `round`: a crash drawn
/// at any of the `crash_rounds` most recent rounds (including `round`
/// itself) keeps it down. Pure function of (seed, node, round), so an
/// outage needs no checkpointed state.
[[nodiscard]] bool node_down(const FaultPlan& plan, std::uint64_t seed,
                             std::uint64_t node, std::uint64_t round);

/// True when checkpoint write attempt `attempt` (0-based) against the
/// path identified by `path_hash` should fail.
[[nodiscard]] bool io_attempt_fails(const FaultPlan& plan, std::uint64_t seed,
                                    std::uint64_t path_hash,
                                    std::uint64_t attempt);

/// Which bit of a `frame_bytes`-byte wire frame a corrupt draw flips.
[[nodiscard]] std::uint64_t corrupt_bit_index(std::uint64_t seed,
                                              std::uint64_t round,
                                              std::uint64_t src,
                                              std::uint64_t dst,
                                              std::uint64_t frame_bytes);

}  // namespace skiptrain::fault
