#include "fault/crc32c.hpp"

#include <array>

namespace skiptrain::fault {
namespace {

// Reflected CRC32C polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78U;

struct Tables {
  // tables[k][b]: CRC contribution of byte b seen k positions before the
  // end of a 4-byte group (slicing-by-4).
  std::array<std::array<std::uint32_t, 256>, 4> t{};
};

constexpr Tables make_tables() {
  Tables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1U) != 0 ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = tables.t[0][i];
    for (std::size_t k = 1; k < 4; ++k) {
      crc = tables.t[0][crc & 0xffU] ^ (crc >> 8);
      tables.t[k][i] = crc;
    }
  }
  return tables;
}

constexpr Tables kTables = make_tables();

}  // namespace

std::uint32_t crc32c_update(std::uint32_t crc, const void* data,
                            std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  // Head: bytes until 4-byte alignment of the remaining length.
  while (bytes != 0 && (bytes & 3U) != 0) {
    crc = kTables.t[0][(crc ^ *p++) & 0xffU] ^ (crc >> 8);
    --bytes;
  }
  while (bytes >= 4) {
    // Byte-wise loads keep the result endian-independent.
    const std::uint32_t w = crc ^ (static_cast<std::uint32_t>(p[0]) |
                                   static_cast<std::uint32_t>(p[1]) << 8 |
                                   static_cast<std::uint32_t>(p[2]) << 16 |
                                   static_cast<std::uint32_t>(p[3]) << 24);
    crc = kTables.t[3][w & 0xffU] ^ kTables.t[2][(w >> 8) & 0xffU] ^
          kTables.t[1][(w >> 16) & 0xffU] ^ kTables.t[0][(w >> 24) & 0xffU];
    p += 4;
    bytes -= 4;
  }
  return crc;
}

}  // namespace skiptrain::fault
