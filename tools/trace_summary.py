#!/usr/bin/env python3
"""Summarize a skiptrain Chrome trace-event JSON (--trace-out artifact).

Reads the trace produced by `--trace-out=<path>` / SKIPTRAIN_TRACE, checks
it is well-formed, and prints

* a per-span-name table: count, total wall time, total SELF time (wall
  minus the time covered by same-thread child spans), mean and max span
  width;
* the top-5 widest individual spans.

Strictness: any malformed event — missing name/ts/dur/tid, negative
duration, wrong phase type, or a file that is not a trace-event object —
exits 2. CI runs this on the traced smoke-sweep artifact, so a tracer
regression that emits garbage fails the build instead of shipping an
unloadable trace.

Usage:
  trace_summary.py TRACE.json [--require name1,name2,...]

--require fails (exit 1) unless every named span appears at least once —
the CI gate that each instrumented phase actually emitted spans.

Exit status: 0 ok, 1 a --require name is missing, 2 malformed input.
"""

import argparse
import json
import os
import sys


def fail(message):
    print(f"trace_summary: {message}", file=sys.stderr)
    sys.exit(2)


def load_events(path):
    try:
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as err:
        fail(f"cannot parse {path}: {err}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("not a trace-event document (missing traceEvents)")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not a list")
    parsed = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            fail(f"event {i} is not an object")
        if event.get("ph") != "X":
            fail(f"event {i} has phase {event.get('ph')!r}, expected 'X'")
        name = event.get("name")
        ts = event.get("ts")
        dur = event.get("dur")
        tid = event.get("tid")
        if not isinstance(name, str) or not name:
            fail(f"event {i} has no name")
        if not isinstance(ts, (int, float)) or not isinstance(
            dur, (int, float)
        ):
            fail(f"event {i} ({name}) has non-numeric ts/dur")
        if dur < 0 or ts < 0:
            fail(f"event {i} ({name}) has negative ts/dur")
        if not isinstance(tid, int):
            fail(f"event {i} ({name}) has no integer tid")
        parsed.append((name, float(ts), float(dur), tid))
    return parsed


def self_times(events):
    """Wall time per span minus same-thread child spans.

    Spans on one thread are properly nested (RAII scopes), so a child is
    any span strictly contained in the parent's [ts, ts+dur) on the same
    tid. Sweep with a stack per thread in start-time order.
    """
    per_name = {}
    by_tid = {}
    for ev in events:
        by_tid.setdefault(ev[3], []).append(ev)
    for tid_events in by_tid.values():
        tid_events.sort(key=lambda e: (e[1], -e[2]))
        stack = []  # (name, ts, end, child_total)
        for name, ts, dur, _tid in tid_events:
            end = ts + dur
            while stack and ts >= stack[-1][2]:
                done = stack.pop()
                per_name[done[0]] = per_name.get(done[0], 0.0) + (
                    done[2] - done[1] - done[3]
                )
                if stack:
                    stack[-1][3] += done[2] - done[1]
            stack.append([name, ts, end, 0.0])
        while stack:
            done = stack.pop()
            per_name[done[0]] = per_name.get(done[0], 0.0) + (
                done[2] - done[1] - done[3]
            )
            if stack:
                stack[-1][3] += done[2] - done[1]
    return per_name


def main():
    parser = argparse.ArgumentParser(
        description="summarize a skiptrain trace-event JSON"
    )
    parser.add_argument("trace", help="trace JSON from --trace-out")
    parser.add_argument(
        "--require",
        default="",
        help="comma-separated span names that must be present",
    )
    args = parser.parse_args()

    events = load_events(args.trace)
    if not events:
        fail("trace contains no events")

    totals = {}
    for name, _ts, dur, _tid in events:
        count, total, widest = totals.get(name, (0, 0.0, 0.0))
        totals[name] = (count + 1, total + dur, max(widest, dur))
    selfs = self_times(events)

    print(f"{len(events)} spans, {len(totals)} distinct names\n")
    header = (
        f"{'span':<24} {'count':>7} {'wall ms':>10} {'self ms':>10} "
        f"{'mean us':>9} {'max us':>9}"
    )
    print(header)
    print("-" * len(header))
    for name in sorted(totals, key=lambda n: -totals[n][1]):
        count, total, widest = totals[name]
        print(
            f"{name:<24} {count:>7} {total / 1000.0:>10.3f} "
            f"{selfs.get(name, 0.0) / 1000.0:>10.3f} "
            f"{total / count:>9.1f} {widest:>9.1f}"
        )

    print("\ntop-5 widest spans:")
    for name, ts, dur, tid in sorted(events, key=lambda e: -e[2])[:5]:
        print(f"  {name:<24} {dur:>10.1f} us  (ts={ts:.1f} us, tid={tid})")

    missing = [
        name
        for name in filter(None, args.require.split(","))
        if name not in totals
    ]
    if missing:
        print(
            f"trace_summary: required spans missing: {', '.join(missing)}",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # stdout was piped to a consumer (head, less) that closed early;
        # the summary itself is fine — exit quietly instead of tracing back.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
