#!/usr/bin/env python3
"""Determinism linter: statically enforces skiptrain's reproducibility
contract (byte-identical sweep CSVs at any thread count, through
kill/resume, traced or untraced) over src/, bench/, and tests/.

Runtime smokes catch a determinism break only after it happens and only
on the grids CI runs; this pass rejects the *patterns* that cause them
at review time:

  rng              ad-hoc RNG sources (rand(), std::random_device,
                   std::mt19937, ...) anywhere outside util/rng — every
                   stochastic draw must come from util::Rng /
                   stateless_uniform so it is a pure function of
                   (seed, purpose, node, round).
  time-seed        wall-clock as data (std::chrono::system_clock,
                   time(nullptr), gettimeofday). steady_clock is fine —
                   the obs layer is observational by contract.
  unordered-iter   iteration over std::unordered_{map,set}: iteration
                   order is libstdc++-version- and hash-seed-dependent,
                   so anything derived from it (CSV rows, checkpoint
                   sections, reductions) silently loses bit-identity.
  raw-thread       std::thread / std::jthread construction outside
                   util/ — all parallelism goes through util::ThreadPool
                   so the nested-serial pinning policy holds. Test code
                   may spawn raw threads with an explicit allow.
  omp              #pragma omp outside util/ (same policy as raw-thread;
                   OpenMP schedules are not part of the build).
  atomic-order     atomic operations without an explicit std::memory_order
                   argument (including ++/--/+=/= operator forms, which
                   are seq_cst): every ordering decision must be written
                   down and reviewable. Applies to src/ and bench/;
                   tests keep the conservative seq_cst default.
  fp-contract-pin  a TU defining ISA-cloned kernels (target_clones /
                   __attribute__((target(...)))) must be pinned with
                   -ffp-contract=off in CMakeLists.txt, or wider-FMA
                   clones produce different bits than the scalar clone.
  float-accum      float-typed accumulators (sum/total/acc...) outside
                   the kernel TUs (tensor/, nn/, quant/ own their
                   accumulation-order story): reductions feeding results
                   accumulate in double or go through a kernel.

Escape hatch: append `// lint:allow(<rule>)` (comma-separate several
rules) to the offending line, or place it alone on the line above. Use
it only with a justification comment — the allow is the review record.

Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

SCAN_DIRS = ("src", "bench", "tests")
CPP_EXTENSIONS = (".cpp", ".cc", ".hpp", ".h")

ALLOW_RE = re.compile(r"lint:allow\(([a-z0-9_,\- ]+)\)")

# Rules are scoped by path prefix (POSIX-style, relative to the root).
# `exempt` prefixes override `dirs` prefixes.
RULE_SCOPES = {
    "rng": {"dirs": ("src", "bench", "tests"), "exempt": ("src/util/rng",)},
    "time-seed": {"dirs": ("src", "bench", "tests"), "exempt": ()},
    "unordered-iter": {"dirs": ("src", "bench", "tests"), "exempt": ()},
    "raw-thread": {"dirs": ("src", "bench", "tests"),
                   "exempt": ("src/util/",)},
    "omp": {"dirs": ("src", "bench", "tests"), "exempt": ("src/util/",)},
    "atomic-order": {"dirs": ("src", "bench"), "exempt": ()},
    "fp-contract-pin": {"dirs": ("src",), "exempt": ()},
    "float-accum": {"dirs": ("src",),
                    "exempt": ("src/tensor/", "src/nn/", "src/quant/")},
}

RNG_PATTERN = re.compile(
    r"(?<![\w:])(?:(?:std::)?s?rand\s*\(|std::random_device\b"
    r"|std::mt19937(?:_64)?\b"
    r"|std::default_random_engine\b|std::minstd_rand0?\b"
    r"|std::ranlux\w+\b|std::knuth_b\b)")

TIME_SEED_PATTERN = re.compile(
    r"std::chrono::system_clock\b|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
    r"|\bgettimeofday\s*\(")

RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;]*?):([^;)]*)\)")
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:multi)?(?:map|set)\s*<[^;{}()]*>[&\s]*(\w+)\s*[;={(,)]")

THREAD_PATTERN = re.compile(r"std::j?thread\b(?!::)")
OMP_PATTERN = re.compile(r"^\s*#\s*pragma\s+omp\b")

ATOMIC_METHOD_RE = re.compile(
    r"\.\s*(load|store|exchange|fetch_add|fetch_sub|fetch_and|fetch_or"
    r"|fetch_xor|test_and_set|clear|wait"
    r"|compare_exchange_weak|compare_exchange_strong)\s*\(")
ATOMIC_DECL_RE = re.compile(r"std::atomic(?:_flag)?\s*<[^;>]*>\s+(\w+)\s*[;{=]")
ISA_CLONE_RE = re.compile(r"target_clones|__attribute__\s*\(\s*\(\s*target\s*\(")
FLOAT_ACCUM_RE = re.compile(
    r"\bfloat\s+(\w*(?:sum|total|accum|acc)\w*)\s*[={]", re.IGNORECASE)


@dataclass
class Violation:
    path: str  # POSIX-relative to root
    line: int  # 1-based
    rule: str
    message: str


@dataclass
class FileContext:
    rel: str
    lines: list[str]
    allows: list[set[str]] = field(default_factory=list)  # per line

    def allowed(self, line_index: int, rule: str) -> bool:
        """True when line `line_index` (0-based) carries or inherits an
        allow for `rule`: same line, or alone on the line above."""
        here = self.allows[line_index]
        if rule in here or "*" in here:
            return True
        if line_index > 0:
            above = self.lines[line_index - 1].strip()
            prev = self.allows[line_index - 1]
            if above.startswith("//") and (rule in prev or "*" in prev):
                return True
        return False


def parse_allows(lines: list[str]) -> list[set[str]]:
    allows: list[set[str]] = []
    for line in lines:
        found: set[str] = set()
        for match in ALLOW_RE.finditer(line):
            for rule in match.group(1).split(","):
                found.add(rule.strip())
        allows.append(found)
    return allows


def in_scope(rel: str, rule: str) -> bool:
    scope = RULE_SCOPES[rule]
    if not rel.startswith(tuple(d + "/" for d in scope["dirs"])):
        return False
    return not rel.startswith(scope["exempt"])


def strip_comments_and_strings(line: str) -> str:
    """Good-enough single-line scrub: drops // comments and the contents
    of string/char literals so patterns never fire on prose. Block
    comments spanning lines are rare in this tree and handled upstream
    by the allow mechanism if they ever false-positive."""
    out = []
    i = 0
    in_string: str | None = None
    while i < len(line):
        ch = line[i]
        if in_string:
            if ch == "\\":
                i += 2
                continue
            if ch == in_string:
                in_string = None
                out.append(ch)
            i += 1
            continue
        if ch in "\"'":
            in_string = ch
            out.append(ch)
            i += 1
            continue
        if ch == "/" and i + 1 < len(line) and line[i + 1] == "/":
            break
        out.append(ch)
        i += 1
    return "".join(out)


def call_args_have_memory_order(ctx: FileContext, line_index: int,
                                open_paren_offset: int) -> bool:
    """Scans the balanced argument list starting at `(` (which may span
    lines) for a std::memory_order mention."""
    depth = 0
    collected: list[str] = []
    i, j = line_index, open_paren_offset
    for _ in range(40):  # arg lists longer than 40 lines do not happen
        line = ctx.lines[i] if i < len(ctx.lines) else ""
        while j < len(line):
            ch = line[j]
            if ch == "(":
                depth += 1
            elif ch == ")":
                depth -= 1
                if depth == 0:
                    return "memory_order" in "".join(collected)
            collected.append(ch)
            j += 1
        collected.append("\n")
        i += 1
        j = 0
        if i >= len(ctx.lines):
            break
    return "memory_order" in "".join(collected)


def pinned_fp_contract_files(root: str) -> set[str]:
    """Files named in a CMakeLists.txt set_source_files_properties(...)
    block that also mentions ffp-contract=off.

    One level of variable indirection is resolved: a block referencing
    ${VAR} counts as pinned when some set(VAR ...)/list(APPEND VAR ...)
    in the same file contains the literal flag. (CMake conditionals are
    not evaluated — the flag merely has to appear in the variable's
    construction, which is the honest static approximation.)"""
    cmake_path = os.path.join(root, "CMakeLists.txt")
    try:
        with open(cmake_path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError:
        return set()
    flag_vars = {
        m.group(1)
        for m in re.finditer(
            r"(?:set|list\s*\(\s*APPEND)\s*\(?\s*(\w+)[^)]*ffp-contract=off",
            text)
    }
    pinned: set[str] = set()
    for match in re.finditer(r"set_source_files_properties\s*\(", text):
        depth, i = 0, match.end() - 1
        start = i
        while i < len(text):
            if text[i] == "(":
                depth += 1
            elif text[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        block = text[start:i]
        has_flag = "ffp-contract=off" in block or any(
            "${" + var + "}" in block for var in flag_vars)
        if has_flag:
            pinned.update(re.findall(r"[\w/.+-]+\.(?:cpp|cc)", block))
    return pinned


def last_identifier(expr: str) -> str | None:
    match = re.search(r"([A-Za-z_]\w*)\s*$", expr.strip())
    return match.group(1) if match else None


def lint_file(ctx: FileContext, pinned: set[str]) -> list[Violation]:
    violations: list[Violation] = []
    rel = ctx.rel

    def check(rule: str, line_index: int, pattern_hit: bool, message: str):
        if pattern_hit and in_scope(rel, rule) \
                and not ctx.allowed(line_index, rule):
            violations.append(Violation(rel, line_index + 1, rule, message))

    # Names declared as unordered containers / atomics anywhere in the
    # file (single pre-pass; declarations in this tree are single-line).
    unordered_names: set[str] = set()
    atomic_names: set[str] = set()
    code_lines = [strip_comments_and_strings(line) for line in ctx.lines]
    for code in code_lines:
        for match in UNORDERED_DECL_RE.finditer(code):
            unordered_names.add(match.group(1))
        for match in ATOMIC_DECL_RE.finditer(code):
            atomic_names.add(match.group(1))

    file_mentions_atomic = any("atomic" in code for code in code_lines)

    for idx, code in enumerate(code_lines):
        check("rng", idx, bool(RNG_PATTERN.search(code)),
              "ad-hoc RNG source; derive draws from util::Rng / "
              "stateless_uniform (seeded, forkable, checkpointable)")
        check("time-seed", idx, bool(TIME_SEED_PATTERN.search(code)),
              "wall-clock value feeding program state; use a fixed seed "
              "or obs::now_ns for observational timing")
        check("omp", idx, bool(OMP_PATTERN.search(code)),
              "OpenMP pragma outside util/; use util::parallel_for so "
              "the nested-serial pinning policy holds")
        check("raw-thread", idx, bool(THREAD_PATTERN.search(code)),
              "raw std::thread outside util/; use util::ThreadPool "
              "(or annotate deliberate thread-spawning test code)")

        for match in RANGE_FOR_RE.finditer(code):
            range_expr = match.group(2)
            name = last_identifier(range_expr)
            hit = "unordered_" in range_expr or (
                name is not None and name in unordered_names)
            check("unordered-iter", idx, hit,
                  "iteration over an unordered container; order is "
                  "hash-seed-dependent — iterate a sorted/index-ordered "
                  "view instead")

        if in_scope(rel, "atomic-order") and file_mentions_atomic:
            for match in ATOMIC_METHOD_RE.finditer(code):
                open_paren = code.index("(", match.end() - 1)
                if not call_args_have_memory_order(ctx, idx, open_paren):
                    check("atomic-order", idx, True,
                          f".{match.group(1)}() without an explicit "
                          "std::memory_order argument")
            for name in atomic_names:
                op = re.search(
                    rf"(?<![\w.]){re.escape(name)}\s*"
                    rf"(\+\+|--|(?:[-+|&^]|)=(?!=))", code)
                # `type name = init` declares a plain local that happens to
                # share an atomic's name — a preceding type-ish token means
                # declaration, not an atomic store.
                if op and re.search(r"[\w>&*]\s+$", code[:op.start()]):
                    op = None
                if op:
                    check("atomic-order", idx, True,
                          f"operator '{op.group(1)}' on atomic '{name}' "
                          "is seq_cst; spell out the memory order")

        if rel.endswith((".cpp", ".cc")):
            hit = bool(ISA_CLONE_RE.search(code)) and rel not in pinned
            check("fp-contract-pin", idx, hit,
                  "TU defines ISA-cloned kernels but CMakeLists.txt does "
                  "not pin it with -ffp-contract=off; wide-FMA clones "
                  "would contract differently than the default clone")

        accum = FLOAT_ACCUM_RE.search(code)
        check("float-accum", idx, accum is not None,
              f"float accumulator '{accum.group(1) if accum else ''}' in "
              "a non-kernel TU; accumulate in double (or move the "
              "reduction into tensor/)")

    return violations


def collect_files(root: str, paths: list[str]) -> list[str]:
    """Returns POSIX-relative paths of every C++ file to scan."""
    rels: list[str] = []
    if paths:
        roots = paths
    else:
        roots = [os.path.join(root, d) for d in SCAN_DIRS]
    for top in roots:
        if os.path.isfile(top):
            rels.append(os.path.relpath(top, root).replace(os.sep, "/"))
            continue
        for dirpath, dirnames, filenames in os.walk(top):
            dirnames.sort()
            for name in sorted(filenames):
                if name.endswith(CPP_EXTENSIONS):
                    full = os.path.join(dirpath, name)
                    rels.append(
                        os.path.relpath(full, root).replace(os.sep, "/"))
    return rels


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="skiptrain determinism linter (see module docstring)")
    parser.add_argument("--root", default=".",
                        help="repo root; scan roots and CMakeLists.txt "
                             "are resolved against it (default: cwd)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print rule ids and scopes, then exit 0")
    parser.add_argument("paths", nargs="*",
                        help="files/directories to scan instead of the "
                             "default src/ bench/ tests/ under --root")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, scope in RULE_SCOPES.items():
            exempt = f" exempt={','.join(scope['exempt'])}" \
                if scope["exempt"] else ""
            print(f"{rule}: dirs={','.join(scope['dirs'])}{exempt}")
        return 0

    root = os.path.abspath(args.root)
    if not os.path.isdir(root):
        print(f"lint_determinism: --root {args.root} is not a directory",
              file=sys.stderr)
        return 2
    for path in args.paths:
        if not os.path.exists(path):
            print(f"lint_determinism: no such path: {path}", file=sys.stderr)
            return 2

    pinned = pinned_fp_contract_files(root)
    violations: list[Violation] = []
    for rel in collect_files(root, args.paths):
        full = os.path.join(root, rel)
        try:
            with open(full, encoding="utf-8", errors="replace") as fh:
                lines = fh.read().splitlines()
        except OSError as error:
            print(f"lint_determinism: cannot read {rel}: {error}",
                  file=sys.stderr)
            return 2
        ctx = FileContext(rel=rel, lines=lines, allows=parse_allows(lines))
        violations.extend(lint_file(ctx, pinned))

    for v in violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if violations:
        print(f"lint_determinism: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
