// Fixture: rule scoping for tests/. atomic-order does NOT apply to
// tests (seq_cst is the conservative default there); raw-thread DOES,
// so the annotated spawn is the only reason this file is clean.
// Expected hits: none.
#include <atomic>
#include <thread>

std::atomic<int> g_test_counter{0};

void hammer() {
  std::thread worker([] {  // lint:allow(raw-thread)
    g_test_counter.fetch_add(1);  // tests exempt from atomic-order
  });
  worker.join();
}
