// Fixture: iteration over unordered containers in a result path.
// Expected hits: unordered-iter x2.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Sink {
  std::unordered_map<std::string, double> by_name;

  double total() const {
    double sum = 0.0;
    for (const auto& [name, value] : by_name) {  // hit: declared above
      (void)name;
      sum += value;
    }
    return sum;
  }
};

int count_inline() {
  int n = 0;
  for (int v : std::unordered_set<int>{1, 2, 3}) {  // hit: inline temporary
    n += v;
  }
  return n;
}
