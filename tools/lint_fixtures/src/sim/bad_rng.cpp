// Fixture: every forbidden RNG / wall-clock-seed pattern. Expected hits:
//   rng x3 (lines tagged RNG), time-seed x2 (lines tagged TIME).
#include <cstdlib>
#include <ctime>
#include <random>

int draw_everything() {
  int total = std::rand();                     // RNG
  std::random_device entropy;                  // RNG
  std::mt19937 engine(entropy());              // RNG
  total += static_cast<int>(time(nullptr));    // TIME
  auto wall = std::chrono::system_clock::now();  // TIME
  (void)wall;
  return total + static_cast<int>(engine());
}
