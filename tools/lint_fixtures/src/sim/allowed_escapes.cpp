// Fixture: every escape-hatch form. Each line would violate a rule but
// carries (or inherits) a lint:allow, so expected hits: none.
#include <atomic>
#include <cstdlib>
#include <thread>
#include <unordered_set>

std::atomic<int> g_spins{0};

int escape_hatches() {
  int noise = std::rand();  // lint:allow(rng)
  // lint:allow(raw-thread)
  std::thread helper([] {});
  helper.join();
  g_spins.fetch_add(1);  // lint:allow(atomic-order)
  float sum = 0.0f;  // lint:allow(float-accum,unordered-iter)
  for (int v : std::unordered_set<int>{4, 5}) {  // lint:allow(unordered-iter)
    sum += static_cast<float>(v);
  }
  return noise + static_cast<int>(sum);
}
