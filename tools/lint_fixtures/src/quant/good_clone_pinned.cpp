// Fixture: ISA-cloned kernel TU that IS pinned with -ffp-contract=off
// in the fixture CMakeLists.txt. Expected hits: none.
#include <cstddef>

__attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
void offset(float* values, std::size_t n, float delta) {
  for (std::size_t i = 0; i < n; ++i) values[i] += delta;
}
