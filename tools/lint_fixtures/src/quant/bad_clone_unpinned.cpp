// Fixture: ISA-cloned kernel TU with no -ffp-contract=off pin in the
// (fixture) CMakeLists.txt. Expected hits: fp-contract-pin x1.
#include <cstddef>

__attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
void scale(float* values, std::size_t n, float factor) {
  for (std::size_t i = 0; i < n; ++i) values[i] *= factor;
}
