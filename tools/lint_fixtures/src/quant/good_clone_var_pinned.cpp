// Fixture: ISA-cloned kernel TU pinned through a CMake variable whose
// construction contains -ffp-contract=off (mirrors the real tree's
// SKIPTRAIN_KERNELS_OPTIONS). Expected hits: none.
#include <cstddef>

__attribute__((target_clones("arch=x86-64-v4", "avx2", "default")))
void scale(float* values, std::size_t n, float factor) {
  for (std::size_t i = 0; i < n; ++i) values[i] *= factor;
}
