// Fixture: atomic operations with the implicit seq_cst default.
// Expected hits: atomic-order x4 (tagged HIT). The multi-line fetch_add
// with an explicit order must NOT count, nor the declaration of a plain
// local sharing an atomic's name.
#include <atomic>
#include <cstdint>

std::atomic<std::uint64_t> g_events{0};
std::atomic<bool> g_shutdown{false};

std::uint64_t poke() {
  g_events.fetch_add(1);                        // HIT: no order
  g_events++;                                   // HIT: operator seq_cst
  g_shutdown = true;                            // HIT: operator seq_cst
  const std::uint64_t g_events_snapshot = g_events.load(  // HIT: no order
      );
  g_events.fetch_add(2,
                     std::memory_order_relaxed);  // ok: order spans lines
  const std::uint64_t g_shutdown_word = 0;  // ok: declaration, not a store
  return g_events_snapshot + g_shutdown_word;
}
