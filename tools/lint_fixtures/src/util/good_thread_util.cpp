// Fixture: raw threads are util/'s prerogative (the pool lives here).
// Expected hits: none — src/util/ is exempt from raw-thread and omp.
#include <thread>

void run_detached(void (*fn)()) {
  std::thread worker(fn);
  worker.join();
}
