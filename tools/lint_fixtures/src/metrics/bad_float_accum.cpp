// Fixture: float accumulators in a non-kernel TU. Expected hits:
//   float-accum x2. The double accumulator must NOT count.
#include <cstddef>

double reduce(const float* values, std::size_t n) {
  float sum = 0.0f;        // hit
  float running_acc{0.0f};  // hit
  double exact_total = 0.0;  // ok: double accumulator
  for (std::size_t i = 0; i < n; ++i) {
    sum += values[i];
    running_acc += values[i];
    exact_total += static_cast<double>(values[i]);
  }
  return exact_total + static_cast<double>(sum + running_acc);
}
