// Fixture: ad-hoc parallelism outside util/. Expected hits:
//   raw-thread x1, omp x1. std::this_thread and std::thread::id uses
//   must NOT count.
#include <thread>

void spin(int* out, int n) {
  std::thread worker([out, n] {  // hit: raw thread construction
    for (int i = 0; i < n; ++i) out[i] = i;
  });
  const std::thread::id self = std::this_thread::get_id();  // no hit
  (void)self;
#pragma omp parallel for  // hit: omp pragma
  for (int i = 0; i < n; ++i) {
    out[i] += 1;
  }
  worker.join();
}
