// Fixture: float accumulators in a kernel TU (src/tensor/ is exempt —
// kernels own their accumulation-order story). Expected hits: none.
#include <cstddef>

float dot(const float* a, const float* b, std::size_t n) {
  float acc = 0.0f;  // exempt dir: no hit
  for (std::size_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}
