#!/usr/bin/env python3
"""CI bench regression gate over BENCH_aggregate.json.

Two kinds of checks against the committed baseline
(bench/bench_baseline.json):

* "pairs" — HARD gate. Each entry names an optimized benchmark row and its
  in-process reference twin (e.g. BM_GemmNTBlocked/... vs BM_GemmNTRef/...)
  plus the minimum speedup ratio the optimized kernel must keep. Because
  both rows run in the same process on the same machine, the ratio is
  machine-independent: a kernel regression (or a change that silently
  reroutes the fast path to the reference) drops the ratio and fails CI.
  The committed min_speedup values carry ~40-50% slack below locally
  measured ratios to absorb runner noise.

* "absolute" — annotation only. Reference wall times recorded on the dev
  machine; rows slower than warn_factor x the recorded time emit a GitHub
  ::warning:: (absolute times are machine-dependent, so they never fail).

* "required" — HARD presence gate. Each entry is a benchmark row name that
  must exist in the report. This catches silent coverage loss: a renamed
  benchmark, a --quick filter that stopped matching, or a registration
  that got dropped would otherwise make every ratio/absolute check vanish
  while CI stays green.

* "peak_rss_mb" — annotation only. Recorded peak-RSS counters (the
  BM_GossipSharded rows report getrusage max RSS in MiB); rows whose
  counter exceeds rss_warn_factor x the recorded value emit a
  ::warning::. Memory footprint IS roughly machine-independent, but RSS
  includes allocator/runtime noise, so it annotates rather than fails.

Usage: check_bench_regression.py BENCH_aggregate.json bench_baseline.json
Exit status: 0 ok, 1 a hard gate (pair or required row) failed,
2 input malformed.
"""

import json
import sys


def load_rows(bench_json_path):
    with open(bench_json_path, "r", encoding="utf-8") as fh:
        data = json.load(fh)
    rows = {}
    counters = {}
    for bench in data.get("benchmarks", []):
        # Aggregate reports (mean/median/stddev) carry run_type
        # "aggregate"; plain runs are "iteration". Keep first occurrence.
        if bench.get("run_type", "iteration") != "iteration":
            continue
        name = bench.get("name")
        if name and name not in rows:
            rows[name] = float(bench["real_time"])
            # User counters land as extra numeric keys on the row object.
            counters[name] = {
                key: float(value)
                for key, value in bench.items()
                if isinstance(value, (int, float)) and key not in (
                    "real_time", "cpu_time", "iterations",
                    "repetition_index", "family_index",
                    "per_family_instance_index", "threads")
            }
    return rows, counters


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        rows, counters = load_rows(argv[1])
        with open(argv[2], "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError, KeyError) as err:
        print(f"::error::bench gate: cannot load inputs: {err}")
        return 2

    failed = False
    for name in baseline.get("required", []):
        if name in rows:
            print(f"[present] {name}")
        else:
            print(f"::error::bench gate: required row {name} missing from "
                  f"{argv[1]} (renamed benchmark or filter no longer "
                  f"matches?)")
            failed = True

    for pair in baseline.get("pairs", []):
        opt, ref = pair["optimized"], pair["reference"]
        want = float(pair["min_speedup"])
        if opt not in rows or ref not in rows:
            print(f"::error::bench gate: missing rows for pair {opt} / {ref} "
                  f"in {argv[1]}")
            failed = True
            continue
        got = rows[ref] / rows[opt] if rows[opt] > 0 else float("inf")
        status = "ok" if got >= want else "FAIL"
        print(f"[{status}] {opt}: {got:.2f}x vs {ref} (gate {want:.2f}x)")
        if got < want:
            print(f"::error::kernel regression: {opt} is only {got:.2f}x "
                  f"faster than {ref}, gate requires {want:.2f}x")
            failed = True

    warn_factor = float(baseline.get("warn_factor", 2.0))
    for name, recorded_ns in baseline.get("absolute_ns", {}).items():
        if name not in rows:
            print(f"::warning::bench gate: absolute row {name} missing")
            continue
        ratio = rows[name] / float(recorded_ns)
        note = " (slower than recorded baseline)" if ratio > warn_factor else ""
        print(f"[abs] {name}: {rows[name]:.0f} ns vs recorded "
              f"{recorded_ns:.0f} ns ({ratio:.2f}x){note}")
        if ratio > warn_factor:
            print(f"::warning::{name} is {ratio:.2f}x the recorded baseline "
                  f"time (annotation only — absolute times are "
                  f"machine-dependent)")

    rss_warn_factor = float(baseline.get("rss_warn_factor", 1.5))
    for name, recorded_mb in baseline.get("peak_rss_mb", {}).items():
        got = counters.get(name, {}).get("peak_rss_mb")
        if got is None:
            print(f"::warning::bench gate: peak_rss_mb counter missing "
                  f"for {name}")
            continue
        ratio = got / float(recorded_mb)
        note = " (footprint grew)" if ratio > rss_warn_factor else ""
        print(f"[rss] {name}: {got:.0f} MiB vs recorded "
              f"{recorded_mb:.0f} MiB ({ratio:.2f}x){note}")
        if ratio > rss_warn_factor:
            print(f"::warning::{name} peak RSS is {ratio:.2f}x the recorded "
                  f"baseline — check for accidental dense/quadratic "
                  f"allocations on the large-fleet path")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
