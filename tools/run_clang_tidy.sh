#!/usr/bin/env bash
# Run clang-tidy over the library sources using the repo .clang-tidy
# profile. Same entry point for CI and local use:
#
#   tools/run_clang_tidy.sh [build-dir]
#
# The build dir must contain compile_commands.json (exported by default;
# see CMAKE_EXPORT_COMPILE_COMMANDS in CMakeLists.txt). For a dedicated
# tidy build dir, configure with the ccache launcher disabled so the
# compile commands start with the compiler itself:
#
#   cmake -B build-tidy -S . -DCMAKE_CXX_COMPILER_LAUNCHER=
#
# Scope: src/**/*.cpp only. Tests and bench harnesses are covered by the
# determinism linter (tools/lint_determinism.py) instead — gtest/benchmark
# macros drown clang-tidy in third-party noise for little signal.
set -u -o pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "Configure first: cmake -B ${BUILD_DIR} -S . -DCMAKE_CXX_COMPILER_LAUNCHER=" >&2
  exit 2
fi

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "error: ${CLANG_TIDY} not on PATH (set CLANG_TIDY=... to override)." >&2
  exit 2
fi

# src/quant/kernels.cpp is excluded: its target_clones("arch=x86-64-v4",...)
# ISA dispatch is GCC-flavoured and does not parse under clang. The TU is
# pure element loops; its callers and the codec logic around it are linted.
mapfile -t FILES < <(find src -name '*.cpp' ! -path 'src/quant/kernels.cpp' | sort)
echo "clang-tidy ($(${CLANG_TIDY} --version | head -n1)) over ${#FILES[@]} TUs"

JOBS="$(nproc 2>/dev/null || echo 2)"
printf '%s\n' "${FILES[@]}" |
  xargs -P "${JOBS}" -n 1 "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet
STATUS=$?

if [[ ${STATUS} -ne 0 ]]; then
  echo "clang-tidy: findings above (or a TU failed to parse)." >&2
  exit 1
fi
echo "clang-tidy: clean."
