// util::AlignedArena: alignment, zero-init, huge-page path, grow-only
// ensure() semantics, move-only ownership, and the RowArena backing that
// the parameter planes build on.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <utility>

#include "plane/plane.hpp"
#include "util/arena.hpp"

namespace skiptrain {
namespace {

using util::AlignedArena;

bool is_aligned(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % AlignedArena::kAlignment == 0;
}

bool all_zero(const AlignedArena& arena) {
  const auto* bytes = static_cast<const unsigned char*>(arena.data());
  for (std::size_t i = 0; i < arena.size_bytes(); ++i) {
    if (bytes[i] != 0) return false;
  }
  return true;
}

TEST(AlignedArena, DefaultConstructedIsEmpty) {
  AlignedArena arena;
  EXPECT_TRUE(arena.empty());
  EXPECT_EQ(arena.size_bytes(), 0u);
  EXPECT_EQ(arena.data(), nullptr);
  EXPECT_FALSE(arena.huge_page_backed());
  // Zero-byte explicit construction is the same empty state.
  AlignedArena zero(0);
  EXPECT_TRUE(zero.empty());
  EXPECT_EQ(zero.data(), nullptr);
}

TEST(AlignedArena, SmallAllocationAlignedZeroedAndRounded) {
  AlignedArena arena(1000);
  EXPECT_FALSE(arena.empty());
  EXPECT_TRUE(is_aligned(arena.data()));
  // Capacity rounds up to the alignment quantum.
  EXPECT_EQ(arena.size_bytes(), 1024u);
  EXPECT_TRUE(all_zero(arena));
  // Small allocations never take the mmap path.
  EXPECT_FALSE(arena.huge_page_backed());
}

TEST(AlignedArena, LargeAllocationTakesHugePagePath) {
  // >= 2 MiB crosses kHugeThreshold; on Linux this is the mmap +
  // MADV_HUGEPAGE path and pages must still arrive zeroed and aligned.
  AlignedArena arena(AlignedArena::kHugeThreshold + 4096);
  EXPECT_TRUE(is_aligned(arena.data()));
  EXPECT_TRUE(all_zero(arena));
#ifdef __linux__
  EXPECT_TRUE(arena.huge_page_backed());
#endif
}

TEST(AlignedArena, EnsureIsGrowOnly) {
  AlignedArena arena(256);
  float* const before = arena.floats();
  for (std::size_t i = 0; i < 64; ++i) before[i] = static_cast<float>(i);

  // At-or-below capacity: no reallocation, contents untouched.
  arena.ensure(64);
  EXPECT_EQ(arena.floats(), before);
  arena.ensure(256);
  EXPECT_EQ(arena.floats(), before);
  EXPECT_EQ(before[63], 63.0f);

  // Growing reallocates: contents are DISCARDED (fresh zeroed block) and
  // the new capacity covers the request.
  arena.ensure(4096);
  EXPECT_GE(arena.size_bytes(), 4096u);
  EXPECT_TRUE(is_aligned(arena.data()));
  EXPECT_TRUE(all_zero(arena));
}

TEST(AlignedArena, EnsureFloatsSizesInFloatUnits) {
  AlignedArena arena;
  float* p = arena.ensure_floats(100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p, arena.floats());
  EXPECT_GE(arena.size_bytes(), 100 * sizeof(float));
  p[99] = 7.5f;
  // A smaller request keeps the same block.
  EXPECT_EQ(arena.ensure_floats(10), p);
  EXPECT_EQ(arena.floats()[99], 7.5f);
}

TEST(AlignedArena, MoveTransfersOwnership) {
  AlignedArena source(512);
  source.floats()[0] = 42.0f;
  void* const block = source.data();

  AlignedArena moved(std::move(source));
  EXPECT_EQ(moved.data(), block);
  EXPECT_EQ(moved.floats()[0], 42.0f);
  EXPECT_TRUE(source.empty());      // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(source.data(), nullptr);

  AlignedArena target(64);
  target = std::move(moved);
  EXPECT_EQ(target.data(), block);
  EXPECT_EQ(target.floats()[0], 42.0f);
  EXPECT_TRUE(moved.empty());       // NOLINT(bugprone-use-after-move)
}

TEST(AlignedArena, TouchPoliciesAllYieldZeroedMemory) {
  // First-touch policy changes page placement, never contents: every
  // policy must hand back the same zeroed, aligned block — including
  // kInterleave, whose chunks are memset in parallel on the pool.
  for (const auto touch :
       {AlignedArena::Touch::kNone, AlignedArena::Touch::kSequential,
        AlignedArena::Touch::kInterleave}) {
    AlignedArena arena(3 * AlignedArena::kHugeThreshold + 100, touch);
    EXPECT_TRUE(is_aligned(arena.data()));
    EXPECT_TRUE(all_zero(arena));
  }
}

TEST(RowArena, ArenaBackedRowsAreAlignedAndZeroed) {
  // RowArena now sits on AlignedArena: row 0 starts on a 64-byte
  // boundary and fresh planes read as zero (the std::vector semantics the
  // planes were built on).
  plane::RowArena rows(5, 33, AlignedArena::Touch::kSequential);
  EXPECT_EQ(rows.rows(), 5u);
  EXPECT_EQ(rows.dim(), 33u);
  EXPECT_TRUE(is_aligned(rows.row(0).data()));
  for (std::size_t i = 0; i < rows.rows(); ++i) {
    for (const float v : rows.row(i)) EXPECT_EQ(v, 0.0f);
  }
  // Rows are contiguous at dim-stride and writes land where expected.
  EXPECT_EQ(rows.row(3).data(), rows.row(0).data() + 3 * 33);
  rows.row(2)[5] = 9.0f;
  EXPECT_EQ(rows.row(0).data()[2 * 33 + 5], 9.0f);
}

}  // namespace
}  // namespace skiptrain
