// Asynchronous gossip engine semantics: clock/event ordering, per-node
// pacing, budget enforcement, determinism, and learning progress.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "data/synthetic.hpp"
#include "energy/accountant.hpp"
#include "graph/topology.hpp"
#include "metrics/evaluator.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "sim/async_engine.hpp"

namespace skiptrain::sim {
namespace {

struct AsyncFixture {
  data::FederatedData data;
  nn::Sequential prototype;
  graph::Topology topology;
  energy::Fleet fleet;

  explicit AsyncFixture(std::size_t nodes = 12, std::uint64_t seed = 42)
      : fleet(energy::Fleet::even(nodes, energy::Workload::kCifar10)) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 30;
    config.test_pool = 300;
    config.seed = seed;
    data = data::make_cifar_synthetic(config);
    prototype = nn::make_mlp(config.feature_dim, {16}, 10);
    util::Rng rng(seed);
    nn::initialize(prototype, rng);
    util::Rng topo_rng(seed + 1);
    topology = graph::make_random_regular(nodes, 4, topo_rng);
  }

  energy::EnergyAccountant make_accountant() const {
    std::vector<std::size_t> degrees(fleet.num_nodes(), 4);
    return energy::EnergyAccountant(fleet, energy::CommModel{}, 89834,
                                    std::move(degrees));
  }

  AsyncGossipEngine make_engine(const core::RoundScheduler& scheduler,
                                std::vector<double> speeds,
                                AsyncConfig config = {}) {
    config.local_steps = 2;
    config.batch_size = 8;
    return AsyncGossipEngine(prototype, data, topology, scheduler,
                             make_accountant(), std::move(speeds), config);
  }
};

TEST(AsyncEngine, ClockAdvancesAndActivationsHappen) {
  AsyncFixture fixture;
  const core::DpsgdScheduler scheduler;
  auto engine =
      fixture.make_engine(scheduler, std::vector<double>(12, 1.0));
  engine.run_until(10.0);
  EXPECT_GE(engine.now(), 10.0);
  // ~10 activations per node at unit duration.
  EXPECT_GT(engine.total_activations(), 100u);
  EXPECT_LE(engine.total_activations(), 140u);
  EXPECT_EQ(engine.total_trainings(), engine.total_activations());
}

TEST(AsyncEngine, FasterNodesActivateMoreOften) {
  AsyncFixture fixture;
  const core::DpsgdScheduler scheduler;
  std::vector<double> speeds(12, 4.0);
  speeds[0] = 1.0;  // node 0 is 4x faster
  auto engine = fixture.make_engine(scheduler, std::move(speeds));
  engine.run_until(40.0);
  EXPECT_GT(engine.local_rounds(0), 3 * engine.local_rounds(1));
}

TEST(AsyncEngine, SkipTrainSyncActivationsAreCheap) {
  // With Γt=1, Γs=1 and sync at 5% duration, a node completes far more
  // local rounds than a pure-training node in the same horizon.
  AsyncFixture fixture;
  const core::SkipTrainScheduler skip(1, 1);
  auto skip_engine =
      fixture.make_engine(skip, std::vector<double>(12, 1.0));
  skip_engine.run_until(20.0);

  const core::DpsgdScheduler dpsgd;
  AsyncFixture fixture2;
  auto dpsgd_engine =
      fixture2.make_engine(dpsgd, std::vector<double>(12, 1.0));
  dpsgd_engine.run_until(20.0);

  EXPECT_GT(skip_engine.local_rounds(3), dpsgd_engine.local_rounds(3));
  // And roughly half its activations trained.
  const double train_fraction =
      static_cast<double>(skip_engine.total_trainings()) /
      static_cast<double>(skip_engine.total_activations());
  EXPECT_NEAR(train_fraction, 0.5, 0.05);
}

TEST(AsyncEngine, DeterministicAcrossRuns) {
  const core::SkipTrainScheduler scheduler(2, 2);
  AsyncFixture fixture_a, fixture_b;
  auto engine_a =
      fixture_a.make_engine(scheduler, std::vector<double>(12, 1.5));
  auto engine_b =
      fixture_b.make_engine(scheduler, std::vector<double>(12, 1.5));
  engine_a.run_until(15.0);
  engine_b.run_until(15.0);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(engine_a.model(i).parameters_flat(),
              engine_b.model(i).parameters_flat());
  }
  EXPECT_EQ(engine_a.total_activations(), engine_b.total_activations());
}

TEST(AsyncEngine, RunUntilIsIncremental) {
  const core::DpsgdScheduler scheduler;
  AsyncFixture fixture_a, fixture_b;
  auto engine_one =
      fixture_a.make_engine(scheduler, std::vector<double>(12, 1.0));
  engine_one.run_until(12.0);

  auto engine_two =
      fixture_b.make_engine(scheduler, std::vector<double>(12, 1.0));
  engine_two.run_until(5.0);
  engine_two.run_until(12.0);

  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(engine_one.model(i).parameters_flat(),
              engine_two.model(i).parameters_flat());
  }
}

TEST(AsyncEngine, BudgetStopsTraining) {
  AsyncFixture fixture;
  const core::GreedyScheduler scheduler;
  auto accountant = fixture.make_accountant();
  accountant.set_budgets(std::vector<std::size_t>(12, 3));
  AsyncConfig config;
  config.local_steps = 1;
  config.batch_size = 8;
  AsyncGossipEngine engine(fixture.prototype, fixture.data, fixture.topology,
                           scheduler, std::move(accountant),
                           std::vector<double>(12, 1.0), config);
  engine.run_until(50.0);
  // Each node trained at most 3 times despite ~hundreds of activations
  // (sync-only activations are 20x cheaper, so nodes keep gossiping).
  EXPECT_EQ(engine.total_trainings(), 12u * 3u);
  for (std::size_t i = 0; i < 12; ++i) {
    EXPECT_EQ(engine.accountant().training_rounds_executed(i), 3u);
  }
  EXPECT_GT(engine.total_activations(), 12u * 10u);
}

TEST(AsyncEngine, GossipSpreadsInformation) {
  // With training disabled (budget 0 everywhere) but distinct initial
  // models, gossip alone must contract the models toward each other.
  AsyncFixture fixture;
  const core::GreedyScheduler scheduler;
  auto accountant = fixture.make_accountant();
  accountant.set_budgets(std::vector<std::size_t>(12, 0));
  AsyncGossipEngine engine(fixture.prototype, fixture.data, fixture.topology,
                           scheduler, std::move(accountant),
                           std::vector<double>(12, 1.0), AsyncConfig{});

  util::Rng rng(9);
  for (std::size_t i = 0; i < 12; ++i) {
    std::vector<float> params(fixture.prototype.num_parameters());
    rng.fill_normal(params, 0.0f, 1.0f);
    engine.model(i).set_parameters(params);
  }
  const auto spread = [&] {
    double worst = 0.0;
    const auto reference = engine.model(0).parameters_flat();
    for (std::size_t i = 1; i < 12; ++i) {
      const auto params = engine.model(i).parameters_flat();
      double sq = 0.0;
      for (std::size_t k = 0; k < params.size(); ++k) {
        const double diff = params[k] - reference[k];
        sq += diff * diff;
      }
      worst = std::max(worst, sq);
    }
    return worst;
  };
  const double before = spread();
  engine.run_until(30.0);
  EXPECT_LT(spread(), before * 0.01);
}

TEST(AsyncEngine, QuantizedPushesStillSpreadInformation) {
  // Same contraction property with int8-encoded outbox payloads: every
  // receiver merges the decoded wire image, and the per-block scales keep
  // the decode close enough that gossip still mixes the fleet.
  AsyncFixture fixture;
  const core::GreedyScheduler scheduler;
  std::vector<std::size_t> degrees(12, 4);
  energy::EnergyAccountant accountant(
      fixture.fleet, quant::comm_model_for(quant::Codec::kInt8Dithered),
      89834, std::move(degrees));
  accountant.set_budgets(std::vector<std::size_t>(12, 0));
  AsyncConfig config;
  config.exchange_codec = quant::Codec::kInt8Dithered;
  AsyncGossipEngine engine(fixture.prototype, fixture.data, fixture.topology,
                           scheduler, std::move(accountant),
                           std::vector<double>(12, 1.0), config);

  util::Rng rng(9);
  for (std::size_t i = 0; i < 12; ++i) {
    std::vector<float> params(fixture.prototype.num_parameters());
    rng.fill_normal(params, 0.0f, 1.0f);
    engine.model(i).set_parameters(params);
  }
  const auto spread = [&] {
    double worst = 0.0;
    const auto reference = engine.model(0).parameters_flat();
    for (std::size_t i = 1; i < 12; ++i) {
      const auto params = engine.model(i).parameters_flat();
      double sq = 0.0;
      for (std::size_t k = 0; k < params.size(); ++k) {
        const double diff = params[k] - reference[k];
        sq += diff * diff;
      }
      worst = std::max(worst, sq);
    }
    return worst;
  };
  const double before = spread();
  engine.run_until(30.0);
  // Quantization noise leaves a small residual floor, so the contraction
  // bound is looser than the float32 test's 1%.
  EXPECT_LT(spread(), before * 0.05);

  // And the comm bill runs at the codec's wire rate: same push count as a
  // float32 engine, 1.125/4 of the energy per push.
  EXPECT_GT(engine.accountant().total_comm_wh(), 0.0);
}

TEST(AsyncEngine, LearnsAboveChance) {
  AsyncFixture fixture(16);
  const core::SkipTrainScheduler scheduler(4, 4);
  AsyncConfig config;
  config.local_steps = 5;
  config.batch_size = 16;
  config.learning_rate = 0.1f;
  auto engine = AsyncGossipEngine(
      fixture.prototype, fixture.data, fixture.topology, scheduler,
      fixture.make_accountant(), std::vector<double>(16, 1.0), config);
  engine.run_until(80.0);

  const metrics::Evaluator evaluator(&fixture.data.test, 300);
  double mean_acc = 0.0;
  for (std::size_t i = 0; i < 16; ++i) {
    mean_acc += evaluator.evaluate(engine.model(i)).accuracy;
  }
  mean_acc /= 16.0;
  EXPECT_GT(mean_acc, 0.3);  // 10 classes, chance = 0.1
}

TEST(AsyncEngine, RejectsBadConstruction) {
  AsyncFixture fixture;
  const core::DpsgdScheduler scheduler;
  EXPECT_THROW(fixture.make_engine(scheduler, std::vector<double>(5, 1.0)),
               std::invalid_argument);
  EXPECT_THROW(fixture.make_engine(scheduler, std::vector<double>(12, 0.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace skiptrain::sim
