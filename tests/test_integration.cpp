// End-to-end experiments through the public run_experiment API. These are
// scaled-down versions of the paper's headline comparisons; assertions
// check the qualitative claims (orderings, ratios), not absolute numbers.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/init.hpp"
#include "nn/model_zoo.hpp"
#include "sim/runner.hpp"

namespace skiptrain::sim {
namespace {

struct TestBed {
  data::FederatedData data;
  nn::Sequential model;

  explicit TestBed(std::size_t nodes = 16) {
    data::CifarSynConfig config;
    config.nodes = nodes;
    config.samples_per_node = 60;
    config.test_pool = 600;
    config.seed = 4242;
    data = data::make_cifar_synthetic(config);
    model = nn::make_compact_cifar_model(config.feature_dim);
    util::Rng rng(4242);
    nn::initialize(model, rng);
  }
};

RunOptions base_options() {
  RunOptions options;
  options.total_rounds = 64;
  options.degree = 4;
  options.local_steps = 3;
  options.batch_size = 16;
  options.learning_rate = 0.05f;
  options.eval_every = 16;
  options.eval_max_samples = 300;
  options.seed = 11;
  return options;
}

TEST(Integration, DpsgdLearnsAboveChance) {
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kDpsgd;
  const ExperimentResult result = run_experiment(bed.data, bed.model, options);

  EXPECT_GT(result.final_mean_accuracy, 0.3);  // 10 classes, chance = 0.1
  EXPECT_EQ(result.nodes, 16u);
  EXPECT_EQ(result.coordinated_training_rounds, 64u);
  EXPECT_FALSE(result.recorder.empty());
}

TEST(Integration, SkipTrainHalvesEnergyAndKeepsAccuracy) {
  // The paper's regime needs enough local drift for synchronization rounds
  // to pay off: many local steps, non-trivial learning rate, and a horizon
  // long enough for D-PSGD to plateau (cf. the §4.5 configuration).
  TestBed bed;
  RunOptions options = base_options();
  options.total_rounds = 160;
  options.local_steps = 10;
  options.learning_rate = 0.1f;
  options.eval_every = 160;
  options.eval_max_samples = 600;

  options.algorithm = Algorithm::kDpsgd;
  const ExperimentResult dpsgd = run_experiment(bed.data, bed.model, options);

  options.algorithm = Algorithm::kSkipTrain;
  options.gamma_train = 4;
  options.gamma_sync = 4;
  const ExperimentResult skip = run_experiment(bed.data, bed.model, options);

  // Energy: half the training rounds -> half the training energy (Γt = Γs
  // and 160 | 8, so exactly half the rounds train).
  EXPECT_NEAR(skip.total_training_wh, dpsgd.total_training_wh / 2.0,
              dpsgd.total_training_wh * 0.02);
  // Accuracy: SkipTrain at least matches D-PSGD at equal rounds under the
  // 2-shard non-IID split (the paper reports it strictly higher).
  EXPECT_GT(skip.final_mean_accuracy, dpsgd.final_mean_accuracy - 0.005);
  // Communication energy is the same for both (sharing every round).
  EXPECT_NEAR(skip.total_comm_wh, dpsgd.total_comm_wh,
              dpsgd.total_comm_wh * 0.01);
}

TEST(Integration, AllReduceBeatsDpsgdMeanAccuracy) {
  // Figure 1: per-round all-reduce is a strict upper bound on gossip.
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kDpsgd;
  const ExperimentResult dpsgd = run_experiment(bed.data, bed.model, options);

  options.algorithm = Algorithm::kDpsgdAllReduce;
  const ExperimentResult allreduce =
      run_experiment(bed.data, bed.model, options);

  EXPECT_GT(allreduce.final_mean_accuracy,
            dpsgd.final_mean_accuracy - 0.02);
  // All-reduced nodes agree, so the accuracy spread collapses.
  EXPECT_LT(allreduce.final_std_accuracy, 0.01);
}

TEST(Integration, SyncRoundsReduceAccuracySpread) {
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kDpsgd;
  const ExperimentResult dpsgd = run_experiment(bed.data, bed.model, options);

  options.algorithm = Algorithm::kSkipTrain;
  options.gamma_train = 2;
  options.gamma_sync = 6;
  const ExperimentResult skip = run_experiment(bed.data, bed.model, options);

  // Heavier synchronization narrows the per-node spread under non-IID.
  EXPECT_LT(skip.final_std_accuracy, dpsgd.final_std_accuracy + 0.01);
}

TEST(Integration, RecorderSeriesIsMonotoneInEnergy) {
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kSkipTrain;
  const ExperimentResult result = run_experiment(bed.data, bed.model, options);

  double previous = -1.0;
  for (const auto& record : result.recorder.records()) {
    EXPECT_GE(record.train_energy_wh, previous);
    previous = record.train_energy_wh;
    EXPECT_GE(record.mean_accuracy, 0.0);
    EXPECT_LE(record.mean_accuracy, 1.0);
  }
  EXPECT_EQ(result.recorder.last().round, options.total_rounds);
}

TEST(Integration, DeterministicGivenSeed) {
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kSkipTrain;
  const ExperimentResult a = run_experiment(bed.data, bed.model, options);
  const ExperimentResult b = run_experiment(bed.data, bed.model, options);
  EXPECT_DOUBLE_EQ(a.final_mean_accuracy, b.final_mean_accuracy);
  EXPECT_DOUBLE_EQ(a.total_training_wh, b.total_training_wh);

  options.seed = 999;
  const ExperimentResult c = run_experiment(bed.data, bed.model, options);
  EXPECT_NE(a.final_mean_accuracy, c.final_mean_accuracy);
}

TEST(Integration, ConstrainedStaysWithinFleetBudget) {
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kSkipTrainConstrained;
  options.total_rounds = 48;
  const ExperimentResult result = run_experiment(bed.data, bed.model, options);

  // Realized spend can never exceed the fleet budget Σ τ_i e_i.
  EXPECT_LE(result.total_training_wh, result.fleet_budget_wh + 1e-9);
  EXPECT_GT(result.final_mean_accuracy, 0.2);
}

TEST(Integration, GreedyMatchesDpsgdWhileBudgetLasts) {
  // With the canonical budgets (hundreds of rounds) and a short horizon,
  // Greedy never exhausts its budget, so it behaves exactly like D-PSGD.
  TestBed bed;
  RunOptions options = base_options();
  options.total_rounds = 32;
  options.algorithm = Algorithm::kGreedy;
  const ExperimentResult greedy = run_experiment(bed.data, bed.model, options);
  options.algorithm = Algorithm::kDpsgd;
  const ExperimentResult dpsgd = run_experiment(bed.data, bed.model, options);

  EXPECT_DOUBLE_EQ(greedy.final_mean_accuracy, dpsgd.final_mean_accuracy);
  EXPECT_DOUBLE_EQ(greedy.total_training_wh, dpsgd.total_training_wh);
}

TEST(Integration, EvalOnValidationUsesDifferentSplit) {
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kSkipTrain;
  options.eval_on_validation = true;
  const ExperimentResult validation =
      run_experiment(bed.data, bed.model, options);
  options.eval_on_validation = false;
  const ExperimentResult test = run_experiment(bed.data, bed.model, options);
  // Same training dynamics, different evaluation split: accuracies should
  // be close but not identical.
  EXPECT_NE(validation.final_mean_accuracy, test.final_mean_accuracy);
  EXPECT_NEAR(validation.final_mean_accuracy, test.final_mean_accuracy, 0.15);
}

TEST(Integration, AllReduceEvaluationTracksAveragedModel) {
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kDpsgd;
  options.evaluate_allreduce = true;
  const ExperimentResult result = run_experiment(bed.data, bed.model, options);
  // The averaged model generalizes at least as well as the node mean under
  // strong non-IID (Figure 1's core observation), modulo small-scale noise.
  EXPECT_GT(result.final_allreduce_accuracy,
            result.final_mean_accuracy - 0.03);
}

TEST(Integration, SparseExchangeReducesCommEnergyOnly) {
  TestBed bed;
  RunOptions options = base_options();
  options.algorithm = Algorithm::kSkipTrain;
  options.total_rounds = 32;
  const ExperimentResult dense = run_experiment(bed.data, bed.model, options);

  options.sparse_exchange_k = bed.model.num_parameters() / 10;
  const ExperimentResult sparse = run_experiment(bed.data, bed.model, options);

  // Wire fraction k/dim = 0.1 -> comm energy drops to ~10%.
  EXPECT_NEAR(sparse.total_comm_wh, 0.1 * dense.total_comm_wh,
              0.02 * dense.total_comm_wh);
  EXPECT_DOUBLE_EQ(sparse.total_training_wh, dense.total_training_wh);
  // Mild compression at this level: accuracy stays in the same ballpark.
  EXPECT_NEAR(sparse.final_mean_accuracy, dense.final_mean_accuracy, 0.1);
}

TEST(Integration, AlgorithmNames) {
  EXPECT_STREQ(algorithm_name(Algorithm::kDpsgd), "D-PSGD");
  EXPECT_STREQ(algorithm_name(Algorithm::kSkipTrain), "SkipTrain");
  EXPECT_STREQ(algorithm_name(Algorithm::kSkipTrainConstrained),
               "SkipTrain-constrained");
  EXPECT_STREQ(algorithm_name(Algorithm::kGreedy), "Greedy");
}

}  // namespace
}  // namespace skiptrain::sim
